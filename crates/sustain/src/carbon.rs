//! Eq. 3: the carbon model.
//!
//! `CO2e(S) = f_op · PE_{S|B} · CO2e(B) + (1 − f_op) · Ru_{S|B} · CO2e(B)`
//!
//! The operational share keeps running (slightly less efficiently, since
//! old drives are kept past the point newer models would have replaced
//! them: `PE = 1.06` per Wang et al., ISCA '24); the embodied share scales
//! with how often SSDs are bought (`Ru`, the upgrade rate, which longer
//! lifetimes reduce).

use serde::{Deserialize, Serialize};

/// Parameters of the Eq. 3 carbon model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CarbonParams {
    /// Fraction of total emissions that are operational. The paper starts
    /// from 58% (Wang et al.) and conservatively deducts 20% for
    /// SSD-storage servers: `f_op = 0.46`.
    pub f_op: f64,
    /// Power effectiveness of keeping older SSDs vs upgrading: 1.06
    /// (6% higher operational emissions for the same workloads).
    pub power_effectiveness: f64,
    /// SSD upgrade rate relative to baseline (embodied-carbon multiplier).
    pub upgrade_rate: f64,
}

impl CarbonParams {
    /// The paper's ShrinkS configuration: ≥20% lifetime extension, with
    /// the upgrade rate conservatively fixed up by 40% for replacement
    /// capacity → `Ru = 0.9`.
    pub fn shrink() -> Self {
        CarbonParams {
            f_op: 0.46,
            power_effectiveness: 1.06,
            upgrade_rate: fixup_upgrade_rate(upgrade_rate_for_lifetime(1.2), 0.4),
        }
    }

    /// The paper's RegenS configuration: 50% lifetime extension, fixed up
    /// by 40% → `Ru = 0.8`.
    pub fn regen() -> Self {
        CarbonParams {
            f_op: 0.46,
            power_effectiveness: 1.06,
            upgrade_rate: fixup_upgrade_rate(upgrade_rate_for_lifetime(1.5), 0.4),
        }
    }

    /// Footprint of the Salamander deployment relative to baseline
    /// (Eq. 3 divided by `CO2e(B)`).
    pub fn relative_footprint(&self) -> f64 {
        self.f_op * self.power_effectiveness + (1.0 - self.f_op) * self.upgrade_rate
    }

    /// CO2e savings vs baseline under the current grid.
    pub fn savings(&self) -> f64 {
        1.0 - self.relative_footprint()
    }

    /// CO2e savings when renewables zero out operational emissions: only
    /// the embodied share remains, so savings equal `1 − Ru` (the
    /// rightmost bars of Fig. 4).
    pub fn savings_renewable(&self) -> f64 {
        1.0 - self.upgrade_rate
    }
}

/// Lifetime extension → upgrade rate: a drive that lives `benefit`× as
/// long is bought `1/benefit` as often.
pub fn upgrade_rate_for_lifetime(benefit: f64) -> f64 {
    1.0 / benefit
}

/// The paper's conservative fix-up: give back `give_back` of the upgrade-
/// rate gains to account for new SSDs offsetting shrunk capacity and the
/// baseline's own 1–3% AFR replacements (§4.1).
pub fn fixup_upgrade_rate(ru: f64, give_back: f64) -> f64 {
    ru + give_back * (1.0 - ru)
}

/// One Fig. 4 scenario row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CarbonScenario {
    /// Scenario label (e.g. "ShrinkS / current grid").
    pub label: String,
    /// CO2e savings fraction vs baseline.
    pub savings: f64,
}

/// The four Fig. 4 configurations: {ShrinkS, RegenS} × {current grid,
/// renewables}.
pub fn fig4_scenarios() -> Vec<CarbonScenario> {
    let shrink = CarbonParams::shrink();
    let regen = CarbonParams::regen();
    vec![
        CarbonScenario {
            label: "ShrinkS / current grid".into(),
            savings: shrink.savings(),
        },
        CarbonScenario {
            label: "RegenS / current grid".into(),
            savings: regen.savings(),
        },
        CarbonScenario {
            label: "ShrinkS / renewables".into(),
            savings: shrink.savings_renewable(),
        },
        CarbonScenario {
            label: "RegenS / renewables".into(),
            savings: regen.savings_renewable(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upgrade_rates_match_paper() {
        // §4.1: Ru = 1/1.2 = 0.83 and 1/1.5 = 0.66; fixed up to 0.9 / 0.8.
        assert!((upgrade_rate_for_lifetime(1.2) - 0.833).abs() < 0.001);
        assert!((upgrade_rate_for_lifetime(1.5) - 0.667).abs() < 0.001);
        assert!((CarbonParams::shrink().upgrade_rate - 0.9).abs() < 0.01);
        assert!((CarbonParams::regen().upgrade_rate - 0.8).abs() < 0.01);
    }

    #[test]
    fn current_grid_savings_in_paper_band() {
        // "Salamander achieves 3–8% CO2e savings in current designs."
        let lo = CarbonParams::shrink().savings();
        let hi = CarbonParams::regen().savings();
        assert!((0.02..=0.045).contains(&lo), "ShrinkS savings {lo}");
        assert!((0.06..=0.10).contains(&hi), "RegenS savings {hi}");
        assert!(hi > lo);
    }

    #[test]
    fn renewable_savings_in_paper_band() {
        // "these gains increase to 11–20%."
        let lo = CarbonParams::shrink().savings_renewable();
        let hi = CarbonParams::regen().savings_renewable();
        assert!((0.08..=0.13).contains(&lo), "ShrinkS renewable {lo}");
        assert!((0.17..=0.22).contains(&hi), "RegenS renewable {hi}");
    }

    #[test]
    fn fig4_has_four_increasing_groups() {
        let rows = fig4_scenarios();
        assert_eq!(rows.len(), 4);
        // Renewables always beat the current grid for the same mode.
        assert!(rows[2].savings > rows[0].savings);
        assert!(rows[3].savings > rows[1].savings);
    }

    #[test]
    fn longer_lifetime_monotonically_helps() {
        let mut prev = f64::NEG_INFINITY;
        for benefit in [1.0, 1.2, 1.5, 2.0, 3.0] {
            let p = CarbonParams {
                f_op: 0.46,
                power_effectiveness: 1.06,
                upgrade_rate: upgrade_rate_for_lifetime(benefit),
            };
            assert!(p.savings() > prev);
            prev = p.savings();
        }
    }

    #[test]
    fn no_lifetime_gain_costs_the_power_penalty() {
        // benefit = 1 ⇒ Ru = 1 ⇒ relative footprint > 1 (PE penalty only).
        let p = CarbonParams {
            f_op: 0.46,
            power_effectiveness: 1.06,
            upgrade_rate: 1.0,
        };
        assert!(p.savings() < 0.0);
    }

    #[test]
    fn fixup_bounds() {
        assert_eq!(fixup_upgrade_rate(0.8, 0.0), 0.8);
        assert_eq!(fixup_upgrade_rate(0.8, 1.0), 1.0);
    }
}
