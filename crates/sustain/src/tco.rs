//! Eq. 4: the total-cost-of-ownership model.
//!
//! `TCO(S) = f_opex · TCO(B) + (1 − f_opex) · CRu_{S|B} · TCO(B)`
//!
//! with the composite cost-upgrade-rate
//!
//! `CRu = Ru + (1 − Ru) · CE_new · Cap_new`
//!
//! where `Cap_new` is the fraction of shrunk capacity backfilled with new
//! baseline SSDs and `CE_new` their cost effectiveness relative to today's
//! drives ($/TB improves ~4× per five years, so `CE = 0.25` for drives
//! bought when shrinking starts).

use crate::carbon::upgrade_rate_for_lifetime;
use serde::{Deserialize, Serialize};

/// Parameters of the Eq. 4 TCO model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcoParams {
    /// Fraction of TCO that is operational expenditure. Seagate puts
    /// device acquisition at ~86% of datacenter-device TCO, so
    /// `f_opex = 0.14` (§4.4).
    pub f_opex: f64,
    /// SSD upgrade rate (the *raw* `1/lifetime-benefit`; §4.4 uses the
    /// unfixed rates since the capacity backfill is priced separately).
    pub upgrade_rate: f64,
    /// Cost effectiveness of the new baseline SSDs bought to backfill:
    /// 0.25 (4× $/TB improvement over five years).
    pub new_cost_effectiveness: f64,
    /// Fraction of capacity that must be backfilled: the paper derives an
    /// average shrunk capacity of 60% of baseline → `Cap_new = 0.4`.
    pub backfill_fraction: f64,
}

impl TcoParams {
    /// ShrinkS preset (§4.4): raw `Ru = 1/1.2`.
    pub fn shrink() -> Self {
        TcoParams {
            f_opex: 0.14,
            upgrade_rate: upgrade_rate_for_lifetime(1.2),
            new_cost_effectiveness: 0.25,
            backfill_fraction: 0.4,
        }
    }

    /// RegenS preset (§4.4): raw `Ru = 1/1.5`.
    pub fn regen() -> Self {
        TcoParams {
            f_opex: 0.14,
            upgrade_rate: upgrade_rate_for_lifetime(1.5),
            new_cost_effectiveness: 0.25,
            backfill_fraction: 0.4,
        }
    }

    /// The composite cost upgrade rate `CRu`.
    pub fn cost_upgrade_rate(&self) -> f64 {
        self.upgrade_rate
            + (1.0 - self.upgrade_rate) * self.new_cost_effectiveness * self.backfill_fraction
    }

    /// TCO relative to baseline (Eq. 4 divided by `TCO(B)`).
    pub fn relative_tco(&self) -> f64 {
        self.f_opex + (1.0 - self.f_opex) * self.cost_upgrade_rate()
    }

    /// Cost savings vs baseline.
    pub fn savings(&self) -> f64 {
        1.0 - self.relative_tco()
    }

    /// The same parameters with a different opex share (the paper's
    /// sensitivity check at `f_opex = 0.5`).
    pub fn with_opex(mut self, f_opex: f64) -> Self {
        self.f_opex = f_opex;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_savings_match_paper() {
        // "Salamander achieves 13% and 25% cost savings for ShrinkS and
        // RegenS accordingly."
        let shrink = TcoParams::shrink().savings();
        let regen = TcoParams::regen().savings();
        assert!(
            (0.11..=0.15).contains(&shrink),
            "ShrinkS TCO savings {shrink}"
        );
        assert!((0.22..=0.28).contains(&regen), "RegenS TCO savings {regen}");
    }

    #[test]
    fn opex_sensitivity_matches_paper() {
        // "if we assume half the cost is operational costs, Salamander
        // lowers costs by 6–14%."
        let shrink = TcoParams::shrink().with_opex(0.5).savings();
        let regen = TcoParams::regen().with_opex(0.5).savings();
        assert!(
            (0.05..=0.10).contains(&shrink),
            "ShrinkS at 50% opex {shrink}"
        );
        assert!((0.12..=0.17).contains(&regen), "RegenS at 50% opex {regen}");
    }

    #[test]
    fn cru_between_ru_and_one() {
        for p in [TcoParams::shrink(), TcoParams::regen()] {
            let cru = p.cost_upgrade_rate();
            assert!(cru > p.upgrade_rate, "backfill costs something");
            assert!(cru < 1.0, "but less than not extending at all");
        }
    }

    #[test]
    fn free_backfill_reduces_to_ru() {
        let p = TcoParams {
            new_cost_effectiveness: 0.0,
            ..TcoParams::shrink()
        };
        assert_eq!(p.cost_upgrade_rate(), p.upgrade_rate);
    }

    #[test]
    fn pure_capex_is_cru() {
        let p = TcoParams::shrink().with_opex(0.0);
        assert!((p.relative_tco() - p.cost_upgrade_rate()).abs() < 1e-12);
    }

    #[test]
    fn higher_opex_share_shrinks_savings() {
        let mut prev = f64::INFINITY;
        for f in [0.0, 0.14, 0.3, 0.5, 0.9] {
            let s = TcoParams::regen().with_opex(f).savings();
            assert!(s < prev);
            prev = s;
        }
    }
}
