//! Sustainability and cost models for the Salamander reproduction.
//!
//! §4.1 and §4.4 of the paper quantify Salamander's fleet-level impact
//! with two first-order parametric models:
//!
//! - [`carbon`] — Eq. 3: the carbon footprint of a Salamander deployment
//!   relative to baseline, split into operational (scaled by power
//!   effectiveness) and embodied (scaled by the SSD upgrade rate) parts.
//!   Regenerates Fig. 4 and the headline "3–8% CO2e savings, 11–20% under
//!   renewables".
//! - [`tco`] — Eq. 4: total cost of ownership relative to baseline, with
//!   the composite cost-upgrade-rate `CRu` that accounts for buying new
//!   baseline SSDs to backfill capacity lost to shrinking. Regenerates the
//!   "13% / 25% cost savings" numbers and the f_opex sensitivity.
//!
//! All constants are the paper's, cited at their definition sites, and are
//! plain struct fields so the bench harnesses can sweep them.

pub mod carbon;
pub mod tco;

pub use carbon::CarbonParams;
pub use tco::TcoParams;
