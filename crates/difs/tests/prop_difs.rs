//! Property-based tests for the diFS: random create/fail/add sequences
//! must preserve replication invariants and never lose a chunk that
//! always had a surviving replica.

use proptest::prelude::*;
use salamander_difs::cluster::Cluster;
use salamander_difs::store::ChunkStore;
use salamander_difs::types::{DifsConfig, UnitId};

#[derive(Debug, Clone)]
enum Action {
    Create,
    FailUnit(u8),
    AddUnit(u8),
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        4 => Just(Action::Create),
        2 => any::<u8>().prop_map(Action::FailUnit),
        1 => any::<u8>().prop_map(Action::AddUnit),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_lifecycle_holds_invariants(
        actions in proptest::collection::vec(action_strategy(), 1..120),
        replication in 2u32..4,
    ) {
        let mut cluster = Cluster::new();
        let mut nodes = Vec::new();
        for _ in 0..5 {
            let n = cluster.add_node();
            let d = cluster.add_device(n);
            cluster.add_unit(d, 6);
            nodes.push((n, d));
        }
        let mut store = ChunkStore::new(DifsConfig {
            replication,
            chunk_bytes: 1 << 20,
            recovery_chunks_per_tick: None,
        });
        let mut failed: Vec<UnitId> = Vec::new();
        for a in &actions {
            match a {
                Action::Create => {
                    // May legitimately fail on capacity; both outcomes fine.
                    let _ = store.create_chunk(&mut cluster);
                }
                Action::FailUnit(pick) => {
                    let alive: Vec<UnitId> =
                        cluster.alive_units().map(|(id, _)| id).collect();
                    if alive.is_empty() {
                        continue;
                    }
                    let victim = alive[*pick as usize % alive.len()];
                    store.fail_unit(&mut cluster, victim);
                    failed.push(victim);
                }
                Action::AddUnit(pick) => {
                    let (_, d) = nodes[*pick as usize % nodes.len()];
                    cluster.add_unit(d, 6);
                    store.retry_pending(&mut cluster);
                }
            }
            store
                .check_invariants(&cluster)
                .map_err(TestCaseError::fail)?;
        }
        // Every surviving chunk references only alive units, and the
        // recovery accounting is internally consistent.
        let m = store.metrics();
        prop_assert_eq!(
            m.recovery_bytes,
            m.re_replications * store.config().chunk_bytes
        );
    }

    /// A chunk is only ever lost if at some instant all of its replicas
    /// had failed — with replication R, fewer than R failures can never
    /// lose data.
    #[test]
    fn fewer_failures_than_replicas_never_lose_data(
        kill in proptest::collection::vec(any::<u8>(), 1..2),
        n_chunks in 1u64..10,
    ) {
        let mut cluster = Cluster::new();
        for _ in 0..6 {
            let n = cluster.add_node();
            let d = cluster.add_device(n);
            cluster.add_unit(d, 8);
        }
        let mut store = ChunkStore::new(DifsConfig::default()); // R = 3
        for _ in 0..n_chunks {
            store.create_chunk(&mut cluster).unwrap();
        }
        // Fail at most 2 units (< R = 3), sequentially with recovery.
        for k in &kill {
            let alive: Vec<UnitId> = cluster.alive_units().map(|(id, _)| id).collect();
            if alive.is_empty() { break; }
            store.fail_unit(&mut cluster, alive[*k as usize % alive.len()]);
        }
        prop_assert_eq!(store.metrics().lost_chunks, 0);
        prop_assert_eq!(store.chunk_count(), n_chunks);
    }
}

mod namespace_props {
    use proptest::prelude::*;
    use salamander_difs::cluster::Cluster;
    use salamander_difs::namespace::{Namespace, NamespaceError};
    use salamander_difs::store::ChunkStore;
    use salamander_difs::types::DifsConfig;
    use std::collections::HashMap;

    #[derive(Debug, Clone)]
    enum FsOp {
        Create { name: u8, mb: u8 },
        Delete { name: u8 },
        Rename { from: u8, to: u8 },
    }

    fn fs_op() -> impl Strategy<Value = FsOp> {
        prop_oneof![
            3 => (any::<u8>(), 1u8..8).prop_map(|(name, mb)| FsOp::Create { name, mb }),
            1 => any::<u8>().prop_map(|name| FsOp::Delete { name }),
            1 => (any::<u8>(), any::<u8>()).prop_map(|(from, to)| FsOp::Rename { from, to }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Random create/delete/rename sequences keep the namespace, the
        /// chunk store, and the cluster's used counters consistent with a
        /// shadow model.
        #[test]
        fn namespace_matches_shadow_model(ops in proptest::collection::vec(fs_op(), 1..60)) {
            let mut cluster = Cluster::new();
            for _ in 0..6 {
                let n = cluster.add_node();
                let d = cluster.add_device(n);
                cluster.add_unit(d, 24);
            }
            let mut store = ChunkStore::new(DifsConfig::default());
            let mut ns = Namespace::new();
            // Shadow: path -> size in MB.
            let mut shadow: HashMap<String, u64> = HashMap::new();
            let mb = 1u64 << 20;
            for op in &ops {
                match op {
                    FsOp::Create { name, mb: size } => {
                        let path = format!("/f{}", name % 16);
                        let r = ns.create(&mut store, &mut cluster, &path, *size as u64 * mb);
                        match r {
                            Ok(()) => {
                                prop_assert!(!shadow.contains_key(&path));
                                shadow.insert(path, *size as u64 * mb);
                            }
                            Err(NamespaceError::AlreadyExists) => {
                                prop_assert!(shadow.contains_key(&path));
                            }
                            Err(NamespaceError::Store(_)) => {
                                // Capacity exhaustion: rollback must leave
                                // the namespace unchanged.
                                prop_assert!(!ns.list("/").contains(&path.as_str()));
                            }
                            Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                        }
                    }
                    FsOp::Delete { name } => {
                        let path = format!("/f{}", name % 16);
                        let r = ns.delete(&mut store, &mut cluster, &path);
                        prop_assert_eq!(r.is_ok(), shadow.remove(&path).is_some());
                    }
                    FsOp::Rename { from, to } => {
                        let from = format!("/f{}", from % 16);
                        let to = format!("/f{}", to % 16);
                        let r = ns.rename(&from, &to);
                        let expect_ok = shadow.contains_key(&from)
                            && !shadow.contains_key(&to)
                            && from != to;
                        prop_assert_eq!(r.is_ok(), expect_ok, "rename {} -> {}", from, to);
                        if expect_ok {
                            let size = shadow.remove(&from).unwrap();
                            shadow.insert(to, size);
                        }
                    }
                }
                store.check_invariants(&cluster).map_err(TestCaseError::fail)?;
            }
            // Final agreement.
            prop_assert_eq!(ns.file_count(), shadow.len());
            prop_assert_eq!(ns.total_bytes(), shadow.values().sum::<u64>());
            // Used chunks = Σ ceil(size/chunk) × R.
            let chunk = store.config().chunk_bytes;
            let expect_used: u64 = shadow
                .values()
                .map(|s| s.div_ceil(chunk).max(1) * 3)
                .sum();
            prop_assert_eq!(cluster.alive_used(), expect_used);
        }
    }
}
