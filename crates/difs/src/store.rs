//! The replicated chunk store: creation, failure handling, re-replication,
//! and recovery-traffic accounting (§4.3 of the paper).

use crate::cluster::Cluster;
use crate::placement::choose_targets;
use crate::types::{ChunkId, DifsConfig, DifsError, UnitId};
use salamander_obs::cluster::{exposure_bucket, fullness_bucket};
use salamander_obs::{ClusterRollup, Obs, SimTime, TraceEvent, EXPOSURE_BUCKETS};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// Recovery and durability metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreMetrics {
    /// Bytes re-replicated after failures (the paper's recovery traffic).
    pub recovery_bytes: u64,
    /// Individual replica re-creations.
    pub re_replications: u64,
    /// Chunks currently below the replication factor.
    pub under_replicated: u64,
    /// Chunks whose last replica failed before recovery (data loss).
    pub lost_chunks: u64,
    /// Bytes moved by proactive drains (migration, not failure recovery).
    pub migration_bytes: u64,
    /// Σ over ticks of the under-replicated chunk count: the exposure
    /// integral (chunk-ticks spent below full replication).
    pub exposure_chunk_ticks: u64,
    /// Peak simultaneous under-replication.
    pub max_under_replicated: u64,
}

/// The chunk store. Owns chunk → replica mappings; topology lives in
/// [`Cluster`].
#[derive(Debug, Clone)]
pub struct ChunkStore {
    cfg: DifsConfig,
    next_chunk: u64,
    chunks: BTreeMap<ChunkId, Vec<UnitId>>,
    /// Chunks needing more replicas (retried when capacity appears).
    /// Ordered so retries repair in chunk order — [`Self::retry_pending`]
    /// iterates it, and the repair order is trace-visible (DESIGN.md §9).
    pending: BTreeSet<ChunkId>,
    /// FIFO repair queue when recovery bandwidth is limited.
    repair_queue: std::collections::VecDeque<ChunkId>,
    /// Tick (`now.day`) each under-replicated chunk became exposed —
    /// the open replication-exposure windows (DESIGN.md §16).
    exposed_since: BTreeMap<ChunkId, u32>,
    /// Cumulative closed exposure windows, log2-bucketed by dwell ticks.
    exposure_hist: Vec<u64>,
    /// Cumulative closed exposure windows (Σ of `exposure_hist`).
    exposure_windows: u64,
    metrics: StoreMetrics,
    /// Observability handles (DESIGN.md §9); disabled by default.
    obs: Obs,
    /// Simulated clock for trace stamps, set by the driving harness.
    now: SimTime,
}

impl ChunkStore {
    /// An empty store.
    pub fn new(cfg: DifsConfig) -> Self {
        ChunkStore {
            cfg,
            next_chunk: 0,
            chunks: BTreeMap::new(),
            pending: BTreeSet::new(),
            repair_queue: std::collections::VecDeque::new(),
            exposed_since: BTreeMap::new(),
            exposure_hist: vec![0; EXPOSURE_BUCKETS],
            exposure_windows: 0,
            metrics: StoreMetrics::default(),
            obs: Obs::disabled(),
            now: SimTime::ZERO,
        }
    }

    /// Configuration.
    pub fn config(&self) -> &DifsConfig {
        &self.cfg
    }

    /// Attach (or detach, with a disabled bundle) observability handles.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Set the simulated clock used to stamp trace events. The store has
    /// no clock of its own; the driving harness advances it (e.g. once
    /// per churn round).
    pub fn set_time(&mut self, day: u32) {
        self.now = SimTime::new(day, 0);
    }

    /// Export recovery counters into the attached metrics registry.
    /// Delta-based and idempotent: safe to call repeatedly (e.g. per
    /// round and once at the end of a run).
    pub fn export_metrics(&self) {
        let metrics = &self.obs.metrics;
        if !metrics.is_enabled() {
            return;
        }
        let m = self.metrics();
        for (key, v) in [
            ("salamander_difs_re_replications_total", m.re_replications),
            ("salamander_difs_recovery_bytes_total", m.recovery_bytes),
            ("salamander_difs_lost_chunks_total", m.lost_chunks),
            ("salamander_difs_migration_bytes_total", m.migration_bytes),
            (
                "salamander_difs_exposure_chunk_ticks_total",
                m.exposure_chunk_ticks,
            ),
        ] {
            metrics.inc(key, v.saturating_sub(metrics.counter(key)));
        }
        metrics.set_gauge(
            "salamander_difs_under_replicated",
            m.under_replicated as f64,
        );
        metrics.set_gauge(
            "salamander_difs_max_under_replicated",
            m.max_under_replicated as f64,
        );
        // FIFO repair-queue depth: under throttled recovery this is
        // the backlog still waiting for bandwidth, visible between
        // ticks (always zero in unlimited mode).
        metrics.set_gauge(
            "salamander_difs_pending_repairs",
            self.repair_queue.len() as f64,
        );
    }

    /// Current metrics snapshot.
    pub fn metrics(&self) -> StoreMetrics {
        let mut m = self.metrics;
        m.under_replicated = self.pending.len() as u64;
        m
    }

    /// Depth of the FIFO repair queue (chunks waiting for recovery
    /// bandwidth; always zero in unlimited mode).
    pub fn pending_repairs(&self) -> u64 {
        self.repair_queue.len() as u64
    }

    /// Close the exposure window of `chunk` (repaired, lost, or
    /// deleted): its dwell in ticks joins the cumulative histogram.
    fn close_exposure(&mut self, chunk: ChunkId) {
        if let Some(since) = self.exposed_since.remove(&chunk) {
            let dwell = u64::from(self.now.day.saturating_sub(since));
            self.exposure_hist[exposure_bucket(dwell)] += 1;
            self.exposure_windows += 1;
        }
    }

    /// Snapshot the cluster durability rollup for the current tick
    /// (DESIGN.md §16): replication-state counts and the backlog from
    /// the chunk map, traffic from the cumulative counters, fullness
    /// from the alive units, exposure from the cumulative histogram,
    /// and `data_at_risk` = Σ over exposed chunks of chunk_bytes ×
    /// missing replicas × dwell ticks.
    pub fn cluster_rollup(&self, cluster: &Cluster) -> ClusterRollup {
        let mut r = ClusterRollup::empty(self.now.day);
        let replication = self.cfg.replication as usize;
        for reps in self.chunks.values() {
            match replication.saturating_sub(reps.len()) {
                0 => r.full += 1,
                1 => r.degraded += 1,
                _ => r.critical += 1,
            }
            let missing = replication.saturating_sub(reps.len()) as u64;
            if missing > 0 {
                r.backlog_chunks += 1;
                r.backlog_bytes = r
                    .backlog_bytes
                    .saturating_add(missing.saturating_mul(self.cfg.chunk_bytes));
            }
        }
        r.lost = self.metrics.lost_chunks;
        r.repair_bytes = self.metrics.recovery_bytes;
        r.drain_bytes = self.metrics.migration_bytes;
        for (chunk, since) in &self.exposed_since {
            let Some(reps) = self.chunks.get(chunk) else {
                continue;
            };
            let missing = replication.saturating_sub(reps.len()) as u64;
            let dwell = u64::from(self.now.day.saturating_sub(*since));
            r.data_at_risk = r.data_at_risk.saturating_add(
                self.cfg
                    .chunk_bytes
                    .saturating_mul(missing)
                    .saturating_mul(dwell),
            );
        }
        for (_, unit) in cluster.alive_units() {
            r.fullness[fullness_bucket(u64::from(unit.used), u64::from(unit.capacity))] += 1;
        }
        r.exposure.clone_from(&self.exposure_hist);
        r.exposure_windows = self.exposure_windows;
        r
    }

    /// Number of live chunks.
    pub fn chunk_count(&self) -> u64 {
        self.chunks.len() as u64
    }

    /// Replica set of a chunk.
    pub fn replicas(&self, chunk: ChunkId) -> Result<&[UnitId], DifsError> {
        self.chunks
            .get(&chunk)
            .map(|v| v.as_slice())
            .ok_or(DifsError::NoSuchChunk)
    }

    /// Create a fully replicated chunk.
    pub fn create_chunk(&mut self, cluster: &mut Cluster) -> Result<ChunkId, DifsError> {
        let targets = choose_targets(
            cluster,
            self.cfg.replication as usize,
            &HashSet::new(),
            &HashSet::new(),
        );
        if targets.len() < self.cfg.replication as usize {
            return Err(DifsError::InsufficientCapacity);
        }
        let id = ChunkId(self.next_chunk);
        self.next_chunk += 1;
        for &t in &targets {
            cluster.unit_mut(t).expect("placed on known unit").used += 1;
        }
        self.chunks.insert(id, targets);
        Ok(id)
    }

    /// Whether `chunk` still exists (not lost).
    pub fn contains(&self, chunk: ChunkId) -> bool {
        self.chunks.contains_key(&chunk)
    }

    /// Delete a chunk, releasing its replicas' space.
    pub fn delete_chunk(&mut self, cluster: &mut Cluster, chunk: ChunkId) -> Result<(), DifsError> {
        let reps = self.chunks.remove(&chunk).ok_or(DifsError::NoSuchChunk)?;
        self.pending.remove(&chunk);
        // Deletion ends any exposure: the data no longer exists to be
        // at risk, and the window closes at its dwell so far.
        self.close_exposure(chunk);
        for u in reps {
            if let Some(unit) = cluster.unit_mut(u) {
                unit.used = unit.used.saturating_sub(1);
            }
        }
        Ok(())
    }

    /// Handle a unit failure: drop its replicas and re-replicate each
    /// affected chunk elsewhere. Chunks that cannot be fixed now are left
    /// under-replicated and retried by [`Self::retry_pending`]; chunks
    /// whose last replica vanished are counted lost and removed.
    pub fn fail_unit(&mut self, cluster: &mut Cluster, unit: UnitId) {
        cluster.fail_unit(unit);
        let affected: Vec<ChunkId> = self
            .chunks
            .iter()
            .filter(|(_, reps)| reps.contains(&unit))
            .map(|(id, _)| *id)
            .collect();
        for chunk in affected {
            let reps = self.chunks.get_mut(&chunk).expect("chunk exists");
            reps.retain(|&u| u != unit);
            if reps.is_empty() {
                self.chunks.remove(&chunk);
                self.pending.remove(&chunk);
                // A loss closes the window too: the dwell it accrued
                // while under-replicated still describes how long the
                // system sat exposed before the last replica went.
                self.close_exposure(chunk);
                self.metrics.lost_chunks += 1;
                self.obs
                    .trace
                    .emit(self.now, TraceEvent::ChunkLost { chunk: chunk.0 });
                continue;
            }
            // The chunk is now under-replicated: open its exposure
            // window (kept open across repeated failures — the clock
            // starts at the first missing replica).
            self.exposed_since.entry(chunk).or_insert(self.now.day);
            if self.cfg.recovery_chunks_per_tick.is_some() {
                // Bandwidth-limited: queue for a later tick.
                if self.pending.insert(chunk) {
                    self.repair_queue.push_back(chunk);
                }
            } else {
                self.repair_chunk(cluster, chunk);
            }
        }
    }

    /// One recovery round under limited bandwidth: repair up to the
    /// configured number of queued chunks, then account the exposure
    /// integral. A no-op for unlimited-bandwidth stores (aside from
    /// exposure accounting, which is then always zero-valued unless
    /// placement is stuck).
    pub fn tick(&mut self, cluster: &mut Cluster) {
        // Account the exposure as it stood over the elapsed interval,
        // before this round's repairs run.
        let exposed = self.pending.len() as u64;
        self.metrics.exposure_chunk_ticks += exposed;
        self.metrics.max_under_replicated = self.metrics.max_under_replicated.max(exposed);
        if let Some(budget) = self.cfg.recovery_chunks_per_tick {
            let mut repaired = 0;
            while repaired < budget {
                let Some(chunk) = self.repair_queue.pop_front() else {
                    break;
                };
                if !self.pending.contains(&chunk) {
                    continue; // already repaired (e.g. by retry_pending)
                }
                self.repair_chunk(cluster, chunk);
                if self.pending.contains(&chunk) {
                    // Could not place yet; keep it queued for later.
                    self.repair_queue.push_back(chunk);
                    break;
                }
                repaired += 1;
            }
        }
    }

    /// Proactively move up to `budget` chunks off `unit` (graceful drain
    /// ahead of a predicted failure): each moved chunk gets a replica
    /// elsewhere first, then releases the at-risk one. Returns how many
    /// chunks were moved; chunks that cannot be placed stay put.
    pub fn drain_unit(&mut self, cluster: &mut Cluster, unit: UnitId, budget: u32) -> u32 {
        let on_unit: Vec<ChunkId> = self
            .chunks
            .iter()
            .filter(|(_, reps)| reps.contains(&unit))
            .map(|(id, _)| *id)
            .take(budget as usize)
            .collect();
        let mut moved = 0;
        for chunk in on_unit {
            let reps = self.chunks.get(&chunk).expect("chunk exists");
            let exclude_devices: HashSet<_> = reps
                .iter()
                .filter_map(|&u| cluster.unit(u).map(|x| x.device))
                .collect();
            let exclude_nodes: HashSet<_> = reps
                .iter()
                .filter_map(|&u| cluster.unit(u).map(|x| x.node))
                .collect();
            let targets = choose_targets(cluster, 1, &exclude_devices, &exclude_nodes);
            let Some(&target) = targets.first() else {
                continue;
            };
            cluster.unit_mut(target).expect("known unit").used += 1;
            if let Some(u) = cluster.unit_mut(unit) {
                u.used = u.used.saturating_sub(1);
            }
            let reps = self.chunks.get_mut(&chunk).expect("chunk exists");
            reps.retain(|&u| u != unit);
            reps.push(target);
            self.metrics.migration_bytes += self.cfg.chunk_bytes;
            moved += 1;
        }
        moved
    }

    /// Fail every unit of a device (baseline whole-SSD failure).
    pub fn fail_device(&mut self, cluster: &mut Cluster, device: crate::types::DeviceId) {
        let failed = cluster.fail_device(device);
        for u in failed {
            self.fail_unit(cluster, u);
        }
    }

    /// Retry under-replicated chunks (call after adding capacity).
    pub fn retry_pending(&mut self, cluster: &mut Cluster) {
        let pending: Vec<ChunkId> = self.pending.iter().copied().collect();
        for chunk in pending {
            self.repair_chunk(cluster, chunk);
        }
    }

    /// Bring one chunk back to full replication if placement allows.
    fn repair_chunk(&mut self, cluster: &mut Cluster, chunk: ChunkId) {
        let Some(reps) = self.chunks.get(&chunk) else {
            self.pending.remove(&chunk);
            self.exposed_since.remove(&chunk);
            return;
        };
        let missing = (self.cfg.replication as usize).saturating_sub(reps.len());
        if missing == 0 {
            self.pending.remove(&chunk);
            self.close_exposure(chunk);
            return;
        }
        let exclude_devices: HashSet<_> = reps
            .iter()
            .filter_map(|&u| cluster.unit(u).map(|x| x.device))
            .collect();
        let exclude_nodes: HashSet<_> = reps
            .iter()
            .filter_map(|&u| cluster.unit(u).map(|x| x.node))
            .collect();
        let targets = choose_targets(cluster, missing, &exclude_devices, &exclude_nodes);
        let placed = targets.len();
        for &t in &targets {
            cluster.unit_mut(t).expect("placed on known unit").used += 1;
            self.chunks.get_mut(&chunk).expect("chunk exists").push(t);
            self.metrics.re_replications += 1;
            self.metrics.recovery_bytes += self.cfg.chunk_bytes;
        }
        if placed > 0 {
            self.obs.trace.emit(
                self.now,
                TraceEvent::ChunkReReplicated {
                    chunk: chunk.0,
                    bytes: placed as u64 * self.cfg.chunk_bytes,
                },
            );
        }
        if placed < missing {
            self.pending.insert(chunk);
        } else {
            self.pending.remove(&chunk);
            self.close_exposure(chunk);
        }
    }

    /// Build the current tick's [`ClusterRollup`] and emit it on the
    /// trace. Called once per churn round by the driving harness.
    pub fn emit_cluster_rollup(&self, cluster: &Cluster) -> ClusterRollup {
        let r = self.cluster_rollup(cluster);
        self.obs
            .trace
            .emit(self.now, TraceEvent::ClusterRollup(r.clone()));
        r
    }

    /// Consistency check: replica sets are distinct-device, sized ≤ R,
    /// every replica is alive, and unit `used` counters match (tests only).
    pub fn check_invariants(&self, cluster: &Cluster) -> Result<(), String> {
        let mut used: BTreeMap<UnitId, u32> = BTreeMap::new();
        for (chunk, reps) in &self.chunks {
            if reps.len() > self.cfg.replication as usize {
                return Err(format!("{chunk:?} over-replicated"));
            }
            let mut devices = HashSet::new();
            for &u in reps {
                let unit = cluster.unit(u).ok_or(format!("{chunk:?} unknown unit"))?;
                if !unit.alive {
                    return Err(format!("{chunk:?} replica on dead unit {u:?}"));
                }
                if !devices.insert(unit.device) {
                    return Err(format!("{chunk:?} two replicas on one device"));
                }
                *used.entry(u).or_default() += 1;
            }
            if reps.len() < self.cfg.replication as usize && !self.pending.contains(chunk) {
                return Err(format!("{chunk:?} under-replicated but not pending"));
            }
        }
        for (id, unit) in cluster.units() {
            let expect = used.get(&id).copied().unwrap_or(0);
            if unit.alive && unit.used != expect {
                return Err(format!(
                    "{id:?} used={} but {} chunks reference it",
                    unit.used, expect
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DeviceId;

    /// `nodes × devices_per_node × units_per_device`, each unit `cap` chunks.
    fn build(nodes: u32, devs: u32, units: u32, cap: u32) -> (Cluster, Vec<UnitId>) {
        let mut c = Cluster::new();
        let mut ids = Vec::new();
        for _ in 0..nodes {
            let n = c.add_node();
            for _ in 0..devs {
                let d = c.add_device(n);
                for _ in 0..units {
                    ids.push(c.add_unit(d, cap));
                }
            }
        }
        (c, ids)
    }

    #[test]
    fn create_and_verify() {
        let (mut c, _) = build(4, 1, 2, 8);
        let mut s = ChunkStore::new(DifsConfig::default());
        for _ in 0..10 {
            s.create_chunk(&mut c).unwrap();
        }
        assert_eq!(s.chunk_count(), 10);
        s.check_invariants(&c).unwrap();
        assert_eq!(c.alive_used(), 30); // 10 chunks × 3 replicas
    }

    #[test]
    fn capacity_exhaustion_rejected() {
        let (mut c, _) = build(3, 1, 1, 2);
        let mut s = ChunkStore::new(DifsConfig::default());
        s.create_chunk(&mut c).unwrap();
        s.create_chunk(&mut c).unwrap();
        assert_eq!(s.create_chunk(&mut c), Err(DifsError::InsufficientCapacity));
    }

    #[test]
    fn failure_triggers_re_replication() {
        let (mut c, units) = build(4, 1, 1, 10);
        let mut s = ChunkStore::new(DifsConfig::default());
        for _ in 0..5 {
            s.create_chunk(&mut c).unwrap();
        }
        let victim = units[0];
        let victim_chunks = c.unit(victim).unwrap().used;
        s.fail_unit(&mut c, victim);
        s.check_invariants(&c).unwrap();
        let m = s.metrics();
        assert_eq!(m.re_replications, victim_chunks as u64);
        assert_eq!(
            m.recovery_bytes,
            victim_chunks as u64 * s.config().chunk_bytes
        );
        assert_eq!(m.under_replicated, 0);
        assert_eq!(m.lost_chunks, 0);
    }

    #[test]
    fn under_replication_then_retry() {
        // Exactly 3 devices: losing one leaves nowhere to re-replicate.
        let (mut c, units) = build(3, 1, 1, 10);
        let mut s = ChunkStore::new(DifsConfig::default());
        let chunk = s.create_chunk(&mut c).unwrap();
        s.fail_unit(&mut c, units[0]);
        assert_eq!(s.metrics().under_replicated, 1);
        assert_eq!(s.replicas(chunk).unwrap().len(), 2);
        s.check_invariants(&c).unwrap();
        // New capacity arrives (a regenerated minidisk, say).
        let n = c.add_node();
        let d = c.add_device(n);
        c.add_unit(d, 10);
        s.retry_pending(&mut c);
        assert_eq!(s.metrics().under_replicated, 0);
        assert_eq!(s.replicas(chunk).unwrap().len(), 3);
        s.check_invariants(&c).unwrap();
    }

    #[test]
    fn simultaneous_total_loss_counted() {
        let (mut c, units) = build(3, 1, 1, 10);
        let mut s = ChunkStore::new(DifsConfig::default());
        let chunk = s.create_chunk(&mut c).unwrap();
        for &u in &units {
            s.fail_unit(&mut c, u);
        }
        assert_eq!(s.metrics().lost_chunks, 1);
        assert_eq!(s.replicas(chunk), Err(DifsError::NoSuchChunk));
        s.check_invariants(&c).unwrap();
    }

    #[test]
    fn device_failure_fails_all_its_units() {
        let (mut c, _) = build(4, 1, 4, 10);
        let mut s = ChunkStore::new(DifsConfig::default());
        for _ in 0..8 {
            s.create_chunk(&mut c).unwrap();
        }
        s.fail_device(&mut c, DeviceId(0));
        s.check_invariants(&c).unwrap();
        assert_eq!(c.alive_unit_count(), 12);
        // Everything that lived on device 0 was re-replicated.
        assert_eq!(s.metrics().under_replicated, 0);
    }

    #[test]
    fn bandwidth_limited_recovery_opens_exposure_window() {
        let (mut c, units) = build(6, 1, 1, 10);
        let mut s = ChunkStore::new(DifsConfig {
            replication: 3,
            chunk_bytes: 1 << 20,
            recovery_chunks_per_tick: Some(2),
        });
        for _ in 0..10 {
            s.create_chunk(&mut c).unwrap();
        }
        let victim = units[0];
        let affected = c.unit(victim).unwrap().used;
        assert!(
            affected > 2,
            "want a backlog bigger than the per-tick budget"
        );
        s.fail_unit(&mut c, victim);
        // Nothing repaired yet: the queue holds everything.
        assert_eq!(s.metrics().under_replicated, affected as u64);
        let mut ticks = 0;
        while s.metrics().under_replicated > 0 {
            s.tick(&mut c);
            ticks += 1;
            assert!(ticks < 100, "recovery must converge");
        }
        let m = s.metrics();
        assert!(ticks >= affected.div_ceil(2), "throttled to 2/tick");
        assert!(m.exposure_chunk_ticks > 0);
        assert_eq!(m.max_under_replicated, affected as u64);
        assert_eq!(m.re_replications, affected as u64);
        s.check_invariants(&c).unwrap();
    }

    #[test]
    fn synchronous_mode_has_no_exposure() {
        let (mut c, units) = build(6, 1, 1, 10);
        let mut s = ChunkStore::new(DifsConfig::default());
        for _ in 0..10 {
            s.create_chunk(&mut c).unwrap();
        }
        s.fail_unit(&mut c, units[0]);
        s.tick(&mut c);
        let m = s.metrics();
        assert_eq!(m.exposure_chunk_ticks, 0);
        assert_eq!(m.under_replicated, 0);
    }

    #[test]
    fn drain_unit_moves_chunks_without_exposure() {
        let (mut c, units) = build(6, 1, 1, 10);
        let mut s = ChunkStore::new(DifsConfig::default());
        for _ in 0..8 {
            s.create_chunk(&mut c).unwrap();
        }
        let victim = units[0];
        let on_victim = c.unit(victim).unwrap().used;
        assert!(on_victim > 0);
        let moved = s.drain_unit(&mut c, victim, 100);
        assert_eq!(moved, on_victim);
        assert_eq!(c.unit(victim).unwrap().used, 0);
        let m = s.metrics();
        assert_eq!(m.migration_bytes, on_victim as u64 * (1 << 20));
        assert_eq!(m.recovery_bytes, 0, "drain is migration, not recovery");
        // Failing the now-empty unit costs nothing.
        s.fail_unit(&mut c, victim);
        assert_eq!(s.metrics().re_replications, 0);
        s.check_invariants(&c).unwrap();
    }

    #[test]
    fn drain_respects_budget() {
        let (mut c, units) = build(6, 1, 1, 10);
        let mut s = ChunkStore::new(DifsConfig::default());
        for _ in 0..8 {
            s.create_chunk(&mut c).unwrap();
        }
        let victim = units[0];
        let before = c.unit(victim).unwrap().used;
        assert!(before >= 2);
        let moved = s.drain_unit(&mut c, victim, 1);
        assert_eq!(moved, 1);
        assert_eq!(c.unit(victim).unwrap().used, before - 1);
        s.check_invariants(&c).unwrap();
    }

    #[test]
    fn drain_then_fail_splits_bytes_without_gap_or_double_count() {
        // A unit fails mid-drain: chunks already moved were charged to
        // migration_bytes and cost nothing again; chunks still on the
        // unit are charged to recovery_bytes. Together they account
        // for every byte that was on the unit — exactly once.
        let (mut c, units) = build(6, 1, 1, 10);
        let mut s = ChunkStore::new(DifsConfig::default());
        for _ in 0..8 {
            s.create_chunk(&mut c).unwrap();
        }
        let victim = units[0];
        let on_victim = c.unit(victim).unwrap().used as u64;
        assert!(on_victim >= 3, "need a partial drain to be possible");
        let moved = s.drain_unit(&mut c, victim, 1) as u64;
        assert_eq!(moved, 1);
        s.fail_unit(&mut c, victim);
        s.check_invariants(&c).unwrap();
        let m = s.metrics();
        let chunk = s.config().chunk_bytes;
        assert_eq!(m.migration_bytes, moved * chunk, "drained portion");
        assert_eq!(
            m.recovery_bytes,
            (on_victim - moved) * chunk,
            "failed portion"
        );
        assert_eq!(
            m.migration_bytes + m.recovery_bytes,
            on_victim * chunk,
            "no gap, no double count"
        );
        assert_eq!(m.re_replications, on_victim - moved);
    }

    #[test]
    fn exposure_windows_measure_dwell_ticks() {
        let (mut c, units) = build(6, 1, 1, 10);
        let mut s = ChunkStore::new(DifsConfig {
            replication: 3,
            chunk_bytes: 1 << 20,
            recovery_chunks_per_tick: Some(1),
        });
        for _ in 0..6 {
            s.create_chunk(&mut c).unwrap();
        }
        s.set_time(0);
        let victim = units[0];
        let affected = c.unit(victim).unwrap().used as u64;
        assert!(affected >= 2);
        s.fail_unit(&mut c, victim);
        let mut day = 0;
        while s.metrics().under_replicated > 0 {
            day += 1;
            s.set_time(day);
            s.tick(&mut c);
            assert!(day < 100, "recovery must converge");
        }
        let r = s.cluster_rollup(&c);
        assert_eq!(r.exposure_windows, affected, "every window closed");
        assert_eq!(r.exposure.iter().sum::<u64>(), affected);
        // One chunk per tick: the last repair waited `affected` ticks,
        // so the top percentile clears one tick for sure.
        assert!(r.series_value("exposure_p99").unwrap() > 1);
        assert_eq!(r.backlog_chunks, 0);
        assert_eq!(r.data_at_risk, 0, "nothing exposed once repaired");
    }

    #[test]
    fn rollup_snapshot_classifies_states_and_prices_risk() {
        // Exactly 3 devices: a failure leaves nowhere to repair, so the
        // exposed state (and its dwell pricing) is observable.
        let (mut c, units) = build(3, 1, 1, 10);
        let mut s = ChunkStore::new(DifsConfig::default());
        for _ in 0..4 {
            s.create_chunk(&mut c).unwrap();
        }
        s.set_time(0);
        s.fail_unit(&mut c, units[0]);
        let exposed = s.metrics().under_replicated;
        assert_eq!(exposed, 4, "every chunk had a replica on the unit");
        s.set_time(3);
        let r = s.cluster_rollup(&c);
        assert_eq!(r.day, 3);
        assert_eq!(r.full, 0);
        assert_eq!(r.degraded, 4);
        assert_eq!(r.critical, 0);
        assert_eq!(r.lost, 0);
        assert_eq!(r.backlog_chunks, 4);
        let chunk = s.config().chunk_bytes;
        assert_eq!(r.backlog_bytes, 4 * chunk);
        // 4 chunks × 1 missing replica × 3 ticks of dwell.
        assert_eq!(r.data_at_risk, 4 * chunk * 3);
        assert_eq!(r.exposure_windows, 0, "windows still open");
        // Two alive units of 3 remain, and they appear in fullness.
        assert_eq!(r.fullness.iter().sum::<u32>(), 2);
        // Capacity arrives; repairs close the windows at dwell 3→4.
        let n = c.add_node();
        let d = c.add_device(n);
        c.add_unit(d, 10);
        s.set_time(4);
        s.retry_pending(&mut c);
        let r = s.cluster_rollup(&c);
        assert_eq!(r.full, 4);
        assert_eq!(r.degraded, 0);
        assert_eq!(r.exposure_windows, 4);
        assert_eq!(r.data_at_risk, 0);
        s.check_invariants(&c).unwrap();
    }

    #[test]
    fn lost_chunks_close_their_windows() {
        let (mut c, units) = build(3, 1, 1, 10);
        let mut s = ChunkStore::new(DifsConfig::default());
        s.create_chunk(&mut c).unwrap();
        s.set_time(0);
        s.fail_unit(&mut c, units[0]);
        s.set_time(5);
        s.fail_unit(&mut c, units[1]);
        s.fail_unit(&mut c, units[2]);
        let r = s.cluster_rollup(&c);
        assert_eq!(r.lost, 1);
        assert_eq!(r.exposure_windows, 1, "loss closed the window");
        assert_eq!(r.data_at_risk, 0, "lost data is no longer at risk");
        assert_eq!(r.backlog_chunks, 0);
    }

    #[test]
    fn pending_repairs_gauge_tracks_queue_depth() {
        let (mut c, units) = build(6, 1, 1, 10);
        let mut s = ChunkStore::new(DifsConfig {
            replication: 3,
            chunk_bytes: 1 << 20,
            recovery_chunks_per_tick: Some(2),
        });
        for _ in 0..10 {
            s.create_chunk(&mut c).unwrap();
        }
        let victim = units[0];
        let affected = c.unit(victim).unwrap().used as u64;
        s.fail_unit(&mut c, victim);
        assert_eq!(s.pending_repairs(), affected);
        s.tick(&mut c);
        assert_eq!(s.pending_repairs(), affected - 2);
        assert_eq!(s.metrics().under_replicated, affected - 2);
    }

    #[test]
    fn recovery_traffic_proportional_to_failed_valid_data() {
        // The §4.3 claim: failing N small units costs the same traffic as
        // one big unit holding the same data.
        let run = |units_per_device: u32, cap: u32| {
            let (mut c, _) = build(4, 1, units_per_device, cap);
            let mut s = ChunkStore::new(DifsConfig::default());
            for _ in 0..10 {
                s.create_chunk(&mut c).unwrap();
            }
            let on_device: u64 = c
                .units()
                .filter(|(_, u)| u.device == DeviceId(0))
                .map(|(_, u)| u.used as u64)
                .sum();
            s.fail_device(&mut c, DeviceId(0));
            (
                on_device,
                s.metrics().recovery_bytes,
                s.config().chunk_bytes,
            )
        };
        // Whether the device exposes 1 unit of 16 chunks or 16 units of 1
        // chunk, recovery traffic equals exactly the valid data that was on
        // the failed device.
        for (units, cap) in [(1u32, 16u32), (16, 1)] {
            let (valid, bytes, chunk) = run(units, cap);
            assert!(valid > 0);
            assert_eq!(bytes, valid * chunk, "units={units}");
        }
    }
}
