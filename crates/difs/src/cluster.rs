//! Cluster topology: nodes, devices, and storage units.
//!
//! Units carry a capacity in chunks and a used count maintained by the
//! chunk store. Unit lifecycle mirrors Salamander device events: a
//! regenerated minidisk becomes a fresh unit; a decommissioned one fails.

use crate::types::{DeviceId, NodeId, UnitId};
use std::collections::BTreeMap;

/// One storage unit's state.
#[derive(Debug, Clone)]
pub struct Unit {
    /// Owning node.
    pub node: NodeId,
    /// Owning physical device.
    pub device: DeviceId,
    /// Capacity in chunks.
    pub capacity: u32,
    /// Chunks currently placed here.
    pub used: u32,
    /// Whether the unit is alive.
    pub alive: bool,
    /// Cordoned: alive and readable, but excluded from new placements
    /// (HDFS-style decommissioning state, used by proactive draining).
    pub cordoned: bool,
}

impl Unit {
    /// Free chunk slots.
    pub fn free(&self) -> u32 {
        self.capacity.saturating_sub(self.used)
    }
}

/// Cluster topology registry.
#[derive(Debug, Clone, Default)]
pub struct Cluster {
    next_node: u32,
    next_device: u32,
    next_unit: u64,
    devices: BTreeMap<DeviceId, NodeId>,
    units: BTreeMap<UnitId, Unit>,
}

impl Cluster {
    /// An empty cluster.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        id
    }

    /// Attach a device to `node`.
    pub fn add_device(&mut self, node: NodeId) -> DeviceId {
        let id = DeviceId(self.next_device);
        self.next_device += 1;
        self.devices.insert(id, node);
        id
    }

    /// Expose a unit of `capacity` chunks on `device`.
    ///
    /// # Panics
    ///
    /// Panics if the device was never added.
    pub fn add_unit(&mut self, device: DeviceId, capacity: u32) -> UnitId {
        let node = *self.devices.get(&device).expect("unknown device");
        let id = UnitId(self.next_unit);
        self.next_unit += 1;
        self.units.insert(
            id,
            Unit {
                node,
                device,
                capacity,
                used: 0,
                alive: true,
                cordoned: false,
            },
        );
        id
    }

    /// Cordon a unit: it stays alive (readable, its replicas count) but
    /// receives no new placements. Idempotent; unknown units are ignored.
    pub fn cordon_unit(&mut self, unit: UnitId) {
        if let Some(u) = self.units.get_mut(&unit) {
            u.cordoned = true;
        }
    }

    /// Mark a unit failed. Idempotent; unknown units are ignored.
    pub fn fail_unit(&mut self, unit: UnitId) {
        if let Some(u) = self.units.get_mut(&unit) {
            u.alive = false;
        }
    }

    /// Fail every unit on `device` (whole-SSD failure). Returns the failed
    /// unit ids.
    pub fn fail_device(&mut self, device: DeviceId) -> Vec<UnitId> {
        let mut failed = Vec::new();
        for (id, u) in self.units.iter_mut() {
            if u.device == device && u.alive {
                u.alive = false;
                failed.push(*id);
            }
        }
        failed
    }

    /// Unit accessor.
    pub fn unit(&self, id: UnitId) -> Option<&Unit> {
        self.units.get(&id)
    }

    /// Internal mutable accessor for the chunk store.
    pub(crate) fn unit_mut(&mut self, id: UnitId) -> Option<&mut Unit> {
        self.units.get_mut(&id)
    }

    /// All units (alive and failed), ascending by id.
    pub fn units(&self) -> impl Iterator<Item = (UnitId, &Unit)> {
        self.units.iter().map(|(id, u)| (*id, u))
    }

    /// Alive units only.
    pub fn alive_units(&self) -> impl Iterator<Item = (UnitId, &Unit)> {
        self.units().filter(|(_, u)| u.alive)
    }

    /// Total alive capacity in chunks.
    pub fn alive_capacity(&self) -> u64 {
        self.alive_units().map(|(_, u)| u.capacity as u64).sum()
    }

    /// Total used chunks on alive units.
    pub fn alive_used(&self) -> u64 {
        self.alive_units().map(|(_, u)| u.used as u64).sum()
    }

    /// Number of alive units.
    pub fn alive_unit_count(&self) -> u32 {
        self.alive_units().count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Cluster, Vec<UnitId>) {
        let mut c = Cluster::new();
        let mut units = Vec::new();
        for _ in 0..3 {
            let n = c.add_node();
            let d = c.add_device(n);
            units.push(c.add_unit(d, 5));
        }
        (c, units)
    }

    #[test]
    fn topology_registration() {
        let (c, units) = tiny();
        assert_eq!(c.alive_unit_count(), 3);
        assert_eq!(c.alive_capacity(), 15);
        let u = c.unit(units[0]).unwrap();
        assert_eq!(u.node, NodeId(0));
        assert_eq!(u.device, DeviceId(0));
        assert_eq!(u.free(), 5);
    }

    #[test]
    fn fail_unit_and_device() {
        let (mut c, units) = tiny();
        c.fail_unit(units[0]);
        assert!(!c.unit(units[0]).unwrap().alive);
        assert_eq!(c.alive_unit_count(), 2);
        // fail_device fails all that device's remaining units.
        let n = c.add_node();
        let d = c.add_device(n);
        let a = c.add_unit(d, 1);
        let b = c.add_unit(d, 1);
        let failed = c.fail_device(d);
        assert_eq!(failed, vec![a, b]);
        assert_eq!(c.fail_device(d), vec![], "idempotent");
    }

    #[test]
    #[should_panic(expected = "unknown device")]
    fn unit_requires_device() {
        let mut c = Cluster::new();
        c.add_unit(DeviceId(9), 1);
    }
}
