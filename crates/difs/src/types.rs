//! Identifiers, configuration, and errors for the diFS simulator.

use serde::{Deserialize, Serialize};

/// A cluster node (server).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// A physical storage device (one SSD) attached to a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeviceId(pub u32);

/// A storage unit: the diFS failure domain. One minidisk for Salamander
/// devices, or a whole SSD for the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UnitId(pub u64);

/// A replicated diFS chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChunkId(pub u64);

/// Store configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DifsConfig {
    /// Replication factor (3 is the HDFS-style default).
    pub replication: u32,
    /// Chunk size in bytes (defaults to the paper's 1 MiB minidisk, so one
    /// chunk occupies one minidisk-unit exactly).
    pub chunk_bytes: u64,
    /// Re-replication bandwidth: chunks repaired per [`tick`] call.
    /// `None` repairs synchronously inside `fail_unit` (infinite
    /// bandwidth). Real systems throttle recovery, which opens an
    /// under-replication exposure window — the quantity the proactive
    /// policies reduce.
    ///
    /// [`tick`]: crate::store::ChunkStore::tick
    pub recovery_chunks_per_tick: Option<u32>,
}

impl Default for DifsConfig {
    fn default() -> Self {
        DifsConfig {
            replication: 3,
            chunk_bytes: 1024 * 1024,
            recovery_chunks_per_tick: None,
        }
    }
}

/// Errors from store operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DifsError {
    /// Not enough independent failure domains with free capacity to place
    /// all replicas.
    InsufficientCapacity,
    /// Unknown chunk.
    NoSuchChunk,
    /// Unknown unit.
    NoSuchUnit,
}

impl std::fmt::Display for DifsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DifsError::InsufficientCapacity => "insufficient placement capacity",
            DifsError::NoSuchChunk => "no such chunk",
            DifsError::NoSuchUnit => "no such unit",
        };
        f.write_str(s)
    }
}

impl std::error::Error for DifsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config() {
        let c = DifsConfig::default();
        assert_eq!(c.replication, 3);
        assert_eq!(c.chunk_bytes, 1 << 20);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            DifsError::InsufficientCapacity.to_string(),
            "insufficient placement capacity"
        );
    }
}
