//! The file namespace: an HDFS-style "namenode" over the chunk store.
//!
//! The paper's diFS "logically partition[s]" data "into equally-sized
//! access units (e.g., an HDFS 128 MB block) which are stored
//! redundantly" (§3). [`Namespace`] provides the file abstraction on top:
//! paths map to ordered chunk lists, byte offsets map to chunks, and file
//! health is derived from chunk survival — so device shrinkage surfaces
//! to applications as (recoverable or, at end of life, corrupt) files
//! rather than as raw chunk ids.

use crate::cluster::Cluster;
use crate::store::ChunkStore;
use crate::types::{ChunkId, DifsError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Metadata of one file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileMeta {
    /// Logical size in bytes.
    pub size_bytes: u64,
    /// Backing chunks, in offset order.
    pub chunks: Vec<ChunkId>,
}

/// File health as judged against the chunk store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FileHealth {
    /// All chunks fully replicated.
    Healthy,
    /// Some chunks below the replication factor (recovery in progress).
    Degraded,
    /// At least one chunk was lost: unreadable.
    Corrupt,
}

/// The namespace. Chunk placement and recovery stay in [`ChunkStore`];
/// this layer owns only path → chunk mappings.
#[derive(Debug, Clone, Default)]
pub struct Namespace {
    files: BTreeMap<String, FileMeta>,
}

impl Namespace {
    /// An empty namespace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Total logical bytes across all files.
    pub fn total_bytes(&self) -> u64 {
        self.files.values().map(|f| f.size_bytes).sum()
    }

    /// Create a file of `size_bytes`, allocating replicated chunks.
    /// Allocation is all-or-nothing: on capacity exhaustion every chunk
    /// allocated so far is released and an error returned.
    pub fn create(
        &mut self,
        store: &mut ChunkStore,
        cluster: &mut Cluster,
        path: &str,
        size_bytes: u64,
    ) -> Result<(), NamespaceError> {
        if self.files.contains_key(path) {
            return Err(NamespaceError::AlreadyExists);
        }
        let chunk_bytes = store.config().chunk_bytes;
        let n = size_bytes.div_ceil(chunk_bytes).max(1);
        let mut chunks = Vec::with_capacity(n as usize);
        for _ in 0..n {
            match store.create_chunk(cluster) {
                Ok(c) => chunks.push(c),
                Err(e) => {
                    // Roll back the partial allocation.
                    for c in chunks {
                        let _ = store.delete_chunk(cluster, c);
                    }
                    return Err(NamespaceError::Store(e));
                }
            }
        }
        self.files
            .insert(path.to_string(), FileMeta { size_bytes, chunks });
        Ok(())
    }

    /// Delete a file, releasing its chunks (lost chunks are skipped).
    pub fn delete(
        &mut self,
        store: &mut ChunkStore,
        cluster: &mut Cluster,
        path: &str,
    ) -> Result<(), NamespaceError> {
        let meta = self.files.remove(path).ok_or(NamespaceError::NotFound)?;
        for c in meta.chunks {
            let _ = store.delete_chunk(cluster, c);
        }
        Ok(())
    }

    /// Rename a file.
    pub fn rename(&mut self, from: &str, to: &str) -> Result<(), NamespaceError> {
        if self.files.contains_key(to) {
            return Err(NamespaceError::AlreadyExists);
        }
        let meta = self.files.remove(from).ok_or(NamespaceError::NotFound)?;
        self.files.insert(to.to_string(), meta);
        Ok(())
    }

    /// File metadata.
    pub fn stat(&self, path: &str) -> Result<&FileMeta, NamespaceError> {
        self.files.get(path).ok_or(NamespaceError::NotFound)
    }

    /// Paths starting with `prefix`, in order.
    pub fn list(&self, prefix: &str) -> Vec<&str> {
        self.files
            .range(prefix.to_string()..)
            .take_while(|(p, _)| p.starts_with(prefix))
            .map(|(p, _)| p.as_str())
            .collect()
    }

    /// The chunk serving byte `offset` of `path`.
    pub fn chunk_at(
        &self,
        store: &ChunkStore,
        path: &str,
        offset: u64,
    ) -> Result<ChunkId, NamespaceError> {
        let meta = self.stat(path)?;
        if offset >= meta.size_bytes {
            return Err(NamespaceError::OffsetOutOfRange);
        }
        let idx = (offset / store.config().chunk_bytes) as usize;
        let chunk = meta.chunks[idx];
        if store.contains(chunk) {
            Ok(chunk)
        } else {
            Err(NamespaceError::ChunkLost)
        }
    }

    /// Health of one file against the store's current state.
    pub fn health(&self, store: &ChunkStore, path: &str) -> Result<FileHealth, NamespaceError> {
        let meta = self.stat(path)?;
        let r = store.config().replication as usize;
        let mut degraded = false;
        for &c in &meta.chunks {
            match store.replicas(c) {
                Err(_) => return Ok(FileHealth::Corrupt),
                Ok(reps) if reps.len() < r => degraded = true,
                Ok(_) => {}
            }
        }
        Ok(if degraded {
            FileHealth::Degraded
        } else {
            FileHealth::Healthy
        })
    }

    /// Paths of files that have lost at least one chunk.
    pub fn corrupt_files(&self, store: &ChunkStore) -> Vec<&str> {
        self.files
            .iter()
            .filter(|(_, m)| m.chunks.iter().any(|c| !store.contains(*c)))
            .map(|(p, _)| p.as_str())
            .collect()
    }
}

/// Namespace-level errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NamespaceError {
    /// Path already exists.
    AlreadyExists,
    /// Path does not exist.
    NotFound,
    /// Byte offset beyond the file size.
    OffsetOutOfRange,
    /// The chunk backing this region was lost.
    ChunkLost,
    /// Underlying store error (e.g. insufficient capacity).
    Store(DifsError),
}

impl std::fmt::Display for NamespaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NamespaceError::AlreadyExists => f.write_str("path already exists"),
            NamespaceError::NotFound => f.write_str("path not found"),
            NamespaceError::OffsetOutOfRange => f.write_str("offset out of range"),
            NamespaceError::ChunkLost => f.write_str("backing chunk lost"),
            NamespaceError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for NamespaceError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DifsConfig;

    fn setup(nodes: u32, cap: u32) -> (Cluster, ChunkStore, Namespace) {
        let mut cluster = Cluster::new();
        for _ in 0..nodes {
            let n = cluster.add_node();
            let d = cluster.add_device(n);
            cluster.add_unit(d, cap);
        }
        (
            cluster,
            ChunkStore::new(DifsConfig::default()),
            Namespace::new(),
        )
    }

    const MB: u64 = 1 << 20;

    #[test]
    fn create_stat_list_delete() {
        let (mut c, mut s, mut ns) = setup(4, 64);
        ns.create(&mut s, &mut c, "/data/a", 3 * MB).unwrap();
        ns.create(&mut s, &mut c, "/data/b", MB / 2).unwrap();
        ns.create(&mut s, &mut c, "/logs/x", 2 * MB).unwrap();
        assert_eq!(ns.file_count(), 3);
        assert_eq!(ns.stat("/data/a").unwrap().chunks.len(), 3);
        assert_eq!(
            ns.stat("/data/b").unwrap().chunks.len(),
            1,
            "sub-chunk file rounds up"
        );
        assert_eq!(ns.list("/data/"), vec!["/data/a", "/data/b"]);
        assert_eq!(ns.total_bytes(), 3 * MB + MB / 2 + 2 * MB);
        let used_before = c.alive_used();
        ns.delete(&mut s, &mut c, "/data/a").unwrap();
        assert_eq!(c.alive_used(), used_before - 3 * 3); // 3 chunks × R=3
        assert_eq!(ns.stat("/data/a"), Err(NamespaceError::NotFound));
        s.check_invariants(&c).unwrap();
    }

    #[test]
    fn duplicate_and_missing_paths() {
        let (mut c, mut s, mut ns) = setup(4, 16);
        ns.create(&mut s, &mut c, "/f", MB).unwrap();
        assert_eq!(
            ns.create(&mut s, &mut c, "/f", MB),
            Err(NamespaceError::AlreadyExists)
        );
        assert_eq!(
            ns.delete(&mut s, &mut c, "/nope"),
            Err(NamespaceError::NotFound)
        );
        ns.rename("/f", "/g").unwrap();
        assert!(ns.stat("/g").is_ok());
        assert_eq!(ns.rename("/nope", "/h"), Err(NamespaceError::NotFound));
    }

    #[test]
    fn allocation_rolls_back_on_capacity_exhaustion() {
        // 3 units × 2 chunks = 6 placements = 2 chunks of capacity at R=3.
        let (mut c, mut s, mut ns) = setup(3, 2);
        let used_before = c.alive_used();
        assert!(matches!(
            ns.create(&mut s, &mut c, "/big", 10 * MB),
            Err(NamespaceError::Store(DifsError::InsufficientCapacity))
        ));
        assert_eq!(c.alive_used(), used_before, "partial allocation released");
        assert_eq!(ns.file_count(), 0);
        // A file that fits still works.
        ns.create(&mut s, &mut c, "/small", 2 * MB).unwrap();
    }

    #[test]
    fn offset_to_chunk_mapping() {
        let (mut c, mut s, mut ns) = setup(4, 64);
        ns.create(&mut s, &mut c, "/f", 3 * MB).unwrap();
        let meta = ns.stat("/f").unwrap().clone();
        assert_eq!(ns.chunk_at(&s, "/f", 0).unwrap(), meta.chunks[0]);
        assert_eq!(ns.chunk_at(&s, "/f", MB).unwrap(), meta.chunks[1]);
        assert_eq!(ns.chunk_at(&s, "/f", 3 * MB - 1).unwrap(), meta.chunks[2]);
        assert_eq!(
            ns.chunk_at(&s, "/f", 3 * MB),
            Err(NamespaceError::OffsetOutOfRange)
        );
    }

    #[test]
    fn health_tracks_chunk_state() {
        let (mut c, mut s, mut ns) = setup(3, 16);
        ns.create(&mut s, &mut c, "/f", 2 * MB).unwrap();
        assert_eq!(ns.health(&s, "/f"), Ok(FileHealth::Healthy));
        // Fail one unit: with only 3 devices there is nowhere to repair,
        // so the file degrades.
        let unit = c.alive_units().next().map(|(id, _)| id).unwrap();
        s.fail_unit(&mut c, unit);
        assert_eq!(ns.health(&s, "/f"), Ok(FileHealth::Degraded));
        // Fail everything: the file is corrupt.
        let rest: Vec<_> = c.alive_units().map(|(id, _)| id).collect();
        for u in rest {
            s.fail_unit(&mut c, u);
        }
        assert_eq!(ns.health(&s, "/f"), Ok(FileHealth::Corrupt));
        assert_eq!(ns.corrupt_files(&s), vec!["/f"]);
        assert_eq!(ns.chunk_at(&s, "/f", 0), Err(NamespaceError::ChunkLost));
    }
}
