//! Distributed file system simulator for the Salamander reproduction.
//!
//! The paper's end-to-end argument is that a distributed storage system
//! already tolerates device failures through replication, so an SSD that
//! fails in *minidisk-sized* pieces lets the system recover small amounts
//! of data instead of whole drives (§1, §4.3). This crate provides that
//! substrate: a replicated chunk store over a cluster of nodes, devices,
//! and storage units (a unit is one minidisk, or a whole SSD for the
//! baseline), with:
//!
//! - failure-domain-aware placement (replicas never share a device and
//!   prefer distinct nodes) — [`placement`];
//! - failure handling with re-replication and recovery-traffic accounting,
//!   plus under-replication and data-loss tracking — [`store`];
//! - unit/node lifecycle (units appear when minidisks are created, vanish
//!   when they are decommissioned) — [`cluster`].
//!
//! # Examples
//!
//! ```
//! use salamander_difs::{cluster::Cluster, store::ChunkStore, types::DifsConfig};
//!
//! let mut cluster = Cluster::new();
//! for _ in 0..3 {
//!     let node = cluster.add_node();
//!     let device = cluster.add_device(node);
//!     cluster.add_unit(device, 10); // 10 chunks of capacity
//! }
//! let mut store = ChunkStore::new(DifsConfig::default());
//! let chunk = store.create_chunk(&mut cluster).unwrap();
//! assert_eq!(store.replicas(chunk).unwrap().len(), 3);
//! ```

pub mod cluster;
pub mod namespace;
pub mod placement;
pub mod store;
pub mod types;

pub use cluster::Cluster;
pub use namespace::Namespace;
pub use store::ChunkStore;
pub use types::{ChunkId, DeviceId, DifsConfig, DifsError, NodeId, UnitId};
