//! Replica placement.
//!
//! Replicas of a chunk must land on distinct *devices* (hard constraint —
//! two minidisks of one SSD fail together when the SSD dies) and prefer
//! distinct *nodes* (rack/host fault isolation, HDFS-style). Among eligible
//! units the least-loaded (most free chunks) wins, ties broken by id, so
//! placement is deterministic.
//!
//! The paper flags the mapping-flexibility vs correlated-failure trade-off
//! as an open question (§3.2); the distinct-device rule is the conservative
//! default it suggests managing "in the diFS".

use crate::cluster::Cluster;
use crate::types::{DeviceId, NodeId, UnitId};
use std::collections::HashSet;

/// Choose up to `needed` placement targets, excluding `exclude_devices`
/// and (softly) `exclude_nodes`.
///
/// Two passes: first require distinct nodes, then relax to distinct
/// devices only. Returns fewer than `needed` if the cluster cannot satisfy
/// the hard constraint.
pub fn choose_targets(
    cluster: &Cluster,
    needed: usize,
    exclude_devices: &HashSet<DeviceId>,
    exclude_nodes: &HashSet<NodeId>,
) -> Vec<UnitId> {
    let mut chosen: Vec<UnitId> = Vec::with_capacity(needed);
    let mut used_devices = exclude_devices.clone();
    let mut used_nodes = exclude_nodes.clone();
    for relax_nodes in [false, true] {
        while chosen.len() < needed {
            let best = cluster
                .alive_units()
                .filter(|(_, u)| u.free() > 0 && !u.cordoned)
                .filter(|(_, u)| !used_devices.contains(&u.device))
                .filter(|(_, u)| relax_nodes || !used_nodes.contains(&u.node))
                .max_by(|(ida, a), (idb, b)| {
                    a.free().cmp(&b.free()).then(idb.cmp(ida)) // most free, then lowest id
                })
                .map(|(id, u)| (id, u.device, u.node));
            let Some((id, device, node)) = best else {
                break;
            };
            chosen.push(id);
            used_devices.insert(device);
            used_nodes.insert(node);
        }
        if chosen.len() >= needed {
            break;
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3 nodes × 2 devices × 1 unit of capacity 4.
    fn cluster() -> (Cluster, Vec<UnitId>) {
        let mut c = Cluster::new();
        let mut units = Vec::new();
        for _ in 0..3 {
            let n = c.add_node();
            for _ in 0..2 {
                let d = c.add_device(n);
                units.push(c.add_unit(d, 4));
            }
        }
        (c, units)
    }

    #[test]
    fn spreads_across_nodes() {
        let (c, _) = cluster();
        let targets = choose_targets(&c, 3, &HashSet::new(), &HashSet::new());
        assert_eq!(targets.len(), 3);
        let nodes: HashSet<NodeId> = targets.iter().map(|t| c.unit(*t).unwrap().node).collect();
        assert_eq!(nodes.len(), 3, "one replica per node");
    }

    #[test]
    fn relaxes_to_distinct_devices_when_nodes_short() {
        let mut c = Cluster::new();
        let n = c.add_node();
        for _ in 0..4 {
            let d = c.add_device(n);
            c.add_unit(d, 4);
        }
        let targets = choose_targets(&c, 3, &HashSet::new(), &HashSet::new());
        assert_eq!(targets.len(), 3, "single node still yields 3 devices");
        let devices: HashSet<DeviceId> =
            targets.iter().map(|t| c.unit(*t).unwrap().device).collect();
        assert_eq!(devices.len(), 3);
    }

    #[test]
    fn never_two_replicas_on_one_device() {
        let mut c = Cluster::new();
        let n = c.add_node();
        let d = c.add_device(n);
        c.add_unit(d, 100);
        c.add_unit(d, 100);
        let targets = choose_targets(&c, 2, &HashSet::new(), &HashSet::new());
        assert_eq!(targets.len(), 1, "device constraint is hard");
    }

    #[test]
    fn honors_exclusions() {
        let (c, units) = cluster();
        let mut excl = HashSet::new();
        excl.insert(c.unit(units[0]).unwrap().device);
        let targets = choose_targets(&c, 3, &excl, &HashSet::new());
        assert!(!targets.contains(&units[0]));
        assert_eq!(targets.len(), 3);
    }

    #[test]
    fn skips_full_and_dead_units() {
        let (mut c, units) = cluster();
        // Fill unit 0 and kill unit 2.
        c.unit_mut(units[0]).unwrap().used = 4;
        c.fail_unit(units[2]);
        let targets = choose_targets(&c, 6, &HashSet::new(), &HashSet::new());
        assert!(!targets.contains(&units[0]));
        assert!(!targets.contains(&units[2]));
    }

    #[test]
    fn prefers_least_loaded() {
        let (mut c, units) = cluster();
        for (i, u) in units.iter().enumerate() {
            c.unit_mut(*u).unwrap().used = if i == 4 { 0 } else { 3 };
        }
        let targets = choose_targets(&c, 1, &HashSet::new(), &HashSet::new());
        assert_eq!(targets, vec![units[4]]);
    }

    #[test]
    fn deterministic() {
        let (c, _) = cluster();
        let a = choose_targets(&c, 3, &HashSet::new(), &HashSet::new());
        let b = choose_targets(&c, 3, &HashSet::new(), &HashSet::new());
        assert_eq!(a, b);
    }
}
