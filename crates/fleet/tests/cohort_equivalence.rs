//! Property-based equivalence gate for the cohort fleet engine
//! (ISSUE 6): over random fleet configurations — device count, write
//! pressure, load imbalance, AFR, horizon, mode, rebirth — the
//! struct-of-arrays [`salamander_fleet::cohort::Cohort`] path produces
//! the *same* `FleetTimeline` as the per-device `StatDevice` reference
//! path, at one thread and at four. The unit tests in `crate::cohort`
//! pin day-by-day lockstep on fixed configurations; this test walks
//! the configuration space.

use proptest::prelude::*;
use salamander_ecc::profile::Tiredness;
use salamander_exec::Threads;
use salamander_flash::geometry::FlashGeometry;
use salamander_flash::voltage::CellMode;
use salamander_fleet::device::{StatDeviceConfig, StatMode};
use salamander_fleet::sim::{FleetConfig, FleetEngine, FleetSim};

fn stat_mode() -> impl Strategy<Value = StatMode> {
    prop_oneof![
        Just(StatMode::Baseline),
        Just(StatMode::Shrink),
        Just(StatMode::Regen {
            max_level: Tiredness::L1
        }),
        Just(StatMode::Regen {
            max_level: Tiredness::L3
        }),
    ]
}

fn rebirth() -> impl Strategy<Value = Option<CellMode>> {
    prop_oneof![
        3 => Just(None),
        1 => Just(Some(CellMode::Slc)),
        1 => Just(Some(CellMode::Mlc)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Timeline equality across engines and thread counts. Samples are
    /// compared with `==` (exact integers and exact float bits): the
    /// engines must agree to the last committed oPage on every sampled
    /// day, for every death day, under every mode.
    #[test]
    fn cohort_engine_matches_per_device_reference(
        devices in 1u32..=12,
        dwpd in 0.5f64..8.0,
        sigma in prop_oneof![Just(0.0f64), Just(0.25f64)],
        afr in 0.0f64..0.05,
        horizon in 50u32..=800,
        sample_every in prop_oneof![Just(7u32), Just(30u32), Just(100u32)],
        seed in any::<u64>(),
        mode in stat_mode(),
        rebirth in rebirth(),
    ) {
        let cfg = FleetConfig {
            device: StatDeviceConfig {
                geometry: FlashGeometry::small_test(),
                rebirth,
                ..StatDeviceConfig::datacenter(mode)
            },
            devices,
            dwpd,
            dwpd_sigma: sigma,
            afr,
            horizon_days: horizon,
            sample_every_days: sample_every,
            seed,
        };
        let reference = FleetSim::new(cfg)
            .with_engine(FleetEngine::PerDevice)
            .run_threads(Threads::fixed(1));
        for threads in [1, 4] {
            let cohort = FleetSim::new(cfg)
                .with_engine(FleetEngine::Cohort)
                .run_threads(Threads::fixed(threads));
            prop_assert_eq!(
                &reference,
                &cohort,
                "cohort engine diverged at {} thread(s)",
                threads
            );
        }
    }
}
