//! Fleet simulation: the Fig. 3a/3b time series.
//!
//! A batch of devices is deployed at day 0 and aged under a DWPD write
//! budget plus random annual failures (AFR). No replacements are modeled —
//! Fig. 3 tracks how the *original batch* decays, which is what
//! differentiates a bricking baseline (devices vanish whole) from
//! Salamander (devices shed capacity gradually and live longer).

use crate::cohort::Cohort;
use crate::device::{StatDevice, StatDeviceConfig};
use rand::distributions::{Bernoulli, Distribution};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use salamander_exec::{derive_seed, Threads};
use salamander_health::{to_milli, zscores, Anomaly, AnomalyKind};
use salamander_obs::{
    CostModelNs, FleetRollup, LatClass, LatencyKernel, LatencyRollup, LiveObs, MetricsRegistry,
    Profiler, ProgressHandle, RollupKernel, SimTime, TraceEvent, TraceHandle, TraceRecord,
};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Fleet simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Device model.
    pub device: StatDeviceConfig,
    /// Number of devices in the batch.
    pub devices: u32,
    /// Drive writes per day applied to each device (relative to its
    /// *initial* capacity, the vendor's DWPD definition).
    pub dwpd: f64,
    /// Lognormal sigma of per-device write-rate imbalance (real fleets
    /// never load devices identically; 0 disables).
    pub dwpd_sigma: f64,
    /// Annual failure rate from non-wear causes (field studies report
    /// ~1–3%; §4.1).
    pub afr: f64,
    /// Simulation horizon in days.
    pub horizon_days: u32,
    /// Sampling interval in days.
    pub sample_every_days: u32,
    /// RNG seed (device variance and AFR draws).
    pub seed: u64,
}

impl FleetConfig {
    /// A 100-device fleet at 1 DWPD for ten simulated years.
    pub fn standard(device: StatDeviceConfig, seed: u64) -> Self {
        FleetConfig {
            device,
            devices: 100,
            dwpd: 1.0,
            dwpd_sigma: 0.25,
            afr: 0.01,
            horizon_days: 3650,
            sample_every_days: 30,
            seed,
        }
    }
}

/// One sampled fleet state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetSample {
    /// Simulated day.
    pub day: u32,
    /// Devices still functioning.
    pub alive: u32,
    /// Total committed capacity across the fleet, in oPages.
    pub capacity_opages: u64,
    /// Cumulative wear-caused device deaths.
    pub wear_deaths: u32,
    /// Cumulative AFR-caused device deaths.
    pub afr_deaths: u32,
}

/// The full time series of one fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetTimeline {
    /// Samples in time order.
    pub samples: Vec<FleetSample>,
}

impl FleetTimeline {
    /// Day by which at least half the fleet has died, if within the
    /// horizon.
    ///
    /// "Half dead" means `dead >= ceil(n/2)` — written as `2·dead >= n`
    /// to stay exact for odd fleet sizes (a fleet of 5 reaches
    /// half-dead at the 3rd death, not the 2nd).
    ///
    /// An empty timeline, or one that starts with zero devices, has no
    /// meaningful half-life and returns `None`.
    pub fn half_fleet_dead_day(&self) -> Option<u32> {
        let n = u64::from(self.samples.first()?.alive);
        if n == 0 {
            return None;
        }
        // u64 arithmetic: `2 * dead` overflows u32 for fleets past 2^31,
        // and a malformed (growing) timeline must clamp, not underflow.
        self.samples
            .iter()
            .find(|s| 2 * n.saturating_sub(u64::from(s.alive)) >= n)
            .map(|s| s.day)
    }

    /// Capacity remaining at `day` as a fraction of initial.
    ///
    /// Answers with the most recent sample at or before `day`. Days
    /// past the final sample are outside the simulated range and
    /// return `None` — the run ended (horizon or fleet death) and the
    /// timeline has nothing to say about them.
    ///
    /// A timeline that starts at zero capacity (an empty or born-dead
    /// fleet) has no meaningful fraction and returns `None` rather
    /// than `0/0 = NaN`.
    pub fn capacity_fraction_at(&self, day: u32) -> Option<f64> {
        let first = self.samples.first()?.capacity_opages;
        if first == 0 || day > self.samples.last()?.day {
            return None;
        }
        self.samples
            .iter()
            .rev()
            .find(|s| s.day <= day)
            .map(|s| s.capacity_opages as f64 / first as f64)
    }
}

/// Fleet-level health analytics: per-device capacity-loss rates
/// z-scored across the population, outliers flagged as typed
/// anomalies. Derived from the merged per-device tracks in device
/// order, so it is thread-invariant by construction.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FleetHealth {
    /// Mean capacity-loss rate across devices (oPages/day ×1000).
    pub mean_rate_milli: i64,
    /// Population standard deviation of the rate (oPages/day ×1000).
    pub std_rate_milli: i64,
    /// Devices whose loss rate is a ≥3σ outlier against the fleet
    /// ([`AnomalyKind::WearRateOutlier`], `subject` = device index,
    /// `time` = death day or horizon), ascending by device.
    pub anomalies: Vec<Anomaly>,
}

/// A [`FleetSim::run_observed`] outcome: the timeline plus its derived
/// trace, metrics, and fleet health.
#[derive(Debug)]
pub struct ObservedFleetRun {
    /// The fleet time series, identical to [`FleetSim::run_threads`]'s.
    pub timeline: FleetTimeline,
    /// Death events in (day, device) order.
    pub trace: Vec<TraceRecord>,
    /// Death counters and per-sample capacity gauges.
    pub metrics: MetricsRegistry,
    /// Wear-rate outlier scan over the fleet.
    pub health: FleetHealth,
    /// One deterministic distribution rollup per sampled day
    /// (DESIGN.md §14), byte-identical across engines and thread
    /// counts. Also interleaved into `trace` as
    /// [`TraceEvent::FleetRollup`] records.
    pub rollups: Vec<FleetRollup>,
    /// One deterministic tail-latency rollup per sampled day
    /// (DESIGN.md §15): the statistical read/write sweep distributions,
    /// byte-identical across engines and thread counts. Interleaved
    /// into `trace` as [`TraceEvent::LatencyRollup`] records right
    /// after each day's fleet rollup.
    pub latency: Vec<LatencyRollup>,
}

/// Run `f`, charging its wall time to `acc` when `timing` — the cohort
/// loop's per-mechanism accumulator, deposited into the profiler once
/// per shard (see [`FleetSim::age_cohort`]). A disabled profiler pays
/// one branch.
fn timed<R>(timing: bool, acc: &mut (u64, Duration), f: impl FnOnce() -> R) -> R {
    if !timing {
        return f();
    }
    let start = Instant::now();
    let r = f();
    acc.0 += 1;
    acc.1 += start.elapsed();
    r
}

/// What ended one device's service life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeathCause {
    /// Flash wear-out (brick or fully shrunk).
    Wear,
    /// Random (non-wear) failure from the AFR model.
    Afr,
}

/// One device's whole-horizon trajectory, reduced to the sampling grid.
///
/// Each device is aged on its own derived RNG stream, so trajectories
/// are mutually independent and can be computed in any order (or in
/// parallel) with bit-identical results.
struct DeviceTrack {
    /// Committed capacity (oPages) at each grid day; 0 after death.
    caps: Vec<u64>,
    /// Death day and cause, if the device died within the horizon.
    death: Option<(u32, DeathCause)>,
    /// Initial committed capacity.
    initial: u64,
}

/// Rollup metric normalizers, derived from the configuration alone so
/// both engines — whose internal wear state is private and laid out
/// differently — bucket through the identical expressions.
///
/// A device's raw wear is erase cycles; the rollup wants fractions.
/// The denominators come from the analytic PEC inverse of the RBER
/// model: `l0_pec` is where a median-variance page crosses the first
/// tiredness threshold (the onset of shrinking), `max_pec` where it
/// exhausts the last usable level (end of endurance budget). Under
/// Baseline/Shrink the two coincide (max level is 0).
struct RollupNorms {
    /// PEC at which a median page crosses the first tiredness level.
    l0_pec: f64,
    /// PEC at which a median page exhausts the last usable level.
    max_pec: f64,
    /// Raw physical capacity of the geometry, in oPages.
    total_opages: f64,
    /// Integer op cost model (DESIGN.md §15) — the same quantization of
    /// the flash timing defaults the functional FTL pins, so the fleet
    /// and per-device simulators price an op identically.
    cost: CostModelNs,
    /// oPages per fresh fPage.
    per: u32,
    /// oPage payload size in bytes.
    opage_bytes: u64,
    /// Usable tiredness levels (`max_level + 1`).
    levels: u32,
}

impl RollupNorms {
    fn new(cfg: &FleetConfig) -> Self {
        let d = &cfg.device;
        let thresholds = d.ecc.thresholds();
        let max_level = crate::device::max_level_for(d.mode, thresholds.len()) as usize;
        let t = salamander_flash::timing::TimingModel::default();
        RollupNorms {
            l0_pec: d.rber.pec_at_rber(thresholds[0] / d.safety).max(1) as f64,
            max_pec: d.rber.pec_at_rber(thresholds[max_level] / d.safety).max(1) as f64,
            total_opages: d.geometry.total_opages().max(1) as f64,
            cost: CostModelNs::from_us(
                t.t_read_us,
                t.t_prog_us,
                t.t_erase_us,
                t.ecc_extra_us,
                t.xfer_bytes_per_us,
            ),
            per: d.geometry.opages_per_fpage(),
            opage_bytes: u64::from(d.geometry.opage_bytes),
            levels: max_level as u32 + 1,
        }
    }

    /// Fold one alive device's *statistical* latency profile at grid
    /// day `gi` into `lat`: a uniform read sweep over the device's
    /// regular capacity — each of the `pages(j)` level-`j` fPages
    /// serves `per − j` oPages at the §4.2 multi-read cost — plus the
    /// level-independent write cost weighted by the same oPage total.
    /// The statistical engines have no discrete GC/scrub/regen events,
    /// so those classes stay empty on the fleet path (DESIGN.md §15);
    /// reborn capacity serves at a different density and is likewise
    /// outside the sweep. Integer costs and weights only, so the fold
    /// merges byte-identically across engines and thread counts.
    fn observe_latency(&self, lat: &mut LatencyKernel, gi: usize, pages: impl Fn(u32) -> u64) {
        let mut total = 0u64;
        for j in 0..self.levels {
            let w = pages(j).saturating_mul(u64::from(self.per.saturating_sub(j)));
            if w > 0 {
                lat.observe(
                    gi,
                    LatClass::HostRead,
                    self.cost.host_read_ns(self.per, j, 0, self.opage_bytes),
                    w,
                );
            }
            total = total.saturating_add(w);
        }
        if total > 0 {
            lat.observe(
                gi,
                LatClass::HostWrite,
                self.cost.host_write_ns(self.opage_bytes),
                total,
            );
        }
    }

    /// Fold one alive device's state at grid index `gi` into `kernel`.
    /// Every input is identical across engines at any thread count
    /// (the equivalence contract of `crate::cohort`), and the kernel
    /// only buckets — no cross-device float accumulation.
    fn observe(
        &self,
        kernel: &mut RollupKernel,
        gi: usize,
        wear: f64,
        usable: u64,
        committed: u64,
        initial: u64,
    ) {
        let cap_frac = if initial == 0 {
            0.0
        } else {
            committed as f64 / initial as f64
        };
        kernel.observe(
            gi,
            wear / self.l0_pec,
            wear / self.max_pec,
            usable as f64 / self.total_opages,
            cap_frac,
        );
    }
}

/// Which implementation ages the fleet.
///
/// Both engines implement the identical statistical model from
/// identical per-device seed streams, so they produce byte-identical
/// timelines, traces, and metrics (enforced by
/// `tests/cohort_equivalence.rs` and the golden-output suite). The
/// cohort engine is the default; the per-device path remains as the
/// reference implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FleetEngine {
    /// One [`StatDevice`] per device — the original reference path.
    PerDevice,
    /// Struct-of-arrays [`Cohort`] sharding (DESIGN.md §13).
    #[default]
    Cohort,
}

impl FleetEngine {
    /// Parse a CLI/env spelling: `cohort`, or `device` / `per-device` /
    /// `legacy` for the reference path.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "cohort" => Some(FleetEngine::Cohort),
            "device" | "per-device" | "per_device" | "legacy" => Some(FleetEngine::PerDevice),
            _ => None,
        }
    }

    /// Engine selected by `SALAMANDER_FLEET_ENGINE`, defaulting to
    /// [`FleetEngine::Cohort`] when unset or unrecognized.
    pub fn from_env() -> Self {
        std::env::var("SALAMANDER_FLEET_ENGINE")
            .ok()
            .and_then(|v| Self::parse(&v))
            .unwrap_or_default()
    }

    /// Canonical spelling, round-trips through [`Self::parse`].
    pub fn name(self) -> &'static str {
        match self {
            FleetEngine::PerDevice => "device",
            FleetEngine::Cohort => "cohort",
        }
    }
}

/// The fleet simulator.
#[derive(Debug, Clone)]
pub struct FleetSim {
    cfg: FleetConfig,
    engine: FleetEngine,
}

impl FleetSim {
    /// Build a simulator with the engine from
    /// [`FleetEngine::from_env`].
    pub fn new(cfg: FleetConfig) -> Self {
        FleetSim {
            cfg,
            engine: FleetEngine::from_env(),
        }
    }

    /// Override the aging engine (CLI flags, equivalence tests).
    pub fn with_engine(mut self, engine: FleetEngine) -> Self {
        self.engine = engine;
        self
    }

    /// The engine this simulator ages devices with.
    pub fn engine(&self) -> FleetEngine {
        self.engine
    }

    /// Run to the horizon (or total fleet death) and return the timeline.
    ///
    /// Devices fan out over the [`salamander_exec`] engine; see
    /// [`Self::run_threads`] for the determinism contract.
    pub fn run(&self) -> FleetTimeline {
        self.run_threads(Threads::Auto)
    }

    /// [`Self::run`] with an explicit thread-count override.
    ///
    /// Every device draws its load jitter and daily AFR coin flips
    /// from a private ChaCha8 stream seeded with
    /// `derive_seed(cfg.seed, device_index)`, so the timeline is a
    /// pure function of the configuration — bit-identical at any
    /// thread count.
    pub fn run_threads(&self, threads: Threads) -> FleetTimeline {
        let (grid, tracks, _, _) =
            self.age_fleet(threads, &ProgressHandle::disabled(), &Profiler::disabled());
        self.reduce(&grid, &tracks)
    }

    /// [`Self::run_threads`] with observability: the timeline comes
    /// back with a deterministic trace ([`TraceEvent::FleetDeviceDied`]
    /// per death, chronological) and a metrics registry (death
    /// counters, per-sample capacity/alive gauges). The trace is
    /// derived from the merged per-device tracks *after* the parallel
    /// fan-out, so it is bit-identical at any thread count by
    /// construction. A non-empty `label` opens the trace with a
    /// `RunMarker`.
    pub fn run_observed(
        &self,
        threads: Threads,
        label: &str,
        profiler: &Profiler,
    ) -> ObservedFleetRun {
        self.run_observed_live(threads, label, profiler, None)
    }

    /// [`Self::run_observed`] with an optional live mirror: progress
    /// counters advance per simulated device-day while the fan-out
    /// runs, and the derived trace/metrics are pushed into the mirror
    /// once merged. The returned artifacts are the same with or
    /// without `live` — the mirror is never read back.
    pub fn run_observed_live(
        &self,
        threads: Threads,
        label: &str,
        profiler: &Profiler,
        live: Option<&LiveObs>,
    ) -> ObservedFleetRun {
        let progress = live
            .map(|l| {
                if label.is_empty() {
                    l.progress.clone()
                } else {
                    l.progress.for_mode(label)
                }
            })
            .unwrap_or_default();
        progress.set_total_days(self.cfg.horizon_days as u64);
        progress.add_devices(self.cfg.devices as u64);
        let (grid, tracks, kernel, lat_kernel) = {
            let _phase = profiler.phase("fleet/age_devices");
            self.age_fleet(threads, &progress, profiler)
        };
        let timeline = self.reduce(&grid, &tracks);
        let rollups = Self::build_rollups(&kernel, &timeline);
        let latency = Self::build_latency_rollups(&lat_kernel, &timeline);

        let trace = TraceHandle::recording();
        if !label.is_empty() {
            trace.emit(
                SimTime::ZERO,
                TraceEvent::RunMarker {
                    label: label.to_string(),
                },
            );
        }
        let mut deaths: Vec<(u32, u32, DeathCause)> = tracks
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.death.map(|(day, cause)| (day, i as u32, cause)))
            .collect();
        deaths.sort_unstable_by_key(|&(day, device, _)| (day, device));
        let mut metrics = MetricsRegistry::new();
        let mut emit_death = |day: u32, device: u32, cause: DeathCause| {
            trace.emit(
                SimTime::new(day, 0),
                TraceEvent::FleetDeviceDied {
                    device,
                    cause: match cause {
                        DeathCause::Wear => salamander_obs::DeathCause::Wear,
                        DeathCause::Afr => salamander_obs::DeathCause::Afr,
                    },
                },
            );
            match cause {
                DeathCause::Wear => metrics.inc("salamander_fleet_wear_deaths_total", 1),
                DeathCause::Afr => metrics.inc("salamander_fleet_afr_deaths_total", 1),
            }
        };
        // Two-pointer chronological interleave: each sampled day's
        // rollup follows every death up to and including that day, so
        // the trace stream stays sorted by stamp and a reader sees the
        // rollup as the end-of-day state. The day's latency rollup
        // (when populated) follows its fleet rollup at the same stamp.
        let mut di = 0;
        for (r, l) in rollups.iter().zip(&latency) {
            while di < deaths.len() && deaths[di].0 <= r.day {
                let (day, device, cause) = deaths[di];
                emit_death(day, device, cause);
                di += 1;
            }
            trace.emit(SimTime::new(r.day, 0), TraceEvent::FleetRollup(r.clone()));
            if !l.is_empty() {
                trace.emit(SimTime::new(l.day, 0), TraceEvent::LatencyRollup(l.clone()));
            }
        }
        while di < deaths.len() {
            let (day, device, cause) = deaths[di];
            emit_death(day, device, cause);
            di += 1;
        }
        for s in &timeline.samples {
            metrics.set_gauge(
                &format!("salamander_fleet_capacity_opages{{day=\"{}\"}}", s.day),
                s.capacity_opages as f64,
            );
            metrics.set_gauge(
                &format!("salamander_fleet_alive_devices{{day=\"{}\"}}", s.day),
                s.alive as f64,
            );
        }
        let health = Self::fleet_health(&tracks, self.cfg.horizon_days);
        metrics.set_gauge(
            "salamander_fleet_health_wear_rate_mean_milli",
            health.mean_rate_milli as f64,
        );
        metrics.set_gauge(
            "salamander_fleet_health_wear_rate_std_milli",
            health.std_rate_milli as f64,
        );
        for a in &health.anomalies {
            metrics.inc(
                &format!(
                    "salamander_health_anomalies_total{{kind=\"{}\"}}",
                    a.kind.name()
                ),
                1,
            );
        }
        let trace = trace.take();
        if let Some(live) = live {
            for rec in &trace {
                live.trace.push(rec);
            }
            live.merge_metrics(&metrics);
        }
        ObservedFleetRun {
            timeline,
            trace,
            metrics,
            health,
            rollups,
            latency,
        }
    }

    /// Assemble per-day [`FleetRollup`] records from the merged kernel
    /// and the reduced timeline. Sample `i + 1` of the timeline (day 0
    /// has no kernel slot) pairs with kernel grid index `i`; a
    /// timeline cut short by total fleet death simply yields fewer
    /// rollups.
    fn build_rollups(kernel: &RollupKernel, timeline: &FleetTimeline) -> Vec<FleetRollup> {
        timeline
            .samples
            .iter()
            .skip(1)
            .take(kernel.days())
            .enumerate()
            .map(|(gi, s)| {
                let (dying, wear, pec, usable, health) = kernel.day_slices(gi);
                FleetRollup {
                    day: s.day,
                    alive: s.alive,
                    dead_wear: s.wear_deaths,
                    dead_afr: s.afr_deaths,
                    dying,
                    capacity_opages: s.capacity_opages,
                    wear: wear.to_vec(),
                    pec: pec.to_vec(),
                    usable: usable.to_vec(),
                    health: health.to_vec(),
                }
            })
            .collect()
    }

    /// Assemble per-day [`LatencyRollup`] records from the merged
    /// latency kernel, paired with timeline samples exactly like
    /// [`Self::build_rollups`] (sample `i + 1` ↔ grid index `i`).
    fn build_latency_rollups(
        kernel: &LatencyKernel,
        timeline: &FleetTimeline,
    ) -> Vec<LatencyRollup> {
        timeline
            .samples
            .iter()
            .skip(1)
            .take(kernel.days())
            .enumerate()
            .map(|(gi, s)| kernel.day_rollup(gi, s.day))
            .collect()
    }

    /// Population scan over the merged device tracks: each device's
    /// capacity-loss rate (initial → final capacity over its observed
    /// days), z-scored across the fleet; ≥3σ fast-wearers become
    /// [`AnomalyKind::WearRateOutlier`] anomalies. One-sided — a device
    /// wearing *slower* than its peers is not a problem.
    fn fleet_health(tracks: &[DeviceTrack], horizon_days: u32) -> FleetHealth {
        let rates: Vec<f64> = tracks
            .iter()
            .map(|t| {
                let end_day = t.death.map_or(horizon_days, |(d, _)| d).max(1);
                let lost = t
                    .initial
                    .saturating_sub(*t.caps.last().unwrap_or(&t.initial));
                lost as f64 / end_day as f64
            })
            .collect();
        let (mean, std, z) = zscores(&rates);
        let anomalies = tracks
            .iter()
            .enumerate()
            .filter(|&(i, _)| z[i] >= 3.0)
            .map(|(i, t)| Anomaly {
                time: SimTime::new(t.death.map_or(horizon_days, |(d, _)| d), 0),
                kind: AnomalyKind::WearRateOutlier,
                subject: i as u32,
                value_milli: to_milli(rates[i]),
                mean_milli: to_milli(mean),
                z_milli: to_milli(z[i]),
            })
            .collect();
        FleetHealth {
            mean_rate_milli: to_milli(mean),
            std_rate_milli: to_milli(std),
            anomalies,
        }
    }

    /// Sampling grid: every `sample_every_days`, plus the horizon. A
    /// zero interval means "sample every day" rather than dividing by
    /// zero.
    fn sample_grid(cfg: &FleetConfig) -> Vec<u32> {
        let every = cfg.sample_every_days.max(1);
        (1..=cfg.horizon_days)
            .filter(|d| d % every == 0 || *d == cfg.horizon_days)
            .collect()
    }

    /// Fan the device aging out over the execution engine via the
    /// selected [`FleetEngine`]. `progress` is bumped per simulated
    /// device-day (monotone watermarks and adds, so any task
    /// interleave reports the same totals); pass a disabled handle
    /// when nothing watches.
    ///
    /// Both engines also fold every alive device's state at every grid
    /// day into a per-shard [`RollupKernel`]; the shards merge in item
    /// order (`par_map` preserves it), so the returned kernel is
    /// byte-identical across engines and thread counts. The fold is
    /// unconditional — it is integer bucketing on state the loop
    /// already has in hand, and keeping it on the plain path is what
    /// lets the committed `fleet_scale` bench gate price it honestly.
    fn age_fleet(
        &self,
        threads: Threads,
        progress: &ProgressHandle,
        profiler: &Profiler,
    ) -> (Vec<u32>, Vec<DeviceTrack>, RollupKernel, LatencyKernel) {
        let cfg = &self.cfg;
        let grid = Self::sample_grid(cfg);
        let norms = RollupNorms::new(cfg);
        let shard = Self::cohort_shard(cfg) as u32;
        let ranges: Vec<(u32, u32)> = (0..cfg.devices)
            .step_by(shard as usize)
            .map(|start| (start, (cfg.devices - start).min(shard)))
            .collect();
        let shards: Vec<(Vec<DeviceTrack>, RollupKernel, LatencyKernel)> = match self.engine {
            FleetEngine::PerDevice => {
                salamander_exec::par_map(threads, &ranges, |_, &(start, len)| {
                    let mut kernel = RollupKernel::new(grid.len());
                    let mut lat = LatencyKernel::new(grid.len());
                    let tracks = (start..start + len)
                        .map(|i| {
                            Self::age_device(cfg, i, &grid, progress, &norms, &mut kernel, &mut lat)
                        })
                        .collect();
                    (tracks, kernel, lat)
                })
            }
            FleetEngine::Cohort => {
                salamander_exec::par_map(threads, &ranges, |_, &(start, len)| {
                    Self::age_cohort(cfg, start, len, &grid, progress, &norms, profiler)
                })
            }
        };
        let mut tracks = Vec::with_capacity(cfg.devices as usize);
        let mut kernel = RollupKernel::new(grid.len());
        let mut lat = LatencyKernel::new(grid.len());
        for (shard_tracks, shard_kernel, shard_lat) in shards {
            tracks.extend(shard_tracks);
            kernel.merge(&shard_kernel);
            lat.merge(&shard_lat);
        }
        (grid, tracks, kernel, lat)
    }

    /// Devices per cohort shard: bounded by a ~4 MiB variance-slab
    /// budget (so in-flight memory stays at `workers × slab` even for
    /// million-device fleets) and floored at 64 so the shared-LUT
    /// amortization survives large-geometry devices.
    fn cohort_shard(cfg: &FleetConfig) -> usize {
        let bytes_per_device = (cfg.device.geometry.total_fpages() as usize * 8).max(1);
        ((4 << 20) / bytes_per_device).clamp(64, 4096)
    }

    /// Age the device range `[start, start + len)` as one columnar
    /// [`Cohort`], producing exactly the tracks
    /// [`Self::age_device`] produces for those indices: seeds, RNG
    /// streams, and every arithmetic expression match the reference
    /// path (see `crate::cohort` for the equivalence argument).
    fn age_cohort(
        cfg: &FleetConfig,
        start: u32,
        len: u32,
        grid: &[u32],
        progress: &ProgressHandle,
        norms: &RollupNorms,
        profiler: &Profiler,
    ) -> (Vec<DeviceTrack>, RollupKernel, LatencyKernel) {
        let n = len as usize;
        let glen = grid.len();
        let mut kernel = RollupKernel::new(glen);
        let mut lat = LatencyKernel::new(glen);
        // Per-mechanism wall-clock accumulators for the engine's three
        // speed mechanisms, deposited into the profiler once per shard
        // so the hot loop never takes the store lock.
        let timing = profiler.is_enabled();
        let mut t_scan = (0u64, Duration::ZERO);
        let mut t_step = (0u64, Duration::ZERO);
        let mut t_quiet = (0u64, Duration::ZERO);
        let horizon = cfg.horizon_days;
        let seeds: Vec<u64> = (0..len)
            .map(|i| cfg.seed.wrapping_add(1 + (start + i) as u64))
            .collect();
        let mut cohort = Cohort::new(cfg.device, &seeds);
        let initial = cohort.initial_opages();
        let daily_afr = 1.0 - (1.0 - cfg.afr).powf(1.0 / 365.0);
        // Same draw stream as `gen_bool(daily_afr)`, threshold hoisted
        // out of the scan loop (the fleet makes horizon × devices of
        // these draws).
        let afr_draw = Bernoulli::new(daily_afr);

        // How far ahead a device's private AFR stream is scanned at a
        // time. Scanning ahead is output-identical — the stream feeds
        // nothing but the daily kill draw, and a device that dies of
        // wear first simply never reads the surplus — and it is what
        // lets the quiet-day fast path below jump whole windows
        // instead of consulting the rng day by day. Chunking bounds
        // the surplus draws for short-lived devices.
        const AFR_SCAN_AHEAD: u32 = 255;

        let mut caps = vec![0u64; n * glen];
        let mut deaths: Vec<Option<(u32, DeathCause)>> = vec![None; n];
        for d in 0..n {
            let mut rng =
                ChaCha8Rng::seed_from_u64(derive_seed(cfg.seed, (start + d as u32) as u64));
            // Per-device load imbalance: lognormal with median 1.
            let jitter = if cfg.dwpd_sigma > 0.0 {
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (cfg.dwpd_sigma * z).exp()
            } else {
                1.0
            };
            cohort.set_daily_writes(d, (cfg.dwpd * jitter * initial as f64) as u64);

            // First day the AFR draw fires (u32::MAX = not in the
            // scanned prefix), and how many daily draws are consumed.
            let mut afr_day = u32::MAX;
            let mut scanned = 0u32;
            let mut death = None;
            let mut ops = 0u64;
            let mut gi = 0usize;
            let mut day = 1u32;
            while day <= horizon {
                if afr_day == u32::MAX && scanned < day {
                    timed(timing, &mut t_scan, || {
                        let upto = day.saturating_add(AFR_SCAN_AHEAD).min(horizon);
                        while scanned < upto {
                            scanned += 1;
                            if afr_draw.sample(&mut rng) {
                                afr_day = scanned;
                                break;
                            }
                        }
                    });
                }
                timed(timing, &mut t_step, || cohort.step(d));
                ops += 1;
                if cohort.is_dead(d) {
                    death = Some((day, DeathCause::Wear));
                } else if day == afr_day {
                    cohort.kill(d);
                    death = Some((day, DeathCause::Afr));
                }
                if gi < glen && grid[gi] == day {
                    caps[d * glen + gi] = cohort.committed_opages(d);
                    if death.is_none() {
                        norms.observe(
                            &mut kernel,
                            gi,
                            cohort.wear(d),
                            cohort.usable_opages(d),
                            cohort.committed_opages(d),
                            initial,
                        );
                        norms.observe_latency(&mut lat, gi, |j| cohort.pages_at_level(d, j));
                    }
                    gi += 1;
                    // Progress is a fleet-wide day watermark; bumping
                    // at sample granularity keeps the hot loop cheap.
                    progress.set_day(day as u64);
                }
                if death.is_some() {
                    break;
                }
                // Quiet fast-forward: days that provably change
                // nothing but wear. The window must end before the
                // next known AFR kill (or the scan frontier when none
                // is known yet), before the horizon, and before the
                // next sample-grid day — the rollup kernel observes
                // materialized wear there, so the grid day itself must
                // run through `step`. Splitting a quiet window is
                // bit-identical (see [`Cohort::run_quiet_days`]): the
                // remaining days re-add the same increment to the same
                // wear bits on the cheap path.
                let afr_bound = if afr_day == u32::MAX {
                    scanned
                } else {
                    afr_day - 1
                };
                let grid_bound = if gi < glen { grid[gi] - 1 } else { horizon };
                let quiet_cap = (horizon - day)
                    .min(afr_bound.saturating_sub(day))
                    .min(grid_bound.saturating_sub(day));
                let q = timed(timing, &mut t_quiet, || cohort.run_quiet_days(d, quiet_cap));
                if q > 0 {
                    ops += u64::from(q);
                    day += q;
                }
                day += 1;
            }
            deaths[d] = death;
            progress.add_ops(ops);
            progress.device_done();
        }
        // Slots past a death day stay zero — a dead device has zero
        // committed capacity, matching the reference path's tail fill.
        let tracks = (0..n)
            .map(|d| DeviceTrack {
                caps: caps[d * glen..(d + 1) * glen].to_vec(),
                death: deaths[d],
                initial,
            })
            .collect();
        profiler.record("cohort/afr_prescan", t_scan.0, t_scan.1);
        profiler.record("cohort/next_check_step", t_step.0, t_step.1);
        profiler.record("cohort/quiet_days", t_quiet.0, t_quiet.1);
        (tracks, kernel, lat)
    }

    /// Reduce per-device tracks to the fleet time series.
    fn reduce(&self, grid: &[u32], tracks: &[DeviceTrack]) -> FleetTimeline {
        let cfg = &self.cfg;
        let mut samples = Vec::with_capacity(grid.len() + 1);
        samples.push(FleetSample {
            day: 0,
            alive: cfg.devices,
            capacity_opages: tracks.iter().map(|t| t.initial).sum(),
            wear_deaths: 0,
            afr_deaths: 0,
        });
        for (gi, &day) in grid.iter().enumerate() {
            let mut alive = 0u32;
            let mut capacity = 0u64;
            let mut wear_deaths = 0u32;
            let mut afr_deaths = 0u32;
            for t in tracks {
                capacity += t.caps[gi];
                match t.death {
                    Some((d, cause)) if d <= day => match cause {
                        DeathCause::Wear => wear_deaths += 1,
                        DeathCause::Afr => afr_deaths += 1,
                    },
                    _ => alive += 1,
                }
            }
            samples.push(FleetSample {
                day,
                alive,
                capacity_opages: capacity,
                wear_deaths,
                afr_deaths,
            });
            if alive == 0 {
                break;
            }
        }
        FleetTimeline { samples }
    }

    /// Age one device to the horizon on its private RNG stream,
    /// folding its state at each grid day into the shard's `kernel`.
    fn age_device(
        cfg: &FleetConfig,
        index: u32,
        grid: &[u32],
        progress: &ProgressHandle,
        norms: &RollupNorms,
        kernel: &mut RollupKernel,
        lat: &mut LatencyKernel,
    ) -> DeviceTrack {
        let mut dev = StatDevice::new(cfg.device, cfg.seed.wrapping_add(1 + index as u64));
        let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(cfg.seed, index as u64));
        // Per-device load imbalance: lognormal with median 1.
        let jitter = if cfg.dwpd_sigma > 0.0 {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (cfg.dwpd_sigma * z).exp()
        } else {
            1.0
        };
        let daily_writes = (cfg.dwpd * jitter * dev.initial_opages() as f64) as u64;
        let daily_afr = 1.0 - (1.0 - cfg.afr).powf(1.0 / 365.0);

        let initial = dev.committed_opages();
        let mut caps = Vec::with_capacity(grid.len());
        let mut death = None;
        let mut gi = 0;
        for day in 1..=cfg.horizon_days {
            dev.apply_writes(daily_writes);
            progress.add_ops(1);
            if dev.is_dead() {
                death = Some((day, DeathCause::Wear));
            } else if rng.gen_bool(daily_afr) {
                dev.kill();
                death = Some((day, DeathCause::Afr));
            }
            if gi < grid.len() && grid[gi] == day {
                caps.push(dev.committed_opages());
                if death.is_none() {
                    norms.observe(
                        kernel,
                        gi,
                        dev.wear(),
                        dev.usable_opages(),
                        dev.committed_opages(),
                        initial,
                    );
                    norms.observe_latency(lat, gi, |j| dev.pages_at_level(j));
                }
                gi += 1;
                // Progress is a fleet-wide day watermark; bumping at
                // sample granularity keeps the hot loop branch-cheap.
                progress.set_day(day as u64);
            }
            if dev.is_dead() {
                break;
            }
        }
        progress.device_done();
        // A dead device stays at zero capacity for the rest of the grid.
        caps.resize(grid.len(), dev.committed_opages());
        DeviceTrack {
            caps,
            death,
            initial,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::StatMode;
    use salamander_ecc::profile::Tiredness;
    use salamander_flash::geometry::FlashGeometry;

    fn quick_sim(mode: StatMode, seed: u64) -> FleetSim {
        let device = StatDeviceConfig {
            geometry: FlashGeometry::small_test(),
            ..StatDeviceConfig::datacenter(mode)
        };
        FleetSim::new(FleetConfig {
            devices: 30,
            dwpd: 20.0, // aggressive so devices die within the horizon
            dwpd_sigma: 0.25,
            afr: 0.01,
            horizon_days: 2000,
            sample_every_days: 10,
            seed,
            device,
        })
    }

    fn quick(mode: StatMode, seed: u64) -> FleetTimeline {
        quick_sim(mode, seed).run()
    }

    /// Hand-build a timeline from `(day, alive, capacity)` points.
    fn tl(points: &[(u32, u32, u64)]) -> FleetTimeline {
        FleetTimeline {
            samples: points
                .iter()
                .map(|&(day, alive, capacity_opages)| FleetSample {
                    day,
                    alive,
                    capacity_opages,
                    wear_deaths: 0,
                    afr_deaths: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn fleet_decays_to_zero() {
        let t = quick(StatMode::Baseline, 1);
        assert_eq!(t.samples[0].alive, 30);
        let last = t.samples.last().unwrap();
        assert!(last.alive < 30);
        assert!(last.wear_deaths + last.afr_deaths + last.alive == 30);
    }

    #[test]
    fn fig3a_salamander_outlives_baseline() {
        let base = quick(StatMode::Baseline, 2);
        let regen = quick(
            StatMode::Regen {
                max_level: Tiredness::L1,
            },
            2,
        );
        let b = base.half_fleet_dead_day().expect("baseline half-life");
        // `None` would be even better: never reached half-dead in horizon.
        if let Some(r) = regen.half_fleet_dead_day() {
            assert!(r as f64 > b as f64 * 1.2, "regen {r} vs base {b}");
        }
    }

    #[test]
    fn fig3b_capacity_declines_gradually_for_salamander() {
        let base = quick(StatMode::Baseline, 3);
        let shrink = quick(StatMode::Shrink, 3);
        // A baseline device is all-or-nothing: fleet capacity is always
        // exactly (alive devices) × (full device capacity).
        let per_device = base.samples[0].capacity_opages / base.samples[0].alive as u64;
        for s in &base.samples {
            assert_eq!(
                s.capacity_opages,
                s.alive as u64 * per_device,
                "baseline devices fail whole, day {}",
                s.day
            );
        }
        // ShrinkS devices spend time alive at *partial* capacity.
        let partial = shrink
            .samples
            .iter()
            .any(|s| s.alive > 0 && s.capacity_opages < s.alive as u64 * per_device);
        assert!(
            partial,
            "shrinking fleet should show partial-capacity devices"
        );
    }

    #[test]
    fn capacity_fraction_interpolates() {
        let t = quick(StatMode::Shrink, 4);
        assert_eq!(t.capacity_fraction_at(0), Some(1.0));
        let end = t.samples.last().unwrap().day;
        assert!(t.capacity_fraction_at(end).unwrap() < 1.0);
    }

    #[test]
    fn deterministic() {
        let a = quick(StatMode::Shrink, 5);
        let b = quick(StatMode::Shrink, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let sim = quick_sim(StatMode::Shrink, 5);
        let serial = sim.run_threads(Threads::fixed(1));
        for n in [2, 4, 8] {
            assert_eq!(sim.run_threads(Threads::fixed(n)), serial, "threads={n}");
        }
    }

    #[test]
    fn observed_run_matches_plain_and_is_thread_invariant() {
        let sim = quick_sim(StatMode::Shrink, 7);
        let plain = sim.run_threads(Threads::fixed(1));
        let a = sim.run_observed(Threads::fixed(1), "fleet=shrink", &Profiler::disabled());
        let b = sim.run_observed(Threads::fixed(4), "fleet=shrink", &Profiler::disabled());
        assert_eq!(a.timeline, plain);
        assert_eq!(a.trace, b.trace, "trace must be thread-invariant");
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.health, b.health, "fleet health must be thread-invariant");
        // Every death in the timeline shows up as a trace event.
        let last = plain.samples.last().unwrap();
        let deaths = a
            .trace
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::FleetDeviceDied { .. }))
            .count() as u32;
        assert_eq!(deaths, last.wear_deaths + last.afr_deaths);
        assert_eq!(
            a.metrics.counter("salamander_fleet_wear_deaths_total") as u32,
            last.wear_deaths
        );
        // Deaths are chronological.
        let days: Vec<u32> = a.trace.iter().map(|r| r.time.day).collect();
        assert!(days.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn half_fleet_dead_day_handles_odd_fleets() {
        // n = 5: "half dead" needs ceil(5/2) = 3 deaths; 2 dead (alive
        // 3) must NOT trigger.
        let t = tl(&[(0, 5, 500), (10, 3, 300), (20, 2, 200), (30, 0, 0)]);
        assert_eq!(t.half_fleet_dead_day(), Some(20));
        // n = 1: the only death is half the fleet.
        let t = tl(&[(0, 1, 100), (10, 0, 0)]);
        assert_eq!(t.half_fleet_dead_day(), Some(10));
        // Even fleet: exactly half dead triggers.
        let t = tl(&[(0, 4, 400), (10, 3, 300), (20, 2, 200)]);
        assert_eq!(t.half_fleet_dead_day(), Some(20));
        // Never reaches half within the horizon.
        let t = tl(&[(0, 5, 500), (10, 4, 400)]);
        assert_eq!(t.half_fleet_dead_day(), None);
    }

    #[test]
    fn capacity_fraction_past_last_sample_is_none() {
        let t = tl(&[(0, 2, 200), (10, 1, 100)]);
        assert_eq!(t.capacity_fraction_at(0), Some(1.0));
        assert_eq!(t.capacity_fraction_at(5), Some(1.0)); // holds last sample
        assert_eq!(t.capacity_fraction_at(10), Some(0.5));
        assert_eq!(t.capacity_fraction_at(11), None); // beyond simulated range
        assert_eq!(t.capacity_fraction_at(u32::MAX), None);
    }

    #[test]
    fn fleet_health_flags_the_fast_wearer() {
        // 11 devices losing 10 oPages/day, one losing 200: a clear
        // population outlier.
        let track = |rate: u64| DeviceTrack {
            caps: vec![1000 - rate * 10],
            death: None,
            initial: 1000,
        };
        let mut tracks: Vec<DeviceTrack> = (0..11).map(|_| track(1)).collect();
        tracks.push(track(20));
        let health = FleetSim::fleet_health(&tracks, 10);
        assert_eq!(health.anomalies.len(), 1, "{:?}", health.anomalies);
        let a = &health.anomalies[0];
        assert_eq!(a.kind, AnomalyKind::WearRateOutlier);
        assert_eq!(a.subject, 11);
        assert_eq!(a.value_milli, to_milli(20.0), "200 oPages over 10 days");
        assert!(a.z_milli >= 3000);
        // A uniform fleet has no outliers.
        let uniform = FleetSim::fleet_health(&(0..12).map(|_| track(1)).collect::<Vec<_>>(), 10);
        assert!(uniform.anomalies.is_empty());
        assert_eq!(uniform.std_rate_milli, 0);
    }

    #[test]
    fn fleet_health_lands_in_metrics() {
        let sim = quick_sim(StatMode::Shrink, 7);
        let run = sim.run_observed(Threads::fixed(2), "fleet=shrink", &Profiler::disabled());
        assert!(run
            .metrics
            .gauge("salamander_fleet_health_wear_rate_mean_milli")
            .is_some());
        assert_eq!(
            run.metrics
                .counter("salamander_health_anomalies_total{kind=\"wear_rate_outlier\"}"),
            run.health.anomalies.len() as u64
        );
        // Round-trips for artifact use.
        let json = serde_json::to_string(&run.health).unwrap();
        let back: FleetHealth = serde_json::from_str(&json).unwrap();
        assert_eq!(run.health, back);
    }

    #[test]
    fn cohort_engine_matches_per_device_engine() {
        for mode in [
            StatMode::Baseline,
            StatMode::Shrink,
            StatMode::Regen {
                max_level: Tiredness::L1,
            },
        ] {
            let sim = quick_sim(mode, 9);
            let reference = sim
                .clone()
                .with_engine(FleetEngine::PerDevice)
                .run_threads(Threads::fixed(1));
            for threads in [1, 4] {
                let cohort = sim
                    .clone()
                    .with_engine(FleetEngine::Cohort)
                    .run_threads(Threads::fixed(threads));
                assert_eq!(cohort, reference, "{mode:?} threads={threads}");
            }
        }
    }

    #[test]
    fn cohort_engine_matches_per_device_observed() {
        let sim = quick_sim(StatMode::Shrink, 11);
        let a = sim
            .clone()
            .with_engine(FleetEngine::PerDevice)
            .run_observed(Threads::fixed(1), "fleet=eq", &Profiler::disabled());
        let b = sim.clone().with_engine(FleetEngine::Cohort).run_observed(
            Threads::fixed(4),
            "fleet=eq",
            &Profiler::disabled(),
        );
        assert_eq!(a.timeline, b.timeline);
        assert_eq!(a.trace, b.trace, "traces must match across engines");
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.health, b.health);
    }

    #[test]
    fn latency_rollups_match_across_engines_and_show_the_multi_read_tax() {
        let sim = quick_sim(
            StatMode::Regen {
                max_level: Tiredness::L1,
            },
            21,
        );
        let a = sim
            .clone()
            .with_engine(FleetEngine::PerDevice)
            .run_observed(Threads::fixed(1), "fleet=regen", &Profiler::disabled());
        let b = sim.clone().with_engine(FleetEngine::Cohort).run_observed(
            Threads::fixed(4),
            "fleet=regen",
            &Profiler::disabled(),
        );
        assert_eq!(
            a.latency, b.latency,
            "latency rollups must be engine-invariant"
        );
        assert_eq!(a.trace, b.trace, "interleaved trace must match too");
        assert_eq!(a.latency.len(), a.rollups.len(), "one per sampled day");
        // A fresh fleet reads everything at the plain sense cost; once
        // pages regenerate to L1 the §4.2 multi-read tax drags the read
        // tail up while writes stay level-independent.
        let populated: Vec<_> = a.latency.iter().filter(|r| !r.is_empty()).collect();
        assert!(!populated.is_empty(), "regen fleet must record latency");
        let early = populated.first().unwrap();
        let late = populated.last().unwrap();
        let early_p99 = early.stat("host_read", "p99").unwrap();
        let late_p99 = late.stat("host_read", "p99").unwrap();
        assert!(
            late_p99 > early_p99,
            "L1 growth must raise the read tail: {early_p99} -> {late_p99}"
        );
        assert_eq!(
            early.stat("host_write", "p50"),
            late.stat("host_write", "p50"),
            "write cost is level-independent"
        );
        // The statistical engines have no discrete GC/scrub/regen
        // events; those classes stay empty on the fleet path.
        for r in &a.latency {
            for class in ["gc", "scrub", "regen"] {
                assert_eq!(r.stat(class, "count"), Some(0), "day {}: {class}", r.day);
            }
        }
    }

    #[test]
    fn cohort_profiler_reports_speed_mechanism_phases() {
        let sim = quick_sim(StatMode::Shrink, 23).with_engine(FleetEngine::Cohort);
        let prof = Profiler::enabled();
        sim.run_observed(Threads::fixed(1), "fleet=prof", &prof);
        let stats = prof.stats();
        for phase in [
            "cohort/afr_prescan",
            "cohort/next_check_step",
            "cohort/quiet_days",
            "fleet/age_devices",
        ] {
            let stat = stats.iter().find(|(n, _)| n == phase);
            assert!(
                stat.is_some_and(|(_, s)| s.calls > 0),
                "{phase} missing: {stats:?}"
            );
        }
        // The per-device reference path reports no cohort phases.
        let prof2 = Profiler::enabled();
        sim.with_engine(FleetEngine::PerDevice).run_observed(
            Threads::fixed(1),
            "fleet=prof",
            &prof2,
        );
        assert!(prof2.stats().iter().all(|(n, _)| !n.starts_with("cohort/")));
    }

    #[test]
    fn engines_agree_on_a_fleet_of_one() {
        let mut sim = quick_sim(StatMode::Shrink, 13);
        sim.cfg.devices = 1;
        let a = sim
            .clone()
            .with_engine(FleetEngine::PerDevice)
            .run_threads(Threads::fixed(1));
        let b = sim
            .with_engine(FleetEngine::Cohort)
            .run_threads(Threads::fixed(4));
        assert_eq!(a, b);
        assert_eq!(a.samples[0].alive, 1);
    }

    #[test]
    fn engines_agree_with_rebirth_enabled() {
        let mut sim = quick_sim(
            StatMode::Regen {
                max_level: Tiredness::L1,
            },
            15,
        );
        sim.cfg.device.rebirth = Some(salamander_flash::voltage::CellMode::Slc);
        let a = sim
            .clone()
            .with_engine(FleetEngine::PerDevice)
            .run_threads(Threads::fixed(1));
        let b = sim
            .with_engine(FleetEngine::Cohort)
            .run_threads(Threads::fixed(4));
        assert_eq!(a, b);
    }

    #[test]
    fn engine_parse_and_env_spellings() {
        assert_eq!(FleetEngine::parse("cohort"), Some(FleetEngine::Cohort));
        assert_eq!(FleetEngine::parse("Device"), Some(FleetEngine::PerDevice));
        assert_eq!(
            FleetEngine::parse("per-device"),
            Some(FleetEngine::PerDevice)
        );
        assert_eq!(FleetEngine::parse("legacy"), Some(FleetEngine::PerDevice));
        assert_eq!(FleetEngine::parse("warp"), None);
        for e in [FleetEngine::Cohort, FleetEngine::PerDevice] {
            assert_eq!(FleetEngine::parse(e.name()), Some(e), "name round-trips");
        }
        assert_eq!(FleetEngine::default(), FleetEngine::Cohort);
    }

    #[test]
    fn half_fleet_dead_day_empty_or_zero_fleet_is_none() {
        assert_eq!(tl(&[]).half_fleet_dead_day(), None);
        // A fleet that starts empty has no half-life (used to report
        // its first sample day).
        assert_eq!(tl(&[(0, 0, 0), (10, 0, 0)]).half_fleet_dead_day(), None);
    }

    #[test]
    fn half_fleet_dead_day_survives_giant_fleets() {
        // dead = 2.5e9: `2 * dead` overflows u32 (the old arithmetic
        // wrapped and missed the half-dead crossing entirely).
        let t = tl(&[(0, 4_000_000_000, 100), (10, 1_500_000_000, 50)]);
        assert_eq!(t.half_fleet_dead_day(), Some(10));
    }

    #[test]
    fn capacity_fraction_of_zero_capacity_fleet_is_none() {
        // 0/0 used to surface as Some(NaN).
        let t = tl(&[(0, 0, 0), (10, 0, 0)]);
        assert_eq!(t.capacity_fraction_at(0), None);
        assert_eq!(t.capacity_fraction_at(10), None);
        assert_eq!(tl(&[]).capacity_fraction_at(0), None);
    }

    #[test]
    fn zero_sample_interval_samples_every_day() {
        // sample_every_days == 0 used to panic on `day % 0`.
        let device = StatDeviceConfig {
            geometry: FlashGeometry::small_test(),
            ..StatDeviceConfig::datacenter(StatMode::Shrink)
        };
        let cfg = FleetConfig {
            devices: 2,
            dwpd: 1.0,
            dwpd_sigma: 0.0,
            afr: 0.0,
            horizon_days: 5,
            sample_every_days: 0,
            seed: 1,
            device,
        };
        for engine in [FleetEngine::PerDevice, FleetEngine::Cohort] {
            let t = FleetSim::new(cfg).with_engine(engine).run();
            let days: Vec<u32> = t.samples.iter().map(|s| s.day).collect();
            assert_eq!(days, vec![0, 1, 2, 3, 4, 5], "{engine:?}");
        }
    }

    #[test]
    fn zero_afr_means_wear_deaths_only() {
        let device = StatDeviceConfig {
            geometry: FlashGeometry::small_test(),
            ..StatDeviceConfig::datacenter(StatMode::Baseline)
        };
        let t = FleetSim::new(FleetConfig {
            devices: 10,
            dwpd: 20.0,
            dwpd_sigma: 0.0,
            afr: 0.0,
            horizon_days: 2000,
            sample_every_days: 10,
            seed: 6,
            device,
        })
        .run();
        assert_eq!(t.samples.last().unwrap().afr_deaths, 0);
    }
}
