//! Fleet simulation: the Fig. 3a/3b time series.
//!
//! A batch of devices is deployed at day 0 and aged under a DWPD write
//! budget plus random annual failures (AFR). No replacements are modeled —
//! Fig. 3 tracks how the *original batch* decays, which is what
//! differentiates a bricking baseline (devices vanish whole) from
//! Salamander (devices shed capacity gradually and live longer).

use crate::device::{StatDevice, StatDeviceConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Fleet simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Device model.
    pub device: StatDeviceConfig,
    /// Number of devices in the batch.
    pub devices: u32,
    /// Drive writes per day applied to each device (relative to its
    /// *initial* capacity, the vendor's DWPD definition).
    pub dwpd: f64,
    /// Lognormal sigma of per-device write-rate imbalance (real fleets
    /// never load devices identically; 0 disables).
    pub dwpd_sigma: f64,
    /// Annual failure rate from non-wear causes (field studies report
    /// ~1–3%; §4.1).
    pub afr: f64,
    /// Simulation horizon in days.
    pub horizon_days: u32,
    /// Sampling interval in days.
    pub sample_every_days: u32,
    /// RNG seed (device variance and AFR draws).
    pub seed: u64,
}

impl FleetConfig {
    /// A 100-device fleet at 1 DWPD for ten simulated years.
    pub fn standard(device: StatDeviceConfig, seed: u64) -> Self {
        FleetConfig {
            device,
            devices: 100,
            dwpd: 1.0,
            dwpd_sigma: 0.25,
            afr: 0.01,
            horizon_days: 3650,
            sample_every_days: 30,
            seed,
        }
    }
}

/// One sampled fleet state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetSample {
    /// Simulated day.
    pub day: u32,
    /// Devices still functioning.
    pub alive: u32,
    /// Total committed capacity across the fleet, in oPages.
    pub capacity_opages: u64,
    /// Cumulative wear-caused device deaths.
    pub wear_deaths: u32,
    /// Cumulative AFR-caused device deaths.
    pub afr_deaths: u32,
}

/// The full time series of one fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetTimeline {
    /// Samples in time order.
    pub samples: Vec<FleetSample>,
}

impl FleetTimeline {
    /// Day by which half the fleet has died, if within the horizon.
    pub fn half_fleet_dead_day(&self) -> Option<u32> {
        let n = self.samples.first()?.alive;
        self.samples
            .iter()
            .find(|s| s.alive <= n / 2)
            .map(|s| s.day)
    }

    /// Capacity remaining at `day` as a fraction of initial.
    pub fn capacity_fraction_at(&self, day: u32) -> Option<f64> {
        let first = self.samples.first()?.capacity_opages as f64;
        self.samples
            .iter()
            .rev()
            .find(|s| s.day <= day)
            .map(|s| s.capacity_opages as f64 / first)
    }
}

/// The fleet simulator.
#[derive(Debug, Clone)]
pub struct FleetSim {
    cfg: FleetConfig,
}

impl FleetSim {
    /// Build a simulator.
    pub fn new(cfg: FleetConfig) -> Self {
        FleetSim { cfg }
    }

    /// Run to the horizon (or total fleet death) and return the timeline.
    pub fn run(&self) -> FleetTimeline {
        let cfg = &self.cfg;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut devices: Vec<StatDevice> = (0..cfg.devices)
            .map(|i| StatDevice::new(cfg.device, cfg.seed.wrapping_add(1 + i as u64)))
            .collect();
        let daily_writes: Vec<u64> = devices
            .iter()
            .map(|d| {
                // Per-device load imbalance: lognormal with median 1.
                let jitter = if cfg.dwpd_sigma > 0.0 {
                    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                    let u2: f64 = rng.gen_range(0.0..1.0);
                    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    (cfg.dwpd_sigma * z).exp()
                } else {
                    1.0
                };
                (cfg.dwpd * jitter * d.initial_opages() as f64) as u64
            })
            .collect();
        let daily_afr = 1.0 - (1.0 - cfg.afr).powf(1.0 / 365.0);
        let mut wear_deaths = 0u32;
        let mut afr_deaths = 0u32;
        let mut samples = Vec::new();
        let sample = |day: u32, devs: &[StatDevice], wd: u32, ad: u32| FleetSample {
            day,
            alive: devs.iter().filter(|d| !d.is_dead()).count() as u32,
            capacity_opages: devs.iter().map(|d| d.committed_opages()).sum(),
            wear_deaths: wd,
            afr_deaths: ad,
        };
        samples.push(sample(0, &devices, 0, 0));
        for day in 1..=cfg.horizon_days {
            for (d, &w) in devices.iter_mut().zip(&daily_writes) {
                if d.is_dead() {
                    continue;
                }
                d.apply_writes(w);
                if d.is_dead() {
                    wear_deaths += 1;
                } else if rng.gen_bool(daily_afr) {
                    d.kill();
                    afr_deaths += 1;
                }
            }
            if day % cfg.sample_every_days == 0 || day == cfg.horizon_days {
                samples.push(sample(day, &devices, wear_deaths, afr_deaths));
                if samples.last().unwrap().alive == 0 {
                    break;
                }
            }
        }
        FleetTimeline { samples }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::StatMode;
    use salamander_ecc::profile::Tiredness;
    use salamander_flash::geometry::FlashGeometry;

    fn quick(mode: StatMode, seed: u64) -> FleetTimeline {
        let device = StatDeviceConfig {
            geometry: FlashGeometry::small_test(),
            ..StatDeviceConfig::datacenter(mode)
        };
        FleetSim::new(FleetConfig {
            devices: 30,
            dwpd: 20.0, // aggressive so devices die within the horizon
            dwpd_sigma: 0.25,
            afr: 0.01,
            horizon_days: 2000,
            sample_every_days: 10,
            seed,
            device,
        })
        .run()
    }

    #[test]
    fn fleet_decays_to_zero() {
        let t = quick(StatMode::Baseline, 1);
        assert_eq!(t.samples[0].alive, 30);
        let last = t.samples.last().unwrap();
        assert!(last.alive < 30);
        assert!(last.wear_deaths + last.afr_deaths + last.alive == 30);
    }

    #[test]
    fn fig3a_salamander_outlives_baseline() {
        let base = quick(StatMode::Baseline, 2);
        let regen = quick(
            StatMode::Regen {
                max_level: Tiredness::L1,
            },
            2,
        );
        let b = base.half_fleet_dead_day().expect("baseline half-life");
        // `None` would be even better: never reached half-dead in horizon.
        if let Some(r) = regen.half_fleet_dead_day() {
            assert!(r as f64 > b as f64 * 1.2, "regen {r} vs base {b}");
        }
    }

    #[test]
    fn fig3b_capacity_declines_gradually_for_salamander() {
        let base = quick(StatMode::Baseline, 3);
        let shrink = quick(StatMode::Shrink, 3);
        // A baseline device is all-or-nothing: fleet capacity is always
        // exactly (alive devices) × (full device capacity).
        let per_device = base.samples[0].capacity_opages / base.samples[0].alive as u64;
        for s in &base.samples {
            assert_eq!(
                s.capacity_opages,
                s.alive as u64 * per_device,
                "baseline devices fail whole, day {}",
                s.day
            );
        }
        // ShrinkS devices spend time alive at *partial* capacity.
        let partial = shrink
            .samples
            .iter()
            .any(|s| s.alive > 0 && s.capacity_opages < s.alive as u64 * per_device);
        assert!(
            partial,
            "shrinking fleet should show partial-capacity devices"
        );
    }

    #[test]
    fn capacity_fraction_interpolates() {
        let t = quick(StatMode::Shrink, 4);
        assert_eq!(t.capacity_fraction_at(0), Some(1.0));
        let end = t.samples.last().unwrap().day;
        assert!(t.capacity_fraction_at(end).unwrap() < 1.0);
    }

    #[test]
    fn deterministic() {
        let a = quick(StatMode::Shrink, 5);
        let b = quick(StatMode::Shrink, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_afr_means_wear_deaths_only() {
        let device = StatDeviceConfig {
            geometry: FlashGeometry::small_test(),
            ..StatDeviceConfig::datacenter(StatMode::Baseline)
        };
        let t = FleetSim::new(FleetConfig {
            devices: 10,
            dwpd: 20.0,
            dwpd_sigma: 0.0,
            afr: 0.0,
            horizon_days: 2000,
            sample_every_days: 10,
            seed: 6,
            device,
        })
        .run();
        assert_eq!(t.samples.last().unwrap().afr_deaths, 0);
    }
}
