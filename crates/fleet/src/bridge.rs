//! End-to-end harness: real FTL devices driving a diFS chunk store.
//!
//! Each [`salamander::SalamanderSsd`] registers its minidisks as diFS
//! storage units. As synthetic write churn wears the devices, their
//! lifecycle events propagate: a decommissioned minidisk fails its unit
//! (triggering re-replication), a regenerated minidisk adds a unit
//! (absorbing under-replicated chunks), a device failure fails everything
//! at once. This is the §4.3 recovery-traffic experiment end to end.
//!
//! Chunk *placement* is bookkeeping on top of the worn devices: the churn
//! that wears a device and the chunks mapped onto its minidisks are
//! decoupled, which is exactly what §4.3 needs — recovery traffic depends
//! on how much replicated data sat on failed units, not on byte identity.

use salamander::config::SsdConfig;
use salamander::device::{BatchStop, HostEvent, SalamanderSsd};
use salamander_difs::cluster::Cluster;
use salamander_difs::store::{ChunkStore, StoreMetrics};
use salamander_difs::types::{DeviceId, DifsConfig, NodeId, UnitId};
use salamander_ftl::types::{Lba, MdiskId};
use salamander_obs::{ClusterKernel, ClusterRollup, Obs};
use std::collections::HashMap;

/// One SSD attached to the harness.
struct DeviceSlot {
    ssd: SalamanderSsd,
    device: DeviceId,
    units: HashMap<MdiskId, UnitId>,
    churn_state: u64,
}

/// How the fleet reacts to device wear (§2.1: operators already act on
/// failure predictions; Salamander redirects that to minidisks).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecoveryPolicy {
    /// Wait for decommission events, then re-replicate.
    Reactive,
    /// Watch SMART telemetry; when a device's next decommission is
    /// imminent (headroom below `margin` minidisks), gracefully drain the
    /// likely victim's unit ahead of time, `drain_budget` chunks per tick.
    Proactive {
        /// Headroom threshold in minidisks.
        margin: f64,
        /// Chunks migrated per tick per at-risk device.
        drain_budget: u32,
    },
}

/// The FTL ↔ diFS bridge.
pub struct ClusterHarness {
    cluster: Cluster,
    store: ChunkStore,
    devices: Vec<DeviceSlot>,
    policy: RecoveryPolicy,
    obs: Obs,
    /// Churn rounds so far — the diFS trace clock (one "day" per round).
    round: u32,
    /// Per-round durability rollups folded as the run progresses, so
    /// callers can publish the series (e.g. to `/cluster`) whether or
    /// not a trace was recorded.
    cluster_kernel: ClusterKernel,
}

impl ClusterHarness {
    /// An empty harness with the given replication settings.
    pub fn new(cfg: DifsConfig) -> Self {
        ClusterHarness {
            cluster: Cluster::new(),
            store: ChunkStore::new(cfg),
            devices: Vec::new(),
            policy: RecoveryPolicy::Reactive,
            obs: Obs::disabled(),
            round: 0,
            cluster_kernel: ClusterKernel::new(),
        }
    }

    /// Select the recovery policy.
    pub fn with_policy(mut self, policy: RecoveryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Attach observability handles, shared by the chunk store and every
    /// device (already attached or added later). The harness runs its
    /// devices single-threaded in index order, so the shared trace
    /// interleaving is deterministic.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self.store.set_obs(self.obs.clone());
        for slot in &mut self.devices {
            slot.ssd.set_obs(self.obs.clone());
        }
        self
    }

    /// The attached observability bundle (disabled unless
    /// [`Self::with_obs`] was used).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Attach one SSD on its own node. Returns the harness-local index.
    ///
    /// # Panics
    ///
    /// Panics if the diFS chunk size does not divide the minidisk size
    /// (units must hold a whole number of chunks).
    pub fn add_device(&mut self, cfg: SsdConfig) -> usize {
        let node = self.cluster.add_node();
        self.add_device_on(node, cfg)
    }

    /// Attach one SSD on an existing node.
    pub fn add_device_on(&mut self, node: NodeId, cfg: SsdConfig) -> usize {
        let ssd = SalamanderSsd::open_with_obs(cfg, self.obs.clone());
        let device = self.cluster.add_device(node);
        let mut units = HashMap::new();
        for m in ssd.minidisks() {
            let cap = self.unit_capacity(&ssd, m);
            units.insert(m, self.cluster.add_unit(device, cap));
        }
        self.devices.push(DeviceSlot {
            ssd,
            device,
            units,
            churn_state: 0x5EED_0000 + self.devices.len() as u64,
        });
        self.devices.len() - 1
    }

    fn unit_capacity(&self, ssd: &SalamanderSsd, m: MdiskId) -> u32 {
        let mdisk_bytes = ssd.minidisk_lbas(m).unwrap_or(0) as u64
            * ssd.config().ftl_config().geometry.opage_bytes as u64;
        let chunk = self.store.config().chunk_bytes;
        assert!(
            mdisk_bytes.is_multiple_of(chunk),
            "chunk size {chunk} must divide minidisk size {mdisk_bytes}"
        );
        (mdisk_bytes / chunk) as u32
    }

    /// Fill the store with chunks until `fraction` of the alive capacity
    /// is used (or placement runs out). Returns the chunk count created.
    pub fn fill(&mut self, fraction: f64) -> u64 {
        let r = self.store.config().replication as u64;
        let target =
            (self.cluster.alive_capacity() as f64 * fraction.clamp(0.0, 1.0)) as u64 / r.max(1);
        let mut created = 0;
        while created < target {
            if self.store.create_chunk(&mut self.cluster).is_err() {
                break;
            }
            created += 1;
        }
        created
    }

    /// Apply `writes` synthetic oPage writes of churn to every live
    /// device, then propagate lifecycle events into the diFS.
    ///
    /// Churn goes through the FTL's batched write path: the minidisk
    /// cache is refreshed whenever a batch stops on raised events —
    /// exactly when the per-op `minidisks()` fetch of the old loop
    /// could have observed a different set — so the wear trajectory is
    /// bit-identical to per-op issue. xorshift draws are
    /// device-independent, so draws unconsumed by an early stop carry
    /// over and are re-mapped against the refreshed set.
    pub fn churn(&mut self, writes: u64) {
        const BATCH: usize = 64;
        self.round += 1;
        self.store.set_time(self.round);
        let mut mdisks: Vec<MdiskId> = Vec::new();
        let mut pending: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
        let mut ops: Vec<(MdiskId, Lba)> = Vec::with_capacity(BATCH);
        for slot in &mut self.devices {
            let mut issued = 0;
            slot.ssd.minidisks_into(&mut mdisks);
            pending.clear();
            while issued < writes && !slot.ssd.is_dead() {
                if mdisks.is_empty() {
                    break;
                }
                let len = BATCH.min((writes - issued) as usize);
                while pending.len() < len {
                    // xorshift64; decoupled from the store's placement.
                    slot.churn_state ^= slot.churn_state << 13;
                    slot.churn_state ^= slot.churn_state >> 7;
                    slot.churn_state ^= slot.churn_state << 17;
                    pending.push_back(slot.churn_state);
                }
                ops.clear();
                for &s in pending.iter().take(len) {
                    let id = mdisks[(s as usize / 7) % mdisks.len()];
                    let lbas = slot.ssd.minidisk_lbas(id).unwrap_or(1);
                    ops.push((id, Lba((s % lbas as u64) as u32)));
                }
                let out = slot.ssd.write_batch(&ops);
                pending.drain(..out.consumed);
                issued += out.written;
                match out.stop {
                    Some(BatchStop::Events) => slot.ssd.minidisks_into(&mut mdisks),
                    Some(BatchStop::DeviceDead) => break,
                    Some(BatchStop::Fatal(e)) => panic!("churn write failed: {e}"),
                    None => {}
                }
            }
        }
        self.pump_events();
        self.run_policy();
        self.store.tick(&mut self.cluster);
        // One durability rollup per round (DESIGN.md §16) — taken after
        // repairs so the snapshot describes the settled state.
        let rollup = if self.obs.trace.is_enabled() {
            self.store.emit_cluster_rollup(&self.cluster)
        } else {
            self.store.cluster_rollup(&self.cluster)
        };
        self.cluster_kernel.observe(&rollup);
        self.store.export_metrics();
    }

    /// Apply the proactive policy: drain the predicted next victim of any
    /// device whose SMART headroom says a decommission is imminent.
    fn run_policy(&mut self) {
        let RecoveryPolicy::Proactive {
            margin,
            drain_budget,
        } = self.policy
        else {
            return;
        };
        for i in 0..self.devices.len() {
            let slot = &self.devices[i];
            if slot.ssd.is_dead() {
                continue;
            }
            let smart = slot.ssd.smart();
            let msize = slot.ssd.config().ftl_config().lbas_per_mdisk() as u64;
            if !smart.decommission_imminent(msize, margin) {
                continue;
            }
            // Mirror the FTL's LeastValid victim choice: the next few
            // decommissions will take the minidisks with the fewest valid
            // LBAs, so drain those units first.
            let mut candidates = slot.ssd.minidisks();
            candidates.sort_by_key(|m| (slot.ssd.minidisk_valid_lbas(*m).unwrap_or(0), m.0));
            for victim in candidates.into_iter().take(3) {
                if let Some(&unit) = self.devices[i].units.get(&victim) {
                    // Cordon first so repairs and drains stop targeting
                    // the at-risk unit, then move its chunks away.
                    self.cluster.cordon_unit(unit);
                    self.store.drain_unit(&mut self.cluster, unit, drain_budget);
                }
            }
        }
    }

    /// Drain device events into diFS actions.
    pub fn pump_events(&mut self) {
        let mut new_units = false;
        for i in 0..self.devices.len() {
            let events = self.devices[i].ssd.poll_events();
            for e in events {
                match e {
                    HostEvent::MinidiskFailed { id, draining, .. } => {
                        if let Some(unit) = self.devices[i].units.remove(&id) {
                            self.store.fail_unit(&mut self.cluster, unit);
                        }
                        if draining {
                            // Re-replication is synchronous in this
                            // harness; release the grace hold right away.
                            let _ = self.devices[i].ssd.ack_decommission(id);
                        }
                    }
                    HostEvent::MinidiskPurged { .. } => {
                        // The unit already failed at decommission time;
                        // nothing further to do fleet-side.
                    }
                    HostEvent::MinidiskCreated { id, .. } => {
                        let cap = {
                            let slot = &self.devices[i];
                            self.unit_capacity(&slot.ssd, id)
                        };
                        let device = self.devices[i].device;
                        let unit = self.cluster.add_unit(device, cap);
                        self.devices[i].units.insert(id, unit);
                        new_units = true;
                    }
                    HostEvent::DeviceFailed => {
                        let device = self.devices[i].device;
                        self.store.fail_device(&mut self.cluster, device);
                        self.devices[i].units.clear();
                    }
                    HostEvent::UnrecoverableRead { .. } => {
                        // Device-level data loss; the chunk still has
                        // replicas elsewhere, nothing to do fleet-wide.
                    }
                }
            }
        }
        if new_units {
            self.store.retry_pending(&mut self.cluster);
        }
    }

    /// Recovery metrics so far.
    pub fn metrics(&self) -> StoreMetrics {
        self.store.metrics()
    }

    /// The per-round durability rollups folded so far, ascending by
    /// round (one per [`Self::churn`] call).
    pub fn cluster_rollups(&self) -> Vec<ClusterRollup> {
        self.cluster_kernel.rollups()
    }

    /// The diFS cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The chunk store.
    pub fn store(&self) -> &ChunkStore {
        &self.store
    }

    /// Live devices.
    pub fn alive_devices(&self) -> usize {
        self.devices.iter().filter(|d| !d.ssd.is_dead()).count()
    }

    /// Access one attached SSD.
    pub fn ssd(&self, index: usize) -> &SalamanderSsd {
        &self.devices[index].ssd
    }

    /// Consistency check across the bridge (tests only).
    pub fn check_invariants(&self) -> Result<(), String> {
        self.store.check_invariants(&self.cluster)?;
        for (i, slot) in self.devices.iter().enumerate() {
            for (m, u) in &slot.units {
                if !slot.ssd.minidisks().contains(m) {
                    return Err(format!("device {i}: stale unit for {m:?}"));
                }
                let unit = self
                    .cluster
                    .unit(*u)
                    .ok_or(format!("device {i}: unknown unit {u:?}"))?;
                if !unit.alive {
                    return Err(format!("device {i}: tracked unit {u:?} is dead"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use salamander::config::Mode;

    fn ssd_cfg(mode: Mode, seed: u64) -> SsdConfig {
        SsdConfig::small_test().mode(mode).seed(seed)
    }

    fn difs_cfg() -> DifsConfig {
        DifsConfig {
            replication: 3,
            chunk_bytes: 256 * 1024, // = small_test minidisk size
            recovery_chunks_per_tick: None,
        }
    }

    #[test]
    fn shrinking_devices_trigger_recovery() {
        let mut h = ClusterHarness::new(difs_cfg());
        for s in 0..4 {
            h.add_device(ssd_cfg(Mode::Shrink, 100 + s));
        }
        let created = h.fill(0.8);
        assert!(created > 0);
        h.check_invariants().unwrap();
        // Wear the devices until minidisks start failing.
        for _ in 0..40 {
            h.churn(10_000);
            h.check_invariants().unwrap();
            if h.metrics().recovery_bytes > 0 {
                return; // recovery observed, invariants held throughout
            }
        }
        panic!("no recovery traffic despite fast wear");
    }

    #[test]
    fn regen_devices_add_units() {
        let mut h = ClusterHarness::new(difs_cfg());
        for s in 0..4 {
            h.add_device(ssd_cfg(Mode::Regen, 200 + s));
        }
        h.fill(0.5);
        let units_before = h.cluster().units().count();
        for _ in 0..60 {
            h.churn(10_000);
        }
        h.check_invariants().unwrap();
        let units_after = h.cluster().units().count();
        assert!(
            units_after > units_before,
            "regeneration should register new units ({units_before} -> {units_after})"
        );
    }

    #[test]
    fn baseline_device_fails_whole() {
        let mut h = ClusterHarness::new(difs_cfg());
        for s in 0..4 {
            h.add_device(ssd_cfg(Mode::Baseline, 300 + s));
        }
        h.fill(0.5);
        for _ in 0..120 {
            h.churn(10_000);
            if h.alive_devices() < 4 {
                break;
            }
        }
        assert!(h.alive_devices() < 4, "some baseline device must brick");
        h.check_invariants().unwrap();
        // Whole-device failure recovered everything it held.
        assert!(h.metrics().recovery_bytes > 0);
    }

    #[test]
    fn observed_harness_traces_recovery() {
        use salamander_obs::TraceEvent;
        let mut h = ClusterHarness::new(difs_cfg()).with_obs(Obs::recording());
        for s in 0..4 {
            h.add_device(ssd_cfg(Mode::Shrink, 100 + s));
        }
        h.fill(0.8);
        for _ in 0..40 {
            h.churn(10_000);
            if h.metrics().recovery_bytes > 0 {
                break;
            }
        }
        let m = h.metrics();
        assert!(m.recovery_bytes > 0, "no recovery traffic despite wear");
        let trace = h.obs().trace.take();
        let rereplicated: u64 = trace
            .iter()
            .map(|r| match r.event {
                TraceEvent::ChunkReReplicated { bytes, .. } => bytes,
                _ => 0,
            })
            .sum();
        assert_eq!(rereplicated, m.recovery_bytes);
        // Device-level wear events share the same trace stream.
        assert!(trace
            .iter()
            .any(|r| matches!(r.event, TraceEvent::MdiskDecommissioned { .. })));
        let metrics = h.obs().metrics.snapshot();
        assert_eq!(
            metrics.counter("salamander_difs_recovery_bytes_total"),
            m.recovery_bytes
        );
        assert_eq!(
            metrics.gauge("salamander_difs_under_replicated"),
            Some(m.under_replicated as f64)
        );
    }

    #[test]
    fn churn_emits_cluster_rollups() {
        use salamander_obs::TraceEvent;
        let mut h = ClusterHarness::new(difs_cfg()).with_obs(Obs::recording());
        for s in 0..4 {
            h.add_device(ssd_cfg(Mode::Shrink, 100 + s));
        }
        h.fill(0.5);
        for _ in 0..5 {
            h.churn(1_000);
        }
        let trace = h.obs().trace.take();
        let rollups: Vec<_> = trace
            .iter()
            .filter_map(|r| match &r.event {
                TraceEvent::ClusterRollup(c) => Some(c),
                _ => None,
            })
            .collect();
        assert_eq!(rollups.len(), 5, "one rollup per churn round");
        assert_eq!(rollups[0].day, 1);
        assert!(rollups[0].full > 0, "filled chunks appear as full");
        assert!(
            rollups[0].fullness.iter().sum::<u32>() > 0,
            "alive units populate the fullness histogram"
        );
        assert_eq!(
            h.cluster_rollups(),
            rollups.into_iter().cloned().collect::<Vec<_>>(),
            "the kernel folds the same series the trace records"
        );
    }

    #[test]
    fn chunk_size_must_divide_msize() {
        let mut h = ClusterHarness::new(DifsConfig {
            replication: 3,
            chunk_bytes: 100_000,
            recovery_chunks_per_tick: None,
        });
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            h.add_device(ssd_cfg(Mode::Shrink, 1));
        }));
        assert!(result.is_err());
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use salamander::config::Mode;

    fn limited_difs() -> DifsConfig {
        DifsConfig {
            replication: 3,
            chunk_bytes: 256 * 1024,
            recovery_chunks_per_tick: Some(2),
        }
    }

    fn run(policy: RecoveryPolicy, seed: u64) -> (u64, u64, u64) {
        let mut h = ClusterHarness::new(limited_difs()).with_policy(policy);
        for s in 0..6 {
            h.add_device(SsdConfig::small_test().mode(Mode::Shrink).seed(seed + s));
        }
        h.fill(0.6);
        for _ in 0..1500 {
            h.churn(250);
            if h.alive_devices() == 0 {
                break;
            }
        }
        let m = h.metrics();
        (m.exposure_chunk_ticks, m.lost_chunks, m.migration_bytes)
    }

    #[test]
    fn proactive_drains_reduce_exposure() {
        let (reactive_exposure, _, reactive_migration) = run(RecoveryPolicy::Reactive, 700);
        let (proactive_exposure, _, proactive_migration) = run(
            RecoveryPolicy::Proactive {
                margin: 2.0,
                drain_budget: 8,
            },
            700,
        );
        assert_eq!(reactive_migration, 0, "reactive never migrates");
        assert!(proactive_migration > 0, "proactive must migrate data");
        assert!(
            proactive_exposure < reactive_exposure,
            "proactive {proactive_exposure} vs reactive {reactive_exposure} chunk-ticks"
        );
    }

    #[test]
    fn smart_headroom_shrinks_with_wear() {
        let mut h = ClusterHarness::new(limited_difs());
        h.add_device(SsdConfig::small_test().mode(Mode::Shrink).seed(1));
        let before = h.ssd(0).smart();
        h.churn(4_000);
        let after = h.ssd(0).smart();
        assert!(after.avg_pec > before.avg_pec);
        assert!(after.life_remaining < before.life_remaining);
        // Headroom sawtooths (each decommission restores up to one
        // minidisk of slack) but stays under one minidisk by protocol.
        let msize = h.ssd(0).config().ftl_config().lbas_per_mdisk() as u64;
        assert!(after.headroom_opages < msize);
        // Wear is visible in the histogram: pages have left L0.
        assert!(after.level_histogram[0] < before.level_histogram[0]);
    }
}
