//! Statistical single-device wear model.
//!
//! Under ideal wear leveling every page sees the same erase count `w`, so
//! with per-page endurance variance `v_i` (lognormal, drawn from the same
//! [`RberModel`] as the functional simulator) a page's projected RBER is
//! `mean_rber(w) · v_i`. Sorting `v` once makes per-level page counts a
//! pair of binary searches per step — O(log n) per device-day instead of
//! simulating millions of individual writes.
//!
//! The model is mode-aware:
//! - **Baseline** bricks when the fraction of *blocks* containing any
//!   failed page crosses the bad-block limit (block max-variance array).
//! - **ShrinkS** retires pages individually; committed capacity shrinks in
//!   minidisk quanta as usable capacity drops.
//! - **RegenS** lets pages fall to lower code rates up to the cap before
//!   dying, so capacity declines by one oPage per transition instead of
//!   four.

use salamander_ecc::profile::{EccConfig, Tiredness};
use salamander_flash::geometry::FlashGeometry;
use salamander_flash::rber::{MeanRberLut, RberModel};
use salamander_flash::voltage::{CellMode, VoltageModel};
use serde::{Deserialize, Serialize};

/// Operating mode (mirrors `salamander::Mode` without the dependency
/// cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StatMode {
    /// Conventional bricking SSD.
    Baseline,
    /// Page-granular shrinking.
    Shrink,
    /// Shrinking plus tiredness levels up to `max_level`.
    Regen {
        /// Highest usable tiredness level.
        max_level: Tiredness,
    },
}

/// Configuration of a statistical device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StatDeviceConfig {
    /// Flash geometry (page counts and sizes).
    pub geometry: FlashGeometry,
    /// Wear model.
    pub rber: RberModel,
    /// ECC layout (tiredness thresholds).
    pub ecc: EccConfig,
    /// Mode.
    pub mode: StatMode,
    /// Minidisk size in oPages.
    pub msize_opages: u64,
    /// Over-provisioning fraction.
    pub op_fraction: f64,
    /// Classification safety factor (see the FTL's `rber_safety_factor`).
    pub safety: f64,
    /// Baseline bad-block brick threshold.
    pub bad_block_limit: f64,
    /// Average write amplification applied to host writes.
    pub write_amplification: f64,
    /// ZombieNAND/Phoenix-style rebirth (§2's orthogonal related work):
    /// pages worn past their last usable tiredness level are reborn at a
    /// lower bit density, serving `endurance(mode)/endurance(TLC)` times
    /// their TLC lifetime at `bits/3` of their capacity. `None` disables.
    pub rebirth: Option<CellMode>,
}

/// Minidisk quantum with a degenerate `msize_opages == 0` treated as 1
/// (no quantization) instead of dividing by zero.
pub(crate) fn minidisk_quantum(cfg: &StatDeviceConfig) -> u64 {
    cfg.msize_opages.max(1)
}

/// Initial committed capacity: the logical (post-OP) capacity rounded
/// down to whole minidisks. Shared by [`StatDevice`] and the cohort
/// engine so the two paths can never disagree on day-0 state.
pub(crate) fn initial_committed(cfg: &StatDeviceConfig) -> u64 {
    let raw = cfg.geometry.total_opages();
    let logical = (raw as f64 * (1.0 - cfg.op_fraction)) as u64;
    logical / minidisk_quantum(cfg) * minidisk_quantum(cfg)
}

/// Endurance multiplier of the rebirth mode vs TLC (1.0 = disabled).
pub(crate) fn rebirth_endurance_ratio(cfg: &StatDeviceConfig, thresholds: &[f64]) -> f64 {
    match cfg.rebirth {
        None => 1.0,
        Some(mode) => {
            let v = VoltageModel::default();
            let tlc = v.endurance(CellMode::Tlc, thresholds[0]).max(1) as f64;
            v.endurance(mode, thresholds[0]) as f64 / tlc
        }
    }
}

/// Max usable tiredness level for `mode` given the threshold table.
pub(crate) fn max_level_for(mode: StatMode, n_thresholds: usize) -> u32 {
    match mode {
        StatMode::Baseline | StatMode::Shrink => 0,
        StatMode::Regen { max_level } => max_level.index().min(n_thresholds as u32 - 1),
    }
}

impl StatDeviceConfig {
    /// Default datacenter-style device: medium geometry, default wear.
    pub fn datacenter(mode: StatMode) -> Self {
        StatDeviceConfig {
            geometry: FlashGeometry::medium(),
            rber: RberModel::default(),
            ecc: EccConfig::default(),
            mode,
            msize_opages: 256, // 1 MiB of 4 KiB oPages
            op_fraction: 0.07,
            safety: 1.25,
            bad_block_limit: 0.025,
            write_amplification: 2.0,
            rebirth: None,
        }
    }
}

/// The statistical device.
#[derive(Debug, Clone)]
pub struct StatDevice {
    cfg: StatDeviceConfig,
    /// Per-page endurance variance, ascending.
    variances: Vec<f64>,
    /// Per-block max endurance variance, ascending (baseline brick).
    block_max_variances: Vec<f64>,
    /// Tiredness thresholds (max RBER per level).
    thresholds: Vec<f64>,
    /// Uniform wear (erase cycles per page).
    wear: f64,
    /// Committed logical capacity in oPages.
    committed: u64,
    /// Initial committed capacity.
    initial_committed: u64,
    /// Endurance multiplier of the rebirth mode vs TLC (1.0 = disabled).
    rebirth_endurance_ratio: f64,
    /// Memoized wear → mean-RBER curve (bit-exact vs `cfg.rber`); the
    /// fleet loop evaluates it once per device-day at integer wear.
    mean_lut: MeanRberLut,
    dead: bool,
}

impl StatDevice {
    /// Build a device; page variances are drawn from `seed`.
    pub fn new(cfg: StatDeviceConfig, seed: u64) -> Self {
        let n_pages = cfg.geometry.total_fpages() as usize;
        let mut variances = cfg.rber.draw_variances(n_pages, seed);
        let per_block = cfg.geometry.fpages_per_block as usize;
        let mut block_max: Vec<f64> = variances
            .chunks(per_block)
            .map(|c| c.iter().cloned().fold(0.0, f64::max))
            .collect();
        // `total_cmp` instead of `partial_cmp().unwrap()`: a NaN from a
        // degenerate model tweak must never panic the construction path
        // (it sorts last and falls out of every `<= cut` count instead).
        variances.sort_unstable_by(f64::total_cmp);
        block_max.sort_unstable_by(f64::total_cmp);
        let thresholds = cfg.ecc.thresholds();
        let committed = initial_committed(&cfg);
        let rebirth_endurance_ratio = rebirth_endurance_ratio(&cfg, &thresholds);
        StatDevice {
            cfg,
            variances,
            block_max_variances: block_max,
            thresholds,
            wear: 0.0,
            committed,
            initial_committed: committed,
            rebirth_endurance_ratio,
            mean_lut: MeanRberLut::new(cfg.rber),
            // A device whose geometry cannot back even one minidisk is
            // born dead — it must not haunt the fleet as a zero-capacity
            // survivor.
            dead: committed == 0,
        }
    }

    /// Whether the device has failed.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Force-fail the device (AFR events, operator retirement).
    pub fn kill(&mut self) {
        self.dead = true;
        self.committed = 0;
    }

    /// Committed logical capacity in oPages.
    pub fn committed_opages(&self) -> u64 {
        self.committed
    }

    /// Initial committed capacity in oPages.
    pub fn initial_opages(&self) -> u64 {
        self.initial_committed
    }

    /// Current wear (average erase cycles per page).
    pub fn wear(&self) -> f64 {
        self.wear
    }

    /// Max usable tiredness level for the current mode.
    fn max_level(&self) -> u32 {
        max_level_for(self.cfg.mode, self.thresholds.len())
    }

    /// The variance above which a page at wear `w` exceeds `threshold`.
    fn variance_cut(&self, threshold: f64) -> f64 {
        let mean = self.mean_lut.mean_rber(self.wear as u32);
        if mean <= 0.0 {
            return f64::INFINITY;
        }
        threshold / (mean * self.cfg.safety)
    }

    /// Number of pages at exactly tiredness level `j` (the `limbo[L_j]`
    /// counters, derived analytically).
    pub fn pages_at_level(&self, j: u32) -> u64 {
        let max = self.max_level();
        if j > max + 1 {
            return 0;
        }
        // Pages at level ≤ j have variance ≤ cut(threshold_j); level j
        // exactly is the difference of cumulative counts.
        let below = |level: i64| -> u64 {
            if level < 0 {
                return 0;
            }
            let level = (level as u32).min(max);
            let cut = self.variance_cut(self.thresholds[level as usize]);
            self.count_below(&self.variances, cut)
        };
        if j <= max {
            below(j as i64) - below(j as i64 - 1)
        } else {
            // Dead pages: everything past the cap.
            self.variances.len() as u64 - below(max as i64)
        }
    }

    /// Usable capacity in oPages (Eq. 1 aggregate, plus reborn capacity
    /// when the rebirth extension is enabled).
    pub fn usable_opages(&self) -> u64 {
        let per = self.cfg.geometry.opages_per_fpage() as u64;
        let max = self.max_level();
        let regular: u64 = (0..=max)
            .map(|j| (per - j as u64) * self.pages_at_level(j))
            .sum();
        regular + self.reborn_opages()
    }

    /// Capacity from pages reborn at a lower bit density: pages past the
    /// tiredness cap whose rebirth-mode endurance still exceeds the
    /// current wear. With uniform wear `w`, a page of variance `v` dies
    /// (as TLC) at `d(v)`; it serves reborn until `ratio · d(v)`, i.e.
    /// while `v < cut(w / ratio)`.
    pub fn reborn_opages(&self) -> u64 {
        let Some(mode) = self.cfg.rebirth else {
            return 0;
        };
        let max = self.max_level();
        let last_threshold = self.thresholds[max as usize];
        let dead_cut = self.variance_cut(last_threshold);
        let reborn_wear = self.wear / self.rebirth_endurance_ratio;
        let mean = self.mean_lut.mean_rber(reborn_wear as u32);
        let reborn_cut = if mean <= 0.0 {
            f64::INFINITY
        } else {
            last_threshold / (mean * self.cfg.safety)
        };
        let dead_count = self.variances.len() as u64 - self.count_below(&self.variances, dead_cut);
        // `saturating_sub`: the cuts satisfy `reborn_cut >= dead_cut` for
        // every real cell mode (rebirth never *raises* density), but a
        // hostile config must clamp to zero, not underflow.
        let still_ok = self
            .count_below(&self.variances, reborn_cut)
            .saturating_sub(self.count_below(&self.variances, dead_cut));
        let reborn_pages = still_ok.min(dead_count);
        let per = self.cfg.geometry.opages_per_fpage() as f64;
        (reborn_pages as f64 * per * mode.capacity_vs_tlc()) as u64
    }

    fn count_below(&self, sorted: &[f64], cut: f64) -> u64 {
        sorted.partition_point(|&v| v <= cut) as u64
    }

    /// Fraction of blocks containing at least one failed (beyond-L0) page.
    pub fn bad_block_fraction(&self) -> f64 {
        let cut = self.variance_cut(self.thresholds[0]);
        let ok = self.count_below(&self.block_max_variances, cut);
        1.0 - ok as f64 / self.block_max_variances.len() as f64
    }

    /// Apply `host_opages` of writes, advancing wear, then re-run the
    /// capacity protocol. Returns the change in committed capacity
    /// (negative = shrank).
    pub fn apply_writes(&mut self, host_opages: u64) -> i64 {
        if self.dead {
            return 0;
        }
        let before = self.committed;
        // Wear spreads (with write amplification) over the usable pool.
        let usable = self.usable_opages().max(1);
        self.wear += host_opages as f64 * self.cfg.write_amplification / usable as f64;
        match self.cfg.mode {
            StatMode::Baseline => {
                if self.bad_block_fraction() > self.cfg.bad_block_limit {
                    self.kill();
                }
            }
            StatMode::Shrink | StatMode::Regen { .. } => {
                // Shrink committed to what the usable pool can back, in
                // minidisk quanta, keeping the OP reserve.
                let usable = self.usable_opages();
                let reserve = (usable as f64 * self.cfg.op_fraction) as u64;
                let msize = minidisk_quantum(&self.cfg);
                let backable = usable.saturating_sub(reserve) / msize * msize;
                // Monotone non-increasing: regenerated capacity at lower
                // levels is already inside `usable`, so `backable` includes
                // it; a Salamander device never grows past its start.
                self.committed = self.committed.min(backable).min(self.initial_committed);
                if self.committed == 0 {
                    self.kill();
                }
            }
        }
        self.committed as i64 - before as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(mode: StatMode) -> StatDeviceConfig {
        StatDeviceConfig {
            geometry: FlashGeometry::small_test(),
            ..StatDeviceConfig::datacenter(mode)
        }
    }

    /// Total host writes a device absorbs before death, stepping by
    /// `step` oPages.
    fn lifetime(mode: StatMode, seed: u64) -> u64 {
        let mut d = StatDevice::new(cfg(mode), seed);
        let step = 10_000;
        let mut total = 0u64;
        while !d.is_dead() && total < 20_000_000_000 {
            d.apply_writes(step);
            total += step;
        }
        total
    }

    #[test]
    fn fresh_device_fully_usable() {
        let d = StatDevice::new(cfg(StatMode::Shrink), 1);
        assert_eq!(d.pages_at_level(0), 256);
        assert_eq!(d.usable_opages(), 1024);
        assert!(d.committed_opages() > 0);
        assert_eq!(d.bad_block_fraction(), 0.0);
    }

    #[test]
    fn wear_moves_pages_up_levels() {
        let mut d = StatDevice::new(
            cfg(StatMode::Regen {
                max_level: Tiredness::L1,
            }),
            2,
        );
        // Push wear to where the median page is near the L0 threshold.
        let target = d.cfg.rber.pec_at_rber(d.thresholds[0]);
        d.wear = target as f64;
        let l0 = d.pages_at_level(0);
        let l1 = d.pages_at_level(1);
        assert!(l0 > 0 && l1 > 0, "l0={l0} l1={l1}");
        assert!(d.usable_opages() < 1024);
    }

    #[test]
    fn lifetime_ordering_baseline_shrink_regen() {
        let base = lifetime(StatMode::Baseline, 3);
        let shrink = lifetime(StatMode::Shrink, 3);
        let regen = lifetime(
            StatMode::Regen {
                max_level: Tiredness::L1,
            },
            3,
        );
        assert!(
            shrink as f64 > base as f64 * 1.05,
            "shrink {shrink} vs base {base}"
        );
        assert!(regen > shrink, "regen {regen} vs shrink {shrink}");
    }

    #[test]
    fn shrink_capacity_monotone_in_quanta() {
        let mut d = StatDevice::new(cfg(StatMode::Shrink), 4);
        let msize = d.cfg.msize_opages;
        let mut prev = d.committed_opages();
        while !d.is_dead() {
            d.apply_writes(50_000);
            let now = d.committed_opages();
            assert!(now <= prev);
            assert_eq!(now % msize, 0, "capacity moves in minidisk quanta");
            prev = now;
        }
        assert_eq!(prev, 0);
    }

    #[test]
    fn baseline_bricks_abruptly() {
        let mut d = StatDevice::new(cfg(StatMode::Baseline), 5);
        let mut last_committed = d.committed_opages();
        while !d.is_dead() {
            last_committed = d.committed_opages();
            d.apply_writes(50_000);
        }
        // Full capacity right up to the brick.
        assert_eq!(last_committed, d.initial_opages());
    }

    #[test]
    fn kill_is_terminal() {
        let mut d = StatDevice::new(cfg(StatMode::Shrink), 6);
        d.kill();
        assert!(d.is_dead());
        assert_eq!(d.committed_opages(), 0);
        assert_eq!(d.apply_writes(1000), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(lifetime(StatMode::Shrink, 7), lifetime(StatMode::Shrink, 7));
    }

    #[test]
    fn committed_capacity_is_whole_minidisks() {
        // Logical capacity here is 1024·0.93 = 952 oPages, deliberately
        // not a multiple of the 100-oPage quantum: committed must round
        // *down* to 900, never up past what the pool can back.
        let c = StatDeviceConfig {
            msize_opages: 100,
            ..cfg(StatMode::Shrink)
        };
        let d = StatDevice::new(c, 1);
        assert_eq!(d.committed_opages(), 900);
        assert_eq!(d.committed_opages() % 100, 0);
    }

    #[test]
    fn zero_minidisk_quantum_means_no_quantization() {
        // msize_opages == 0 used to divide by zero; it now degrades to a
        // 1-oPage quantum (no rounding) instead of panicking.
        let c = StatDeviceConfig {
            msize_opages: 0,
            ..cfg(StatMode::Shrink)
        };
        let mut d = StatDevice::new(c, 1);
        assert_eq!(d.committed_opages(), 952); // 1024 · (1 − 0.07)
        d.apply_writes(50_000);
        assert!(d.committed_opages() <= 952);
    }

    #[test]
    fn device_too_small_for_one_minidisk_is_born_dead() {
        // A quantum larger than the logical capacity leaves nothing to
        // commit; such a device must be dead from day 0 in every mode,
        // not a zero-capacity immortal (Baseline ignored `committed`).
        for mode in [
            StatMode::Baseline,
            StatMode::Shrink,
            StatMode::Regen {
                max_level: Tiredness::L1,
            },
        ] {
            let c = StatDeviceConfig {
                msize_opages: 4096, // > 952 logical oPages
                ..cfg(mode)
            };
            let mut d = StatDevice::new(c, 1);
            assert_eq!(d.committed_opages(), 0, "{mode:?}");
            assert!(d.is_dead(), "{mode:?}: zero-capacity device must be dead");
            assert_eq!(d.apply_writes(1000), 0, "{mode:?}");
        }
    }

    #[test]
    fn level_counts_partition_pages() {
        let mut d = StatDevice::new(
            cfg(StatMode::Regen {
                max_level: Tiredness::L2,
            }),
            8,
        );
        for wear in [0u32, 1000, 3000, 5000, 10000] {
            d.wear = wear as f64;
            let total: u64 = (0..=3).map(|j| d.pages_at_level(j)).sum();
            assert_eq!(total, 256, "wear {wear}: counts must partition");
        }
    }
}

#[cfg(test)]
mod rebirth_tests {
    use super::*;
    use salamander_flash::voltage::CellMode;

    fn cfg_rebirth(mode: Option<CellMode>) -> StatDeviceConfig {
        StatDeviceConfig {
            geometry: FlashGeometry::small_test(),
            rebirth: mode,
            mode: StatMode::Regen {
                max_level: Tiredness::L1,
            },
            ..StatDeviceConfig::datacenter(StatMode::Shrink)
        }
    }

    fn lifetime(mode: Option<CellMode>, seed: u64) -> u64 {
        let mut d = StatDevice::new(cfg_rebirth(mode), seed);
        let step = 10_000;
        let mut total = 0u64;
        while !d.is_dead() && total < 100_000_000_000 {
            d.apply_writes(step);
            total += step;
        }
        total
    }

    #[test]
    fn fresh_device_has_no_reborn_capacity() {
        let d = StatDevice::new(cfg_rebirth(Some(CellMode::Slc)), 1);
        assert_eq!(d.reborn_opages(), 0);
    }

    #[test]
    fn rebirth_extends_lifetime() {
        let none = lifetime(None, 2);
        let slc = lifetime(Some(CellMode::Slc), 2);
        let mlc = lifetime(Some(CellMode::Mlc), 2);
        assert!(
            slc as f64 > none as f64 * 1.2,
            "SLC rebirth {slc} vs plain {none}"
        );
        assert!(mlc > none, "MLC rebirth {mlc} vs plain {none}");
    }

    #[test]
    fn reborn_capacity_appears_as_pages_die() {
        let mut d = StatDevice::new(cfg_rebirth(Some(CellMode::Slc)), 3);
        // Advance until some pages have died (past L1 at this cap).
        while d.pages_at_level(2) == 0 && !d.is_dead() {
            d.apply_writes(50_000);
        }
        assert!(d.reborn_opages() > 0, "dead pages should serve reborn");
        // Reborn capacity is bounded by dead pages at SLC's 1/3 ratio.
        let per = d.cfg.geometry.opages_per_fpage() as u64;
        let dead = d.pages_at_level(2);
        assert!(d.reborn_opages() <= dead * per / 3 + 1);
    }

    #[test]
    fn tlc_rebirth_adds_nothing() {
        // Rebirth at the same density is a no-op by construction.
        let none = lifetime(None, 4);
        let tlc = lifetime(Some(CellMode::Tlc), 4);
        assert_eq!(none, tlc);
    }
}
