//! Fleet-level simulation for the Salamander reproduction.
//!
//! The paper's Fig. 3 is fleet-scale: a batch of SSDs deployed together,
//! aging under datacenter write pressure. This crate provides:
//!
//! - [`device`] — [`device::StatDevice`]: a statistical single-device wear
//!   model sharing the exact RBER/ECC math of `salamander-flash` and
//!   `salamander-ecc`, but advancing wear analytically (ideal wear
//!   leveling ⇒ per-level page counts follow from the sorted endurance-
//!   variance distribution), so fleets of hundreds of devices simulate in
//!   milliseconds. Validated against the full FTL in integration tests.
//! - [`cohort`] — [`cohort::Cohort`]: the struct-of-arrays batch engine
//!   (ROADMAP item 1) stepping whole device cohorts with one shared
//!   `MeanRberLut` and amortized cut cursors — bit-identical to
//!   [`device::StatDevice`] trajectories, fast enough for 100k–1M-device
//!   fleets.
//! - [`sim`] — [`sim::FleetSim`]: N devices × DWPD aging × random (AFR)
//!   failures → the Fig. 3a (functioning devices) and Fig. 3b (available
//!   capacity) time series, via either engine ([`sim::FleetEngine`]).
//! - [`perf`] — the §4.2 performance model: sequential-throughput and
//!   large-random-latency degradation as fPages migrate to L1
//!   (Fig. 3c/3d).
//! - [`bridge`] — [`bridge::ClusterHarness`]: wires *real* FTL devices to
//!   the diFS chunk store, translating minidisk lifecycle events into unit
//!   failures/additions, for the §4.3 recovery-traffic experiments.

pub mod bridge;
pub mod cohort;
pub mod device;
pub mod perf;
pub mod replace;
pub mod sim;

pub use bridge::ClusterHarness;
pub use cohort::Cohort;
pub use device::StatDevice;
pub use replace::{ReplacementConfig, ReplacementResult, ReplacementSim};
pub use sim::{FleetConfig, FleetEngine, FleetHealth, FleetSim, FleetTimeline, ObservedFleetRun};
