//! Steady-state fleet with replacement purchasing: deriving Eq. 3's
//! upgrade rate from simulation.
//!
//! §4.1 of the paper *assumes* upgrade rates (`Ru = 0.9` for ShrinkS,
//! `0.8` for RegenS) from first-order lifetime arguments. This module
//! closes the loop: operate a fleet against a fixed capacity target —
//! when devices die or shrink, buy replacements until the target is met
//! again — and measure the actual purchase rate per mode. The ratio of a
//! Salamander fleet's purchase rate to the baseline's is the simulated
//! `Ru`, directly pluggable into `salamander_sustain::carbon`.

use crate::device::{StatDevice, StatDeviceConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Replacement-fleet parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplacementConfig {
    /// Device model.
    pub device: StatDeviceConfig,
    /// Devices in the initial deployment (also sets the capacity target).
    pub initial_devices: u32,
    /// Drive writes per day per device.
    pub dwpd: f64,
    /// Lognormal sigma of per-device load imbalance.
    pub dwpd_sigma: f64,
    /// Annual failure rate from non-wear causes.
    pub afr: f64,
    /// Horizon in days.
    pub horizon_days: u32,
    /// RNG seed.
    pub seed: u64,
}

/// Result of a replacement run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplacementResult {
    /// Devices bought after the initial deployment.
    pub purchases: u32,
    /// Simulated days.
    pub days: u32,
    /// Purchases per device-slot per year — the raw buying rate.
    pub purchase_rate_per_year: f64,
}

impl ReplacementResult {
    /// The simulated upgrade rate of `self` relative to `baseline`
    /// (Eq. 3's `Ru_{S|B}`).
    pub fn upgrade_rate_vs(&self, baseline: &ReplacementResult) -> f64 {
        if baseline.purchases == 0 {
            return 1.0;
        }
        self.purchases as f64 / baseline.purchases as f64
    }
}

/// The replacement-fleet simulator.
#[derive(Debug, Clone)]
pub struct ReplacementSim {
    cfg: ReplacementConfig,
}

impl ReplacementSim {
    /// Build a simulator.
    pub fn new(cfg: ReplacementConfig) -> Self {
        ReplacementSim { cfg }
    }

    /// Run the fleet against its capacity target and count purchases.
    pub fn run(&self) -> ReplacementResult {
        let cfg = &self.cfg;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xF1EE7);
        let mut next_seed = cfg.seed;
        let mut new_device = |rng: &mut ChaCha8Rng| {
            next_seed = next_seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let d = StatDevice::new(cfg.device, next_seed);
            let jitter = if cfg.dwpd_sigma > 0.0 {
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (cfg.dwpd_sigma * z).exp()
            } else {
                1.0
            };
            let daily = (cfg.dwpd * jitter * d.initial_opages() as f64) as u64;
            (d, daily)
        };
        let mut fleet: Vec<(StatDevice, u64)> = (0..cfg.initial_devices)
            .map(|_| new_device(&mut rng))
            .collect();
        let target: u64 = fleet.iter().map(|(d, _)| d.initial_opages()).sum();
        let daily_afr = 1.0 - (1.0 - cfg.afr).powf(1.0 / 365.0);
        let mut purchases = 0u32;
        for _day in 1..=cfg.horizon_days {
            for (d, w) in fleet.iter_mut() {
                if d.is_dead() {
                    continue;
                }
                d.apply_writes(*w);
                if !d.is_dead() && rng.gen_bool(daily_afr) {
                    d.kill();
                }
            }
            // Operator policy: keep fleet capacity at the target. Dead
            // devices leave the racks; shrunk ones keep serving and new
            // drives make up the shortfall.
            fleet.retain(|(d, _)| !d.is_dead());
            let mut capacity: u64 = fleet.iter().map(|(d, _)| d.committed_opages()).sum();
            while capacity < target {
                let (d, w) = new_device(&mut rng);
                capacity += d.committed_opages();
                fleet.push((d, w));
                purchases += 1;
            }
        }
        ReplacementResult {
            purchases,
            days: cfg.horizon_days,
            purchase_rate_per_year: purchases as f64
                / cfg.initial_devices as f64
                / (cfg.horizon_days as f64 / 365.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::StatMode;
    use salamander_ecc::profile::Tiredness;
    use salamander_flash::geometry::FlashGeometry;

    fn run(mode: StatMode, seed: u64) -> ReplacementResult {
        let device = StatDeviceConfig {
            geometry: FlashGeometry::small_test(),
            ..StatDeviceConfig::datacenter(mode)
        };
        ReplacementSim::new(ReplacementConfig {
            device,
            initial_devices: 40,
            dwpd: 20.0, // aggressive: several device generations per run
            dwpd_sigma: 0.25,
            afr: 0.01,
            horizon_days: 1500,
            seed,
        })
        .run()
    }

    #[test]
    fn fleets_keep_buying_replacements() {
        let r = run(StatMode::Baseline, 1);
        assert!(
            r.purchases > 40,
            "several generations expected: {}",
            r.purchases
        );
        assert!(r.purchase_rate_per_year > 0.0);
    }

    #[test]
    fn simulated_upgrade_rate_ordering_matches_eq3() {
        let base = run(StatMode::Baseline, 2);
        let shrink = run(StatMode::Shrink, 2);
        let regen = run(
            StatMode::Regen {
                max_level: Tiredness::L1,
            },
            2,
        );
        let ru_shrink = shrink.upgrade_rate_vs(&base);
        let ru_regen = regen.upgrade_rate_vs(&base);
        // Salamander fleets buy fewer drives; RegenS fewest. The paper's
        // fixed-up analytical values are 0.9 and 0.8.
        assert!(ru_shrink < 1.0, "Ru(shrink) {ru_shrink}");
        assert!(ru_regen < ru_shrink, "Ru(regen) {ru_regen}");
        assert!(ru_regen > 0.4, "not implausibly low: {ru_regen}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(run(StatMode::Shrink, 3), run(StatMode::Shrink, 3));
    }
}
