//! The §4.2 performance model (Fig. 3c / Fig. 3d).
//!
//! An fPage at tiredness level `L` yields only `4−L` oPages per array
//! read, so throughput-bound sequential access and latency-bound large
//! random access degrade by `4/(4−L)` on such pages (25% at L1). Small
//! (one-oPage) random reads still cost one array read and are unaffected.
//!
//! These functions give the *expected* degradation for a device where a
//! fraction `f` of fPages sit at L1 (the paper's x-axis as devices age),
//! both analytically and via the flash timing model for cross-validation.

use salamander_flash::timing::TimingModel;

/// Fraction of stored *data* living on L1 pages when a fraction `f` of
/// pages are L1: L0 pages hold 4 oPages, L1 pages hold 3.
pub fn data_fraction_on_l1(f: f64) -> f64 {
    let f = f.clamp(0.0, 1.0);
    3.0 * f / (4.0 - f)
}

/// Sequential read throughput relative to an all-L0 device, for an L1
/// fraction `f`. Reading a byte stream spread uniformly over the data:
/// time per oPage is `tR/4` on L0 and `tR/3` on L1.
pub fn seq_throughput_rel(f: f64) -> f64 {
    let d = data_fraction_on_l1(f);
    1.0 / ((1.0 - d) + d * (4.0 / 3.0))
}

/// Expected large (16 KiB, four-oPage) random access latency relative to
/// all-L0, for an L1 fraction `f`: on L1 pages the four oPages span
/// amortized `4/3` array reads.
pub fn large_random_latency_rel(f: f64) -> f64 {
    let d = data_fraction_on_l1(f);
    (1.0 - d) + d * (4.0 / 3.0)
}

/// Small (4 KiB) random access latency relative to all-L0: one array read
/// either way (§4.2: "small, random accesses will likely have the same
/// latency in baseline and RegenS").
pub fn small_random_latency_rel(_f: f64) -> f64 {
    1.0
}

/// Cross-check of [`seq_throughput_rel`] against the timing model: mix
/// `f` of L1 pages with `1−f` of L0 and compute aggregate useful bytes
/// per second.
pub fn seq_throughput_rel_timed(f: f64, timing: &TimingModel) -> f64 {
    // Disable the bus cap so the array-time ratio shows through.
    let t = TimingModel {
        xfer_bytes_per_us: f64::INFINITY,
        ..*timing
    };
    let l0 = t.seq_read_throughput(16 * 1024);
    let l1 = t.seq_read_throughput(12 * 1024);
    // Harmonic mix over the data distribution.
    let d = data_fraction_on_l1(f);
    let mixed = 1.0 / ((1.0 - d) / l0 + d / l1);
    mixed / l0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_match_paper() {
        // f = 0: no degradation. f = 1: 25% throughput loss, 4/3 latency.
        assert!((seq_throughput_rel(0.0) - 1.0).abs() < 1e-12);
        assert!((seq_throughput_rel(1.0) - 0.75).abs() < 1e-12);
        assert!((large_random_latency_rel(0.0) - 1.0).abs() < 1e-12);
        assert!((large_random_latency_rel(1.0) - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(small_random_latency_rel(0.5), 1.0);
    }

    #[test]
    fn monotone_in_l1_fraction() {
        let mut prev_tp = f64::INFINITY;
        let mut prev_lat = 0.0;
        for i in 0..=10 {
            let f = i as f64 / 10.0;
            let tp = seq_throughput_rel(f);
            let lat = large_random_latency_rel(f);
            assert!(tp <= prev_tp);
            assert!(lat >= prev_lat);
            prev_tp = tp;
            prev_lat = lat;
        }
    }

    #[test]
    fn data_fraction_sane() {
        assert_eq!(data_fraction_on_l1(0.0), 0.0);
        assert_eq!(data_fraction_on_l1(1.0), 1.0);
        // At f = 0.5: 1.5/3.5 of the data is on L1 pages.
        assert!((data_fraction_on_l1(0.5) - 1.5 / 3.5).abs() < 1e-12);
    }

    #[test]
    fn timed_model_agrees_with_analytical() {
        let t = TimingModel::default();
        for i in 0..=10 {
            let f = i as f64 / 10.0;
            let a = seq_throughput_rel(f);
            let b = seq_throughput_rel_timed(f, &t);
            assert!((a - b).abs() < 1e-9, "f={f}: {a} vs {b}");
        }
    }

    #[test]
    fn integer_cost_model_converges_to_the_analytic_sweep() {
        // The fleet engines price reads through the integer-ns cost
        // model (DESIGN.md §15); its degradation across the L0→L1 sweep
        // must converge to this module's analytic §4.2 curves within
        // quantization error. ECC and bus transfer are zeroed so the
        // array-time ratio shows through, mirroring
        // `seq_throughput_rel_timed`'s uncapped-bus comparison.
        use salamander_obs::{ClassLatency, CostModelNs};
        let m = CostModelNs::from_us(50.0, 600.0, 3000.0, 0.0, 1e12);
        // 1000 fPages so every tenth of the sweep is an exact count.
        const N: u64 = 1000;
        let mean_at = |f: f64| -> f64 {
            let l1 = (f * N as f64).round() as u64;
            let mut c = ClassLatency::default();
            // Each level-j fPage serves 4−j oPages at the multi-read
            // cost — the same weighting the fleet fold applies.
            c.observe(m.host_read_ns(4, 0, 0, 4096), 4 * (N - l1));
            c.observe(m.host_read_ns(4, 1, 0, 4096), 3 * l1);
            c.mean_ns().unwrap() as f64
        };
        let base = mean_at(0.0);
        for i in 0..=10 {
            let f = i as f64 / 10.0;
            let lat = mean_at(f) / base;
            let tp = base / mean_at(f);
            let a_lat = large_random_latency_rel(f);
            let a_tp = seq_throughput_rel(f);
            assert!(
                (lat - a_lat).abs() < 1e-4,
                "f={f}: integer latency rel {lat} vs analytic {a_lat}"
            );
            assert!(
                (tp - a_tp).abs() < 1e-4,
                "f={f}: integer throughput rel {tp} vs analytic {a_tp}"
            );
        }
    }

    #[test]
    fn throughput_latency_reciprocal() {
        // For this model, relative throughput is exactly the reciprocal of
        // relative (amortized) latency.
        for i in 0..=10 {
            let f = i as f64 / 10.0;
            let p = seq_throughput_rel(f) * large_random_latency_rel(f);
            assert!((p - 1.0).abs() < 1e-12);
        }
    }
}
