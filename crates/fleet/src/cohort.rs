//! Struct-of-arrays cohort engine: many statistical devices stepped as
//! parallel columns (ROADMAP item 1).
//!
//! [`crate::device::StatDevice`] is the reference implementation — one
//! heap allocation per device, a private `MeanRberLut` each, and two
//! binary searches per level per day. That is fine for the paper's
//! 100-device figures and far too slow for warehouse scale. A
//! [`Cohort`] holds the same state as N devices, laid out column-wise:
//!
//! - one contiguous slab for every device's sorted per-page endurance
//!   variances (and, in Baseline mode, per-block max variances),
//! - parallel scalar columns for wear, committed capacity, cached
//!   usable capacity, and the level-count cursors,
//! - **one** shared [`MeanRberLut`] — the `powf` memo that the legacy
//!   path pays per device is filled once per cohort.
//!
//! # Equivalence contract
//!
//! Every number a cohort computes is produced by the *same expression*
//! the reference device evaluates, in the same order:
//!
//! - variances are drawn from the same per-device seed stream and
//!   sorted into the same ascending sequence (`total_cmp` on values
//!   from `exp()` — always positive, never NaN — orders exactly like
//!   the old `partial_cmp` sort);
//! - usable capacity is a pure function of `floor(wear)` (and
//!   `floor(wear / rebirth_ratio)` when rebirth is on), so the cohort
//!   caches it per device and recomputes only on floor crossings — a
//!   recompute evaluates the identical cut/partition expressions
//!   against the shared LUT, which is bit-exact per integer PEC;
//! - the per-day wear increment `host·WA / usable` is evaluated with
//!   the same association (`hw / usable` with `hw = host·WA`
//!   precomputed, exactly the left-associated legacy expression);
//! - the cut cursors walk to the same index `partition_point` returns
//!   on a sorted NaN-free array, amortizing the per-day binary
//!   searches to O(pages crossed).
//!
//! Devices in a cohort share only read-only config and the LUT (whose
//! entries never depend on query order), so cohort boundaries and
//! thread count cannot influence any trajectory. The equivalence is
//! enforced by unit tests here, a proptest in
//! `tests/cohort_equivalence.rs`, and byte-identical golden CSVs in
//! the bench suite.

use crate::device::{
    initial_committed, max_level_for, minidisk_quantum, rebirth_endurance_ratio, StatDeviceConfig,
    StatMode,
};
use salamander_flash::rber::MeanRberLut;

/// A batch of statistical devices in struct-of-arrays layout.
///
/// All devices share one [`StatDeviceConfig`]; per-device randomness
/// enters only through the construction seeds. Indexing is positional:
/// device `d` of the cohort is the device built from `seeds[d]`.
#[derive(Debug, Clone)]
pub struct Cohort {
    cfg: StatDeviceConfig,
    /// Shared wear → mean-RBER memo (the legacy path's per-device LUT,
    /// filled once per cohort).
    lut: MeanRberLut,
    /// Tiredness thresholds (max RBER per level).
    thresholds: Vec<f64>,
    /// Usable levels = `max_level + 1` (1 for Baseline/Shrink).
    levels: usize,
    /// fPages per device.
    n_pages: usize,
    /// Blocks per device (only tracked in Baseline mode).
    n_blocks: usize,
    /// oPages per fresh fPage.
    per: u64,
    /// Minidisk quantum (≥ 1).
    msize: u64,
    /// Initial committed capacity (identical across the cohort).
    initial: u64,
    /// Endurance multiplier of the rebirth mode vs TLC (1.0 = off).
    rebirth_ratio: f64,

    /// `n × n_pages` slab of per-page variances, each device's slice
    /// sorted ascending.
    variances: Vec<f64>,
    /// `n × n_blocks` slab of per-block max variances, sorted per
    /// device; empty unless Baseline.
    block_max: Vec<f64>,

    // ---- per-device columns ----
    /// Uniform wear (erase cycles per page).
    wear: Vec<f64>,
    /// Precomputed daily wear numerator: `host_opages · WA`.
    hw: Vec<f64>,
    /// Committed logical capacity in oPages (0 once dead).
    committed: Vec<u64>,
    /// Cached usable capacity at the current wear floor.
    usable: Vec<u64>,
    /// Cached quantized backable capacity (Shrink/Regen).
    backable: Vec<u64>,
    /// Cached bad-block fraction (Baseline).
    bad_frac: Vec<f64>,
    /// Wear floor the caches were computed at (`u32::MAX` = never).
    wear_floor: Vec<u32>,
    /// Reborn-wear floor the caches were computed at.
    reborn_floor: Vec<u32>,
    /// Earliest wear floor at which any cut cursor *could* move again
    /// (a conservative lower bound; see [`Self::recompute`]). Until
    /// then the cached capacity state is provably current and
    /// [`Self::step`] skips the recompute entirely. Unused when
    /// rebirth is configured.
    next_check: Vec<u32>,
    /// `n × levels` cumulative level-count cursors: entry `j` is the
    /// number of pages with variance ≤ cut(threshold_j).
    counts: Vec<u32>,
    /// Cursor for the rebirth cut (pages still serviceable reborn).
    reborn_ok: Vec<u32>,
    /// Cursor for the Baseline block cut (blocks with no failed page).
    block_ok: Vec<u32>,
    dead: Vec<bool>,
}

/// The variance above which a page exceeds `threshold` at mean RBER
/// `mean` — the cohort-side twin of `StatDevice::variance_cut`.
fn cut_for(threshold: f64, mean: f64, safety: f64) -> f64 {
    if mean <= 0.0 {
        return f64::INFINITY;
    }
    threshold / (mean * safety)
}

/// Count of elements `<= cut` in an ascending NaN-free slice, starting
/// the scan from a previous answer. Returns exactly what
/// `sorted.partition_point(|&v| v <= cut)` returns (`>` is the exact
/// negation of `<=` because neither side is ever NaN: variances come
/// from `exp()` and `cut_for` maps degenerate means to `INFINITY`);
/// the cursor only pays for the pages that crossed the cut since the
/// last call.
fn walk_cursor(sorted: &[f64], start: usize, cut: f64) -> usize {
    let mut c = start.min(sorted.len());
    while c > 0 && sorted[c - 1] > cut {
        c -= 1;
    }
    while c < sorted.len() && sorted[c] <= cut {
        c += 1;
    }
    c
}

impl Cohort {
    /// Build `seeds.len()` devices of identical configuration; device
    /// `d` draws its page-endurance variances from `seeds[d]`, exactly
    /// like `StatDevice::new(cfg, seeds[d])`.
    pub fn new(cfg: StatDeviceConfig, seeds: &[u64]) -> Self {
        let n = seeds.len();
        let n_pages = cfg.geometry.total_fpages() as usize;
        let per_block = cfg.geometry.fpages_per_block as usize;
        let baseline = matches!(cfg.mode, StatMode::Baseline);
        let n_blocks = n_pages.div_ceil(per_block.max(1));
        let thresholds = cfg.ecc.thresholds();
        let levels = max_level_for(cfg.mode, thresholds.len()) as usize + 1;
        let initial = initial_committed(&cfg);
        let rebirth_ratio = rebirth_endurance_ratio(&cfg, &thresholds);

        let mut variances = vec![0.0f64; n * n_pages];
        let mut block_max = vec![0.0f64; if baseline { n * n_blocks } else { 0 }];
        for (d, &seed) in seeds.iter().enumerate() {
            let vs = &mut variances[d * n_pages..(d + 1) * n_pages];
            cfg.rber.draw_variances_into(seed, vs);
            if baseline {
                // Block maxima come from the *draw-ordered* pages,
                // before the sort, like the legacy constructor.
                for (b, chunk) in vs.chunks(per_block.max(1)).enumerate() {
                    block_max[d * n_blocks + b] = chunk.iter().cloned().fold(0.0, f64::max);
                }
            }
            vs.sort_unstable_by(f64::total_cmp);
            if baseline {
                block_max[d * n_blocks..(d + 1) * n_blocks].sort_unstable_by(f64::total_cmp);
            }
        }

        let mut cohort = Cohort {
            lut: MeanRberLut::new(cfg.rber),
            thresholds,
            levels,
            n_pages,
            n_blocks,
            per: cfg.geometry.opages_per_fpage() as u64,
            msize: minidisk_quantum(&cfg),
            initial,
            rebirth_ratio,
            cfg,
            variances,
            block_max,
            wear: vec![0.0; n],
            hw: vec![0.0; n],
            committed: vec![initial; n],
            usable: vec![0; n],
            backable: vec![0; n],
            bad_frac: vec![0.0; n],
            wear_floor: vec![u32::MAX; n],
            reborn_floor: vec![0; n],
            next_check: vec![0; n],
            counts: vec![0; n * levels],
            reborn_ok: vec![0; n],
            block_ok: vec![0; n],
            dead: vec![initial == 0; n],
        };
        for d in 0..n {
            cohort.recompute(d);
        }
        cohort
    }

    /// Number of devices in the cohort.
    pub fn len(&self) -> usize {
        self.wear.len()
    }

    /// Whether the cohort holds no devices.
    pub fn is_empty(&self) -> bool {
        self.wear.is_empty()
    }

    /// Initial committed capacity (identical for every device).
    pub fn initial_opages(&self) -> u64 {
        self.initial
    }

    /// Whether device `d` has failed.
    pub fn is_dead(&self, d: usize) -> bool {
        self.dead[d]
    }

    /// Force-fail device `d` (AFR events, operator retirement).
    pub fn kill(&mut self, d: usize) {
        self.dead[d] = true;
        self.committed[d] = 0;
    }

    /// Committed logical capacity of device `d` in oPages.
    pub fn committed_opages(&self, d: usize) -> u64 {
        self.committed[d]
    }

    /// Current wear of device `d` (average erase cycles per page).
    pub fn wear(&self, d: usize) -> f64 {
        self.wear[d]
    }

    /// Usable capacity of device `d` in oPages (cached; identical to
    /// `StatDevice::usable_opages` at the same wear).
    pub fn usable_opages(&self, d: usize) -> u64 {
        self.usable[d]
    }

    /// Number of device `d`'s fPages at exactly tiredness level `j` —
    /// the cohort-side twin of `StatDevice::pages_at_level`. `j` past
    /// the mode's cap counts the dead pages; anything further is 0.
    ///
    /// Served from the cached cumulative cut cursors, which are exact
    /// for the current wear floor by the `next_check` invariant (see
    /// [`Self::step`]), so this needs no recompute and equals the
    /// reference device's fresh evaluation at the same wear.
    pub fn pages_at_level(&self, d: usize, j: u32) -> u64 {
        let j = j as usize;
        let cbase = d * self.levels;
        if j < self.levels {
            let below = u64::from(self.counts[cbase + j]);
            let prev = if j == 0 {
                0
            } else {
                u64::from(self.counts[cbase + j - 1])
            };
            below - prev
        } else if j == self.levels {
            self.n_pages as u64 - u64::from(self.counts[cbase + self.levels - 1])
        } else {
            0
        }
    }

    /// Set the host writes device `d` absorbs per [`Self::step`].
    pub fn set_daily_writes(&mut self, d: usize, host_opages: u64) {
        self.hw[d] = host_opages as f64 * self.cfg.write_amplification;
    }

    /// Advance device `d` by one day of its configured write load —
    /// the cohort-side twin of `StatDevice::apply_writes`: wear spreads
    /// over the usable pool, then the mode's capacity protocol runs.
    pub fn step(&mut self, d: usize) {
        if self.dead[d] {
            return;
        }
        let usable = self.usable[d].max(1);
        self.wear[d] += self.hw[d] / usable as f64;
        let fl = self.wear[d] as u32;
        // A recompute is only needed when some cursor can actually
        // move. Cuts shrink monotonically with wear, so `recompute`
        // pre-derives the earliest floor at which the next page could
        // cross one (`next_check`); until then the cached state is the
        // exact state a from-scratch recompute would produce. Rebirth
        // couples a second, rescaled floor into the cuts, so that mode
        // keeps the plain floor-change check.
        let stale = if self.cfg.rebirth.is_some() {
            fl != self.wear_floor[d]
                || (self.wear[d] / self.rebirth_ratio) as u32 != self.reborn_floor[d]
        } else {
            fl >= self.next_check[d]
        };
        if stale {
            self.recompute(d);
        }
        match self.cfg.mode {
            StatMode::Baseline => {
                if self.bad_frac[d] > self.cfg.bad_block_limit {
                    self.kill(d);
                }
            }
            StatMode::Shrink | StatMode::Regen { .. } => {
                self.committed[d] = self.committed[d].min(self.backable[d]).min(self.initial);
                if self.committed[d] == 0 {
                    self.kill(d);
                }
            }
        }
    }

    /// Advance device `d` through up to `max_days` *quiet* days — days
    /// that provably trigger no recompute and therefore change nothing
    /// but wear. Returns the days consumed (possibly 0).
    ///
    /// While the wear floor stays below `next_check`, a [`Self::step`]
    /// day reduces to `wear += hw / usable` with a bitwise-frozen
    /// increment (usable only changes on recompute), followed by an
    /// idempotent capacity clamp against frozen caches. This method
    /// runs exactly that addition, re-checking the floor against the
    /// bound after every day so a crossing is never jumped over; the
    /// day that would recompute is left for the next [`Self::step`]
    /// call, which re-adds the same increment to the same wear bits.
    /// Rebirth couples a second floor into the cuts, so rebirth
    /// configurations take no quiet days.
    pub fn run_quiet_days(&mut self, d: usize, max_days: u32) -> u32 {
        if max_days == 0 || self.dead[d] || self.cfg.rebirth.is_some() {
            return 0;
        }
        let inc = self.hw[d] / self.usable[d].max(1) as f64;
        let nc = self.next_check[d];
        let mut w = self.wear[d];
        let mut taken = 0u32;
        while taken < max_days {
            let next = w + inc;
            if (next as u32) >= nc {
                break;
            }
            w = next;
            taken += 1;
        }
        self.wear[d] = w;
        taken
    }

    /// Refresh the cached capacity state of device `d` for its current
    /// wear floor: per-level cut cursors, usable/reborn capacity, and
    /// the mode-specific brick/backable inputs. Called only on floor
    /// crossings; every expression mirrors the reference device.
    fn recompute(&mut self, d: usize) {
        let fl = self.wear[d] as u32;
        let mean = self.lut.mean_rber(fl);
        let vbase = d * self.n_pages;
        let cbase = d * self.levels;
        let mut regular = 0u64;
        let mut prev = 0u64;
        for j in 0..self.levels {
            let cut = cut_for(self.thresholds[j], mean, self.cfg.safety);
            let c = walk_cursor(
                &self.variances[vbase..vbase + self.n_pages],
                self.counts[cbase + j] as usize,
                cut,
            ) as u64;
            self.counts[cbase + j] = c as u32;
            regular += (self.per - j as u64) * (c - prev);
            prev = c;
        }
        let reborn = if let Some(mode) = self.cfg.rebirth {
            // `prev` is the cumulative count at the last usable level,
            // i.e. `count_below(dead_cut)` in the reference device.
            let dead_count = self.n_pages as u64 - prev;
            let reborn_wear = self.wear[d] / self.rebirth_ratio;
            let rmean = self.lut.mean_rber(reborn_wear as u32);
            let rcut = cut_for(self.thresholds[self.levels - 1], rmean, self.cfg.safety);
            let ok = walk_cursor(
                &self.variances[vbase..vbase + self.n_pages],
                self.reborn_ok[d] as usize,
                rcut,
            ) as u64;
            self.reborn_ok[d] = ok as u32;
            let still_ok = ok.saturating_sub(prev);
            let reborn_pages = still_ok.min(dead_count);
            self.reborn_floor[d] = reborn_wear as u32;
            (reborn_pages as f64 * self.per as f64 * mode.capacity_vs_tlc()) as u64
        } else {
            0
        };
        let usable = regular + reborn;
        self.usable[d] = usable;
        match self.cfg.mode {
            StatMode::Baseline => {
                let cut0 = cut_for(self.thresholds[0], mean, self.cfg.safety);
                let bbase = d * self.n_blocks;
                let ok = walk_cursor(
                    &self.block_max[bbase..bbase + self.n_blocks],
                    self.block_ok[d] as usize,
                    cut0,
                );
                self.block_ok[d] = ok as u32;
                self.bad_frac[d] = 1.0 - ok as f64 / self.n_blocks as f64;
            }
            StatMode::Shrink | StatMode::Regen { .. } => {
                let reserve = (usable as f64 * self.cfg.op_fraction) as u64;
                self.backable[d] = usable.saturating_sub(reserve) / self.msize * self.msize;
            }
        }
        self.wear_floor[d] = fl;
        if self.cfg.rebirth.is_none() {
            self.next_check[d] = self.next_change_floor(d, fl);
        }
    }

    /// Lower bound on the first wear floor after `fl` at which any cut
    /// cursor of device `d` could move.
    ///
    /// Cursor `j` sits at count `c`: the next page to fall out is
    /// `variances[c-1]`, and it falls when `cut_j < v`, i.e. when the
    /// mean RBER exceeds `threshold_j / (safety · v)`. The analytic
    /// inverse [`RberModel::pec_at_rber`] gives that PEC directly; its
    /// rounding error against the memoized forward `powf` is far below
    /// one cycle wherever the curve has slope, so one floor of margin
    /// makes the bound conservative. A recompute that fires early is
    /// harmless (it recomputes the exact state and pushes the bound
    /// out); the bound is never allowed past the crossing itself.
    fn next_change_floor(&self, d: usize, fl: u32) -> u32 {
        let model = self.lut.model();
        let vbase = d * self.n_pages;
        let cbase = d * self.levels;
        let mut next = u32::MAX;
        for j in 0..self.levels {
            let c = self.counts[cbase + j] as usize;
            if c == 0 {
                continue; // already below every page; cannot move again
            }
            let needed = self.thresholds[j] / (self.cfg.safety * self.variances[vbase + c - 1]);
            next = next.min(model.pec_at_rber(needed));
        }
        if matches!(self.cfg.mode, StatMode::Baseline) {
            let ok = self.block_ok[d] as usize;
            if ok > 0 {
                let v = self.block_max[d * self.n_blocks + ok - 1];
                let needed = self.thresholds[0] / (self.cfg.safety * v);
                next = next.min(model.pec_at_rber(needed));
            }
        }
        next.saturating_sub(1).max(fl.saturating_add(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::StatDevice;
    use salamander_ecc::profile::Tiredness;
    use salamander_flash::geometry::FlashGeometry;
    use salamander_flash::voltage::CellMode;

    fn cfg(mode: StatMode) -> StatDeviceConfig {
        StatDeviceConfig {
            geometry: FlashGeometry::small_test(),
            ..StatDeviceConfig::datacenter(mode)
        }
    }

    /// Step a cohort-of-one and a reference device in lockstep,
    /// asserting identical committed/usable/wear/death at every step.
    fn assert_lockstep(cfg: StatDeviceConfig, seed: u64, daily: u64, max_days: u32) {
        let mut dev = StatDevice::new(cfg, seed);
        let mut cohort = Cohort::new(cfg, &[seed]);
        assert_eq!(cohort.initial_opages(), dev.initial_opages());
        assert_eq!(cohort.is_dead(0), dev.is_dead(), "birth state");
        cohort.set_daily_writes(0, daily);
        for day in 0..max_days {
            dev.apply_writes(daily);
            cohort.step(0);
            assert_eq!(
                cohort.committed_opages(0),
                dev.committed_opages(),
                "day {day}: committed diverged"
            );
            assert_eq!(
                cohort.wear(0).to_bits(),
                dev.wear().to_bits(),
                "day {day}: wear diverged"
            );
            assert_eq!(cohort.is_dead(0), dev.is_dead(), "day {day}: liveness");
            if !dev.is_dead() {
                assert_eq!(
                    cohort.usable_opages(0),
                    dev.usable_opages(),
                    "day {day}: usable diverged"
                );
                // Cached cut cursors must reproduce the reference
                // device's fresh per-level counts (including the dead
                // bucket and the all-zero tail past it).
                for j in 0..6 {
                    assert_eq!(
                        cohort.pages_at_level(0, j),
                        dev.pages_at_level(j),
                        "day {day}: level {j} count diverged"
                    );
                }
            }
            if dev.is_dead() {
                break;
            }
        }
    }

    #[test]
    fn cohort_of_one_matches_reference_device_all_modes() {
        for mode in [
            StatMode::Baseline,
            StatMode::Shrink,
            StatMode::Regen {
                max_level: Tiredness::L1,
            },
            StatMode::Regen {
                max_level: Tiredness::L3,
            },
        ] {
            for seed in [1u64, 7, 42] {
                assert_lockstep(cfg(mode), seed, 50_000, 20_000);
            }
        }
    }

    #[test]
    fn cohort_matches_reference_with_rebirth() {
        for cell in [CellMode::Slc, CellMode::Mlc, CellMode::Tlc] {
            let c = StatDeviceConfig {
                rebirth: Some(cell),
                mode: StatMode::Regen {
                    max_level: Tiredness::L1,
                },
                ..cfg(StatMode::Shrink)
            };
            assert_lockstep(c, 3, 50_000, 60_000);
        }
    }

    #[test]
    fn cohort_members_are_independent() {
        // A 3-device cohort must reproduce each device's solo
        // trajectory: neighbours share nothing but read-only state.
        let c = cfg(StatMode::Shrink);
        let seeds = [11u64, 12, 13];
        let mut cohort = Cohort::new(c, &seeds);
        let mut solos: Vec<StatDevice> = seeds.iter().map(|&s| StatDevice::new(c, s)).collect();
        for d in 0..3 {
            cohort.set_daily_writes(d, 40_000);
        }
        for _ in 0..30_000 {
            // Step in a scrambled order to prove order-independence.
            for &d in &[2usize, 0, 1] {
                cohort.step(d);
                solos[d].apply_writes(40_000);
            }
            for (d, solo) in solos.iter().enumerate() {
                assert_eq!(cohort.committed_opages(d), solo.committed_opages());
                assert_eq!(cohort.is_dead(d), solo.is_dead());
            }
            if (0..3).all(|d| cohort.is_dead(d)) {
                break;
            }
        }
        assert!((0..3).all(|d| cohort.is_dead(d)), "devices should die");
    }

    #[test]
    fn kill_is_terminal() {
        let mut cohort = Cohort::new(cfg(StatMode::Shrink), &[5]);
        cohort.set_daily_writes(0, 1000);
        cohort.kill(0);
        assert!(cohort.is_dead(0));
        assert_eq!(cohort.committed_opages(0), 0);
        cohort.step(0);
        assert_eq!(cohort.committed_opages(0), 0);
    }

    #[test]
    fn empty_cohort_is_fine() {
        let cohort = Cohort::new(cfg(StatMode::Shrink), &[]);
        assert!(cohort.is_empty());
        assert_eq!(cohort.len(), 0);
    }

    #[test]
    fn born_dead_device_in_cohort() {
        let c = StatDeviceConfig {
            msize_opages: 4096, // larger than the 952-oPage logical space
            ..cfg(StatMode::Shrink)
        };
        let cohort = Cohort::new(c, &[1, 2]);
        assert!(cohort.is_dead(0) && cohort.is_dead(1));
        assert_eq!(cohort.committed_opages(0), 0);
    }

    #[test]
    fn walk_cursor_equals_partition_point() {
        let sorted = [0.5, 1.0, 1.0, 2.0, 3.5];
        for cut in [0.0, 0.5, 0.75, 1.0, 2.0, 4.0, f64::INFINITY] {
            let want = sorted.partition_point(|&v| v <= cut);
            for start in 0..=sorted.len() {
                assert_eq!(
                    walk_cursor(&sorted, start, cut),
                    want,
                    "cut {cut} start {start}"
                );
            }
        }
        assert_eq!(walk_cursor(&[], 0, 1.0), 0);
    }
}
