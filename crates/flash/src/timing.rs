//! First-order latency and throughput model.
//!
//! Salamander's performance analysis (§4.2, Fig. 3c/3d) needs only a
//! first-order cost model: page reads, page programs, block erases, and
//! bus transfer proportional to bytes moved. Parallelism across chips is
//! modeled by dividing aggregate work across `parallel_units`; per-op
//! latency is the serial sum of array time and transfer time.

use serde::{Deserialize, Serialize};

/// Latency parameters, all in microseconds (or bytes/µs for bandwidth).
///
/// Defaults are representative of mid-generation 3D TLC NAND
/// (tR 50 µs, tPROG 600 µs, tBERS 3 ms, ONFI transfer ~800 MB/s).
///
/// # Examples
///
/// ```
/// use salamander_flash::timing::TimingModel;
///
/// let t = TimingModel::default();
/// let lat = t.read_latency_us(16 * 1024);
/// assert!(lat > t.t_read_us);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingModel {
    /// Array read time for one fPage (µs).
    pub t_read_us: f64,
    /// Array program time for one fPage (µs).
    pub t_prog_us: f64,
    /// Block erase time (µs).
    pub t_erase_us: f64,
    /// Channel transfer bandwidth (bytes per µs; 800 = 800 MB/s).
    pub xfer_bytes_per_us: f64,
    /// Independent parallel units (chips × planes) for throughput math.
    pub parallel_units: u32,
    /// Extra read latency per ECC decode when the code rate is lowered
    /// (µs); §4.2 argues this is largely offset by the stronger code, so
    /// the default is small.
    pub ecc_extra_us: f64,
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel {
            t_read_us: 50.0,
            t_prog_us: 600.0,
            t_erase_us: 3000.0,
            xfer_bytes_per_us: 800.0,
            parallel_units: 8,
            ecc_extra_us: 5.0,
        }
    }
}

impl TimingModel {
    /// Latency of reading `bytes` from one fPage (array time + transfer).
    pub fn read_latency_us(&self, bytes: u64) -> f64 {
        self.t_read_us + bytes as f64 / self.xfer_bytes_per_us
    }

    /// Latency of programming one fPage carrying `bytes` of payload.
    pub fn program_latency_us(&self, bytes: u64) -> f64 {
        self.t_prog_us + bytes as f64 / self.xfer_bytes_per_us
    }

    /// Latency of reading `useful_bytes` of host data spread over
    /// `fpage_reads` distinct fPage reads — the quantity that degrades in
    /// RegenS, where an L-level fPage yields only `4-L` oPages per read.
    pub fn multi_read_latency_us(&self, fpage_reads: u32, useful_bytes: u64) -> f64 {
        fpage_reads as f64 * self.t_read_us + useful_bytes as f64 / self.xfer_bytes_per_us
    }

    /// Aggregate sequential read throughput (bytes/µs) when each fPage read
    /// returns `useful_bytes_per_fpage` of host data: the RegenS large-
    /// access degradation of §4.2 falls out of this as `(4-L)/4`.
    pub fn seq_read_throughput(&self, useful_bytes_per_fpage: u64) -> f64 {
        let per_read_us = self.t_read_us; // array time dominates; pipelined transfer
        let per_unit = useful_bytes_per_fpage as f64 / per_read_us;
        (per_unit * self.parallel_units as f64).min(self.xfer_bytes_per_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_latency_includes_transfer() {
        let t = TimingModel::default();
        let small = t.read_latency_us(4 * 1024);
        let large = t.read_latency_us(16 * 1024);
        assert!(large > small);
        assert!((large - small - 12.0 * 1024.0 / 800.0).abs() < 1e-9);
    }

    #[test]
    fn regen_throughput_ratio_matches_paper() {
        // §4.2: sequential throughput degrades by 4/(4-L); 25% at L1.
        let t = TimingModel {
            xfer_bytes_per_us: f64::INFINITY,
            ..TimingModel::default()
        };
        let l0 = t.seq_read_throughput(16 * 1024);
        let l1 = t.seq_read_throughput(12 * 1024);
        let l2 = t.seq_read_throughput(8 * 1024);
        assert!((l1 / l0 - 0.75).abs() < 1e-12);
        assert!((l2 / l0 - 0.50).abs() < 1e-12);
    }

    #[test]
    fn multi_read_scales_with_fpage_count() {
        let t = TimingModel::default();
        // 16 KiB of host data from one L0 fPage vs two L2 fPages.
        let l0 = t.multi_read_latency_us(1, 16 * 1024);
        let l2 = t.multi_read_latency_us(2, 16 * 1024);
        assert!((l2 - l0 - t.t_read_us).abs() < 1e-9);
    }

    #[test]
    fn throughput_capped_by_bus() {
        let t = TimingModel {
            parallel_units: 10_000,
            ..TimingModel::default()
        };
        assert_eq!(t.seq_read_throughput(16 * 1024), t.xfer_bytes_per_us);
    }
}
