//! Deterministic bit-flip injection.
//!
//! Given an RBER and a payload length, [`BitFlipper`] decides how many bits
//! flip on a read and (for reads that carry real data) which ones. The
//! error count is drawn from the exact binomial via per-bit Bernoulli
//! sampling for short payloads and a normal approximation for long ones,
//! keeping large simulations fast without distorting the tail behaviour
//! that the ECC layer cares about.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Payload length (bits) above which the binomial is approximated.
const EXACT_SAMPLING_LIMIT_BITS: u64 = 4096;

/// Seeded source of injected bit errors.
///
/// # Examples
///
/// ```
/// use salamander_flash::errors::BitFlipper;
///
/// let mut f = BitFlipper::new(1);
/// let n = f.draw_error_count(1e-3, 16 * 1024 * 8);
/// // Expectation is ~131 errors; the draw lands in a plausible window.
/// assert!(n < 400);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BitFlipper {
    rng: ChaCha8Rng,
}

impl BitFlipper {
    /// Create a flipper with the given seed.
    pub fn new(seed: u64) -> Self {
        BitFlipper {
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Draw the number of bit errors for one read of `bits` bits at `rber`.
    pub fn draw_error_count(&mut self, rber: f64, bits: u64) -> u64 {
        if rber <= 0.0 || bits == 0 {
            return 0;
        }
        let rber = rber.min(1.0);
        let mean = rber * bits as f64;
        if bits <= EXACT_SAMPLING_LIMIT_BITS || mean < 16.0 {
            // Exact-ish: sample inter-arrival gaps geometrically. For
            // small means this is O(errors), not O(bits).
            self.draw_geometric(rber, bits)
        } else {
            // Normal approximation to Binomial(bits, rber).
            let sd = (mean * (1.0 - rber)).sqrt();
            let z = self.standard_normal();
            let n = (mean + sd * z).round();
            n.clamp(0.0, bits as f64) as u64
        }
    }

    /// Choose `count` distinct bit positions in `[0, bits)` to flip.
    pub fn draw_positions(&mut self, count: u64, bits: u64) -> Vec<u64> {
        let count = count.min(bits);
        let mut chosen = std::collections::HashSet::with_capacity(count as usize);
        while (chosen.len() as u64) < count {
            chosen.insert(self.rng.gen_range(0..bits));
        }
        let mut v: Vec<u64> = chosen.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Flip `count` random distinct bits of `data` in place and return the
    /// flipped positions.
    pub fn corrupt(&mut self, data: &mut [u8], count: u64) -> Vec<u64> {
        let bits = data.len() as u64 * 8;
        let positions = self.draw_positions(count, bits);
        for &p in &positions {
            data[(p / 8) as usize] ^= 1 << (p % 8);
        }
        positions
    }

    fn draw_geometric(&mut self, p: f64, bits: u64) -> u64 {
        // Walk the bit string jumping to the next error via the geometric
        // distribution: gap = floor(ln(U)/ln(1-p)).
        if p >= 1.0 {
            return bits;
        }
        let log1mp = (1.0 - p).ln();
        let mut pos = 0u64;
        let mut count = 0u64;
        loop {
            let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
            let gap = (u.ln() / log1mp).floor() as u64;
            pos = pos.saturating_add(gap).saturating_add(1);
            if pos > bits {
                return count;
            }
            count += 1;
        }
    }

    fn standard_normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rber_means_zero_errors() {
        let mut f = BitFlipper::new(0);
        for _ in 0..100 {
            assert_eq!(f.draw_error_count(0.0, 1 << 20), 0);
        }
    }

    #[test]
    fn error_count_tracks_mean_small() {
        let mut f = BitFlipper::new(1);
        let bits = 2048u64;
        let rber = 0.01;
        let trials = 2000;
        let total: u64 = (0..trials).map(|_| f.draw_error_count(rber, bits)).sum();
        let mean = total as f64 / trials as f64;
        let expect = rber * bits as f64; // 20.48
        assert!(
            (mean - expect).abs() < expect * 0.1,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn error_count_tracks_mean_large() {
        let mut f = BitFlipper::new(2);
        let bits = 16 * 1024 * 8u64;
        let rber = 2e-3;
        let trials = 500;
        let total: u64 = (0..trials).map(|_| f.draw_error_count(rber, bits)).sum();
        let mean = total as f64 / trials as f64;
        let expect = rber * bits as f64; // ~262
        assert!(
            (mean - expect).abs() < expect * 0.1,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn error_count_never_exceeds_bits() {
        let mut f = BitFlipper::new(3);
        for _ in 0..50 {
            assert!(f.draw_error_count(0.9, 64) <= 64);
            assert!(f.draw_error_count(5.0, 64) <= 64);
        }
    }

    #[test]
    fn positions_distinct_and_in_range() {
        let mut f = BitFlipper::new(4);
        let pos = f.draw_positions(50, 256);
        assert_eq!(pos.len(), 50);
        let mut dedup = pos.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 50);
        assert!(pos.iter().all(|&p| p < 256));
    }

    #[test]
    fn corrupt_flips_exactly_count_bits() {
        let mut f = BitFlipper::new(5);
        let clean = vec![0xA5u8; 128];
        let mut dirty = clean.clone();
        let pos = f.corrupt(&mut dirty, 17);
        assert_eq!(pos.len(), 17);
        let flipped: u32 = clean
            .iter()
            .zip(&dirty)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 17);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = BitFlipper::new(42);
        let mut b = BitFlipper::new(42);
        for _ in 0..10 {
            assert_eq!(
                a.draw_error_count(1e-3, 1 << 17),
                b.draw_error_count(1e-3, 1 << 17)
            );
        }
    }
}
