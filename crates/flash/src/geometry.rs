//! Flash device geometry and strongly-typed addressing.
//!
//! A simulated device is organized as `chips × blocks × fPages × oPages`.
//! Real NAND additionally splits chips into dies and planes; for the
//! mechanisms Salamander studies (wear, retirement, ECC) those only matter
//! for parallelism, which [`crate::timing`] models with a `parallel_units`
//! knob, so the address space here is deliberately flat: a *chip* in this
//! crate corresponds to one independently-addressable die.

use serde::{Deserialize, Serialize};

/// Geometry of a simulated flash device.
///
/// The defaults mirror the paper's running example: 16 KiB fPages holding
/// four 4 KiB oPages with a 2 KiB spare area (§3, citing Park et al.,
/// ASPLOS '21 for the 1:8 spare ratio).
///
/// # Examples
///
/// ```
/// use salamander_flash::geometry::FlashGeometry;
///
/// let g = FlashGeometry::small_test();
/// assert_eq!(g.opages_per_fpage(), 4);
/// assert_eq!(g.total_fpages(), g.chips * g.blocks_per_chip * g.fpages_per_block);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlashGeometry {
    /// Number of independently addressable chips (dies).
    pub chips: u32,
    /// Erase blocks per chip.
    pub blocks_per_chip: u32,
    /// Flash pages per erase block.
    pub fpages_per_block: u32,
    /// Bytes of data area in one fPage (excluding spare).
    pub fpage_data_bytes: u32,
    /// Bytes of spare (ECC) area in one fPage.
    pub fpage_spare_bytes: u32,
    /// Bytes in one oPage (the host I/O granularity).
    pub opage_bytes: u32,
}

impl FlashGeometry {
    /// A tiny geometry for unit tests: 2 chips × 8 blocks × 16 pages.
    ///
    /// Total: 256 fPages = 1024 oPages = 4 MiB of data area.
    pub fn small_test() -> Self {
        FlashGeometry {
            chips: 2,
            blocks_per_chip: 8,
            fpages_per_block: 16,
            fpage_data_bytes: 16 * 1024,
            fpage_spare_bytes: 2 * 1024,
            opage_bytes: 4 * 1024,
        }
    }

    /// A medium geometry for integration tests and fast benches:
    /// 4 chips × 64 blocks × 64 pages = 16384 fPages = 256 MiB data area.
    pub fn medium() -> Self {
        FlashGeometry {
            chips: 4,
            blocks_per_chip: 64,
            fpages_per_block: 64,
            fpage_data_bytes: 16 * 1024,
            fpage_spare_bytes: 2 * 1024,
            opage_bytes: 4 * 1024,
        }
    }

    /// Number of oPages that fit in one fPage's data area.
    pub fn opages_per_fpage(&self) -> u32 {
        self.fpage_data_bytes / self.opage_bytes
    }

    /// Total number of erase blocks in the device.
    pub fn total_blocks(&self) -> u32 {
        self.chips * self.blocks_per_chip
    }

    /// Total number of fPages in the device.
    pub fn total_fpages(&self) -> u32 {
        self.total_blocks() * self.fpages_per_block
    }

    /// Total number of oPages in the device (raw data capacity / oPage size).
    pub fn total_opages(&self) -> u64 {
        self.total_fpages() as u64 * self.opages_per_fpage() as u64
    }

    /// Raw data capacity in bytes (spare areas excluded).
    pub fn data_capacity_bytes(&self) -> u64 {
        self.total_fpages() as u64 * self.fpage_data_bytes as u64
    }

    /// Code rate of the native fPage layout: `data / (data + spare)`.
    pub fn native_code_rate(&self) -> f64 {
        let d = self.fpage_data_bytes as f64;
        d / (d + self.fpage_spare_bytes as f64)
    }

    /// Construct an [`FPageAddr`] from (chip, block-in-chip, page-in-block).
    ///
    /// # Panics
    ///
    /// Panics if any component is out of range for this geometry.
    pub fn fpage_addr(&self, chip: u32, block: u32, page: u32) -> FPageAddr {
        assert!(chip < self.chips, "chip {chip} out of range");
        assert!(block < self.blocks_per_chip, "block {block} out of range");
        assert!(page < self.fpages_per_block, "page {page} out of range");
        FPageAddr {
            index: (chip * self.blocks_per_chip + block) * self.fpages_per_block + page,
        }
    }

    /// The erase block containing `fp`.
    pub fn block_of(&self, fp: FPageAddr) -> BlockAddr {
        BlockAddr {
            index: fp.index / self.fpages_per_block,
        }
    }

    /// The chip containing `block`.
    pub fn chip_of(&self, block: BlockAddr) -> u32 {
        block.index / self.blocks_per_chip
    }

    /// The page offset of `fp` within its erase block.
    pub fn page_in_block(&self, fp: FPageAddr) -> u32 {
        fp.index % self.fpages_per_block
    }

    /// The first fPage of `block`.
    pub fn first_fpage(&self, block: BlockAddr) -> FPageAddr {
        FPageAddr {
            index: block.index * self.fpages_per_block,
        }
    }

    /// Iterator over every fPage in `block`, in program order.
    pub fn fpages_in(&self, block: BlockAddr) -> impl Iterator<Item = FPageAddr> {
        let first = block.index * self.fpages_per_block;
        (first..first + self.fpages_per_block).map(|index| FPageAddr { index })
    }

    /// Iterator over every block in the device.
    pub fn blocks(&self) -> impl Iterator<Item = BlockAddr> {
        (0..self.total_blocks()).map(|index| BlockAddr { index })
    }

    /// Iterator over every fPage in the device.
    pub fn fpages(&self) -> impl Iterator<Item = FPageAddr> {
        (0..self.total_fpages()).map(|index| FPageAddr { index })
    }
}

/// Address of one erase block, flat across the whole device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockAddr {
    /// Flat block index in `[0, total_blocks)`.
    pub index: u32,
}

/// Address of one physical flash page (fPage), flat across the whole device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FPageAddr {
    /// Flat fPage index in `[0, total_fpages)`.
    pub index: u32,
}

/// Address of one oPage: an fPage plus a slot within its data area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OPageAddr {
    /// The containing flash page.
    pub fpage: FPageAddr,
    /// Slot within the fPage, `[0, opages_per_fpage)`.
    pub slot: u8,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_geometry_counts() {
        let g = FlashGeometry::small_test();
        assert_eq!(g.total_blocks(), 16);
        assert_eq!(g.total_fpages(), 256);
        assert_eq!(g.total_opages(), 1024);
        assert_eq!(g.opages_per_fpage(), 4);
        assert_eq!(g.data_capacity_bytes(), 256 * 16 * 1024);
    }

    #[test]
    fn native_code_rate_matches_paper() {
        // The paper cites a typical code rate of ~88% (16 KiB / 18 KiB).
        let g = FlashGeometry::small_test();
        let cr = g.native_code_rate();
        assert!((cr - 16.0 / 18.0).abs() < 1e-12);
        assert!(cr > 0.88 && cr < 0.89);
    }

    #[test]
    fn addr_round_trip() {
        let g = FlashGeometry::small_test();
        let fp = g.fpage_addr(1, 3, 7);
        let blk = g.block_of(fp);
        assert_eq!(g.chip_of(blk), 1);
        assert_eq!(blk.index, 8 + 3);
        assert_eq!(g.page_in_block(fp), 7);
        assert_eq!(g.first_fpage(blk).index + 7, fp.index);
    }

    #[test]
    fn fpages_in_block_are_contiguous() {
        let g = FlashGeometry::small_test();
        let blk = BlockAddr { index: 5 };
        let pages: Vec<_> = g.fpages_in(blk).collect();
        assert_eq!(pages.len(), 16);
        for (i, p) in pages.iter().enumerate() {
            assert_eq!(g.block_of(*p), blk);
            assert_eq!(g.page_in_block(*p), i as u32);
        }
    }

    #[test]
    #[should_panic(expected = "block 99 out of range")]
    fn out_of_range_block_panics() {
        let g = FlashGeometry::small_test();
        g.fpage_addr(0, 99, 0);
    }

    #[test]
    fn iterators_cover_device() {
        let g = FlashGeometry::small_test();
        assert_eq!(g.blocks().count() as u32, g.total_blocks());
        assert_eq!(g.fpages().count() as u32, g.total_fpages());
        // Every fPage belongs to exactly one block.
        let mut per_block = vec![0u32; g.total_blocks() as usize];
        for fp in g.fpages() {
            per_block[g.block_of(fp).index as usize] += 1;
        }
        assert!(per_block.iter().all(|&c| c == g.fpages_per_block));
    }
}
