//! Threshold-voltage cell model: RBER from first principles.
//!
//! The power-law [`crate::rber::RberModel`] is an empirical fit; this
//! module derives bit error rates from the underlying physics the paper's
//! §2 sketches: each cell stores one of `2^bits` charge states whose
//! threshold-voltage distributions widen and shift as program/erase
//! cycling traps charge. Errors are adjacent-state misreads, so
//!
//! `RBER(bits, pec) ≈ (states−1)/bits · P(overlap at the shared boundary)`
//!
//! with Gray coding (one bit flips per adjacent-state misread). The model
//! yields the classic endurance hierarchy the paper's related work
//! exploits (ZombieNAND, MASCOTS '14; Phoenix, DATE '13): the same worn
//! cells that fail as TLC still have wide margins as MLC or SLC, so
//! "dead" pages can be reborn at a lower bit density — an extension
//! orthogonal to RegenS's ECC trade (§2's closing discussion).

use serde::{Deserialize, Serialize};

/// Bits stored per cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellMode {
    /// One bit per cell (2 states).
    Slc,
    /// Two bits per cell (4 states).
    Mlc,
    /// Three bits per cell (8 states).
    Tlc,
}

impl CellMode {
    /// Bits per cell.
    pub fn bits(self) -> u32 {
        match self {
            CellMode::Slc => 1,
            CellMode::Mlc => 2,
            CellMode::Tlc => 3,
        }
    }

    /// Distinct charge states.
    pub fn states(self) -> u32 {
        1 << self.bits()
    }

    /// Capacity relative to TLC.
    pub fn capacity_vs_tlc(self) -> f64 {
        self.bits() as f64 / 3.0
    }
}

/// The voltage-distribution model.
///
/// The voltage window `[0, window]` is divided evenly among the mode's
/// states; each state is a Gaussian whose sigma grows with wear:
/// `sigma(pec) = sigma0 + sigma_scale · pec^sigma_exp`.
///
/// # Examples
///
/// ```
/// use salamander_flash::voltage::{CellMode, VoltageModel};
///
/// let m = VoltageModel::default();
/// // Fresh cells: TLC still nearly error-free.
/// assert!(m.rber(CellMode::Tlc, 0) < 1e-6);
/// // The same wear that kills TLC is benign in SLC mode.
/// let worn = 10_000;
/// assert!(m.rber(CellMode::Tlc, worn) > 1e-2);
/// assert!(m.rber(CellMode::Slc, worn) < 1e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoltageModel {
    /// Total threshold-voltage window (arbitrary units).
    pub window: f64,
    /// Distribution sigma of a fresh cell.
    pub sigma0: f64,
    /// Wear-driven sigma growth scale.
    pub sigma_scale: f64,
    /// Wear exponent.
    pub sigma_exp: f64,
}

impl Default for VoltageModel {
    fn default() -> Self {
        // Calibrated so TLC crosses the ~2.5e-3 ECC threshold near 3000
        // PEC, matching the default RberModel's median endurance.
        VoltageModel {
            window: 8.0,
            sigma0: 0.10,
            sigma_scale: 1.1e-3,
            sigma_exp: 0.55,
        }
    }
}

/// Standard normal upper-tail probability `Q(x)` via the complementary
/// error function (Abramowitz–Stegun 7.1.26 rational approximation,
/// |error| < 1.5e-7 — far below the RBER scales of interest).
fn q(x: f64) -> f64 {
    if x < 0.0 {
        return 1.0 - q(-x);
    }
    let t = 1.0 / (1.0 + 0.3275911 * (x / std::f64::consts::SQRT_2));
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erfc = poly * (-(x / std::f64::consts::SQRT_2).powi(2)).exp();
    0.5 * erfc
}

impl VoltageModel {
    /// Distribution sigma after `pec` cycles.
    pub fn sigma(&self, pec: u32) -> f64 {
        self.sigma0 + self.sigma_scale * (pec as f64).powf(self.sigma_exp)
    }

    /// Bit error rate for cells in `mode` after `pec` cycles.
    ///
    /// States sit at the centers of `states` equal slices of the window;
    /// a cell misreads when its voltage crosses the midpoint boundary
    /// toward a neighbour. With Gray coding each such misread flips one
    /// of the cell's `bits` bits.
    pub fn rber(&self, mode: CellMode, pec: u32) -> f64 {
        let states = mode.states() as f64;
        let half_gap = self.window / states / 2.0;
        let sigma = self.sigma(pec);
        // Interior states can err toward both neighbours, edges toward
        // one: 2(states−1) boundary crossings over `states` states.
        let crossings_per_cell = 2.0 * (states - 1.0) / states;
        let p_cross = q(half_gap / sigma);
        (crossings_per_cell * p_cross / mode.bits() as f64).min(0.5)
    }

    /// Cycles until `mode`'s RBER reaches `threshold` (binary search; the
    /// RBER is monotone in wear).
    pub fn endurance(&self, mode: CellMode, threshold: f64) -> u32 {
        if self.rber(mode, 0) >= threshold {
            return 0;
        }
        let (mut lo, mut hi) = (0u32, 1u32);
        while self.rber(mode, hi) < threshold {
            if hi >= 1 << 30 {
                return u32::MAX;
            }
            hi *= 2;
        }
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if self.rber(mode, mid) < threshold {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        hi
    }

    /// The rebirth multiplier: how many *additional* cycles a cell worn to
    /// TLC death at `threshold` can serve in `mode` before crossing the
    /// same threshold.
    pub fn rebirth_cycles(&self, mode: CellMode, threshold: f64) -> u32 {
        let tlc_death = self.endurance(CellMode::Tlc, threshold);
        self.endurance(mode, threshold).saturating_sub(tlc_death)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_function_reference_values() {
        // Q(0) = 0.5, Q(1.96) ≈ 0.025, Q(3) ≈ 1.35e-3.
        assert!((q(0.0) - 0.5).abs() < 1e-7);
        assert!((q(1.959964) - 0.025).abs() < 1e-4);
        assert!((q(3.0) - 1.3499e-3).abs() < 1e-5);
        assert!((q(-1.0) - (1.0 - q(1.0))).abs() < 1e-12);
    }

    #[test]
    fn rber_monotone_in_wear_and_density() {
        let m = VoltageModel::default();
        for mode in [CellMode::Slc, CellMode::Mlc, CellMode::Tlc] {
            let mut prev = 0.0;
            for pec in [0u32, 100, 1000, 10_000, 100_000] {
                let r = m.rber(mode, pec);
                assert!(r >= prev, "{mode:?} at {pec}");
                prev = r;
            }
        }
        // At any wear, more bits per cell = more errors.
        for pec in [0u32, 3000, 30_000] {
            assert!(m.rber(CellMode::Slc, pec) <= m.rber(CellMode::Mlc, pec));
            assert!(m.rber(CellMode::Mlc, pec) <= m.rber(CellMode::Tlc, pec));
        }
    }

    #[test]
    fn tlc_endurance_matches_power_law_calibration() {
        // The voltage model and the empirical RberModel should agree on
        // the headline number: TLC dies near 3000 PEC at the native ECC
        // threshold.
        let m = VoltageModel::default();
        let endurance = m.endurance(CellMode::Tlc, 2.5e-3);
        assert!(
            (2000..4500).contains(&endurance),
            "TLC endurance {endurance}"
        );
    }

    #[test]
    fn endurance_hierarchy_matches_literature() {
        // MLC is typically quoted at ~3-10x TLC endurance, SLC at ~10-100x.
        let m = VoltageModel::default();
        let th = 2.5e-3;
        let tlc = m.endurance(CellMode::Tlc, th) as f64;
        let mlc = m.endurance(CellMode::Mlc, th) as f64;
        let slc = m.endurance(CellMode::Slc, th) as f64;
        assert!(mlc / tlc > 3.0, "MLC/TLC = {}", mlc / tlc);
        assert!(slc / mlc > 3.0, "SLC/MLC = {}", slc / mlc);
        assert!(slc / tlc < 1000.0, "SLC/TLC sane: {}", slc / tlc);
    }

    #[test]
    fn rebirth_gives_dead_tlc_cells_a_second_life() {
        let m = VoltageModel::default();
        let th = 2.5e-3;
        let tlc_life = m.endurance(CellMode::Tlc, th);
        let extra_mlc = m.rebirth_cycles(CellMode::Mlc, th);
        let extra_slc = m.rebirth_cycles(CellMode::Slc, th);
        assert!(
            extra_mlc > tlc_life,
            "MLC rebirth should exceed a TLC lifetime"
        );
        assert!(extra_slc > extra_mlc);
        assert_eq!(m.rebirth_cycles(CellMode::Tlc, th), 0);
    }

    #[test]
    fn capacity_ratios() {
        assert_eq!(CellMode::Slc.capacity_vs_tlc(), 1.0 / 3.0);
        assert_eq!(CellMode::Mlc.capacity_vs_tlc(), 2.0 / 3.0);
        assert_eq!(CellMode::Tlc.capacity_vs_tlc(), 1.0);
        assert_eq!(CellMode::Tlc.states(), 8);
        assert_eq!(CellMode::Slc.states(), 2);
    }

    #[test]
    fn endurance_zero_when_born_dead() {
        let m = VoltageModel {
            sigma0: 10.0,
            ..VoltageModel::default()
        };
        assert_eq!(m.endurance(CellMode::Tlc, 1e-3), 0);
    }
}
