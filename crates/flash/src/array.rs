//! Multi-chip flash array: the device an FTL drives.
//!
//! [`FlashArray`] combines the per-chip functional state
//! ([`crate::chip::FlashChip`]), the wear model ([`crate::rber`]), error
//! injection ([`crate::errors`]), and accounting ([`crate::stats`],
//! [`crate::timing`]) behind device-global addresses.

use crate::chip::{FlashChip, FlashError, PageState};
use crate::errors::BitFlipper;
use crate::geometry::{BlockAddr, FPageAddr, FlashGeometry};
use crate::rber::{MeanRberLut, RberModel};
use crate::stats::FlashStats;
use crate::timing::TimingModel;
use serde::{Deserialize, Serialize};

/// Result of one fPage read.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadOutcome {
    /// Number of raw bit errors injected into this read.
    pub raw_bit_errors: u64,
    /// The page's RBER at read time.
    pub rber: f64,
    /// The (possibly corrupted) stored bytes, if the page carried real data.
    pub data: Option<Vec<u8>>,
}

/// A seeded, deterministic flash device composed of multiple chips.
///
/// # Examples
///
/// ```
/// use salamander_flash::{array::FlashArray, geometry::FlashGeometry, rber::RberModel};
///
/// let geom = FlashGeometry::small_test();
/// let mut a = FlashArray::new(geom, RberModel::fast_wear(), 7);
/// let fp = geom.fpage_addr(0, 0, 0);
/// a.program(fp, None).unwrap();
/// // Wear the block and observe errors appear.
/// let blk = geom.block_of(fp);
/// for _ in 0..50 {
///     a.erase(blk).unwrap();
///     a.program(fp, None).unwrap();
/// }
/// let out = a.read(fp).unwrap();
/// assert!(out.rber > 1e-5);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlashArray {
    geom: FlashGeometry,
    model: RberModel,
    timing: TimingModel,
    chips: Vec<FlashChip>,
    flipper: BitFlipper,
    stats: FlashStats,
    /// Simulated wall clock in days (drives retention errors).
    now_days: f64,
    /// Bit-exact PEC→mean-RBER memo; keeps `powf` off the per-read and
    /// per-classification path (DESIGN.md §10).
    mean_lut: MeanRberLut,
}

impl FlashArray {
    /// Create an array; per-page endurance variance is derived from `seed`.
    pub fn new(geom: FlashGeometry, model: RberModel, seed: u64) -> Self {
        let chips = (0..geom.chips)
            .map(|c| FlashChip::new(geom, &model, seed.wrapping_add(c as u64 * 0x9E37_79B9)))
            .collect();
        FlashArray {
            geom,
            model,
            timing: TimingModel::default(),
            chips,
            flipper: BitFlipper::new(seed ^ 0xF1A5_44E7),
            stats: FlashStats::default(),
            now_days: 0.0,
            mean_lut: MeanRberLut::new(model),
        }
    }

    /// Replace the timing model.
    pub fn with_timing(mut self, timing: TimingModel) -> Self {
        self.timing = timing;
        self
    }

    /// The device geometry.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geom
    }

    /// The wear model.
    pub fn rber_model(&self) -> &RberModel {
        &self.model
    }

    /// The timing model.
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    /// Cumulative operation statistics.
    pub fn stats(&self) -> &FlashStats {
        &self.stats
    }

    /// Current simulated time in days.
    pub fn now_days(&self) -> f64 {
        self.now_days
    }

    /// Advance the simulated clock (retention errors accrue with time).
    pub fn advance_days(&mut self, days: f64) {
        self.now_days += days.max(0.0);
    }

    fn split(&self, block: BlockAddr) -> (usize, u32) {
        let chip = (block.index / self.geom.blocks_per_chip) as usize;
        let local = block.index % self.geom.blocks_per_chip;
        (chip, local)
    }

    /// Program an fPage; `data` must be `data + spare` bytes or `None` for
    /// a synthetic (metadata-only) program.
    pub fn program(&mut self, fp: FPageAddr, data: Option<&[u8]>) -> Result<(), FlashError> {
        if fp.index >= self.geom.total_fpages() {
            return Err(FlashError::OutOfRange);
        }
        let block = self.geom.block_of(fp);
        let page = self.geom.page_in_block(fp);
        let (chip, local) = self.split(block);
        self.chips[chip].program(local, page, data, self.now_days)?;
        let bytes = data
            .map(|d| d.len() as u64)
            .unwrap_or((self.geom.fpage_data_bytes + self.geom.fpage_spare_bytes) as u64);
        self.stats.record_program(bytes, &self.timing);
        Ok(())
    }

    /// Read an fPage, injecting raw bit errors per the wear model.
    pub fn read(&mut self, fp: FPageAddr) -> Result<ReadOutcome, FlashError> {
        if fp.index >= self.geom.total_fpages() {
            return Err(FlashError::OutOfRange);
        }
        let block = self.geom.block_of(fp);
        let page = self.geom.page_in_block(fp);
        let (chip, local) = self.split(block);
        let (variance, pec, retention, reads) =
            self.chips[chip].read_wear(local, page, self.now_days)?;
        let rber = self.model.rber_with_mean(
            self.mean_lut.mean_rber(pec),
            pec,
            variance,
            retention,
            reads,
        );
        let total_bytes = (self.geom.fpage_data_bytes + self.geom.fpage_spare_bytes) as u64;
        let bits = total_bytes * 8;
        let raw_bit_errors = self.flipper.draw_error_count(rber, bits);
        let data = match self.chips[chip].stored_data(local, page)? {
            Some(mut d) => {
                self.flipper.corrupt(&mut d, raw_bit_errors);
                Some(d)
            }
            None => None,
        };
        self.stats.record_read(total_bytes, &self.timing);
        self.stats.raw_bit_errors += raw_bit_errors;
        Ok(ReadOutcome {
            raw_bit_errors,
            rber,
            data,
        })
    }

    /// A clean (uncorrupted) copy of a programmed page's stored bytes, if
    /// the program carried real data. Used by FTL relocation and by the
    /// capability-model read path, which represents data the device's ECC
    /// engine fully corrected; it does not count as a device read and
    /// injects no errors.
    pub fn stored_data(&self, fp: FPageAddr) -> Result<Option<Vec<u8>>, FlashError> {
        if fp.index >= self.geom.total_fpages() {
            return Err(FlashError::OutOfRange);
        }
        let block = self.geom.block_of(fp);
        let page = self.geom.page_in_block(fp);
        let (chip, local) = self.split(block);
        self.chips[chip].stored_data(local, page)
    }

    /// Account `n` read-retry passes (the controller re-reads with
    /// adjusted reference voltages; each pass costs one array read).
    pub fn record_retries(&mut self, n: u64) {
        let timing = self.timing;
        self.stats.record_retries(n, &timing);
    }

    /// Erase a block.
    pub fn erase(&mut self, block: BlockAddr) -> Result<(), FlashError> {
        if block.index >= self.geom.total_blocks() {
            return Err(FlashError::OutOfRange);
        }
        let (chip, local) = self.split(block);
        self.chips[chip].erase(local)?;
        self.stats.record_erase(&self.timing);
        Ok(())
    }

    /// Mark a block bad.
    pub fn mark_bad(&mut self, block: BlockAddr) -> Result<(), FlashError> {
        let (chip, local) = self.split(block);
        self.chips[chip].mark_bad(local)
    }

    /// Whether a block is marked bad.
    pub fn is_bad(&self, block: BlockAddr) -> bool {
        let (chip, local) = self.split(block);
        self.chips[chip].is_bad(local)
    }

    /// PEC of a block.
    pub fn pec(&self, block: BlockAddr) -> u32 {
        let (chip, local) = self.split(block);
        self.chips[chip].pec(local)
    }

    /// Endurance variance multiplier of an fPage.
    pub fn variance(&self, fp: FPageAddr) -> f64 {
        let block = self.geom.block_of(fp);
        let page = self.geom.page_in_block(fp);
        let (chip, local) = self.split(block);
        self.chips[chip].variance(local, page)
    }

    /// Current *projected* RBER of a page at its block's PEC — the value an
    /// FTL uses to classify tiredness without issuing a read (no read
    /// disturb or retention term; callers add margins for those).
    pub fn projected_rber(&self, fp: FPageAddr) -> f64 {
        let block = self.geom.block_of(fp);
        self.mean_lut.mean_rber(self.pec(block)) * self.variance(fp)
    }

    /// [`Self::projected_rber`] with the block's mean RBER already in
    /// hand — lets block-granular callers (reclassification, SMART)
    /// hoist the per-block lookup out of their per-page loop.
    pub fn projected_rber_with_mean(&self, mean: f64, fp: FPageAddr) -> f64 {
        mean * self.variance(fp)
    }

    /// The memoized block-mean RBER at `pec` (bit-exact; see
    /// [`MeanRberLut`]).
    pub fn mean_rber_at(&self, pec: u32) -> f64 {
        self.mean_lut.mean_rber(pec)
    }

    /// Lifecycle state of an fPage.
    pub fn page_state(&self, fp: FPageAddr) -> PageState {
        let block = self.geom.block_of(fp);
        let page = self.geom.page_in_block(fp);
        let (chip, local) = self.split(block);
        self.chips[chip].page_state(local, page)
    }

    /// Total bad blocks across all chips.
    pub fn bad_blocks(&self) -> u32 {
        self.chips.iter().map(|c| c.bad_blocks()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> FlashArray {
        FlashArray::new(FlashGeometry::small_test(), RberModel::default(), 11)
    }

    #[test]
    fn fresh_page_reads_cleanly() {
        let mut a = array();
        let fp = a.geometry().fpage_addr(0, 0, 0);
        a.program(fp, None).unwrap();
        let out = a.read(fp).unwrap();
        assert!(out.rber < 1e-6);
        assert_eq!(out.raw_bit_errors, 0);
        assert_eq!(out.data, None);
    }

    #[test]
    fn wear_increases_errors() {
        let geom = FlashGeometry::small_test();
        let mut a = FlashArray::new(geom, RberModel::fast_wear().no_variance(), 3);
        let fp = geom.fpage_addr(0, 0, 0);
        let blk = geom.block_of(fp);
        for _ in 0..200 {
            a.program(fp, None).unwrap();
            a.erase(blk).unwrap();
        }
        a.program(fp, None).unwrap();
        let out = a.read(fp).unwrap();
        assert!(out.rber > 1e-3, "rber {}", out.rber);
        assert!(out.raw_bit_errors > 10);
    }

    #[test]
    fn data_corruption_matches_error_count() {
        let geom = FlashGeometry::small_test();
        let mut a = FlashArray::new(geom, RberModel::fast_wear().no_variance(), 5);
        let fp = geom.fpage_addr(0, 0, 0);
        let blk = geom.block_of(fp);
        let clean = vec![0u8; (geom.fpage_data_bytes + geom.fpage_spare_bytes) as usize];
        for _ in 0..100 {
            a.program(fp, None).unwrap();
            a.erase(blk).unwrap();
        }
        a.program(fp, Some(&clean)).unwrap();
        let out = a.read(fp).unwrap();
        let got = out.data.unwrap();
        let flipped: u64 = clean
            .iter()
            .zip(&got)
            .map(|(x, y)| (x ^ y).count_ones() as u64)
            .sum();
        assert_eq!(flipped, out.raw_bit_errors);
    }

    #[test]
    fn global_addressing_reaches_second_chip() {
        let mut a = array();
        let g = *a.geometry();
        let fp = g.fpage_addr(1, 7, 15);
        // Program pages 0..15 of that block in order.
        let blk = g.block_of(fp);
        for p in g.fpages_in(blk) {
            a.program(p, None).unwrap();
        }
        assert!(a.read(fp).is_ok());
        a.erase(blk).unwrap();
        assert_eq!(a.pec(blk), 1);
    }

    #[test]
    fn stats_track_operations() {
        let mut a = array();
        let g = *a.geometry();
        let fp = g.fpage_addr(0, 0, 0);
        a.program(fp, None).unwrap();
        a.read(fp).unwrap();
        a.erase(g.block_of(fp)).unwrap();
        let s = a.stats();
        assert_eq!((s.programs, s.reads, s.erases), (1, 1, 1));
        assert!(s.busy_us > 0.0);
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = || {
            let geom = FlashGeometry::small_test();
            let mut a = FlashArray::new(geom, RberModel::fast_wear(), 99);
            let fp = geom.fpage_addr(0, 0, 0);
            let blk = geom.block_of(fp);
            let mut errs = Vec::new();
            for _ in 0..40 {
                a.program(fp, None).unwrap();
                errs.push(a.read(fp).unwrap().raw_bit_errors);
                a.erase(blk).unwrap();
            }
            errs
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn retention_clock_advances() {
        let mut a = array();
        assert_eq!(a.now_days(), 0.0);
        a.advance_days(3.0);
        a.advance_days(-5.0); // clamped
        assert_eq!(a.now_days(), 3.0);
    }

    #[test]
    fn projected_rber_uses_variance() {
        let a = array();
        let g = *a.geometry();
        let p0 = g.fpage_addr(0, 0, 0);
        let p1 = g.fpage_addr(0, 0, 1);
        // Equal PEC (=0) but distinct variances ⇒ distinct projections.
        assert_ne!(a.projected_rber(p0), a.projected_rber(p1));
    }

    #[test]
    fn bad_block_tracked_globally() {
        let mut a = array();
        let g = *a.geometry();
        a.mark_bad(BlockAddr { index: 9 }).unwrap();
        assert!(a.is_bad(BlockAddr { index: 9 }));
        assert_eq!(a.bad_blocks(), 1);
        assert!(g.total_blocks() > 9);
    }
}
