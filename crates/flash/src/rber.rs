//! Raw bit-error-rate (RBER) model.
//!
//! The paper's lifetime arguments rest on two empirical facts it cites:
//!
//! 1. RBER grows as a power law of the program/erase cycle (PEC) count
//!    (Kim, Choi, Min — FAST '19; Cai et al. — Proc. IEEE '17).
//! 2. Endurance varies widely *between pages of the same block*
//!    (Shim et al. — MICRO '19; Raquibuzzaman et al. — IRPS '22), which is
//!    why Salamander retires fPages individually rather than whole blocks.
//!
//! [`RberModel`] captures both: a deterministic power law in PEC plus a
//! per-page lognormal endurance multiplier, with optional retention and
//! read-disturb terms. The same model is shared by the functional chip
//! simulator ([`crate::chip`]) and by the statistical fleet simulator in
//! `salamander-fleet`, so device-level and fleet-level results are mutually
//! consistent.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize, Value};
use std::cell::RefCell;

/// Parameters of the RBER model.
///
/// `rber(page) = (base + scale * pec^exponent) * page_variance
///              + retention_scale * days * pec
///              + disturb_scale * reads_since_erase`
///
/// The default constants are calibrated so that with the paper's example
/// ECC configuration (16 KiB fPage, 2 KiB spare, max correctable RBER
/// ~2.5e-3 at a 1e-15 page UBER target) a median page endures ~3000 PEC —
/// typical of 3D TLC — and so that the code-rate/lifetime trade-off of
/// Fig. 2 lands at the paper's "50% potential lifetime benefit for L1":
/// the L1 code tolerates ~5.6x the RBER of L0, and `5.6^(1/4.3) ≈ 1.5`.
///
/// # Examples
///
/// ```
/// use salamander_flash::rber::RberModel;
///
/// let m = RberModel::default();
/// let fresh = m.mean_rber(0);
/// let worn = m.mean_rber(3000);
/// assert!(worn > 100.0 * fresh);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RberModel {
    /// RBER of a fresh page (manufacturing defects, noise floor).
    pub base: f64,
    /// Scale of the wear-driven power-law term.
    pub scale: f64,
    /// Exponent of the power law. Literature reports ~2–3 for 3D TLC.
    pub exponent: f64,
    /// Sigma of the per-page lognormal endurance multiplier
    /// (0 disables inter-page variance).
    pub page_sigma: f64,
    /// Additional RBER per day of retention per PEC (charge leakage grows
    /// with wear). 0 disables retention errors.
    pub retention_scale: f64,
    /// Additional RBER per read since the last erase (read disturb).
    pub disturb_scale: f64,
}

impl Default for RberModel {
    fn default() -> Self {
        // Calibration: mean_rber(3000) ~ 2.5e-3, the maximum correctable
        // RBER of the native 88% code rate (see `salamander-ecc`), so the
        // median page endures ~3000 cycles.
        RberModel {
            base: 1.0e-8,
            scale: 2.8e-18,
            exponent: 4.3,
            page_sigma: 0.25,
            retention_scale: 0.0,
            disturb_scale: 0.0,
        }
    }
}

impl RberModel {
    /// A model with aggressive wear for fast unit tests: pages die within
    /// tens of cycles instead of thousands.
    pub fn fast_wear() -> Self {
        RberModel {
            base: 1.0e-8,
            scale: 1.3e-10,
            exponent: 4.3,
            page_sigma: 0.25,
            retention_scale: 0.0,
            disturb_scale: 0.0,
        }
    }

    /// A variance-free model (every page identical), useful for tests that
    /// need exact thresholds.
    pub fn no_variance(mut self) -> Self {
        self.page_sigma = 0.0;
        self
    }

    /// Mean RBER (variance multiplier = 1) after `pec` program/erase cycles.
    pub fn mean_rber(&self, pec: u32) -> f64 {
        self.base + self.scale * (pec as f64).powf(self.exponent)
    }

    /// Full RBER for a page with endurance `variance` multiplier, `pec`
    /// cycles, `retention_days` since programming, and `reads` since the
    /// containing block was erased.
    pub fn rber(&self, pec: u32, variance: f64, retention_days: f64, reads: u64) -> f64 {
        self.rber_with_mean(self.mean_rber(pec), pec, variance, retention_days, reads)
    }

    /// [`Self::rber`] with the mean term supplied by the caller —
    /// typically from a [`MeanRberLut`] — so the hot read path skips
    /// the power law. The expression is byte-for-byte the one `rber`
    /// evaluates; passing `mean_rber(pec)` gives bit-identical output.
    pub fn rber_with_mean(
        &self,
        mean: f64,
        pec: u32,
        variance: f64,
        retention_days: f64,
        reads: u64,
    ) -> f64 {
        (mean * variance
            + self.retention_scale * retention_days * pec as f64
            + self.disturb_scale * reads as f64)
            .min(0.5)
    }

    /// Inverse of [`Self::mean_rber`]: the PEC count at which the mean RBER
    /// reaches `target`. Returns `u32::MAX` if the target is below `base`
    /// is never reached (it always is for positive `scale`).
    ///
    /// This is the quantity Fig. 2 plots: the lifetime (in PEC) bought by
    /// tolerating a higher RBER through a lower code rate.
    pub fn pec_at_rber(&self, target: f64) -> u32 {
        if target <= self.base {
            return 0;
        }
        let cycles = ((target - self.base) / self.scale).powf(1.0 / self.exponent);
        if cycles >= u32::MAX as f64 {
            u32::MAX
        } else {
            cycles as u32
        }
    }

    /// Draw a per-page endurance variance multiplier.
    ///
    /// Lognormal with median 1: `exp(sigma * z)` for standard-normal `z`.
    /// A multiplier above 1 means the page is *weaker* (more errors at the
    /// same wear).
    pub fn draw_variance<R: Rng>(&self, rng: &mut R) -> f64 {
        if self.page_sigma == 0.0 {
            return 1.0;
        }
        // Box-Muller transform; avoids a distribution-crate dependency.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.page_sigma * z).exp()
    }

    /// Deterministically draw `n` per-page variance multipliers from `seed`.
    pub fn draw_variances(&self, n: usize, seed: u64) -> Vec<f64> {
        let mut out = vec![0.0; n];
        self.draw_variances_into(seed, &mut out);
        out
    }

    /// [`Self::draw_variances`] into a caller-provided buffer — the
    /// cohort engine draws straight into one column slab instead of
    /// allocating a `Vec` per device. Fills every slot of `out`;
    /// the value sequence is bit-identical to `draw_variances`.
    pub fn draw_variances_into(&self, seed: u64, out: &mut [f64]) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for v in out.iter_mut() {
            *v = self.draw_variance(&mut rng);
        }
    }
}

/// Largest PEC memoized by [`MeanRberLut`]; higher cycle counts fall
/// back to computing the power law directly. Devices in this repo die
/// well under 100k PEC, so the hot path never takes the fallback.
const MEAN_RBER_LUT_MAX_PEC: u32 = 1 << 17;

/// Exact per-PEC memo of [`RberModel::mean_rber`].
///
/// `mean_rber` is a `powf` on every flash read, reclassification, and
/// statistical-device step — the single hottest transcendental in the
/// simulator. The LUT grows on demand and stores, for each integer
/// PEC, the bit-exact result of calling [`RberModel::mean_rber`] at
/// that PEC. There is **no interpolation**: a lookup either returns a
/// value produced by the original expression or (past
/// [`MEAN_RBER_LUT_MAX_PEC`]) evaluates the original expression
/// directly. That is the exact-match guard the determinism contract
/// needs — a cached read can never differ in even one ULP from the
/// uncached one, so no retirement decision can shift (see DESIGN.md
/// §10).
///
/// Serialization stores only the model; the cache rebuilds lazily
/// after a snapshot restore, which is invisible to callers because
/// every entry is recomputed from the same pure function.
#[derive(Debug, Clone)]
pub struct MeanRberLut {
    model: RberModel,
    /// Memoized `model.mean_rber(pec)` for `pec < values.len()`.
    /// `RefCell` because lookups happen behind `&self` accessors
    /// (e.g. `FlashArray::projected_rber`); the simulator shares
    /// nothing across threads except by moving whole devices.
    values: RefCell<Vec<f64>>,
}

impl MeanRberLut {
    /// An empty memo for `model`.
    pub fn new(model: RberModel) -> Self {
        MeanRberLut {
            model,
            values: RefCell::new(Vec::new()),
        }
    }

    /// The model this memo caches.
    pub fn model(&self) -> &RberModel {
        &self.model
    }

    /// Bit-exact [`RberModel::mean_rber`], memoized per integer PEC.
    pub fn mean_rber(&self, pec: u32) -> f64 {
        if pec > MEAN_RBER_LUT_MAX_PEC {
            return self.model.mean_rber(pec);
        }
        let mut values = self.values.borrow_mut();
        if pec as usize >= values.len() {
            // Grow in chunks so a slowly rising PEC does not recompute
            // the prefix on every new cycle count.
            let target = (pec as usize + 1).next_power_of_two().max(1024);
            for p in values.len()..target {
                values.push(self.model.mean_rber(p as u32));
            }
        }
        values[pec as usize]
    }
}

impl Serialize for MeanRberLut {
    fn to_value(&self) -> Value {
        // The cache is pure derived state: persist only the model.
        self.model.to_value()
    }
}

impl<'de> Deserialize<'de> for MeanRberLut {
    fn from_value(v: &Value) -> Result<Self, serde::de::DeError> {
        Ok(MeanRberLut::new(RberModel::from_value(v)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rber_monotone_in_pec() {
        let m = RberModel::default();
        let mut prev = 0.0;
        for pec in [0u32, 10, 100, 1000, 3000, 10000] {
            let r = m.mean_rber(pec);
            assert!(r >= prev, "rber must be non-decreasing in pec");
            prev = r;
        }
    }

    #[test]
    fn pec_at_rber_inverts_mean_rber() {
        let m = RberModel::default();
        for pec in [100u32, 500, 1000, 3000, 8000] {
            let r = m.mean_rber(pec);
            let back = m.pec_at_rber(r);
            let diff = (back as i64 - pec as i64).abs();
            assert!(diff <= 1, "pec {pec} -> rber -> {back}");
        }
    }

    #[test]
    fn pec_at_rber_below_base_is_zero() {
        let m = RberModel::default();
        assert_eq!(m.pec_at_rber(m.base / 2.0), 0);
    }

    #[test]
    fn variance_median_near_one() {
        let m = RberModel::default();
        let vs = m.draw_variances(10_001, 7);
        let mut sorted = vs.clone();
        sorted.sort_unstable_by(f64::total_cmp);
        let median = sorted[5000];
        assert!((median - 1.0).abs() < 0.05, "median {median}");
        // All positive, with genuine spread.
        assert!(vs.iter().all(|&v| v > 0.0));
        assert!(sorted[100] < 0.8 && sorted[9900] > 1.25);
    }

    #[test]
    fn variance_disabled_gives_one() {
        let m = RberModel::default().no_variance();
        let vs = m.draw_variances(100, 3);
        assert!(vs.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn draw_variances_into_overwrites_whole_buffer() {
        let m = RberModel::default();
        let mut buf = vec![-1.0; 33];
        m.draw_variances_into(5, &mut buf);
        assert!(buf.iter().all(|&v| v > 0.0), "every slot drawn");
        assert_eq!(buf, m.draw_variances(33, 5));
    }

    #[test]
    fn variance_deterministic_per_seed() {
        let m = RberModel::default();
        assert_eq!(m.draw_variances(64, 9), m.draw_variances(64, 9));
        assert_ne!(m.draw_variances(64, 9), m.draw_variances(64, 10));
    }

    #[test]
    fn retention_and_disturb_add_errors() {
        let m = RberModel {
            retention_scale: 1e-9,
            disturb_scale: 1e-10,
            ..RberModel::default()
        };
        let baseline = m.rber(1000, 1.0, 0.0, 0);
        assert!(m.rber(1000, 1.0, 30.0, 0) > baseline);
        assert!(m.rber(1000, 1.0, 0.0, 10_000) > baseline);
    }

    #[test]
    fn rber_saturates_at_half() {
        let m = RberModel::fast_wear();
        assert!(m.rber(u32::MAX, 1e12, 0.0, 0) <= 0.5);
    }

    #[test]
    fn fast_wear_kills_pages_quickly() {
        let m = RberModel::fast_wear();
        // At the native code rate (~2.5e-3 correctable), pages should die
        // within ~100 cycles under the fast-wear model.
        assert!(m.pec_at_rber(2.5e-3) < 100);
    }

    #[test]
    fn lut_is_bit_exact_everywhere() {
        for model in [RberModel::default(), RberModel::fast_wear()] {
            let lut = MeanRberLut::new(model);
            // Probe out of order to exercise growth, including the
            // above-cap fallback path.
            for pec in [3000u32, 0, 1, 7, 4096, 100_000, MEAN_RBER_LUT_MAX_PEC + 5] {
                assert_eq!(
                    lut.mean_rber(pec).to_bits(),
                    model.mean_rber(pec).to_bits(),
                    "pec {pec}"
                );
            }
        }
    }

    #[test]
    fn lut_rber_with_mean_matches_rber() {
        let m = RberModel {
            retention_scale: 1e-9,
            disturb_scale: 1e-10,
            ..RberModel::default()
        };
        let lut = MeanRberLut::new(m);
        for pec in [0u32, 100, 3000] {
            let direct = m.rber(pec, 1.3, 12.0, 456);
            let cached = m.rber_with_mean(lut.mean_rber(pec), pec, 1.3, 12.0, 456);
            assert_eq!(direct.to_bits(), cached.to_bits(), "pec {pec}");
        }
    }

    #[test]
    fn lut_serde_round_trip_rebuilds_cache() {
        let lut = MeanRberLut::new(RberModel::fast_wear());
        let warm = lut.mean_rber(50);
        let restored = MeanRberLut::from_value(&lut.to_value()).unwrap();
        assert_eq!(restored.model(), lut.model());
        assert_eq!(restored.mean_rber(50).to_bits(), warm.to_bits());
    }

    #[test]
    fn default_median_endurance_near_3000() {
        let m = RberModel::default();
        let pec = m.pec_at_rber(2.5e-3);
        assert!((2500..3500).contains(&pec), "median endurance {pec}");
    }
}
