//! Operation counters and simulated-time accounting for a flash array.

use crate::timing::TimingModel;
use serde::{Deserialize, Serialize};

/// Cumulative operation counters.
///
/// # Examples
///
/// ```
/// use salamander_flash::stats::FlashStats;
///
/// let mut s = FlashStats::default();
/// s.record_read(16 * 1024, &Default::default());
/// assert_eq!(s.reads, 1);
/// assert!(s.busy_us > 0.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FlashStats {
    /// fPage reads issued.
    pub reads: u64,
    /// fPage programs issued.
    pub programs: u64,
    /// Block erases issued.
    pub erases: u64,
    /// Bytes transferred to the host on reads.
    pub read_bytes: u64,
    /// Bytes transferred from the host on programs.
    pub program_bytes: u64,
    /// Total raw bit errors observed across all reads.
    pub raw_bit_errors: u64,
    /// Additional array reads spent on read-retry (voltage adjustment).
    pub retry_reads: u64,
    /// Accumulated device busy time (µs), serial model.
    pub busy_us: f64,
}

impl FlashStats {
    /// Record one fPage read of `bytes`.
    pub fn record_read(&mut self, bytes: u64, t: &TimingModel) {
        self.reads += 1;
        self.read_bytes += bytes;
        self.busy_us += t.read_latency_us(bytes);
    }

    /// Record one fPage program of `bytes`.
    pub fn record_program(&mut self, bytes: u64, t: &TimingModel) {
        self.programs += 1;
        self.program_bytes += bytes;
        self.busy_us += t.program_latency_us(bytes);
    }

    /// Record one block erase.
    pub fn record_erase(&mut self, t: &TimingModel) {
        self.erases += 1;
        self.busy_us += t.t_erase_us;
    }

    /// Record `n` read-retry passes (each costs one array read time).
    pub fn record_retries(&mut self, n: u64, t: &TimingModel) {
        self.retry_reads += n;
        self.busy_us += n as f64 * t.t_read_us;
    }

    /// Difference of two snapshots (`self` minus `earlier`).
    pub fn since(&self, earlier: &FlashStats) -> FlashStats {
        FlashStats {
            reads: self.reads - earlier.reads,
            programs: self.programs - earlier.programs,
            erases: self.erases - earlier.erases,
            read_bytes: self.read_bytes - earlier.read_bytes,
            program_bytes: self.program_bytes - earlier.program_bytes,
            raw_bit_errors: self.raw_bit_errors - earlier.raw_bit_errors,
            retry_reads: self.retry_reads - earlier.retry_reads,
            busy_us: self.busy_us - earlier.busy_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let t = TimingModel::default();
        let mut s = FlashStats::default();
        s.record_read(100, &t);
        s.record_program(200, &t);
        s.record_erase(&t);
        assert_eq!(
            (s.reads, s.programs, s.erases, s.read_bytes, s.program_bytes),
            (1, 1, 1, 100, 200)
        );
        let expect = t.read_latency_us(100) + t.program_latency_us(200) + t.t_erase_us;
        assert!((s.busy_us - expect).abs() < 1e-9);
    }

    #[test]
    fn since_subtracts() {
        let t = TimingModel::default();
        let mut s = FlashStats::default();
        s.record_read(100, &t);
        let snap = s;
        s.record_read(100, &t);
        s.record_erase(&t);
        let d = s.since(&snap);
        assert_eq!(d.reads, 1);
        assert_eq!(d.erases, 1);
        assert_eq!(d.programs, 0);
    }
}
