//! Functional model of one flash chip (die).
//!
//! The chip enforces the NAND programming contract — pages program in order
//! within a block, cannot be overwritten without an erase, and erases are
//! block-granular — and tracks the wear state (PEC, per-page endurance
//! variance, reads since erase, programming time) that the RBER model
//! consumes. Data storage is optional per program operation: FTL-level
//! simulations run "synthetic" (metadata-only) for speed, while functional
//! and ECC tests carry real bytes.

use crate::geometry::FlashGeometry;
use crate::rber::RberModel;
use serde::{Deserialize, Serialize};

/// Lifecycle state of one fPage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PageState {
    /// Erased and programmable.
    Erased,
    /// Holding data (real or synthetic).
    Programmed,
}

/// Errors returned by chip operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlashError {
    /// Attempt to program a page that is not erased.
    NotErased,
    /// Pages within a block must be programmed in ascending order.
    OutOfOrderProgram,
    /// Attempt to read a page that has not been programmed.
    NotProgrammed,
    /// Operation on a block marked bad.
    BadBlock,
    /// Supplied data buffer does not match `data + spare` bytes.
    BadDataLength,
    /// Address out of range for this chip.
    OutOfRange,
}

impl std::fmt::Display for FlashError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FlashError::NotErased => "page not erased",
            FlashError::OutOfOrderProgram => "out-of-order program within block",
            FlashError::NotProgrammed => "page not programmed",
            FlashError::BadBlock => "block marked bad",
            FlashError::BadDataLength => "data length != fpage data+spare size",
            FlashError::OutOfRange => "address out of range",
        };
        f.write_str(s)
    }
}

impl std::error::Error for FlashError {}

/// Per-page state.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Page {
    state: PageState,
    /// Lognormal endurance multiplier (>1 = weaker page).
    variance: f64,
    /// Simulation day the page was last programmed (for retention).
    programmed_at: f64,
    /// Stored content (`data ++ spare`), if the program carried real bytes.
    data: Option<Box<[u8]>>,
}

/// Per-block state.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Block {
    pec: u32,
    bad: bool,
    reads_since_erase: u64,
    /// Lowest page index that may be programmed next (NAND requires
    /// ascending program order within a block; skipping pages is allowed).
    next_program: u32,
}

/// One flash chip: `blocks_per_chip × fpages_per_block` pages.
///
/// Addresses here are *chip-local* (block in `[0, blocks_per_chip)`);
/// [`crate::array::FlashArray`] provides device-global addressing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlashChip {
    geom: FlashGeometry,
    blocks: Vec<Block>,
    pages: Vec<Page>,
}

impl FlashChip {
    /// Create a chip with per-page endurance variances drawn from `model`
    /// using `seed`.
    pub fn new(geom: FlashGeometry, model: &RberModel, seed: u64) -> Self {
        let n_pages = (geom.blocks_per_chip * geom.fpages_per_block) as usize;
        let variances = model.draw_variances(n_pages, seed);
        let pages = variances
            .into_iter()
            .map(|variance| Page {
                state: PageState::Erased,
                variance,
                programmed_at: 0.0,
                data: None,
            })
            .collect();
        let blocks = (0..geom.blocks_per_chip)
            .map(|_| Block {
                pec: 0,
                bad: false,
                reads_since_erase: 0,
                next_program: 0,
            })
            .collect();
        FlashChip {
            geom,
            blocks,
            pages,
        }
    }

    fn page_index(&self, block: u32, page: u32) -> Result<usize, FlashError> {
        if block >= self.geom.blocks_per_chip || page >= self.geom.fpages_per_block {
            return Err(FlashError::OutOfRange);
        }
        Ok((block * self.geom.fpages_per_block + page) as usize)
    }

    /// Program (chip-local) page `page` of `block`.
    ///
    /// `data`, when present, must be exactly `data + spare` bytes and is
    /// stored verbatim; `None` programs a synthetic page whose reads report
    /// error counts only.
    pub fn program(
        &mut self,
        block: u32,
        page: u32,
        data: Option<&[u8]>,
        now_days: f64,
    ) -> Result<(), FlashError> {
        let idx = self.page_index(block, page)?;
        let blk = &self.blocks[block as usize];
        if blk.bad {
            return Err(FlashError::BadBlock);
        }
        if self.pages[idx].state != PageState::Erased {
            return Err(FlashError::NotErased);
        }
        if page < blk.next_program {
            return Err(FlashError::OutOfOrderProgram);
        }
        if let Some(d) = data {
            let want = (self.geom.fpage_data_bytes + self.geom.fpage_spare_bytes) as usize;
            if d.len() != want {
                return Err(FlashError::BadDataLength);
            }
        }
        let p = &mut self.pages[idx];
        p.state = PageState::Programmed;
        p.programmed_at = now_days;
        p.data = data.map(|d| d.to_vec().into_boxed_slice());
        self.blocks[block as usize].next_program = page + 1;
        Ok(())
    }

    /// Read the raw wear inputs for a page: (variance, pec, retention_days,
    /// reads_since_erase). The caller (the array) turns these into an RBER
    /// and injects errors; the chip itself stays RNG-free so clones are
    /// cheap and exact.
    pub fn read_wear(
        &mut self,
        block: u32,
        page: u32,
        now_days: f64,
    ) -> Result<(f64, u32, f64, u64), FlashError> {
        let idx = self.page_index(block, page)?;
        if self.pages[idx].state != PageState::Programmed {
            return Err(FlashError::NotProgrammed);
        }
        let blk = &mut self.blocks[block as usize];
        blk.reads_since_erase += 1;
        let p = &self.pages[idx];
        Ok((
            p.variance,
            blk.pec,
            (now_days - p.programmed_at).max(0.0),
            blk.reads_since_erase,
        ))
    }

    /// A copy of the stored bytes of a programmed page, if the program
    /// carried real data.
    pub fn stored_data(&self, block: u32, page: u32) -> Result<Option<Vec<u8>>, FlashError> {
        let idx = self.page_index(block, page)?;
        if self.pages[idx].state != PageState::Programmed {
            return Err(FlashError::NotProgrammed);
        }
        Ok(self.pages[idx].data.as_ref().map(|d| d.to_vec()))
    }

    /// Erase `block`: all pages return to `Erased`, PEC increments.
    pub fn erase(&mut self, block: u32) -> Result<(), FlashError> {
        if block >= self.geom.blocks_per_chip {
            return Err(FlashError::OutOfRange);
        }
        if self.blocks[block as usize].bad {
            return Err(FlashError::BadBlock);
        }
        let first = (block * self.geom.fpages_per_block) as usize;
        for p in &mut self.pages[first..first + self.geom.fpages_per_block as usize] {
            p.state = PageState::Erased;
            p.data = None;
        }
        let blk = &mut self.blocks[block as usize];
        blk.pec += 1;
        blk.reads_since_erase = 0;
        blk.next_program = 0;
        Ok(())
    }

    /// Mark `block` bad; subsequent programs/erases fail.
    pub fn mark_bad(&mut self, block: u32) -> Result<(), FlashError> {
        if block >= self.geom.blocks_per_chip {
            return Err(FlashError::OutOfRange);
        }
        self.blocks[block as usize].bad = true;
        Ok(())
    }

    /// Whether `block` is marked bad.
    pub fn is_bad(&self, block: u32) -> bool {
        self.blocks[block as usize].bad
    }

    /// PEC count of `block`.
    pub fn pec(&self, block: u32) -> u32 {
        self.blocks[block as usize].pec
    }

    /// Endurance variance multiplier of a page.
    pub fn variance(&self, block: u32, page: u32) -> f64 {
        self.pages[(block * self.geom.fpages_per_block + page) as usize].variance
    }

    /// Lifecycle state of a page.
    pub fn page_state(&self, block: u32, page: u32) -> PageState {
        self.pages[(block * self.geom.fpages_per_block + page) as usize].state
    }

    /// Number of bad blocks on this chip.
    pub fn bad_blocks(&self) -> u32 {
        self.blocks.iter().filter(|b| b.bad).count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> FlashChip {
        FlashChip::new(FlashGeometry::small_test(), &RberModel::default(), 1)
    }

    #[test]
    fn program_then_read_wear() {
        let mut c = chip();
        c.program(0, 0, None, 0.0).unwrap();
        let (var, pec, days, reads) = c.read_wear(0, 0, 2.5).unwrap();
        assert!(var > 0.0);
        assert_eq!(pec, 0);
        assert!((days - 2.5).abs() < 1e-12);
        assert_eq!(reads, 1);
    }

    #[test]
    fn program_requires_erased() {
        let mut c = chip();
        c.program(0, 0, None, 0.0).unwrap();
        assert_eq!(c.program(0, 0, None, 0.0), Err(FlashError::NotErased));
    }

    #[test]
    fn program_order_ascending_with_skips() {
        let mut c = chip();
        c.program(0, 0, None, 0.0).unwrap();
        c.program(0, 1, None, 0.0).unwrap();
        // Skipping forward is allowed (worn pages are skipped in ShrinkS)…
        c.program(0, 5, None, 0.0).unwrap();
        // …but going backwards is not.
        assert_eq!(
            c.program(0, 2, None, 0.0),
            Err(FlashError::OutOfOrderProgram)
        );
        assert_eq!(c.program(0, 5, None, 0.0), Err(FlashError::NotErased));
        c.program(0, 6, None, 0.0).unwrap();
    }

    #[test]
    fn erase_resets_and_counts_pec() {
        let mut c = chip();
        c.program(0, 0, None, 0.0).unwrap();
        assert_eq!(c.pec(0), 0);
        c.erase(0).unwrap();
        assert_eq!(c.pec(0), 1);
        assert_eq!(c.page_state(0, 0), PageState::Erased);
        // Programming page 0 works again after erase.
        c.program(0, 0, None, 0.0).unwrap();
    }

    #[test]
    fn read_unprogrammed_fails() {
        let mut c = chip();
        assert_eq!(c.read_wear(0, 0, 0.0), Err(FlashError::NotProgrammed));
        c.program(0, 0, None, 0.0).unwrap();
        c.erase(0).unwrap();
        assert_eq!(c.read_wear(0, 0, 0.0), Err(FlashError::NotProgrammed));
    }

    #[test]
    fn data_round_trip() {
        let mut c = chip();
        let g = FlashGeometry::small_test();
        let buf = vec![0x5Au8; (g.fpage_data_bytes + g.fpage_spare_bytes) as usize];
        c.program(0, 0, Some(&buf), 0.0).unwrap();
        assert_eq!(c.stored_data(0, 0).unwrap().unwrap(), buf);
        // Synthetic page stores no data.
        c.program(0, 1, None, 0.0).unwrap();
        assert_eq!(c.stored_data(0, 1).unwrap(), None);
    }

    #[test]
    fn bad_data_length_rejected() {
        let mut c = chip();
        assert_eq!(
            c.program(0, 0, Some(&[0u8; 10]), 0.0),
            Err(FlashError::BadDataLength)
        );
    }

    #[test]
    fn bad_block_refuses_ops() {
        let mut c = chip();
        c.mark_bad(3).unwrap();
        assert!(c.is_bad(3));
        assert_eq!(c.program(3, 0, None, 0.0), Err(FlashError::BadBlock));
        assert_eq!(c.erase(3), Err(FlashError::BadBlock));
        assert_eq!(c.bad_blocks(), 1);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut c = chip();
        assert_eq!(c.program(99, 0, None, 0.0), Err(FlashError::OutOfRange));
        assert_eq!(c.erase(99), Err(FlashError::OutOfRange));
        assert_eq!(c.read_wear(0, 99, 0.0), Err(FlashError::OutOfRange));
    }

    #[test]
    fn read_disturb_counter_accumulates() {
        let mut c = chip();
        c.program(0, 0, None, 0.0).unwrap();
        for i in 1..=10u64 {
            let (_, _, _, reads) = c.read_wear(0, 0, 0.0).unwrap();
            assert_eq!(reads, i);
        }
        c.program(0, 1, None, 0.0).unwrap();
        // Counter is per block, shared by its pages.
        let (_, _, _, reads) = c.read_wear(0, 1, 0.0).unwrap();
        assert_eq!(reads, 11);
    }

    #[test]
    fn variances_differ_between_pages() {
        let c = chip();
        let a = c.variance(0, 0);
        let b = c.variance(0, 1);
        assert_ne!(a, b);
    }
}
