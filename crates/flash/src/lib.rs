//! NAND flash simulator substrate for the Salamander reproduction.
//!
//! The HotOS '25 Salamander paper assumes an SSD built from NAND flash whose
//! pages wear out at different rates, accumulate raw bit errors proportional
//! to their program/erase cycle (PEC) count, and are accessed at two
//! granularities: physical flash pages (*fPages*, e.g. 16 KiB) and logical
//! OS pages (*oPages*, 4 KiB). This crate provides that substrate:
//!
//! - [`geometry`] — device geometry (channels, dies, planes, blocks, pages)
//!   and strongly-typed addresses.
//! - [`rber`] — the raw-bit-error-rate model: a power law in PEC with
//!   per-page lognormal endurance variance, plus retention and read-disturb
//!   terms, following the models the paper cites (Kim et al., FAST '19;
//!   Cai et al., Proc. IEEE '17).
//! - [`errors`] — deterministic, seeded bit-flip injection.
//! - [`chip`] — a functional flash chip: program/erase state machine,
//!   per-page wear state, bad-block marks, data storage.
//! - [`timing`] — first-order latency/throughput accounting.
//! - [`array`] — a multi-chip assembly with channel/die parallelism, the
//!   unit an FTL drives.
//!
//! All randomness is seeded; identical seeds give identical simulations.
//!
//! # Examples
//!
//! ```
//! use salamander_flash::{array::FlashArray, geometry::FlashGeometry, rber::RberModel};
//!
//! let geom = FlashGeometry::small_test();
//! let mut array = FlashArray::new(geom, RberModel::default(), 42);
//! let fp = array.geometry().fpage_addr(0, 0, 0); // chip 0, block 0, page 0
//! array.program(fp, None).unwrap();
//! let read = array.read(fp).unwrap();
//! assert_eq!(read.raw_bit_errors, 0); // a brand-new page has ~no errors
//! ```

pub mod array;
pub mod chip;
pub mod errors;
pub mod geometry;
pub mod rber;
pub mod stats;
pub mod timing;
pub mod voltage;

pub use array::{FlashArray, ReadOutcome};
pub use chip::{FlashChip, FlashError, PageState};
pub use geometry::{BlockAddr, FPageAddr, FlashGeometry, OPageAddr};
pub use rber::RberModel;
pub use timing::TimingModel;
pub use voltage::{CellMode, VoltageModel};
