//! Property-based tests for the flash simulator: the NAND state machine
//! against a reference model, and statistical properties of the wear and
//! error-injection models.

use proptest::prelude::*;
use salamander_flash::array::FlashArray;
use salamander_flash::chip::{FlashError, PageState};
use salamander_flash::errors::BitFlipper;
use salamander_flash::geometry::{BlockAddr, FlashGeometry};
use salamander_flash::rber::RberModel;

#[derive(Debug, Clone)]
enum NandOp {
    Program { block: u8, page: u8 },
    Erase { block: u8 },
    Read { block: u8, page: u8 },
}

fn nand_op() -> impl Strategy<Value = NandOp> {
    prop_oneof![
        3 => (any::<u8>(), any::<u8>()).prop_map(|(block, page)| NandOp::Program { block, page }),
        1 => any::<u8>().prop_map(|block| NandOp::Erase { block }),
        2 => (any::<u8>(), any::<u8>()).prop_map(|(block, page)| NandOp::Read { block, page }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The array enforces NAND semantics identically to a simple reference
    /// model: erased/programmed state, ascending program order, PEC.
    #[test]
    fn nand_state_machine(ops in proptest::collection::vec(nand_op(), 1..200)) {
        let geom = FlashGeometry::small_test();
        let mut a = FlashArray::new(geom, RberModel::default(), 1);
        // Reference model.
        let blocks = geom.total_blocks() as usize;
        let ppb = geom.fpages_per_block as usize;
        let mut programmed = vec![vec![false; ppb]; blocks];
        let mut cursor = vec![0usize; blocks];
        let mut pec = vec![0u32; blocks];
        for op in &ops {
            match *op {
                NandOp::Program { block, page } => {
                    let b = block as usize % blocks;
                    let p = page as usize % ppb;
                    let fp = geom.first_fpage(BlockAddr { index: b as u32 });
                    let fp = salamander_flash::geometry::FPageAddr { index: fp.index + p as u32 };
                    let expect = if programmed[b][p] {
                        Err(FlashError::NotErased)
                    } else if p < cursor[b] {
                        Err(FlashError::OutOfOrderProgram)
                    } else {
                        Ok(())
                    };
                    prop_assert_eq!(a.program(fp, None), expect);
                    if expect.is_ok() {
                        programmed[b][p] = true;
                        cursor[b] = p + 1;
                    }
                }
                NandOp::Erase { block } => {
                    let b = block as usize % blocks;
                    let addr = BlockAddr { index: b as u32 };
                    prop_assert!(a.erase(addr).is_ok());
                    programmed[b] = vec![false; ppb];
                    cursor[b] = 0;
                    pec[b] += 1;
                    prop_assert_eq!(a.pec(addr), pec[b]);
                }
                NandOp::Read { block, page } => {
                    let b = block as usize % blocks;
                    let p = page as usize % ppb;
                    let fp = geom.first_fpage(BlockAddr { index: b as u32 });
                    let fp = salamander_flash::geometry::FPageAddr { index: fp.index + p as u32 };
                    let r = a.read(fp);
                    if programmed[b][p] {
                        prop_assert!(r.is_ok());
                    } else {
                        prop_assert_eq!(r.unwrap_err(), FlashError::NotProgrammed);
                    }
                    // State accessor agrees.
                    let want = if programmed[b][p] { PageState::Programmed } else { PageState::Erased };
                    prop_assert_eq!(a.page_state(fp), want);
                }
            }
        }
    }

    /// RBER is monotone in PEC for any variance multiplier, and the PEC
    /// inverse is consistent.
    #[test]
    fn rber_monotone_and_invertible(
        pec_a in 0u32..20_000,
        pec_b in 0u32..20_000,
        variance in 0.25f64..4.0,
    ) {
        let m = RberModel::default();
        let (lo, hi) = if pec_a <= pec_b { (pec_a, pec_b) } else { (pec_b, pec_a) };
        prop_assert!(m.rber(lo, variance, 0.0, 0) <= m.rber(hi, variance, 0.0, 0));
        let r = m.mean_rber(hi);
        let back = m.pec_at_rber(r);
        prop_assert!((back as i64 - hi as i64).abs() <= 1);
    }

    /// Injected error counts stay within [0, bits] and scale with RBER.
    #[test]
    fn error_injection_bounded(seed in any::<u64>(), rber_exp in 1f64..6.0) {
        let mut f = BitFlipper::new(seed);
        let rber = 10f64.powf(-rber_exp);
        let bits = 16 * 1024 * 8u64;
        let mut total = 0u64;
        for _ in 0..32 {
            let n = f.draw_error_count(rber, bits);
            prop_assert!(n <= bits);
            total += n;
        }
        let mean = total as f64 / 32.0;
        let expect = rber * bits as f64;
        // Loose statistical envelope (5 sigma-ish for Poisson-like draws).
        let slack = 5.0 * expect.sqrt().max(1.0);
        prop_assert!(
            (mean - expect).abs() < slack + expect * 0.25,
            "mean {mean} vs expect {expect}"
        );
    }

    /// Same seed, same behaviour — the whole array is deterministic.
    #[test]
    fn array_determinism(seed in any::<u64>(), cycles in 1u32..60) {
        let run = || {
            let geom = FlashGeometry::small_test();
            let mut a = FlashArray::new(geom, RberModel::fast_wear(), seed);
            let fp = geom.fpage_addr(0, 0, 0);
            let blk = geom.block_of(fp);
            let mut out = Vec::new();
            for _ in 0..cycles {
                a.program(fp, None).unwrap();
                out.push(a.read(fp).unwrap().raw_bit_errors);
                a.erase(blk).unwrap();
            }
            out
        };
        prop_assert_eq!(run(), run());
    }
}
