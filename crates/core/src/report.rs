//! Report rendering shared by the benchmark harnesses.
//!
//! Every experiment binary prints its figure/table as both a markdown
//! table (for EXPERIMENTS.md) and CSV (for plotting), via [`Table`].

use serde::{Deserialize, Serialize};

/// A simple rectangular table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table title (e.g. "Fig. 2 — PEC benefit vs tiredness level").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// A width mismatch is a caller bug, but release benches should
    /// still produce a (visibly padded/truncated) table rather than
    /// abort halfway through a multi-minute run: debug builds assert,
    /// release builds normalize the row to the header width. Use
    /// [`Self::try_row`] to handle the mismatch instead.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Append a row, reporting a width mismatch instead of normalizing.
    pub fn try_row(&mut self, cells: Vec<String>) -> Result<(), TableRowError> {
        if cells.len() != self.headers.len() {
            return Err(TableRowError {
                expected: self.headers.len(),
                got: cells.len(),
            });
        }
        self.rows.push(cells);
        Ok(())
    }

    /// Render as a GitHub-flavored markdown table with a title line.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Render as CSV (headers first). Cells containing commas or quotes
    /// are quoted.
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = self
            .headers
            .iter()
            .map(|h| escape(h))
            .collect::<Vec<_>>()
            .join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// A [`Table::try_row`] width mismatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableRowError {
    /// Header count.
    pub expected: usize,
    /// Cells supplied.
    pub got: usize,
}

impl std::fmt::Display for TableRowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "row width mismatch: got {} cells for {} headers",
            self.got, self.expected
        )
    }
}

impl std::error::Error for TableRowError {}

/// Format a float with `digits` decimal places.
pub fn fmt(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["x,y".into(), "q\"z".into()]);
        t
    }

    #[test]
    fn markdown_shape() {
        let md = table().to_markdown();
        assert!(md.starts_with("### Demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert_eq!(md.lines().count(), 6);
    }

    #[test]
    fn csv_escaping() {
        let csv = table().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "1,2");
        assert_eq!(lines[2], "\"x,y\",\"q\"\"z\"");
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "row width mismatch"))]
    fn row_width_checked_in_debug_normalized_in_release() {
        let mut t = Table::new("t", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
        // Release builds truncate to the header width instead of
        // aborting the bench.
        assert_eq!(t.rows[0], vec!["1".to_string()]);
    }

    #[test]
    fn try_row_reports_mismatch() {
        let mut t = Table::new("t", &["a", "b"]);
        assert!(t.try_row(vec!["1".into(), "2".into()]).is_ok());
        let err = t.try_row(vec!["1".into()]).unwrap_err();
        assert_eq!(
            err,
            TableRowError {
                expected: 2,
                got: 1
            }
        );
        assert_eq!(
            err.to_string(),
            "row width mismatch: got 1 cells for 2 headers"
        );
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    fn short_row_pads_in_release() {
        // In debug this would assert; exercise the normalization path
        // only where `row` is lenient.
        if !cfg!(debug_assertions) {
            let mut t = Table::new("t", &["a", "b"]);
            t.row(vec!["1".into()]);
            assert_eq!(t.rows[0], vec!["1".to_string(), String::new()]);
        }
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(pct(0.0831), "8.3%");
    }
}
