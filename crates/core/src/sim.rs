//! Device-level endurance experiments.
//!
//! [`EnduranceSim`] ages a single device under a configurable write
//! workload until it fails, sampling the capacity/minidisk trajectory on
//! the way. Running it for every [`Mode`] regenerates the paper's §4
//! headline: ShrinkS extends lifetime ≥ 1.2× (the CVSS-derived floor) and
//! RegenS ~1.5× over the bricking baseline.

use crate::config::{Mode, SsdConfig};
use crate::device::{BatchStop, SalamanderSsd};
use salamander_exec::Threads;
use salamander_ftl::types::{Lba, MdiskId};
use salamander_health::{HealthMonitor, HealthReport, HealthUnit};
use salamander_obs::{MetricsRegistry, Obs, SimTime, TraceEvent, TraceRecord};
use salamander_workload::gen::{OpKind, Workload, WorkloadConfig};
use serde::{Deserialize, Serialize};

/// One point of the capacity/lifetime trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacitySample {
    /// Host oPages written so far.
    pub written_opages: u64,
    /// Committed logical capacity (LBAs).
    pub committed_lbas: u64,
    /// Active minidisks.
    pub minidisks: u32,
    /// Decommissions so far.
    pub decommissioned: u64,
    /// Regenerations so far.
    pub regenerated: u64,
}

/// Result of an endurance run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnduranceResult {
    /// Mode the device ran in.
    pub mode: Mode,
    /// Total host oPages accepted before device failure.
    pub host_opages_written: u64,
    /// Capacity-weighted lifetime: Σ over time of committed capacity ×
    /// writes — the "capacity·writes" integral that credits shrunk
    /// devices for their remaining (smaller) usefulness.
    pub capacity_write_integral: f64,
    /// Sampled trajectory.
    pub timeline: Vec<CapacitySample>,
    /// Final write amplification.
    pub write_amplification: f64,
}

impl EnduranceResult {
    /// Lifetime (total accepted host writes) relative to `baseline`.
    pub fn lifetime_vs(&self, baseline: &EnduranceResult) -> f64 {
        self.host_opages_written as f64 / baseline.host_opages_written as f64
    }
}

/// An [`EnduranceSim::run_observed`] outcome: the result plus the
/// trace records and metrics shard the run accumulated. Traces carry
/// per-run sequence numbers; merge shards in task order (and
/// [`salamander_obs::trace::resequence`] the concatenation) to keep
/// multi-run artifacts deterministic.
#[derive(Debug)]
pub struct ObservedRun {
    /// The simulation result, identical to [`EnduranceSim::run`]'s.
    pub result: EnduranceResult,
    /// Trace records in emission order (empty if tracing was off).
    pub trace: Vec<TraceRecord>,
    /// Metrics shard (empty if metrics were off).
    pub metrics: MetricsRegistry,
    /// Health analytics over the run's telemetry: wear forecasts from
    /// the SMART samples, per-minidisk health and anomalies from the
    /// trace (default when `obs` was fully disabled).
    pub health: HealthReport,
}

/// Write-to-death experiment driver.
#[derive(Debug, Clone)]
pub struct EnduranceSim {
    cfg: SsdConfig,
    /// Samples per device lifetime (trajectory resolution).
    pub sample_every: u64,
    /// Workload seed.
    pub workload_seed: u64,
    /// Safety cap on issued writes (guards against a device that never
    /// dies under a slow-wear model).
    pub max_writes: u64,
}

impl EnduranceSim {
    /// Build a simulation for `cfg`.
    pub fn new(cfg: SsdConfig) -> Self {
        EnduranceSim {
            cfg,
            sample_every: 10_000,
            workload_seed: 0xEC0_FACE,
            max_writes: 500_000_000,
        }
    }

    /// Run the device to death under uniform-random synthetic writes.
    pub fn run(&self) -> EnduranceResult {
        self.run_observed("", Obs::disabled()).result
    }

    /// [`Self::run`] with observability attached: the device emits
    /// through `obs` for the whole run, SMART gauges are exported at
    /// every trajectory sample, and the accumulated trace/metrics come
    /// back alongside the result. A non-empty `label` opens the trace
    /// with a `RunMarker` so several runs can share one file.
    pub fn run_observed(&self, label: &str, obs: Obs) -> ObservedRun {
        if !label.is_empty() {
            obs.trace.emit(
                SimTime::ZERO,
                TraceEvent::RunMarker {
                    label: label.to_string(),
                },
            );
        }
        let _sim_phase = obs.profiler.phase("sim/endurance");
        let mut ssd = SalamanderSsd::open_with_obs(self.cfg, obs.clone());
        let opages = ssd.config().ftl_config().geometry.total_opages();
        let mut workload = Workload::new(WorkloadConfig::write_churn(opages, self.workload_seed));
        let mut written = 0u64;
        let mut integral = 0.0f64;
        let mut timeline = Vec::new();
        // The health monitor rides the existing sample cadence and is
        // only constructed when something observes the run, so the
        // disabled path pays nothing.
        let mut monitor = obs
            .is_enabled()
            .then(|| HealthMonitor::new(HealthUnit::Ops, self.sample_every));
        let sample = |ssd: &SalamanderSsd, written: u64, monitor: &mut Option<HealthMonitor>| {
            if let Some(mon) = monitor.as_mut() {
                let smart = ssd.smart();
                mon.observe(written, &smart);
                // Satellite telemetry: one `--metrics` run carries the
                // whole headroom/limbo trajectory (Fig. 3) as per-sample
                // gauges.
                if ssd.ftl().obs().metrics.is_enabled() {
                    smart.export_gauges(&ssd.ftl().obs().metrics, &format!("op=\"{written}\""));
                }
            }
            CapacitySample {
                written_opages: written,
                committed_lbas: ssd.ftl().committed_lbas(),
                minidisks: ssd.minidisks().len() as u32,
                decommissioned: ssd.stats().mdisks_decommissioned,
                regenerated: ssd.stats().mdisks_regenerated,
            }
        };
        timeline.push(sample(&ssd, 0, &mut monitor));
        // Per-sample tail-latency rollups: the FTL accumulates integer
        // op costs continuously; each sample boundary drains them into
        // one LatencyRollup stamped with the sample ordinal (the
        // endurance sim has no day clock — see DESIGN.md §15).
        let emit_latency = |ssd: &mut SalamanderSsd, ordinal: u64, op: u64| {
            if obs.is_enabled() {
                let r = ssd.take_latency_rollup(ordinal as u32);
                if !r.is_empty() {
                    obs.trace.emit(
                        SimTime::new(ordinal as u32, op),
                        TraceEvent::LatencyRollup(r),
                    );
                }
            }
        };
        obs.progress.add_devices(1);
        // Cache the active minidisk set instead of re-allocating it on
        // every write; the FTL surfaces every membership change
        // (decommission, purge, regeneration) as an event, so the cache
        // is refreshed exactly when it could have gone stale.
        let mut mdisks = ssd.minidisks();
        // Ops are issued in batches through the FTL's batched hot path.
        // A batch stops the moment an op raises events, so within one
        // batch the minidisk set — and thus the addr → (minidisk, lba)
        // mapping and the committed capacity — is constant, which makes
        // the batched run bit-identical to the serial loop. Workload
        // addresses are device-independent, so ops left unconsumed by an
        // early stop carry over and are re-mapped after the refresh.
        const BATCH: usize = 64;
        let mut pending: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
        let mut ops: Vec<(MdiskId, Lba)> = Vec::with_capacity(BATCH);
        while !ssd.is_dead() && written < self.max_writes {
            if ssd.has_pending_events() {
                ssd.poll_events();
                ssd.minidisks_into(&mut mdisks);
            }
            if mdisks.is_empty() {
                break;
            }
            // Cap the batch at the next sample boundary so the sample
            // (and its SMART gauge export) observes exactly the state
            // the serial loop would have sampled.
            let to_boundary = self.sample_every - written % self.sample_every;
            let len = (BATCH as u64)
                .min(to_boundary)
                .min(self.max_writes - written) as usize;
            while pending.len() < len {
                let op = workload.next_op();
                debug_assert_eq!(op.kind, OpKind::Write);
                pending.push_back(op.addr);
            }
            // Map the flat workload addresses onto (minidisk, lba) by
            // striping across the *currently active* minidisks, so the
            // write pressure follows the shrinking device.
            ops.clear();
            for &addr in pending.iter().take(len) {
                let target = mdisks[(addr % mdisks.len() as u64) as usize];
                let lbas = ssd.minidisk_lbas(target).unwrap_or(1);
                let lba = ((addr / mdisks.len() as u64) % lbas as u64) as u32;
                ops.push((target, Lba(lba)));
            }
            let committed_before = ssd.ftl().committed_lbas() as f64;
            let out = ssd.write_batch(&ops);
            pending.drain(..out.consumed);
            if out.written > 0 {
                // Replay the serial integral: committed capacity only
                // changes on the event-raising op (the last one of a
                // stopped batch), so every earlier accepted op saw the
                // pre-batch value. Repeated additions keep the f64
                // accumulation order — and hence the result — bit-exact.
                let stopped_on_events = matches!(out.stop, Some(BatchStop::Events));
                let head = out.written - u64::from(stopped_on_events);
                for _ in 0..head {
                    integral += committed_before;
                }
                if stopped_on_events {
                    integral += ssd.ftl().committed_lbas() as f64;
                }
                written += out.written;
                obs.progress.add_ops(out.written);
                if written.is_multiple_of(self.sample_every) {
                    timeline.push(sample(&ssd, written, &mut monitor));
                    emit_latency(&mut ssd, written / self.sample_every, written);
                }
            }
            match out.stop {
                Some(BatchStop::DeviceDead) => break,
                Some(BatchStop::Fatal(e)) => panic!("endurance write failed: {e}"),
                Some(BatchStop::Events) | None => {}
            }
        }
        timeline.push(sample(&ssd, written, &mut monitor));
        // Drain the final partial interval too: a death mid-interval
        // still surfaces its (often anomalous) latency.
        emit_latency(
            &mut ssd,
            written.div_ceil(self.sample_every.max(1)),
            written,
        );
        ssd.ftl().export_metrics();
        let result = EnduranceResult {
            mode: self.cfg.get_mode(),
            host_opages_written: written,
            capacity_write_integral: integral,
            timeline,
            write_amplification: ssd.stats().write_amplification().unwrap_or(1.0),
        };
        obs.progress.device_done();
        // Ring overflow would otherwise be invisible unless the caller
        // polls `dropped()`: surface it in the metrics shard. The count
        // is a function of the (deterministic) event stream and the
        // ring capacity, so exporting it keeps output byte-stable.
        let shed = obs.trace.dropped();
        if shed > 0 {
            obs.metrics
                .inc("salamander_obs_dropped_records_total", shed);
        }
        let trace = obs.trace.take();
        let health = match monitor {
            Some(mut mon) => {
                // The trace fills in what SMART can't: per-minidisk
                // lifecycle/error pressure and GC-rate spikes.
                mon.ingest_trace(&trace);
                let report = mon.report();
                report.export_gauges(&obs.metrics);
                report
            }
            None => HealthReport::default(),
        };
        ObservedRun {
            result,
            trace,
            metrics: obs.metrics.take(),
            health,
        }
    }

    /// Run all three modes on the same geometry/seed and return the
    /// results baseline-first.
    ///
    /// The three runs are independent (each owns its device and
    /// workload stream), so they execute on the [`salamander_exec`]
    /// engine: results are bit-identical at any thread count.
    pub fn compare_modes(cfg: SsdConfig) -> Vec<EnduranceResult> {
        Self::compare_modes_threads(cfg, Threads::Auto)
    }

    /// [`Self::compare_modes`] with an explicit thread-count override
    /// (used by the determinism regression tests).
    pub fn compare_modes_threads(cfg: SsdConfig, threads: Threads) -> Vec<EnduranceResult> {
        salamander_exec::par_map(threads, &Mode::ALL, |_, &m| {
            EnduranceSim::new(cfg.mode(m)).run()
        })
    }

    /// [`Self::compare_modes_threads`] with observability: each mode
    /// records into its own trace/metrics shard (so the parallel
    /// interleave can't touch the output) and the shards come back in
    /// mode order — already deterministic for any thread count. The
    /// `profiler` is shared across modes; pass a disabled one when not
    /// profiling. A `live` mirror (if any) taps every shard for a
    /// telemetry server; it never feeds back into the returned shards,
    /// so output is byte-identical with or without it.
    pub fn compare_modes_observed(
        cfg: SsdConfig,
        threads: Threads,
        trace: bool,
        metrics: bool,
        profiler: &salamander_obs::Profiler,
        live: Option<&salamander_obs::LiveObs>,
    ) -> Vec<ObservedRun> {
        let profiler = profiler.clone();
        let live = live.cloned();
        salamander_exec::par_map(threads, &Mode::ALL, move |_, &m| {
            let mut obs = Obs {
                trace: if trace {
                    salamander_obs::TraceHandle::recording()
                } else {
                    salamander_obs::TraceHandle::disabled()
                },
                metrics: if metrics {
                    salamander_obs::MetricsHandle::enabled()
                } else {
                    salamander_obs::MetricsHandle::disabled()
                },
                profiler: profiler.clone(),
                progress: salamander_obs::ProgressHandle::disabled(),
            };
            if let Some(live) = &live {
                obs = obs.with_live(live);
            }
            EnduranceSim::new(cfg.mode(m)).run_observed(&format!("mode={}", m.name()), obs)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SsdConfig {
        SsdConfig::small_test()
    }

    #[test]
    fn device_dies_and_timeline_is_monotone() {
        let r = EnduranceSim::new(small().mode(Mode::Shrink)).run();
        assert!(r.host_opages_written > 0);
        assert!(r.timeline.len() >= 2);
        // Committed capacity never grows in ShrinkS.
        for w in r.timeline.windows(2) {
            assert!(w[1].committed_lbas <= w[0].committed_lbas);
            assert!(w[1].written_opages >= w[0].written_opages);
        }
        // The device ends dead (capacity 0).
        assert_eq!(r.timeline.last().unwrap().committed_lbas, 0);
    }

    #[test]
    fn lifetime_ordering_matches_paper() {
        let results = EnduranceSim::compare_modes(small());
        let baseline = &results[0];
        let shrink = &results[1];
        let regen = &results[2];
        let shrink_ratio = shrink.lifetime_vs(baseline);
        let regen_ratio = regen.lifetime_vs(baseline);
        assert!(shrink_ratio > 1.1, "ShrinkS ratio {shrink_ratio}");
        assert!(regen_ratio > shrink_ratio, "RegenS ratio {regen_ratio}");
    }

    #[test]
    fn regen_timeline_shows_regenerations() {
        let r = EnduranceSim::new(small().mode(Mode::Regen)).run();
        assert!(r.timeline.last().unwrap().regenerated > 0);
    }

    #[test]
    fn deterministic() {
        let a = EnduranceSim::new(small().mode(Mode::Regen)).run();
        let b = EnduranceSim::new(small().mode(Mode::Regen)).run();
        assert_eq!(a, b);
    }

    #[test]
    fn compare_modes_parallel_matches_serial() {
        let serial = EnduranceSim::compare_modes_threads(small(), Threads::fixed(1));
        for n in [2, 4] {
            let parallel = EnduranceSim::compare_modes_threads(small(), Threads::fixed(n));
            assert_eq!(parallel, serial, "threads={n}");
        }
    }

    #[test]
    fn observed_run_matches_plain_and_captures_lifecycle() {
        let sim = EnduranceSim::new(small().mode(Mode::Shrink));
        let plain = sim.run();
        let observed = sim.run_observed("mode=test", Obs::recording());
        // Observation must not perturb the simulation.
        assert_eq!(observed.result, plain);
        assert!(
            matches!(&observed.trace[0].event, TraceEvent::RunMarker { label } if label == "mode=test")
        );
        assert!(observed
            .trace
            .iter()
            .any(|r| matches!(r.event, TraceEvent::MdiskDecommissioned { .. })));
        assert!(observed
            .trace
            .iter()
            .any(|r| matches!(r.event, TraceEvent::DeviceDied { .. })));
        // Sequence numbers are contiguous from 0.
        for (i, r) in observed.trace.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
        assert_eq!(
            observed.metrics.counter("salamander_host_writes_total"),
            plain.host_opages_written
        );
        assert!(observed
            .metrics
            .gauge("salamander_write_amplification")
            .is_some());
    }

    #[test]
    fn observed_run_builds_health_report() {
        let sim = EnduranceSim::new(small().mode(Mode::Shrink));
        let observed = sim.run_observed("mode=test", Obs::recording());
        let h = &observed.health;
        assert!(h.samples >= 2, "initial + final samples at minimum");
        assert!(
            !h.mdisks.is_empty(),
            "decommissions must surface as minidisk health"
        );
        assert!(h.died_at.is_some(), "device death must reach the report");
        assert!(
            observed.metrics.gauge("salamander_health_score").is_some(),
            "health gauges land in the metrics shard"
        );
        // A fully disabled run constructs no monitor and carries the
        // default report.
        let plain = sim.run_observed("", Obs::disabled());
        assert_eq!(plain.health, HealthReport::default());
        assert_eq!(plain.result, observed.result, "health is read-only");
    }

    #[test]
    fn max_writes_caps_run() {
        let mut sim = EnduranceSim::new(small().mode(Mode::Shrink));
        sim.max_writes = 1000;
        let r = sim.run();
        assert!(r.host_opages_written <= 1000);
    }
}
