//! Day-by-day device operation.
//!
//! Vendors rate SSDs in drive-writes-per-day over calendar time (§2), and
//! retention/read-disturb effects only exist on a clock. [`DailySim`]
//! runs one device through calendar days: each day it applies the DWPD
//! write budget, advances the retention clock, and optionally runs a
//! background-scrub slice — the operational regime a datacenter device
//! actually lives in.

use crate::config::SsdConfig;
use crate::device::{BatchStop, SalamanderSsd};
use salamander_ftl::types::{Lba, MdiskId};
use salamander_health::{HealthMonitor, HealthReport, HealthUnit};
use salamander_obs::{Obs, SimTime, TraceEvent};
use salamander_workload::aging::AgingDriver;
use serde::{Deserialize, Serialize};

/// One sampled day.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DaySample {
    /// Day index (1-based).
    pub day: u32,
    /// Committed capacity (LBAs) at end of day.
    pub committed_lbas: u64,
    /// Active minidisks at end of day.
    pub minidisks: u32,
    /// Cumulative read retries.
    pub read_retries: u64,
    /// Cumulative scrub refreshes.
    pub scrub_refreshes: u64,
}

/// Result of a day-by-day run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DailyResult {
    /// Days the device survived (capped at the horizon).
    pub days_survived: u32,
    /// Whether the device was still alive at the horizon.
    pub survived_horizon: bool,
    /// Per-day samples (one per `sample_every` days).
    pub timeline: Vec<DaySample>,
    /// Health analytics over the run's SMART stream (day-clock wear
    /// rates and shrink/death projections; default when `obs` was
    /// fully disabled). Per-minidisk detail needs the trace, which the
    /// caller owns — feed it to a [`HealthMonitor`] or `obsctl` for
    /// that view.
    pub health: HealthReport,
}

/// Day-by-day simulation driver.
#[derive(Debug, Clone)]
pub struct DailySim {
    cfg: SsdConfig,
    /// Drive writes per day (relative to initial logical capacity).
    pub dwpd: f64,
    /// Flash pages scrubbed per day (0 disables scrubbing).
    pub scrub_pages_per_day: u32,
    /// Horizon in days.
    pub horizon_days: u32,
    /// Sampling interval in days.
    pub sample_every: u32,
    /// Workload seed.
    pub seed: u64,
}

impl DailySim {
    /// One year at 1 DWPD with daily whole-device patrol.
    pub fn new(cfg: SsdConfig) -> Self {
        DailySim {
            cfg,
            dwpd: 1.0,
            scrub_pages_per_day: cfg.ftl_config().geometry.total_fpages(),
            horizon_days: 365,
            sample_every: 7,
            seed: 0xDA11,
        }
    }

    /// Run to the horizon or device death.
    pub fn run(&self) -> DailyResult {
        self.run_observed(Obs::disabled())
    }

    /// [`Self::run`] with observability attached: the device emits
    /// lifecycle events through `obs`, and SMART gauges (headroom,
    /// limbo histogram) are exported per sampled day — the Fig. 3
    /// trajectories, reconstructable from one run's telemetry.
    pub fn run_observed(&self, obs: Obs) -> DailyResult {
        let _phase = obs.profiler.phase("sim/daily");
        let metrics = obs.metrics.clone();
        let trace = obs.trace.clone();
        let progress = obs.progress.clone();
        progress.set_total_days(self.horizon_days as u64);
        progress.add_devices(1);
        // Day-clock health monitor, only when something observes the
        // run (the disabled path pays nothing).
        let mut monitor = obs
            .is_enabled()
            .then(|| HealthMonitor::new(HealthUnit::Days, self.sample_every as u64));
        let mut ssd = SalamanderSsd::open_with_obs(self.cfg, obs);
        let initial_lbas = ssd.ftl().committed_lbas();
        let mut aging = AgingDriver::new(self.dwpd, initial_lbas);
        let mut state = self.seed | 1;
        let mut timeline = Vec::new();
        let mut days = 0;
        // Batched issue state: the minidisk cache is refreshed at the
        // start of each day (scrubbing between days can decommission)
        // and whenever a batch stops on raised events — exactly the
        // moments the per-op `ssd.minidisks()` of the serial loop could
        // observe a different set. xorshift draws are device-
        // independent, so draws left unconsumed by an early batch stop
        // carry over and are re-mapped after the refresh.
        const BATCH: usize = 64;
        let mut mdisks: Vec<MdiskId> = Vec::new();
        let mut pending: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
        let mut ops: Vec<(MdiskId, Lba)> = Vec::with_capacity(BATCH);
        for day in 1..=self.horizon_days {
            if ssd.is_dead() {
                break;
            }
            days = day;
            // The day's write budget, random LBAs over active minidisks.
            let budget = aging.writes_for_days(1.0);
            ssd.minidisks_into(&mut mdisks);
            let mut used = 0u64;
            while used < budget && !ssd.is_dead() {
                if mdisks.is_empty() {
                    break;
                }
                let len = BATCH.min((budget - used) as usize);
                while pending.len() < len {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    pending.push_back(state);
                }
                ops.clear();
                for &s in pending.iter().take(len) {
                    let id = mdisks[(s as usize / 7) % mdisks.len()];
                    let lbas = ssd.minidisk_lbas(id).unwrap_or(1);
                    ops.push((id, Lba((s % lbas as u64) as u32)));
                }
                let out = ssd.write_batch(&ops);
                pending.drain(..out.consumed);
                used += out.consumed as u64;
                match out.stop {
                    Some(BatchStop::Events) => ssd.minidisks_into(&mut mdisks),
                    Some(BatchStop::DeviceDead) => break,
                    Some(BatchStop::Fatal(e)) => panic!("daily write failed: {e}"),
                    None => {}
                }
            }
            // Draws survive batch stops, never day boundaries: leftovers
            // here mean the device died (or ran out of minidisks), after
            // which the serial loop would never have drawn again.
            pending.clear();
            ssd.advance_days(1.0);
            if self.scrub_pages_per_day > 0 && !ssd.is_dead() {
                let _ = ssd.scrub(self.scrub_pages_per_day);
            }
            // A shrunk device absorbs the same DWPD over fewer LBAs.
            aging.set_capacity(ssd.ftl().committed_lbas().max(1));
            progress.set_day(day as u64);
            progress.add_ops(used);
            if day % self.sample_every == 0 || ssd.is_dead() {
                if let Some(mon) = monitor.as_mut() {
                    let smart = ssd.smart();
                    mon.observe(day as u64, &smart);
                    if metrics.is_enabled() {
                        smart.export_gauges(&metrics, &format!("day=\"{day}\""));
                    }
                }
                timeline.push(DaySample {
                    day,
                    committed_lbas: ssd.ftl().committed_lbas(),
                    minidisks: ssd.minidisks().len() as u32,
                    read_retries: ssd.stats().read_retries,
                    scrub_refreshes: ssd.stats().scrub_refreshes,
                });
                // Drain the interval's accumulated op costs into one
                // per-sampled-day tail-latency rollup (DESIGN.md §15).
                if trace.is_enabled() {
                    let r = ssd.take_latency_rollup(day);
                    if !r.is_empty() {
                        trace.emit(SimTime::new(day, used), TraceEvent::LatencyRollup(r));
                    }
                }
            }
        }
        ssd.ftl().export_metrics();
        progress.device_done();
        // Surface ring overflow (see `EnduranceSim::run_observed`).
        let shed = trace.dropped();
        if shed > 0 {
            metrics.inc("salamander_obs_dropped_records_total", shed);
        }
        let health = match monitor {
            Some(mon) => {
                let report = mon.report();
                report.export_gauges(&metrics);
                report
            }
            None => HealthReport::default(),
        };
        DailyResult {
            days_survived: days,
            survived_horizon: !ssd.is_dead() && days == self.horizon_days,
            timeline,
            health,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mode;
    use salamander_flash::rber::RberModel;

    fn sim(mode: Mode, dwpd: f64) -> DailySim {
        let cfg = SsdConfig::small_test().mode(mode);
        DailySim {
            dwpd,
            horizon_days: 400,
            ..DailySim::new(cfg)
        }
    }

    #[test]
    fn gentle_load_survives_horizon() {
        // Fast-wear pages endure ~50 cycles; at 0.05 DWPD (with WA) a year
        // costs well under that.
        let r = sim(Mode::Shrink, 0.02).run();
        assert!(r.survived_horizon, "died on day {}", r.days_survived);
    }

    #[test]
    fn heavy_load_kills_sooner() {
        let heavy = sim(Mode::Shrink, 2.0).run();
        let light = sim(Mode::Shrink, 0.5).run();
        assert!(!heavy.survived_horizon);
        assert!(
            light.days_survived > heavy.days_survived,
            "light {} vs heavy {}",
            light.days_survived,
            heavy.days_survived
        );
    }

    #[test]
    fn regen_survives_longer_in_days() {
        let shrink = sim(Mode::Shrink, 1.0).run();
        let regen = sim(Mode::Regen, 1.0).run();
        assert!(
            regen.days_survived >= shrink.days_survived,
            "regen {} vs shrink {}",
            regen.days_survived,
            shrink.days_survived
        );
    }

    #[test]
    fn capacity_declines_through_time() {
        let r = sim(Mode::Shrink, 1.5).run();
        assert!(r.timeline.len() > 1);
        let first = r.timeline.first().unwrap().committed_lbas;
        let last = r.timeline.last().unwrap().committed_lbas;
        assert!(last < first, "device should shrink: {first} -> {last}");
    }

    #[test]
    fn scrubbing_counteracts_retention() {
        // With a strong retention term and modest writes, an unscrubbed
        // device suffers retention wear-out of cold data; scrubbing keeps
        // refreshing it. Compare scrub activity, not survival (survival
        // needs reads to observe).
        let cfg = SsdConfig::small_test().mode(Mode::Shrink).rber(RberModel {
            retention_scale: 1e-6,
            ..RberModel::default()
        });
        let with_scrub = DailySim {
            dwpd: 0.2,
            horizon_days: 120,
            ..DailySim::new(cfg)
        }
        .run();
        let last = with_scrub.timeline.last().unwrap();
        assert!(
            last.scrub_refreshes > 0,
            "patrol should refresh decaying cold data"
        );
    }

    #[test]
    fn deterministic() {
        let a = sim(Mode::Regen, 1.0).run();
        let b = sim(Mode::Regen, 1.0).run();
        assert_eq!(a, b);
    }

    #[test]
    fn observed_run_reports_day_clock_health() {
        let s = sim(Mode::Shrink, 1.5);
        let observed = s.run_observed(Obs::recording());
        assert_eq!(observed.health.unit, HealthUnit::Days);
        assert!(observed.health.samples > 0);
        // Observation (and the monitor riding it) must not perturb the
        // simulated outcome.
        let plain = s.run();
        assert_eq!(plain.timeline, observed.timeline);
        assert_eq!(plain.days_survived, observed.days_survived);
        assert_eq!(plain.health, HealthReport::default());
    }
}
