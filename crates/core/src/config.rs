//! Device configuration builder.

use salamander_ecc::profile::{EccConfig, Tiredness};
use salamander_flash::geometry::FlashGeometry;
use salamander_flash::rber::RberModel;
use salamander_ftl::types::{FtlConfig, FtlMode, RetireGranularity, VictimPolicy};
use serde::{Deserialize, Serialize};

/// Operating mode of a Salamander SSD.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mode {
    /// Conventional SSD: monolithic volume, bricks at the bad-block
    /// threshold. The comparison baseline.
    Baseline,
    /// ShrinkS: minidisks, page-granular retirement, shrinking.
    Shrink,
    /// RegenS: ShrinkS plus tiredness levels and minidisk regeneration.
    Regen,
}

impl Mode {
    /// All modes, baseline first.
    pub const ALL: [Mode; 3] = [Mode::Baseline, Mode::Shrink, Mode::Regen];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Baseline => "Baseline",
            Mode::Shrink => "ShrinkS",
            Mode::Regen => "RegenS",
        }
    }

    fn to_ftl(self) -> FtlMode {
        match self {
            Mode::Baseline => FtlMode::Baseline,
            Mode::Shrink => FtlMode::Shrink,
            Mode::Regen => FtlMode::Regen,
        }
    }
}

/// Builder for a Salamander SSD.
///
/// # Examples
///
/// ```
/// use salamander::config::{Mode, SsdConfig};
///
/// let cfg = SsdConfig::small_test()
///     .mode(Mode::Regen)
///     .msize_bytes(256 * 1024)
///     .seed(7);
/// assert_eq!(cfg.ftl_config().seed, 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SsdConfig {
    inner: FtlConfig,
    mode: Mode,
}

impl SsdConfig {
    /// Tiny fast-wear device for tests and examples (4 MiB raw, pages die
    /// within tens of cycles).
    pub fn small_test() -> Self {
        SsdConfig {
            inner: FtlConfig::small_test(FtlMode::Shrink),
            mode: Mode::Shrink,
        }
    }

    /// Medium device for integration tests and benches (256 MiB raw).
    pub fn medium() -> Self {
        SsdConfig {
            inner: FtlConfig::medium(FtlMode::Shrink),
            mode: Mode::Shrink,
        }
    }

    /// Set the operating mode.
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self.inner.mode = mode.to_ftl();
        self
    }

    /// Set the flash geometry.
    pub fn geometry(mut self, geometry: FlashGeometry) -> Self {
        self.inner.geometry = geometry;
        self
    }

    /// Set the wear (RBER) model.
    pub fn rber(mut self, rber: RberModel) -> Self {
        self.inner.rber = rber;
        self
    }

    /// Set the ECC layout and reliability target.
    pub fn ecc(mut self, ecc: EccConfig) -> Self {
        self.inner.ecc = ecc;
        self
    }

    /// Set the minidisk size in bytes.
    pub fn msize_bytes(mut self, msize: u64) -> Self {
        self.inner.msize_bytes = msize;
        self
    }

    /// Set the over-provisioning fraction.
    pub fn op_fraction(mut self, f: f64) -> Self {
        self.inner.op_fraction = f;
        self
    }

    /// Set the RegenS tiredness cap (the paper recommends `L1`).
    pub fn regen_max_level(mut self, level: Tiredness) -> Self {
        self.inner.regen_max_level = level;
        self
    }

    /// Set the ShrinkS retirement granularity (Page, or Block for the
    /// CVSS-style ablation).
    pub fn retire_granularity(mut self, g: RetireGranularity) -> Self {
        self.inner.retire_granularity = g;
        self
    }

    /// Set the decommission victim policy.
    pub fn victim_policy(mut self, p: VictimPolicy) -> Self {
        self.inner.victim_policy = p;
        self
    }

    /// Set the baseline bad-block brick threshold (default 2.5%).
    pub fn bad_block_limit(mut self, limit: f64) -> Self {
        self.inner.bad_block_limit = limit;
        self
    }

    /// Set the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.inner.seed = seed;
        self
    }

    /// The operating mode.
    pub fn get_mode(&self) -> Mode {
        self.mode
    }

    /// The underlying FTL configuration.
    pub fn ftl_config(&self) -> &FtlConfig {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let cfg = SsdConfig::small_test()
            .mode(Mode::Regen)
            .op_fraction(0.1)
            .seed(99);
        assert_eq!(cfg.get_mode(), Mode::Regen);
        assert_eq!(cfg.ftl_config().mode, FtlMode::Regen);
        assert_eq!(cfg.ftl_config().op_fraction, 0.1);
        assert_eq!(cfg.ftl_config().seed, 99);
    }

    #[test]
    fn mode_names() {
        assert_eq!(Mode::Baseline.name(), "Baseline");
        assert_eq!(Mode::Shrink.name(), "ShrinkS");
        assert_eq!(Mode::Regen.name(), "RegenS");
    }

    #[test]
    fn config_serializes() {
        let cfg = SsdConfig::medium().mode(Mode::Regen);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SsdConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
