//! The device handle: minidisk I/O and host notifications.

use crate::config::SsdConfig;
use salamander_ecc::profile::Tiredness;
use salamander_ftl::ftl::{BatchOutcome, Ftl, ReadData};
use salamander_ftl::types::{FtlError, FtlEvent, Lba, MdiskId};
use serde::{Deserialize, Serialize};

pub use salamander_ftl::ftl::BatchStop;

/// Host-facing notification, a thin renaming of the FTL event for API
/// stability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum HostEvent {
    /// A minidisk was decommissioned; re-replicate `valid_lbas` LBAs.
    /// When `draining` is set the minidisk stays readable until
    /// [`SalamanderSsd::ack_decommission`] — data can be recovered by
    /// reading it directly instead of from replicas.
    MinidiskFailed {
        /// The failed minidisk.
        id: MdiskId,
        /// LBAs that held live data.
        valid_lbas: u32,
        /// Whether a grace period keeps the data readable.
        draining: bool,
    },
    /// A draining minidisk was purged before acknowledgement (space
    /// pressure); recover from replicas after all.
    MinidiskPurged {
        /// The purged minidisk.
        id: MdiskId,
    },
    /// A regenerated minidisk is available.
    MinidiskCreated {
        /// The new minidisk.
        id: MdiskId,
        /// Tiredness level of its backing capacity.
        level: Tiredness,
    },
    /// The device is gone (brick or fully shrunk).
    DeviceFailed,
    /// A read the device could not correct; recover the LBA from replicas.
    UnrecoverableRead {
        /// Minidisk of the failed read.
        id: MdiskId,
        /// LBA of the failed read.
        lba: u32,
    },
}

impl From<FtlEvent> for HostEvent {
    fn from(e: FtlEvent) -> Self {
        match e {
            FtlEvent::MdiskDecommissioned {
                id,
                valid_lbas,
                draining,
            } => HostEvent::MinidiskFailed {
                id,
                valid_lbas,
                draining,
            },
            FtlEvent::MdiskPurged { id } => HostEvent::MinidiskPurged { id },
            FtlEvent::MdiskCreated { id, level } => HostEvent::MinidiskCreated { id, level },
            FtlEvent::DeviceFailed { .. } => HostEvent::DeviceFailed,
            FtlEvent::UncorrectableRead { id, lba } => {
                HostEvent::UnrecoverableRead { id, lba: lba.0 }
            }
        }
    }
}

/// A Salamander SSD.
///
/// Reads return `Ok(Some(bytes))` for data-carrying writes,
/// `Ok(None)` for synthetic (metadata-only) writes, and errors for
/// unmapped/uncorrectable/unknown targets.
#[derive(Debug)]
pub struct SalamanderSsd {
    ftl: Ftl,
    cfg: SsdConfig,
}

impl SalamanderSsd {
    /// Open (power on) a device.
    pub fn open(cfg: SsdConfig) -> Self {
        SalamanderSsd {
            ftl: Ftl::new(*cfg.ftl_config()),
            cfg,
        }
    }

    /// Open a device with observability handles attached (DESIGN.md §9).
    pub fn open_with_obs(cfg: SsdConfig, obs: salamander_obs::Obs) -> Self {
        let mut ssd = Self::open(cfg);
        ssd.ftl.set_obs(obs);
        ssd
    }

    /// Attach (or detach, with a disabled bundle) observability handles.
    pub fn set_obs(&mut self, obs: salamander_obs::Obs) {
        self.ftl.set_obs(obs);
    }

    /// The configuration the device was opened with.
    pub fn config(&self) -> &SsdConfig {
        &self.cfg
    }

    /// oPage size in bytes (the I/O granularity).
    pub fn opage_bytes(&self) -> usize {
        self.cfg.ftl_config().geometry.opage_bytes as usize
    }

    /// Active minidisk ids.
    pub fn minidisks(&self) -> Vec<MdiskId> {
        self.ftl.active_mdisks()
    }

    /// Fill `out` with the active minidisk ids (ascending), reusing its
    /// capacity — for hot loops that cache the set between events.
    pub fn minidisks_into(&self, out: &mut Vec<MdiskId>) {
        self.ftl.active_mdisks_into(out);
    }

    /// Size of one minidisk in LBAs (oPages).
    pub fn minidisk_lbas(&self, id: MdiskId) -> Option<u32> {
        self.ftl.mdisk_lbas(id)
    }

    /// Valid (mapped) LBAs of one minidisk.
    pub fn minidisk_valid_lbas(&self, id: MdiskId) -> Option<u32> {
        self.ftl.mdisk_valid_lbas(id)
    }

    /// Committed logical capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.ftl.committed_lbas() * self.cfg.ftl_config().geometry.opage_bytes as u64
    }

    /// Whether the device has failed.
    pub fn is_dead(&self) -> bool {
        self.ftl.is_dead()
    }

    /// Write one oPage to `(minidisk, lba)`; `None` data is a synthetic
    /// simulation write.
    pub fn write(&mut self, id: MdiskId, lba: u32, data: Option<&[u8]>) -> Result<(), FtlError> {
        self.ftl.write(id, Lba(lba), data)
    }

    /// Issue a batch of synthetic writes through the FTL's batched hot
    /// path: bit-identical to writing one op at a time, but the batch
    /// returns as soon as an op raises host events (so callers can
    /// refresh cached minidisk sets), the device dies, or an op fails
    /// fatally. See [`salamander_ftl::ftl::BatchOutcome`].
    pub fn write_batch(&mut self, ops: &[(MdiskId, Lba)]) -> BatchOutcome {
        self.ftl.write_batch(ops)
    }

    /// Read one oPage.
    pub fn read(&mut self, id: MdiskId, lba: u32) -> Result<Option<Vec<u8>>, FtlError> {
        match self.ftl.read(id, Lba(lba))? {
            ReadData::Synthetic => Ok(None),
            ReadData::Bytes(b) => Ok(Some(b)),
        }
    }

    /// Trim one oPage.
    pub fn trim(&mut self, id: MdiskId, lba: u32) -> Result<(), FtlError> {
        self.ftl.trim(id, Lba(lba))
    }

    /// Run one background-scrub slice over up to `pages` flash pages:
    /// patrol reads that refresh data whose raw errors are approaching the
    /// ECC capability (retention/read-disturb protection). Returns the
    /// number of flash pages refreshed.
    pub fn scrub(&mut self, pages: u32) -> Result<u32, FtlError> {
        self.ftl.scrub(pages)
    }

    /// Acknowledge a draining minidisk (grace-period decommissioning):
    /// its data has been safely re-distributed and may be dropped.
    pub fn ack_decommission(&mut self, id: MdiskId) -> Result<(), FtlError> {
        self.ftl.ack_decommission(id)
    }

    /// Minidisks currently draining (readable, awaiting acknowledgement).
    pub fn draining_minidisks(&self) -> Vec<MdiskId> {
        self.ftl.draining_mdisks()
    }

    /// Whether notifications are waiting in [`Self::poll_events`].
    /// Allocation-free, for hot loops that only drain on activity.
    pub fn has_pending_events(&self) -> bool {
        self.ftl.pending_events() > 0
    }

    /// Drain host notifications.
    pub fn poll_events(&mut self) -> Vec<HostEvent> {
        self.ftl.drain_events().map(HostEvent::from).collect()
    }

    /// Advance the simulated clock (retention errors accrue with time).
    pub fn advance_days(&mut self, days: f64) {
        self.ftl.advance_days(days);
    }

    /// FTL statistics (write amplification, GC, lifecycle counters).
    pub fn stats(&self) -> &salamander_ftl::stats::FtlStats {
        self.ftl.stats()
    }

    /// Flash statistics (programs, erases, busy time).
    pub fn flash_stats(&self) -> &salamander_flash::stats::FlashStats {
        self.ftl.flash_stats()
    }

    /// The paper's `limbo[L_j]`: fPages currently at `level`.
    pub fn pages_at_level(&self, level: Tiredness) -> u64 {
        self.ftl.pages_at_level(level)
    }

    /// Usable physical capacity in oPages (Eq. 1 aggregate).
    pub fn usable_opages(&self) -> u64 {
        self.ftl.usable_opages()
    }

    /// Direct access to the FTL for advanced instrumentation.
    pub fn ftl(&self) -> &Ftl {
        &self.ftl
    }

    /// Drain the latency accumulated since the last drain into a
    /// per-sample rollup stamped with `day` (see DESIGN.md §15).
    pub fn take_latency_rollup(&mut self, day: u32) -> salamander_obs::LatencyRollup {
        self.ftl.take_latency_rollup(day)
    }

    /// SMART-style telemetry snapshot.
    pub fn smart(&self) -> salamander_ftl::smart::SmartReport {
        self.ftl.smart()
    }

    /// Serialize the whole device (flash contents included) as a JSON
    /// power-off image.
    pub fn snapshot_json(&self) -> String {
        self.ftl.snapshot_json()
    }

    /// Power the device back on from a snapshot taken with
    /// [`Self::snapshot_json`]. The configuration is recovered from the
    /// snapshot itself.
    pub fn restore_json(cfg: SsdConfig, json: &str) -> Result<Self, serde_json::Error> {
        Ok(SalamanderSsd {
            ftl: Ftl::restore_json(json)?,
            cfg,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mode;

    #[test]
    fn open_exposes_minidisks() {
        let ssd = SalamanderSsd::open(SsdConfig::small_test().mode(Mode::Shrink));
        assert_eq!(ssd.minidisks().len(), 14);
        assert_eq!(ssd.capacity_bytes(), 14 * 256 * 1024);
        assert!(!ssd.is_dead());
    }

    #[test]
    fn baseline_is_monolithic() {
        let ssd = SalamanderSsd::open(SsdConfig::small_test().mode(Mode::Baseline));
        assert_eq!(ssd.minidisks().len(), 1);
        assert_eq!(ssd.capacity_bytes(), 14 * 256 * 1024);
    }

    #[test]
    fn data_round_trip_and_trim() {
        let mut ssd = SalamanderSsd::open(SsdConfig::small_test().mode(Mode::Regen));
        let m = ssd.minidisks()[0];
        let page = vec![0x42u8; ssd.opage_bytes()];
        ssd.write(m, 5, Some(&page)).unwrap();
        assert_eq!(ssd.read(m, 5).unwrap().as_deref(), Some(&page[..]));
        ssd.trim(m, 5).unwrap();
        assert_eq!(ssd.read(m, 5), Err(FtlError::Unmapped));
    }

    #[test]
    fn synthetic_write_reads_none() {
        let mut ssd = SalamanderSsd::open(SsdConfig::small_test());
        let m = ssd.minidisks()[0];
        ssd.write(m, 0, None).unwrap();
        assert_eq!(ssd.read(m, 0).unwrap(), None);
    }

    #[test]
    fn events_translate() {
        let e: HostEvent = FtlEvent::DeviceFailed {
            bad_block_fraction: 0.03,
        }
        .into();
        assert_eq!(e, HostEvent::DeviceFailed);
        let e: HostEvent = FtlEvent::UncorrectableRead {
            id: MdiskId(1),
            lba: Lba(7),
        }
        .into();
        assert_eq!(
            e,
            HostEvent::UnrecoverableRead {
                id: MdiskId(1),
                lba: 7
            }
        );
    }
}
