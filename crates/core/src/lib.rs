//! # Salamander
//!
//! A reproduction of *"Leveraging Software Fault Tolerance for Longer
//! Flash Hardware Lifespan"* (HotOS '25): SSDs that expose many small
//! **minidisks** and, instead of bricking when flash wears out, **shrink**
//! (decommission minidisks, letting the distributed file system re-
//! replicate) and **regenerate** (repurpose worn capacity as extra ECC and
//! announce new minidisks).
//!
//! This crate is the user-facing API over the substrate crates:
//!
//! - [`config`] — [`config::SsdConfig`]: a builder for device geometry,
//!   wear model, ECC layout, and operating mode.
//! - [`device`] — [`device::SalamanderSsd`]: the device handle; minidisk
//!   I/O, host events, capacity and wear introspection.
//! - [`sim`] — write-to-death endurance experiments comparing Baseline,
//!   ShrinkS, and RegenS (the paper's "up to 1.5×" lifetime headline).
//! - [`report`] — small table/CSV helpers shared by the benchmark
//!   harnesses that regenerate the paper's figures.
//!
//! # Quickstart
//!
//! ```
//! use salamander::config::SsdConfig;
//! use salamander::device::SalamanderSsd;
//! use salamander::Mode;
//!
//! let mut ssd = SalamanderSsd::open(SsdConfig::small_test().mode(Mode::Regen));
//! let disks = ssd.minidisks();
//! let data = vec![7u8; ssd.opage_bytes()];
//! ssd.write(disks[0], 0, Some(&data)).unwrap();
//! let back = ssd.read(disks[0], 0).unwrap();
//! assert_eq!(back.as_deref(), Some(&data[..]));
//! ```

pub mod config;
pub mod daily;
pub mod device;
pub mod host;
pub mod report;
pub mod sim;

pub use config::{Mode, SsdConfig};
pub use daily::{DailyResult, DailySim};
pub use device::{HostEvent, SalamanderSsd};
pub use host::Controller;
pub use sim::{EnduranceResult, EnduranceSim};
