//! NVMe-flavored host interface.
//!
//! The paper envisions minidisks appearing "to the system as independent,
//! tiny drives" (§3) — in practice that is NVMe namespace management plus
//! asynchronous event reporting (AER). This module wraps
//! [`SalamanderSsd`] in a command/completion shell so host software can be
//! written against a storage-command ABI instead of Rust method calls:
//!
//! - **Admin commands** — `Identify`, `ListNamespaces`,
//!   `GetSmartLog`, `AckNamespaceRemoval` (the grace-period handshake).
//! - **I/O commands** — `Read`/`Write`/`Deallocate` addressed by
//!   `(namespace, LBA)`, where a namespace is one minidisk.
//! - **Async events** — namespace attach/detach notifications with the
//!   standard poll-after-event flow.

use crate::config::SsdConfig;
use crate::device::{HostEvent, SalamanderSsd};
use salamander_ftl::smart::SmartReport;
use salamander_ftl::types::{FtlError, MdiskId};
use serde::{Deserialize, Serialize};

/// A host-issued command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Identify controller: geometry, capacity, mode.
    Identify,
    /// List active namespaces (minidisks).
    ListNamespaces,
    /// Fetch the SMART/health log page.
    GetSmartLog,
    /// Acknowledge a draining namespace so the device may reclaim it.
    AckNamespaceRemoval {
        /// The draining namespace.
        nsid: u32,
    },
    /// Read one LBA of a namespace.
    Read {
        /// Namespace (minidisk) id.
        nsid: u32,
        /// LBA within the namespace.
        lba: u32,
    },
    /// Write one LBA; `data` of exactly one oPage, or `None` for a
    /// metadata-only write.
    Write {
        /// Namespace (minidisk) id.
        nsid: u32,
        /// LBA within the namespace.
        lba: u32,
        /// Payload.
        data: Option<Vec<u8>>,
    },
    /// Deallocate (trim) one LBA.
    Deallocate {
        /// Namespace (minidisk) id.
        nsid: u32,
        /// LBA within the namespace.
        lba: u32,
    },
}

/// Completion status, a flattened NVMe-style status code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Status {
    /// Success.
    Ok,
    /// Namespace does not exist (or was removed).
    InvalidNamespace,
    /// LBA out of the namespace's range.
    LbaOutOfRange,
    /// Read of an unwritten LBA.
    Unwritten,
    /// Namespace is read-only (draining).
    NamespaceReadOnly,
    /// Media error the ECC could not correct.
    UncorrectableError,
    /// Device failed (capacity exhausted / bricked).
    DeviceFailure,
    /// Malformed command (e.g. wrong payload size).
    InvalidField,
}

impl From<FtlError> for Status {
    fn from(e: FtlError) -> Self {
        match e {
            FtlError::NoSuchMdisk => Status::InvalidNamespace,
            FtlError::LbaOutOfRange => Status::LbaOutOfRange,
            FtlError::Unmapped => Status::Unwritten,
            FtlError::MdiskReadOnly => Status::NamespaceReadOnly,
            FtlError::Uncorrectable => Status::UncorrectableError,
            FtlError::DeviceDead => Status::DeviceFailure,
            FtlError::BadDataLength => Status::InvalidField,
            FtlError::OutOfSpace => Status::DeviceFailure,
        }
    }
}

/// A command completion.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// Outcome.
    pub status: Status,
    /// Payload, when the command returns one.
    pub payload: Payload,
}

/// Completion payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// No payload.
    None,
    /// Identify data.
    Identify(IdentifyData),
    /// Active namespace ids.
    Namespaces(Vec<u32>),
    /// SMART log page.
    Smart(Box<SmartReport>),
    /// Read data (`None` = the write carried no payload).
    Data(Option<Vec<u8>>),
}

/// Identify-controller data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IdentifyData {
    /// LBA (oPage) size in bytes.
    pub lba_bytes: u32,
    /// LBAs per namespace (minidisk size).
    pub lbas_per_namespace: u32,
    /// Active namespaces.
    pub namespace_count: u32,
    /// Total committed capacity in bytes.
    pub capacity_bytes: u64,
    /// Whether the device has failed.
    pub dead: bool,
}

/// Asynchronous event (AER-style).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AsyncEvent {
    /// A namespace detached (minidisk decommissioned). When `draining`,
    /// data remains readable until `AckNamespaceRemoval`.
    NamespaceDetached {
        /// Namespace id.
        nsid: u32,
        /// Grace period active.
        draining: bool,
    },
    /// A draining namespace was purged before acknowledgement.
    NamespacePurged {
        /// Namespace id.
        nsid: u32,
    },
    /// A namespace attached (minidisk regenerated).
    NamespaceAttached {
        /// Namespace id.
        nsid: u32,
    },
    /// The device failed.
    DeviceFailure,
    /// A media error was returned to a read.
    MediaError {
        /// Namespace id.
        nsid: u32,
        /// LBA of the failed read.
        lba: u32,
    },
}

/// The controller: a [`SalamanderSsd`] behind a command interface.
///
/// # Examples
///
/// ```
/// use salamander::config::{Mode, SsdConfig};
/// use salamander::host::{Command, Controller, Payload, Status};
///
/// let mut ctrl = Controller::new(SsdConfig::small_test().mode(Mode::Regen));
/// let c = ctrl.submit(Command::Identify);
/// assert_eq!(c.status, Status::Ok);
/// let Payload::Identify(id) = c.payload else { panic!() };
/// assert!(id.namespace_count > 0);
/// ```
#[derive(Debug)]
pub struct Controller {
    ssd: SalamanderSsd,
}

impl Controller {
    /// Power on a controller.
    pub fn new(cfg: SsdConfig) -> Self {
        Controller {
            ssd: SalamanderSsd::open(cfg),
        }
    }

    /// Access the underlying device.
    pub fn device(&self) -> &SalamanderSsd {
        &self.ssd
    }

    /// Execute one command synchronously.
    pub fn submit(&mut self, cmd: Command) -> Completion {
        match cmd {
            Command::Identify => Completion {
                status: Status::Ok,
                payload: Payload::Identify(IdentifyData {
                    lba_bytes: self.ssd.config().ftl_config().geometry.opage_bytes,
                    lbas_per_namespace: self.ssd.config().ftl_config().lbas_per_mdisk(),
                    namespace_count: self.ssd.minidisks().len() as u32,
                    capacity_bytes: self.ssd.capacity_bytes(),
                    dead: self.ssd.is_dead(),
                }),
            },
            Command::ListNamespaces => Completion {
                status: Status::Ok,
                payload: Payload::Namespaces(self.ssd.minidisks().iter().map(|m| m.0).collect()),
            },
            Command::GetSmartLog => Completion {
                status: Status::Ok,
                payload: Payload::Smart(Box::new(self.ssd.smart())),
            },
            Command::AckNamespaceRemoval { nsid } => {
                let r = self.ssd.ack_decommission(MdiskId(nsid));
                self.complete_empty(r)
            }
            Command::Read { nsid, lba } => match self.ssd.read(MdiskId(nsid), lba) {
                Ok(data) => Completion {
                    status: Status::Ok,
                    payload: Payload::Data(data),
                },
                Err(e) => self.complete_empty(Err(e)),
            },
            Command::Write { nsid, lba, data } => {
                let r = self.ssd.write(MdiskId(nsid), lba, data.as_deref());
                self.complete_empty(r)
            }
            Command::Deallocate { nsid, lba } => {
                let r = self.ssd.trim(MdiskId(nsid), lba);
                self.complete_empty(r)
            }
        }
    }

    fn complete_empty(&self, r: Result<(), FtlError>) -> Completion {
        Completion {
            status: r.map(|_| Status::Ok).unwrap_or_else(Status::from),
            payload: Payload::None,
        }
    }

    /// Poll asynchronous events.
    pub fn poll_async_events(&mut self) -> Vec<AsyncEvent> {
        self.ssd
            .poll_events()
            .into_iter()
            .map(|e| match e {
                HostEvent::MinidiskFailed { id, draining, .. } => AsyncEvent::NamespaceDetached {
                    nsid: id.0,
                    draining,
                },
                HostEvent::MinidiskPurged { id } => AsyncEvent::NamespacePurged { nsid: id.0 },
                HostEvent::MinidiskCreated { id, .. } => {
                    AsyncEvent::NamespaceAttached { nsid: id.0 }
                }
                HostEvent::DeviceFailed => AsyncEvent::DeviceFailure,
                HostEvent::UnrecoverableRead { id, lba } => {
                    AsyncEvent::MediaError { nsid: id.0, lba }
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mode;

    fn controller() -> Controller {
        Controller::new(SsdConfig::small_test().mode(Mode::Regen))
    }

    #[test]
    fn identify_and_list() {
        let mut c = controller();
        let id = match c.submit(Command::Identify).payload {
            Payload::Identify(d) => d,
            other => panic!("unexpected payload {other:?}"),
        };
        assert_eq!(id.lba_bytes, 4096);
        assert_eq!(id.namespace_count, 14);
        assert!(!id.dead);
        let ns = match c.submit(Command::ListNamespaces).payload {
            Payload::Namespaces(v) => v,
            other => panic!("unexpected payload {other:?}"),
        };
        assert_eq!(ns.len(), 14);
    }

    #[test]
    fn io_round_trip_via_commands() {
        let mut c = controller();
        let page = vec![0x11u8; 4096];
        let w = c.submit(Command::Write {
            nsid: 0,
            lba: 3,
            data: Some(page.clone()),
        });
        assert_eq!(w.status, Status::Ok);
        let r = c.submit(Command::Read { nsid: 0, lba: 3 });
        assert_eq!(r.status, Status::Ok);
        assert_eq!(r.payload, Payload::Data(Some(page)));
        let d = c.submit(Command::Deallocate { nsid: 0, lba: 3 });
        assert_eq!(d.status, Status::Ok);
        let r = c.submit(Command::Read { nsid: 0, lba: 3 });
        assert_eq!(r.status, Status::Unwritten);
    }

    #[test]
    fn status_mapping() {
        let mut c = controller();
        assert_eq!(
            c.submit(Command::Read { nsid: 99, lba: 0 }).status,
            Status::InvalidNamespace
        );
        assert_eq!(
            c.submit(Command::Read { nsid: 0, lba: 9999 }).status,
            Status::LbaOutOfRange
        );
        assert_eq!(
            c.submit(Command::Write {
                nsid: 0,
                lba: 0,
                data: Some(vec![0; 3]),
            })
            .status,
            Status::InvalidField
        );
        assert_eq!(
            c.submit(Command::AckNamespaceRemoval { nsid: 0 }).status,
            Status::InvalidNamespace,
            "only draining namespaces can be acked"
        );
    }

    #[test]
    fn smart_log_page() {
        let mut c = controller();
        match c.submit(Command::GetSmartLog).payload {
            Payload::Smart(s) => assert!(s.life_remaining > 0.9),
            other => panic!("unexpected payload {other:?}"),
        }
    }

    #[test]
    fn async_events_flow() {
        let mut c = controller();
        // Churn to death through the command interface.
        let mut state = 1u64;
        loop {
            let ns = match c.submit(Command::ListNamespaces).payload {
                Payload::Namespaces(v) => v,
                _ => unreachable!(),
            };
            if ns.is_empty() {
                break;
            }
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let nsid = ns[(state as usize / 7) % ns.len()];
            let w = c.submit(Command::Write {
                nsid,
                lba: (state % 64) as u32,
                data: None,
            });
            if w.status == Status::DeviceFailure {
                break;
            }
        }
        let events = c.poll_async_events();
        assert!(events
            .iter()
            .any(|e| matches!(e, AsyncEvent::NamespaceDetached { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, AsyncEvent::NamespaceAttached { .. })));
        assert_eq!(events.last(), Some(&AsyncEvent::DeviceFailure));
    }
}
