//! Deterministic parallel execution engine.
//!
//! Simulation sweeps in this workspace (endurance modes, fleet
//! devices, seed fan-outs in the bench bins) are embarrassingly
//! parallel *if and only if* every task owns an independent RNG
//! stream. This crate provides the two halves of that contract:
//!
//! * [`par_map`] — an order-preserving parallel map over a slice,
//!   built on [`std::thread::scope`] (no external dependencies). Task
//!   `i`'s result always lands at index `i` of the output, so the
//!   result is **bit-identical** regardless of thread count or
//!   scheduling order.
//! * [`derive_seed`] — a splitmix64-based per-task seed derivation.
//!   Tasks seeded with `derive_seed(base, index)` draw from streams
//!   that never overlap in practice and, crucially, do not depend on
//!   which thread ran the task or in what order.
//!
//! Together these give the workspace's simulations a simple
//! guarantee: **`threads = 1` and `threads = N` produce the same
//! bytes.** A regression test in each consumer pins this down.
//!
//! # Thread count
//!
//! The worker count comes from, in priority order:
//!
//! 1. an explicit [`Threads::Fixed`] argument,
//! 2. the `SALAMANDER_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! `SALAMANDER_THREADS=1` (or a single-core machine) short-circuits
//! to a plain serial loop with zero threading overhead.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Thread-count selector for [`par_map`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Threads {
    /// Resolve from `SALAMANDER_THREADS`, falling back to the number
    /// of available cores.
    #[default]
    Auto,
    /// Use exactly this many worker threads (`Fixed(1)` runs inline
    /// on the calling thread).
    Fixed(NonZeroUsize),
}

impl Threads {
    /// Build a fixed thread count; `n == 0` is treated as `Auto`.
    pub fn fixed(n: usize) -> Self {
        match NonZeroUsize::new(n) {
            Some(n) => Threads::Fixed(n),
            None => Threads::Auto,
        }
    }

    /// Resolve to a concrete worker count (always >= 1).
    pub fn resolve(self) -> usize {
        match self {
            Threads::Fixed(n) => n.get(),
            Threads::Auto => threads_from_env().unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
            }),
        }
    }
}

/// Read `SALAMANDER_THREADS`; `None` when unset, empty, or invalid.
fn threads_from_env() -> Option<usize> {
    let raw = std::env::var("SALAMANDER_THREADS").ok()?;
    let n: usize = raw.trim().parse().ok()?;
    if n == 0 {
        None
    } else {
        Some(n)
    }
}

/// Derive the seed for task `index` from a base seed.
///
/// This is the splitmix64 finalizer applied to `base ^ (index + 1)`
/// golden-ratio increments: a cheap, well-mixed mapping where nearby
/// indices land on distant seeds. The derivation depends only on
/// `(base, index)` — never on thread identity or execution order — so
/// it is the keystone of the engine's determinism guarantee.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base.wrapping_add((index.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Apply `f` to every element of `items` in parallel, preserving
/// input order in the output.
///
/// `f` receives `(index, &item)` so callers can derive per-task seeds
/// with [`derive_seed`]. Work is distributed by an atomic cursor
/// (dynamic scheduling), but each result is written to its input slot,
/// so the output is identical for any worker count.
///
/// Panics in `f` propagate to the caller after all workers stop.
pub fn par_map<T, R, F>(threads: Threads, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = threads.resolve().min(items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(i, item);
                *slots[i].lock().unwrap() = Some(r);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("worker panicked would have propagated")
                .expect("every slot filled by scope exit")
        })
        .collect()
}

/// [`par_map`] over an owned iterator, collecting first.
///
/// Convenience for call sites whose inputs are built on the fly
/// (e.g. config fan-outs in bench bins).
pub fn par_map_collect<T, R, F, I>(threads: Threads, items: I, f: F) -> Vec<R>
where
    I: IntoIterator<Item = T>,
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let items: Vec<T> = items.into_iter().collect();
    par_map(threads, &items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let input: Vec<u64> = (0..100).collect();
        let out = par_map(Threads::fixed(4), &input, |i, &x| {
            assert_eq!(i as u64, x);
            x * 3
        });
        assert_eq!(out, input.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let input: Vec<u64> = (0..57).collect();
        let work = |i: usize, &x: &u64| derive_seed(x, i as u64);
        let serial = par_map(Threads::fixed(1), &input, work);
        for n in [2, 3, 8, 64] {
            assert_eq!(par_map(Threads::fixed(n), &input, work), serial);
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(Threads::fixed(4), &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(Threads::fixed(4), &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn derive_seed_mixes_indices() {
        let base = 0xEC0_FACE;
        let seeds: Vec<u64> = (0..1000).map(|i| derive_seed(base, i)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len(), "derived seeds must be distinct");
        // Distinct bases give distinct streams too.
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn threads_fixed_zero_is_auto() {
        assert_eq!(Threads::fixed(0), Threads::Auto);
        assert_eq!(Threads::fixed(3).resolve(), 3);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let input: Vec<u8> = vec![1, 2, 3];
        let out = par_map(Threads::fixed(16), &input, |_, &x| x as u32 * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }
}
