//! Behavioral tests of the FTL engine across all three personalities.

use salamander_ecc::profile::Tiredness;
use salamander_ftl::ftl::{Ftl, ReadData};
use salamander_ftl::types::{
    FtlConfig, FtlError, FtlEvent, FtlMode, Lba, MdiskId, RetireGranularity, VictimPolicy,
};

/// Write `n` random-LBA synthetic oPages across all active minidisks.
fn churn(ftl: &mut Ftl, n: u64, seed: u64) -> u64 {
    let mut state = seed | 1;
    let mut written = 0;
    for _ in 0..n {
        if ftl.is_dead() {
            break;
        }
        let mdisks = ftl.active_mdisks();
        if mdisks.is_empty() {
            break;
        }
        // xorshift64 for cheap deterministic randomness.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let id = mdisks[(state as usize / 7) % mdisks.len()];
        let lbas = ftl.mdisk_lbas(id).unwrap();
        let lba = Lba((state % lbas as u64) as u32);
        match ftl.write(id, lba, None) {
            Ok(()) => written += 1,
            Err(FtlError::DeviceDead) => break,
            Err(e) => panic!("unexpected write error: {e}"),
        }
    }
    written
}

#[test]
fn write_read_round_trip_with_data() {
    let mut ftl = Ftl::new(FtlConfig::small_test(FtlMode::Shrink));
    let id = ftl.active_mdisks()[0];
    let opage = vec![0xABu8; 4096];
    ftl.write(id, Lba(3), Some(&opage)).unwrap();
    // Still in the buffer.
    assert_eq!(
        ftl.read(id, Lba(3)).unwrap(),
        ReadData::Bytes(opage.clone())
    );
    // Force a flush by filling a stripe.
    for i in 0..8u32 {
        ftl.write(id, Lba(10 + i), Some(&vec![i as u8; 4096]))
            .unwrap();
    }
    assert_eq!(ftl.read(id, Lba(3)).unwrap(), ReadData::Bytes(opage));
    assert_eq!(
        ftl.read(id, Lba(11)).unwrap(),
        ReadData::Bytes(vec![1u8; 4096])
    );
    ftl.check_invariants().unwrap();
}

#[test]
fn read_errors() {
    let mut ftl = Ftl::new(FtlConfig::small_test(FtlMode::Shrink));
    let id = ftl.active_mdisks()[0];
    assert_eq!(ftl.read(id, Lba(0)), Err(FtlError::Unmapped));
    assert_eq!(ftl.read(id, Lba(9999)), Err(FtlError::LbaOutOfRange));
    assert_eq!(ftl.read(MdiskId(500), Lba(0)), Err(FtlError::NoSuchMdisk));
    assert_eq!(
        ftl.write(id, Lba(0), Some(&[0u8; 100])),
        Err(FtlError::BadDataLength)
    );
}

#[test]
fn trim_unmaps() {
    let mut ftl = Ftl::new(FtlConfig::small_test(FtlMode::Shrink));
    let id = ftl.active_mdisks()[0];
    ftl.write(id, Lba(0), None).unwrap();
    ftl.trim(id, Lba(0)).unwrap();
    assert_eq!(ftl.read(id, Lba(0)), Err(FtlError::Unmapped));
    assert_eq!(ftl.trim(id, Lba(9999)), Err(FtlError::LbaOutOfRange));
    ftl.check_invariants().unwrap();
}

#[test]
fn overwrites_trigger_gc_and_wear() {
    let mut ftl = Ftl::new(FtlConfig::small_test(FtlMode::Shrink));
    churn(&mut ftl, 20_000, 1);
    let s = ftl.stats();
    assert!(s.gc_runs > 0, "GC should have run");
    assert!(s.relocated_opages > 0);
    assert!(s.write_amplification().unwrap() >= 1.0);
    assert!(ftl.flash_stats().erases > 0);
    ftl.check_invariants().unwrap();
}

#[test]
fn shrink_decommissions_and_eventually_dies() {
    let mut ftl = Ftl::new(FtlConfig::small_test(FtlMode::Shrink));
    let initial = ftl.mdisk_count();
    let written = churn(&mut ftl, 2_000_000, 2);
    assert!(written > 0);
    assert!(ftl.is_dead(), "fast-wear device must eventually die");
    let events: Vec<_> = ftl.drain_events().collect();
    let decommissions = events
        .iter()
        .filter(|e| matches!(e, FtlEvent::MdiskDecommissioned { .. }))
        .count();
    assert!(
        decommissions as u32 >= initial,
        "all minidisks decommissioned"
    );
    assert!(events
        .iter()
        .any(|e| matches!(e, FtlEvent::DeviceFailed { .. })));
    // Shrinking happened gradually: stats recorded them all.
    assert_eq!(ftl.stats().mdisks_decommissioned as usize, decommissions);
}

#[test]
fn shrink_outlives_baseline() {
    // The core claim of ShrinkS: page-granular retirement + shrinking
    // means the device absorbs more total writes than a baseline that
    // bricks at 2.5% bad blocks.
    let baseline_writes = {
        let mut ftl = Ftl::new(FtlConfig::small_test(FtlMode::Baseline));
        churn(&mut ftl, 3_000_000, 3)
    };
    let shrink_writes = {
        let mut ftl = Ftl::new(FtlConfig::small_test(FtlMode::Shrink));
        churn(&mut ftl, 3_000_000, 3)
    };
    assert!(
        shrink_writes as f64 > baseline_writes as f64 * 1.1,
        "shrink {shrink_writes} vs baseline {baseline_writes}"
    );
}

#[test]
fn regen_outlives_shrink() {
    let shrink_writes = {
        let mut ftl = Ftl::new(FtlConfig::small_test(FtlMode::Shrink));
        churn(&mut ftl, 4_000_000, 4)
    };
    let regen_writes = {
        let mut ftl = Ftl::new(FtlConfig::small_test(FtlMode::Regen));
        churn(&mut ftl, 4_000_000, 4)
    };
    assert!(
        regen_writes > shrink_writes,
        "regen {regen_writes} vs shrink {shrink_writes}"
    );
}

#[test]
fn baseline_bricks_with_event() {
    let mut ftl = Ftl::new(FtlConfig::small_test(FtlMode::Baseline));
    assert_eq!(ftl.mdisk_count(), 1, "baseline is monolithic");
    churn(&mut ftl, 3_000_000, 5);
    assert!(ftl.is_dead());
    let events: Vec<_> = ftl.drain_events().collect();
    let failed = events.iter().find_map(|e| match e {
        FtlEvent::DeviceFailed { bad_block_fraction } => Some(*bad_block_fraction),
        _ => None,
    });
    let frac = failed.expect("DeviceFailed event");
    assert!(frac > 0.025, "bricked above the threshold, got {frac}");
    // No decommissioning in baseline mode.
    assert!(!events
        .iter()
        .any(|e| matches!(e, FtlEvent::MdiskDecommissioned { .. })));
    // Writes rejected after death.
    let id = ftl.active_mdisks()[0];
    assert_eq!(ftl.write(id, Lba(0), None), Err(FtlError::DeviceDead));
}

#[test]
fn regen_creates_minidisks_at_l1() {
    let mut ftl = Ftl::new(FtlConfig::small_test(FtlMode::Regen));
    churn(&mut ftl, 2_000_000, 6);
    let events: Vec<_> = ftl.drain_events().collect();
    let created: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            FtlEvent::MdiskCreated { id, level } => Some((*id, *level)),
            _ => None,
        })
        .collect();
    assert!(
        !created.is_empty(),
        "RegenS must regenerate minidisks as pages reach L1"
    );
    assert!(created.iter().all(|(_, l)| *l >= Tiredness::L1));
    assert_eq!(ftl.stats().mdisks_regenerated as usize, created.len());
}

#[test]
fn regen_pages_reach_but_never_exceed_cap() {
    let mut ftl = Ftl::new(FtlConfig::small_test(FtlMode::Regen));
    churn(&mut ftl, 500_000, 7);
    assert!(
        ftl.pages_at_level(Tiredness::L1) > 0,
        "pages should have transitioned to L1"
    );
    assert_eq!(ftl.pages_at_level(Tiredness::L2), 0, "cap is L1 by default");
    assert_eq!(ftl.pages_at_level(Tiredness::L3), 0);
}

#[test]
fn regen_cap_l2_uses_l2_pages() {
    let mut cfg = FtlConfig::small_test(FtlMode::Regen);
    cfg.regen_max_level = Tiredness::L2;
    let mut ftl = Ftl::new(cfg);
    churn(&mut ftl, 2_000_000, 8);
    assert!(ftl.pages_at_level(Tiredness::L2) > 0);
    assert_eq!(ftl.pages_at_level(Tiredness::L3), 0);
}

#[test]
fn block_granularity_ablation_dies_sooner() {
    let page = {
        let mut cfg = FtlConfig::small_test(FtlMode::Shrink);
        cfg.retire_granularity = RetireGranularity::Page;
        let mut ftl = Ftl::new(cfg);
        churn(&mut ftl, 3_000_000, 9)
    };
    let block = {
        let mut cfg = FtlConfig::small_test(FtlMode::Shrink);
        cfg.retire_granularity = RetireGranularity::Block;
        let mut ftl = Ftl::new(cfg);
        churn(&mut ftl, 3_000_000, 9)
    };
    assert!(
        page > block,
        "page-granular retirement must outlive block-granular: {page} vs {block}"
    );
}

#[test]
fn victim_policies_differ() {
    let mut cfg = FtlConfig::small_test(FtlMode::Shrink);
    cfg.victim_policy = VictimPolicy::HighestId;
    let mut ftl = Ftl::new(cfg);
    let initial = ftl.active_mdisks();
    churn(&mut ftl, 300_000, 10);
    let events: Vec<_> = ftl.drain_events().collect();
    let first_victim = events.iter().find_map(|e| match e {
        FtlEvent::MdiskDecommissioned { id, .. } => Some(*id),
        _ => None,
    });
    if let Some(v) = first_victim {
        assert_eq!(v, *initial.last().unwrap(), "HighestId picks the last id");
    }
}

#[test]
fn decommissioned_mdisk_rejects_io() {
    let mut ftl = Ftl::new(FtlConfig::small_test(FtlMode::Shrink));
    churn(&mut ftl, 400_000, 11);
    let decommissioned = ftl.drain_events().into_iter().find_map(|e| match e {
        FtlEvent::MdiskDecommissioned { id, .. } => Some(id),
        _ => None,
    });
    let Some(id) = decommissioned else {
        // Device may not have worn enough; the churn above uses fast wear,
        // so this should not happen.
        panic!("expected at least one decommission under fast wear");
    };
    if !ftl.is_dead() {
        assert_eq!(ftl.write(id, Lba(0), None), Err(FtlError::NoSuchMdisk));
    }
    assert_eq!(ftl.read(id, Lba(0)), Err(FtlError::NoSuchMdisk));
}

#[test]
fn capacity_accounting_consistent_over_lifetime() {
    let mut ftl = Ftl::new(FtlConfig::small_test(FtlMode::Regen));
    for round in 0..40 {
        churn(&mut ftl, 20_000, 100 + round);
        if ftl.is_dead() {
            break;
        }
        // Eq. 2 must hold whenever the FTL is quiescent.
        assert!(
            ftl.usable_opages() >= ftl.committed_lbas(),
            "round {round}: usable {} < committed {}",
            ftl.usable_opages(),
            ftl.committed_lbas()
        );
        ftl.check_invariants().unwrap();
    }
}

#[test]
fn determinism_same_seed() {
    let run = |seed: u64| {
        let mut cfg = FtlConfig::small_test(FtlMode::Regen);
        cfg.seed = seed;
        let mut ftl = Ftl::new(cfg);
        let w = churn(&mut ftl, 1_000_000, 13);
        (w, ftl.stats().mdisks_decommissioned, ftl.stats().gc_runs)
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8));
}

#[test]
fn events_drain_once() {
    let mut ftl = Ftl::new(FtlConfig::small_test(FtlMode::Shrink));
    churn(&mut ftl, 400_000, 14);
    let first: Vec<_> = ftl.drain_events().collect();
    assert!(!first.is_empty());
    assert!(ftl.drain_events().next().is_none());
}

/// Skewed churn: `hot_pct`% of writes hit the first 10% of each minidisk.
fn skewed_churn(ftl: &mut Ftl, n: u64, seed: u64) -> f64 {
    let mut state = seed | 1;
    for _ in 0..n {
        if ftl.is_dead() {
            break;
        }
        let mdisks = ftl.active_mdisks();
        if mdisks.is_empty() {
            break;
        }
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let id = mdisks[(state as usize / 7) % mdisks.len()];
        let lbas = ftl.mdisk_lbas(id).unwrap();
        let hot_region = (lbas / 10).max(1);
        let lba = if state % 10 < 9 {
            Lba((state / 11 % hot_region as u64) as u32)
        } else {
            Lba((state % lbas as u64) as u32)
        };
        if ftl.write(id, lba, None).is_err() {
            break;
        }
    }
    ftl.stats().write_amplification().unwrap_or(1.0)
}

#[test]
fn hot_cold_separation_lowers_write_amplification() {
    // Under a skewed (hot/cold) workload, separating GC relocations from
    // host writes should reduce write amplification. Use slow wear so GC
    // behaviour, not device death, dominates.
    let wa = |separation: bool| {
        let mut cfg = FtlConfig::small_test(FtlMode::Shrink);
        cfg.rber = salamander_flash::rber::RberModel::default();
        cfg.hot_cold_separation = separation;
        let mut ftl = Ftl::new(cfg);
        skewed_churn(&mut ftl, 100_000, 99)
    };
    let with = wa(true);
    let without = wa(false);
    assert!(
        with < without * 0.97,
        "separation should cut WA: with={with:.2} without={without:.2}"
    );
}

#[test]
fn grace_period_keeps_data_readable_until_ack() {
    let mut cfg = FtlConfig::small_test(FtlMode::Shrink);
    cfg.decommission_grace = true;
    let mut ftl = Ftl::new(cfg);
    // Write recognizable data everywhere, then churn to force decommission.
    let opage = vec![0x77u8; 4096];
    for id in ftl.active_mdisks() {
        for lba in 0..ftl.mdisk_lbas(id).unwrap() {
            ftl.write(id, Lba(lba), Some(&opage)).unwrap();
        }
    }
    churn(&mut ftl, 200_000, 42);
    let events: Vec<_> = ftl.drain_events().collect();
    let draining_event = events.iter().find_map(|e| match e {
        FtlEvent::MdiskDecommissioned {
            id, draining: true, ..
        } => Some(*id),
        _ => None,
    });
    let Some(id) = draining_event else {
        panic!("expected a draining decommission under fast wear");
    };
    // If it is still draining (not yet purged), it must be readable and
    // read-only.
    if ftl.draining_mdisks().contains(&id) {
        assert!(ftl.read(id, Lba(0)).is_ok());
        assert_eq!(ftl.write(id, Lba(0), None), Err(FtlError::MdiskReadOnly));
        assert_eq!(ftl.trim(id, Lba(0)), Err(FtlError::MdiskReadOnly));
        // Acknowledge: data is dropped, reads now fail.
        ftl.ack_decommission(id).unwrap();
        assert_eq!(ftl.read(id, Lba(0)), Err(FtlError::NoSuchMdisk));
        assert_eq!(ftl.ack_decommission(id), Err(FtlError::NoSuchMdisk));
    }
    ftl.check_invariants().unwrap();
}

#[test]
fn draining_bound_purges_oldest() {
    let mut cfg = FtlConfig::small_test(FtlMode::Shrink);
    cfg.decommission_grace = true;
    cfg.max_draining = 1;
    let mut ftl = Ftl::new(cfg);
    churn(&mut ftl, 2_000_000, 43);
    let events: Vec<_> = ftl.drain_events().collect();
    let decommissions = events
        .iter()
        .filter(|e| matches!(e, FtlEvent::MdiskDecommissioned { .. }))
        .count();
    let purges = events
        .iter()
        .filter(|e| matches!(e, FtlEvent::MdiskPurged { .. }))
        .count();
    assert!(decommissions > 1);
    // With the host never acking, every decommission beyond the bound
    // purges an older one.
    assert!(
        purges >= decommissions - 1 - 1,
        "purges {purges} of {decommissions}"
    );
    assert!(ftl.draining_mdisks().len() <= 1);
}

#[test]
fn grace_mode_with_prompt_acks_matches_immediate_mode() {
    // A responsive host acknowledges drains as they appear, so the grace
    // mechanism must not change the endurance story. (Without acks the
    // pinned draining data legitimately shortens lifetime — see
    // `draining_bound_purges_oldest`.)
    let writes = |grace: bool| {
        let mut cfg = FtlConfig::small_test(FtlMode::Shrink);
        cfg.decommission_grace = grace;
        let mut ftl = Ftl::new(cfg);
        let mut state = 44u64;
        let mut written = 0u64;
        for _ in 0..3_000_000u64 {
            if ftl.is_dead() {
                break;
            }
            for id in ftl.draining_mdisks() {
                ftl.ack_decommission(id).unwrap();
            }
            let mdisks = ftl.active_mdisks();
            if mdisks.is_empty() {
                break;
            }
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let id = mdisks[(state as usize / 7) % mdisks.len()];
            let lbas = ftl.mdisk_lbas(id).unwrap();
            match ftl.write(id, Lba((state % lbas as u64) as u32), None) {
                Ok(()) => written += 1,
                Err(FtlError::DeviceDead) => break,
                Err(e) => panic!("unexpected write error: {e}"),
            }
        }
        written
    };
    let with = writes(true) as f64;
    let without = writes(false) as f64;
    assert!(
        (with / without) > 0.8 && (with / without) < 1.2,
        "grace {with} vs immediate {without}"
    );
}

#[test]
fn read_retries_appear_as_pages_wear() {
    let mut ftl = Ftl::new(FtlConfig::small_test(FtlMode::Shrink));
    // Interleave writes and reads while the device wears out.
    let mut state = 77u64;
    for _ in 0..60_000 {
        if ftl.is_dead() {
            break;
        }
        let mdisks = ftl.active_mdisks();
        if mdisks.is_empty() {
            break;
        }
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let id = mdisks[(state as usize / 7) % mdisks.len()];
        let lbas = ftl.mdisk_lbas(id).unwrap();
        let lba = Lba((state % lbas as u64) as u32);
        let _ = ftl.write(id, lba, None);
        let _ = ftl.read(id, lba);
    }
    assert!(
        ftl.stats().read_retries > 0,
        "worn pages should require read retries"
    );
    assert!(ftl.flash_stats().retry_reads >= ftl.stats().read_retries);
    assert!(ftl.flash_stats().busy_us > 0.0);
}

#[test]
fn scrub_protects_cold_data_from_retention() {
    use salamander_flash::rber::RberModel;
    let make = || {
        let mut cfg = FtlConfig::small_test(FtlMode::Shrink);
        // Slow intrinsic wear, strong retention term: cold data decays.
        cfg.rber = RberModel {
            retention_scale: 2e-6,
            ..RberModel::default()
        };
        let mut ftl = Ftl::new(cfg);
        // Build up some PEC so retention has a base to multiply.
        churn(&mut ftl, 60_000, 55);
        assert!(!ftl.is_dead());
        // Plant recognizable cold data and force it out of the buffer.
        let id = ftl.active_mdisks()[0];
        let page = vec![0xEEu8; 4096];
        ftl.write(id, Lba(0), Some(&page)).unwrap();
        for i in 1..=8u32 {
            ftl.write(id, Lba(i), Some(&vec![0u8; 4096])).unwrap();
        }
        (ftl, id, page)
    };

    // Without scrubbing: 200 days of retention ruins the cold page.
    let (mut neglected, id, _) = make();
    neglected.advance_days(200.0);
    assert_eq!(
        neglected.read(id, Lba(0)),
        Err(FtlError::Uncorrectable),
        "cold data should decay past the ECC capability without scrubbing"
    );
    assert!(neglected.stats().uncorrectable_reads > 0);

    // With periodic scrubbing: the patrol refreshes the page in time.
    let (mut scrubbed, id, page) = make();
    for _ in 0..20 {
        scrubbed.advance_days(10.0);
        scrubbed.scrub(256).unwrap();
    }
    assert_eq!(scrubbed.read(id, Lba(0)), Ok(ReadData::Bytes(page)));
    assert!(scrubbed.stats().scrub_refreshes > 0);
    assert!(scrubbed.stats().scrub_reads > 0);
    scrubbed.check_invariants().unwrap();
}

#[test]
fn snapshot_restore_power_cycle() {
    let mut ftl = Ftl::new(FtlConfig::small_test(FtlMode::Regen));
    // Build up real state: data, wear, GC history, maybe decommissions.
    let id = ftl.active_mdisks()[0];
    let page = vec![0x5Au8; 4096];
    ftl.write(id, Lba(7), Some(&page)).unwrap();
    churn(&mut ftl, 3_000, 88);
    assert!(!ftl.is_dead());
    let pre_stats = *ftl.stats();
    let pre_mdisks = ftl.active_mdisks();
    // The churn may have overwritten the planted page; capture whatever
    // the device holds *now* as the ground truth for the power cycle.
    let pre_read = if pre_mdisks.contains(&id) {
        Some(ftl.read(id, Lba(7)))
    } else {
        None
    };
    let pre_stats_after_read = *ftl.stats();

    // Power off / power on.
    let image = ftl.snapshot_json();
    drop(ftl);
    let mut back = Ftl::restore_json(&image).unwrap();

    // Everything resumes: topology, stats, data, invariants.
    assert_eq!(back.active_mdisks(), pre_mdisks);
    assert_eq!(*back.stats(), pre_stats_after_read);
    assert!(pre_stats_after_read.host_reads >= pre_stats.host_reads);
    back.check_invariants().unwrap();
    if let Some(expected) = pre_read {
        // The restored device returns the same content class as before
        // the power cycle (exact bytes for payload reads).
        match (expected, back.read(id, Lba(7))) {
            (Ok(ReadData::Bytes(a)), Ok(ReadData::Bytes(b))) => assert_eq!(a, b),
            (Ok(ReadData::Synthetic), Ok(ReadData::Synthetic)) => {}
            (Err(ea), Err(eb)) => assert_eq!(ea, eb),
            (a, b) => panic!("power cycle changed the read: {a:?} vs {b:?}"),
        }
    }
    // The restored device keeps operating (and eventually dies) normally.
    churn(&mut back, 2_000_000, 89);
    assert!(back.is_dead());
    back.check_invariants().unwrap();
}

#[test]
fn snapshot_restore_is_bit_exact() {
    // Same ops on a restored device and on the original must produce the
    // same trajectory: the snapshot preserves the RNG state too.
    let build = || {
        let mut ftl = Ftl::new(FtlConfig::small_test(FtlMode::Shrink));
        churn(&mut ftl, 3_000, 90);
        ftl
    };
    let mut a = build();
    let image = a.snapshot_json();
    let mut b = Ftl::restore_json(&image).unwrap();
    let wa = churn(&mut a, 2_000, 91);
    let wb = churn(&mut b, 2_000, 91);
    assert_eq!(wa, wb);
    assert_eq!(a.stats(), b.stats());
    assert_eq!(a.active_mdisks(), b.active_mdisks());
}

#[test]
fn latency_cost_model_pins_the_quantized_timing_defaults() {
    use salamander_obs::CostModelNs;
    let ftl = Ftl::new(FtlConfig::small_test(FtlMode::Regen));
    let m = *ftl.latency_cost_model();
    // The Default stand-in (what a snapshot restore starts from before
    // rebuild_derived re-quantizes) must agree with the quantization of
    // TimingModel::default() — otherwise restored devices would charge
    // different costs until the first rebuild.
    assert_eq!(m, CostModelNs::default());
    assert_eq!(m.read_ns, 50_000);
    assert_eq!(m.prog_ns, 600_000);
    assert_eq!(m.erase_ns, 3_000_000);
    assert_eq!(m.ecc_ns, 5_000);
    assert_eq!(m.xfer_ns(4096), 5_120);
    // The 4/(4-L) multi-read factor at each tiredness level.
    assert_eq!(m.multi_read_ns(4, 0), 50_000);
    assert_eq!(m.multi_read_ns(4, 1), 66_666);
    assert_eq!(m.multi_read_ns(4, 2), 100_000);
    assert_eq!(m.multi_read_ns(4, 3), 200_000);
    assert_eq!(m.host_read_ns(4, 0, 0, 4096), 60_120);
    assert_eq!(m.host_read_ns(4, 1, 0, 4096), 76_786);
    assert_eq!(m.host_write_ns(4096), 605_120);
}

/// Read every mapped LBA of every active minidisk once.
fn read_everything(ftl: &mut Ftl) {
    for id in ftl.active_mdisks() {
        let lbas = ftl.mdisk_lbas(id).unwrap();
        for lba in 0..lbas {
            let _ = ftl.read(id, Lba(lba));
        }
    }
}

#[test]
fn regen_host_read_p99_rises_with_l1_fraction() {
    // §4.2 of the paper: RegenS keeps the device alive by running pages
    // at higher tiredness levels, and the user pays in read latency —
    // an L1 page needs 4/(4−1) = 4/3 of the sense time. The recorded
    // host-read distribution must show that rise as L1 grows.
    use salamander_obs::latency::{bucket_upper_ns, lat_bucket};
    let mut ftl = Ftl::new(FtlConfig::small_test(FtlMode::Regen));
    let m = *ftl.latency_cost_model();
    let per = 4; // small_test geometry: 4 oPages per fPage
    let l0_edge = bucket_upper_ns(lat_bucket(m.host_read_ns(per, 0, 0, 4096)));
    let l1_edge = bucket_upper_ns(lat_bucket(m.host_read_ns(per, 1, 0, 4096)));
    assert!(l1_edge > l0_edge, "quantization must separate L0 from L1");

    // Churn in small batches, sweeping every LBA between batches, until
    // the surviving pages are mostly L1. Keep the first sweep (fresh
    // device, all L0) and the sweep where L1 overtakes L0.
    let mut early = None;
    let mut late = None;
    let mut state = 41u64;
    for _ in 0..40 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        churn(&mut ftl, 500, state);
        if ftl.is_dead() {
            break;
        }
        ftl.take_latency_rollup(0); // discard the write/GC-heavy batch
        read_everything(&mut ftl);
        let sweep = ftl.take_latency_rollup(0);
        if early.is_none() {
            early = Some(sweep);
        } else if ftl.pages_at_level(Tiredness::L1) > ftl.pages_at_level(Tiredness::L0) {
            late = Some(sweep);
            break;
        }
    }
    let early = early.expect("device survived the first batch");
    let late = late.expect("regen promoted most pages to L1 before dying");

    // Fresh device: every read costs exactly the L0 sense.
    let er = early.class("host_read").unwrap();
    assert!(er.count > 0);
    assert_eq!(er.percentile(500), Some(l0_edge));
    let early_p99 = er.percentile(990).unwrap();
    assert_eq!(early_p99, l0_edge, "fresh reads all cost the L0 sense");

    // L1-majority device: the whole distribution shifted by 4/3.
    let lr = late.class("host_read").unwrap();
    assert!(lr.count > 0);
    assert!(
        lr.percentile(500).unwrap() >= l1_edge,
        "median must reach the 4/3 multi-read cost"
    );
    let late_p99 = lr.percentile(990).unwrap();
    assert!(
        late_p99 > early_p99,
        "p99 must rise with the L1 fraction: {early_p99} -> {late_p99}"
    );
    assert!(late_p99 >= l1_edge);

    // The background classes were charged along the way.
    let whole_life = {
        let mut f2 = Ftl::new(FtlConfig::small_test(FtlMode::Regen));
        churn(&mut f2, 2_000_000, 42);
        f2.take_latency_rollup(0)
    };
    assert!(whole_life.class("host_write").unwrap().count > 0);
    assert!(whole_life.class("gc").unwrap().count > 0);
    assert!(whole_life.class("regen").unwrap().count > 0);
}
