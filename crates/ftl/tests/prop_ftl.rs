//! Property-based tests for the FTL engine: arbitrary operation sequences
//! must preserve the mapping/accounting invariants, and data reads must
//! return the last written bytes.

use proptest::prelude::*;
use salamander_ftl::ftl::{Ftl, ReadData};
use salamander_ftl::types::{FtlConfig, FtlError, FtlMode, Lba};
use std::collections::HashMap;

/// One host-level operation.
#[derive(Debug, Clone)]
enum Op {
    Write { disk: u8, lba: u8, tag: u8 },
    Read { disk: u8, lba: u8 },
    Trim { disk: u8, lba: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(disk, lba, tag)| Op::Write { disk, lba, tag }),
        2 => (any::<u8>(), any::<u8>()).prop_map(|(disk, lba)| Op::Read { disk, lba }),
        1 => (any::<u8>(), any::<u8>()).prop_map(|(disk, lba)| Op::Trim { disk, lba }),
    ]
}

fn tag_page(tag: u8, opage_bytes: usize) -> Vec<u8> {
    vec![tag; opage_bytes]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Read-your-writes with data payloads plus structural invariants,
    /// under random write/read/trim interleavings across minidisks, for
    /// every personality.
    #[test]
    fn read_your_writes_and_invariants(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        mode_pick in 0u8..3,
        seed in any::<u64>(),
    ) {
        let mode = [FtlMode::Baseline, FtlMode::Shrink, FtlMode::Regen][mode_pick as usize];
        let mut cfg = FtlConfig::small_test(mode);
        // Slow wear: these runs exercise mapping logic, not death.
        cfg.rber = salamander_flash::rber::RberModel::default();
        cfg.seed = seed;
        let opage = cfg.geometry.opage_bytes as usize;
        let mut ftl = Ftl::new(cfg);
        // Shadow model: what each mapped LBA should read back.
        let mut model: HashMap<(u32, u32), u8> = HashMap::new();
        for op in &ops {
            let mdisks = ftl.active_mdisks();
            prop_assume!(!mdisks.is_empty());
            match *op {
                Op::Write { disk, lba, tag } => {
                    let id = mdisks[disk as usize % mdisks.len()];
                    let lbas = ftl.mdisk_lbas(id).unwrap();
                    let lba = Lba(lba as u32 % lbas);
                    let page = tag_page(tag, opage);
                    ftl.write(id, lba, Some(&page)).unwrap();
                    model.insert((id.0, lba.0), tag);
                }
                Op::Read { disk, lba } => {
                    let id = mdisks[disk as usize % mdisks.len()];
                    let lbas = ftl.mdisk_lbas(id).unwrap();
                    let lba = Lba(lba as u32 % lbas);
                    match model.get(&(id.0, lba.0)) {
                        Some(&tag) => {
                            let got = ftl.read(id, lba).unwrap();
                            prop_assert_eq!(got, ReadData::Bytes(tag_page(tag, opage)));
                        }
                        None => {
                            prop_assert_eq!(ftl.read(id, lba), Err(FtlError::Unmapped));
                        }
                    }
                }
                Op::Trim { disk, lba } => {
                    let id = mdisks[disk as usize % mdisks.len()];
                    let lbas = ftl.mdisk_lbas(id).unwrap();
                    let lba = Lba(lba as u32 % lbas);
                    ftl.trim(id, lba).unwrap();
                    model.remove(&(id.0, lba.0));
                }
            }
        }
        ftl.check_invariants().map_err(TestCaseError::fail)?;
        // Eq. 2: committed capacity never exceeds usable physical capacity.
        prop_assert!(ftl.usable_opages() >= ftl.committed_lbas());
        // Write amplification is at least... bounded below by buffering:
        // flushed opages never exceed host writes + relocations.
        let s = ftl.stats();
        prop_assert!(s.opages_programmed <= s.host_writes + s.relocated_opages);
    }

    /// Synthetic churn to death never violates accounting, for any seed.
    #[test]
    fn churn_to_death_accounting(seed in any::<u64>(), mode_pick in 0u8..3) {
        let mode = [FtlMode::Baseline, FtlMode::Shrink, FtlMode::Regen][mode_pick as usize];
        let mut cfg = FtlConfig::small_test(mode);
        cfg.seed = seed;
        let mut ftl = Ftl::new(cfg);
        let mut state = seed | 1;
        let mut guard = 0u64;
        while !ftl.is_dead() && guard < 3_000_000 {
            let mdisks = ftl.active_mdisks();
            if mdisks.is_empty() { break; }
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let id = mdisks[(state as usize / 7) % mdisks.len()];
            let lbas = ftl.mdisk_lbas(id).unwrap();
            match ftl.write(id, Lba((state % lbas as u64) as u32), None) {
                Ok(()) => {}
                Err(FtlError::DeviceDead) => break,
                Err(e) => return Err(TestCaseError::fail(format!("write: {e}"))),
            }
            guard += 1;
            if guard.is_multiple_of(100_000) {
                prop_assert!(ftl.usable_opages() >= ftl.committed_lbas());
            }
        }
        prop_assert!(ftl.is_dead(), "fast wear must kill the device");
        // Death is consistent: no active minidisks for Salamander modes,
        // or the brick event for baseline.
        if mode != FtlMode::Baseline {
            prop_assert_eq!(ftl.committed_lbas(), 0);
        }
        ftl.check_invariants().map_err(TestCaseError::fail)?;
    }
}
