//! Per-page tiredness tracking (§3.1 of the paper).
//!
//! Every fPage has a tiredness level `L(fPage) ∈ {0..4}`: the number of its
//! oPages repurposed for extra ECC. The tracker classifies pages against
//! the ECC thresholds from `salamander_ecc::profile` using the *projected*
//! RBER (mean wear curve × the page's endurance variance), with a safety
//! factor for retention/read-disturb headroom. Levels are monotone: wear
//! never decreases.
//!
//! The paper's `limbo[L_j]` counters (Eq. 1) and the aggregate usable
//! capacity check (Eq. 2) are derived from the per-level counts kept here.

use salamander_ecc::profile::Tiredness;
use serde::{Deserialize, Serialize};

/// Per-page tiredness state for a whole device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WearTracker {
    /// Max tolerable RBER per level (ascending), from the ECC profiles.
    thresholds: Vec<f64>,
    /// Highest level pages may occupy (0 for Baseline/ShrinkS; the RegenS
    /// cap otherwise). Pages past the cap are dead (L4).
    max_level: u32,
    /// Safety factor applied to projected RBER before classification.
    safety: f64,
    /// Current level per fPage.
    levels: Vec<Tiredness>,
    /// Page counts per level index (0..=4; 4 = dead).
    counts: [u64; 5],
    /// oPages per fPage at L0.
    opages_per_fpage: u32,
}

impl WearTracker {
    /// Create a tracker for `total_fpages` pages, all starting at L0.
    ///
    /// `max_level` is clamped to the number of usable thresholds.
    pub fn new(
        thresholds: Vec<f64>,
        max_level: u32,
        safety: f64,
        total_fpages: u32,
        opages_per_fpage: u32,
    ) -> Self {
        let max_level = max_level.min(thresholds.len() as u32 - 1);
        let mut counts = [0u64; 5];
        counts[0] = total_fpages as u64;
        WearTracker {
            thresholds,
            max_level,
            safety,
            levels: vec![Tiredness::L0; total_fpages as usize],
            counts,
            opages_per_fpage,
        }
    }

    /// Classify a projected RBER into a tiredness level, honoring the cap.
    pub fn classify(&self, projected_rber: f64) -> Tiredness {
        let adjusted = projected_rber * self.safety;
        for (j, &th) in self.thresholds.iter().enumerate() {
            if j as u32 > self.max_level {
                break;
            }
            if adjusted <= th {
                return Tiredness::from_index(j as u32);
            }
        }
        Tiredness::L4
    }

    /// Current level of a page.
    pub fn level(&self, fpage: u32) -> Tiredness {
        self.levels[fpage as usize]
    }

    /// Re-classify a page after an erase. Levels only move up. Returns
    /// `(old, new)`.
    pub fn reclassify(&mut self, fpage: u32, projected_rber: f64) -> (Tiredness, Tiredness) {
        let old = self.levels[fpage as usize];
        let proposed = self.classify(projected_rber);
        let new = old.max(proposed);
        if new != old {
            self.counts[old.index() as usize] -= 1;
            self.counts[new.index() as usize] += 1;
            self.levels[fpage as usize] = new;
        }
        (old, new)
    }

    /// Force a page dead (block-granular retirement, baseline brick).
    pub fn kill(&mut self, fpage: u32) {
        let old = self.levels[fpage as usize];
        if old != Tiredness::L4 {
            self.counts[old.index() as usize] -= 1;
            self.counts[4] += 1;
            self.levels[fpage as usize] = Tiredness::L4;
        }
    }

    /// The paper's `limbo[L_j]`: number of pages at level `j`.
    pub fn count(&self, level: Tiredness) -> u64 {
        self.counts[level.index() as usize]
    }

    /// Data oPages one page at `level` can store.
    pub fn data_opages(&self, level: Tiredness) -> u32 {
        self.opages_per_fpage.saturating_sub(level.index())
    }

    /// Eq. 1 summed over levels: total oPages storable on all non-dead
    /// pages, `Σ_j (4−j)·limbo[L_j]`.
    pub fn usable_opages(&self) -> u64 {
        self.counts
            .iter()
            .take(4)
            .enumerate()
            .map(|(j, &c)| (self.opages_per_fpage as u64).saturating_sub(j as u64) * c)
            .sum()
    }

    /// oPage capacity of the `level` pool: `(4−j) · limbo[L_j]` (one term
    /// of Eq. 1).
    pub fn capacity_at(&self, level: Tiredness) -> u64 {
        self.data_opages(level) as u64 * self.count(level)
    }

    /// Number of dead pages.
    pub fn dead_pages(&self) -> u64 {
        self.counts[4]
    }

    /// Total tracked pages.
    pub fn total_pages(&self) -> u64 {
        self.levels.len() as u64
    }

    /// Highest level pages may occupy.
    pub fn max_level(&self) -> Tiredness {
        Tiredness::from_index(self.max_level)
    }

    /// Threshold (max tolerable raw RBER, after safety) for `level`, if
    /// usable.
    pub fn threshold(&self, level: Tiredness) -> Option<f64> {
        self.thresholds.get(level.index() as usize).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(max_level: u32) -> WearTracker {
        // Thresholds resembling the derived profiles: L0 2.5e-3, L1 1.4e-2,
        // L2 2.7e-2, L3 4.1e-2.
        WearTracker::new(vec![2.5e-3, 1.4e-2, 2.7e-2, 4.1e-2], max_level, 1.0, 100, 4)
    }

    #[test]
    fn classification_bands() {
        let w = tracker(3);
        assert_eq!(w.classify(1e-4), Tiredness::L0);
        assert_eq!(w.classify(2.5e-3), Tiredness::L0);
        assert_eq!(w.classify(5e-3), Tiredness::L1);
        assert_eq!(w.classify(2e-2), Tiredness::L2);
        assert_eq!(w.classify(3e-2), Tiredness::L3);
        assert_eq!(w.classify(9e-2), Tiredness::L4);
    }

    #[test]
    fn cap_limits_levels() {
        let w = tracker(0); // ShrinkS: L0 or dead
        assert_eq!(w.classify(1e-4), Tiredness::L0);
        assert_eq!(w.classify(5e-3), Tiredness::L4);
        let w = tracker(1); // RegenS default cap
        assert_eq!(w.classify(5e-3), Tiredness::L1);
        assert_eq!(w.classify(2e-2), Tiredness::L4);
    }

    #[test]
    fn safety_factor_is_conservative() {
        let strict = WearTracker::new(vec![2.5e-3, 1.4e-2], 1, 2.0, 10, 4);
        // 1.5e-3 × 2.0 = 3e-3 > 2.5e-3 ⇒ already L1 under safety factor.
        assert_eq!(strict.classify(1.5e-3), Tiredness::L1);
    }

    #[test]
    fn levels_monotone() {
        let mut w = tracker(3);
        assert_eq!(w.reclassify(0, 2e-2), (Tiredness::L0, Tiredness::L2));
        // A lower projection later cannot lower the level.
        assert_eq!(w.reclassify(0, 1e-4), (Tiredness::L2, Tiredness::L2));
        assert_eq!(w.reclassify(0, 9e-2), (Tiredness::L2, Tiredness::L4));
    }

    #[test]
    fn counts_and_capacity() {
        let mut w = tracker(3);
        assert_eq!(w.usable_opages(), 400);
        w.reclassify(0, 5e-3); // L1
        w.reclassify(1, 5e-3); // L1
        w.reclassify(2, 9e-2); // dead
        assert_eq!(w.count(Tiredness::L0), 97);
        assert_eq!(w.count(Tiredness::L1), 2);
        assert_eq!(w.dead_pages(), 1);
        // 97×4 + 2×3 + 0 = 394.
        assert_eq!(w.usable_opages(), 394);
    }

    #[test]
    fn kill_is_idempotent() {
        let mut w = tracker(3);
        w.kill(5);
        w.kill(5);
        assert_eq!(w.dead_pages(), 1);
        assert_eq!(w.level(5), Tiredness::L4);
    }

    #[test]
    fn max_level_clamped_to_thresholds() {
        let w = WearTracker::new(vec![1e-3, 1e-2], 7, 1.0, 10, 4);
        assert_eq!(w.max_level(), Tiredness::L1);
    }

    #[test]
    fn data_opages_per_level() {
        let w = tracker(3);
        assert_eq!(w.data_opages(Tiredness::L0), 4);
        assert_eq!(w.data_opages(Tiredness::L1), 3);
        assert_eq!(w.data_opages(Tiredness::L4), 0);
    }
}
