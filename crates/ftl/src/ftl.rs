//! The FTL engine: one implementation, three personalities.
//!
//! [`Ftl`] wires together the mapping table, write buffer, wear tracker,
//! and block allocator over a [`FlashArray`], and implements the protocols
//! of §3.2–§3.4 of the paper:
//!
//! - **Write path** — oPage writes are buffered until a full fPage stripe
//!   is ready (the stripe width depends on the target page's tiredness
//!   level), then programmed to the next wear-leveled fPage.
//! - **Read path** — buffered reads hit the NV buffer; flash reads inject
//!   raw bit errors and compare against the page's ECC capability
//!   (codewords are assumed interleaved across the fPage, so the page
//!   tolerates `t × chunks` total raw errors). Correctable reads return
//!   clean data; the rest raise [`FtlError::Uncorrectable`].
//! - **Garbage collection** — greedy min-valid victim, relocation through
//!   the write buffer, erase, then per-page tiredness reclassification.
//! - **Capacity protocol** — Eq. 2: when usable physical capacity can no
//!   longer back committed logical capacity (plus GC reserve), a victim
//!   minidisk is decommissioned (ShrinkS/RegenS); when a minidisk's worth
//!   of capacity re-accumulates, a new minidisk is created (RegenS).
//! - **Baseline failure** — block-granular retirement; the device bricks
//!   when the bad-block fraction crosses the configured limit.

use crate::alloc::{BlockAllocator, Stream};
use crate::buffer::WriteBuffer;
use crate::map::{MapEntry, MdiskTable};
use crate::stats::FtlStats;
use crate::types::{
    FtlConfig, FtlError, FtlEvent, FtlMode, Lba, MdiskId, OPageSlot, RetireGranularity,
    VictimPolicy,
};
use crate::wear::WearTracker;
use salamander_ecc::profile::{LevelProfile, Tiredness};
use salamander_flash::array::FlashArray;
use salamander_flash::geometry::{BlockAddr, FPageAddr};
use salamander_flash::timing::TimingModel;
use salamander_obs::metrics::{GC_BURST_BUCKETS, RETRY_DEPTH_BUCKETS};
use salamander_obs::{
    CostModelNs, DeathCause, DecommissionCause, LatClass, LatencyAcc, LatencyRollup, Obs, SimTime,
    TraceEvent,
};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Read-retry passes needed for `errors` raw bit errors against the
/// page's retirement-threshold error count: none below half the
/// threshold, then stepping up as the voltage-calibration margin erodes
/// (a first-order fit to the retry distributions of Park et al.,
/// ASPLOS '21).
fn retries_for(errors: u64, threshold_errors: u64) -> u64 {
    if threshold_errors == 0 {
        return 0;
    }
    let ratio = errors as f64 / threshold_errors as f64;
    match ratio {
        r if r < 0.5 => 0,
        r if r < 0.75 => 1,
        r if r < 0.9 => 2,
        r if r < 1.1 => 4,
        _ => 8, // exhausted retries; ECC margin decides from here
    }
}

/// Result of a host read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadData {
    /// The write carried no payload (synthetic simulation write).
    Synthetic,
    /// Corrected payload bytes.
    Bytes(Vec<u8>),
}

/// Why [`Ftl::write_batch`] returned before consuming every op.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchStop {
    /// The last consumed op raised host events; the caller's view of the
    /// minidisk set may be stale. Refresh and resubmit the rest.
    Events,
    /// The device was already dead when the next op was attempted (the op
    /// was not consumed).
    DeviceDead,
    /// An op failed with an error the batch contract does not absorb
    /// (the op was not consumed).
    Fatal(FtlError),
}

/// Result of [`Ftl::write_batch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchOutcome {
    /// Ops consumed from the front of the slice (accepted writes plus
    /// `NoSuchMdisk` skips).
    pub consumed: usize,
    /// Ops actually accepted (the serial loop's `Ok` count).
    pub written: u64,
    /// Why the batch returned early; `None` when every op was consumed.
    pub stop: Option<BatchStop>,
}

/// The FTL engine. See the [module docs](self) for the design.
///
/// The whole engine state (including flash contents and wear) is
/// serde-serializable: [`Ftl::snapshot_json`] / [`Ftl::restore_json`]
/// model a clean power cycle.
#[derive(Debug, Serialize, Deserialize)]
pub struct Ftl {
    cfg: FtlConfig,
    flash: FlashArray,
    table: MdiskTable,
    /// One buffer per write stream (Host, Gc).
    buffers: [WriteBuffer; 2],
    wear: WearTracker,
    alloc: BlockAllocator,
    profiles: Vec<LevelProfile>,
    events: VecDeque<FtlEvent>,
    stats: FtlStats,
    /// Next fPage reserved for the coming flush, per stream.
    pending_fpage: [Option<FPageAddr>; 2],
    /// Round-robin position of the background scrubber.
    scrub_cursor: u32,
    dead: bool,
    /// Per-level correctable raw bit errors per fPage (`t × chunks`),
    /// derived from `profiles`; rebuilt on restore, not device state.
    #[serde(with = "crate::serde_util::ephemeral")]
    capability: [u64; 5],
    /// Per-level retirement-threshold raw error count (`max_rber ×
    /// page bits`), derived from `profiles` and the geometry; rebuilt
    /// on restore, not device state.
    #[serde(with = "crate::serde_util::ephemeral")]
    threshold_errors: [u64; 5],
    /// GC/scrub relocation scratch (valid `(slot, owner)` pairs of one
    /// block); capacity is reused so steady-state GC never allocates.
    #[serde(with = "crate::serde_util::ephemeral")]
    gc_scratch: Vec<(OPageSlot, (MdiskId, Lba))>,
    /// Flush-path scratch for one stripe of buffered writes.
    #[serde(with = "crate::serde_util::ephemeral")]
    flush_scratch: Vec<crate::buffer::BufferedWrite>,
    /// Observability handles (DESIGN.md §9). Run-scoped, not device
    /// state: snapshots store a placeholder and restore disabled.
    #[serde(with = "salamander_obs::obs_serde")]
    obs: Obs,
    /// Integer-nanosecond op cost model (DESIGN.md §15), quantized once
    /// from the flash timing defaults; derived, rebuilt on restore.
    #[serde(with = "crate::serde_util::ephemeral")]
    latency_cost: CostModelNs,
    /// Latency charged since the last sample drain. Run-scoped like
    /// `obs`, not device state.
    #[serde(with = "crate::serde_util::ephemeral")]
    latency: LatencyAcc,
}

impl Ftl {
    /// Build a device and expose its initial minidisks (one monolithic
    /// volume for Baseline).
    pub fn new(cfg: FtlConfig) -> Self {
        let geom = cfg.geometry;
        let flash = FlashArray::new(geom, cfg.rber, cfg.seed);
        let profiles = cfg.ecc.profiles();
        let thresholds: Vec<f64> = profiles.iter().map(|p| p.max_rber).collect();
        let max_level = match cfg.mode {
            FtlMode::Baseline | FtlMode::Shrink => 0,
            FtlMode::Regen => cfg.regen_max_level.index(),
        };
        let wear = WearTracker::new(
            thresholds,
            max_level,
            cfg.rber_safety_factor,
            geom.total_fpages(),
            geom.opages_per_fpage(),
        );
        let mut table = MdiskTable::new(geom, cfg.lbas_per_mdisk());
        match cfg.mode {
            FtlMode::Baseline => {
                // One monolithic volume with the same logical capacity.
                let lbas = cfg.initial_mdisks() * cfg.lbas_per_mdisk();
                table.create_mdisk(lbas, Tiredness::L0);
            }
            FtlMode::Shrink | FtlMode::Regen => {
                for _ in 0..cfg.initial_mdisks() {
                    table.create_mdisk(cfg.lbas_per_mdisk(), Tiredness::L0);
                }
            }
        }
        let mut ftl = Ftl {
            cfg,
            flash,
            table,
            buffers: [WriteBuffer::new(), WriteBuffer::new()],
            wear,
            alloc: BlockAllocator::new(geom),
            profiles,
            events: VecDeque::new(),
            stats: FtlStats::default(),
            pending_fpage: [None, None],
            scrub_cursor: 0,
            dead: false,
            capability: [0; 5],
            threshold_errors: [0; 5],
            gc_scratch: Vec::new(),
            flush_scratch: Vec::new(),
            obs: Obs::disabled(),
            latency_cost: CostModelNs::default(),
            latency: LatencyAcc::new(),
        };
        ftl.rebuild_derived();
        ftl
    }

    /// Recompute the per-level ECC lookup arrays from the profiles and
    /// pre-reserve the hot-path scratch buffers. Called after
    /// construction and after a snapshot restore (the derived fields are
    /// not serialized).
    fn rebuild_derived(&mut self) {
        let geom = self.cfg.geometry;
        let page_bits = (geom.fpage_data_bytes + geom.fpage_spare_bytes) as u64 * 8;
        for i in 0..5 {
            let p = self.profiles.get(i);
            self.capability[i] = p.map(|p| p.t as u64 * p.chunks as u64).unwrap_or(0);
            self.threshold_errors[i] = p
                .map(|p| (p.max_rber * page_bits as f64) as u64)
                .unwrap_or(0);
        }
        let block_slots = (geom.fpages_per_block * geom.opages_per_fpage()) as usize;
        self.gc_scratch.reserve(block_slots);
        self.flush_scratch.reserve(geom.opages_per_fpage() as usize);
        // Quantize the op cost model once (DESIGN.md §15): integers
        // only from here on, so latency rollups are merge-deterministic.
        let t = TimingModel::default();
        self.latency_cost = CostModelNs::from_us(
            t.t_read_us,
            t.t_prog_us,
            t.t_erase_us,
            t.ecc_extra_us,
            t.xfer_bytes_per_us,
        );
    }

    /// Attach observability handles; pass [`Obs::disabled`] to detach.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The attached observability handles.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Drain the latency charged since the last drain into one
    /// [`LatencyRollup`] stamped `day` (DESIGN.md §15). The sims call
    /// this at sample boundaries and emit the result into the trace;
    /// charging itself is unconditional integer arithmetic, so the
    /// rollup is deterministic at any thread count.
    pub fn take_latency_rollup(&mut self, day: u32) -> LatencyRollup {
        self.latency.drain(day)
    }

    /// The integer-nanosecond cost model ops are charged with.
    pub fn latency_cost_model(&self) -> &CostModelNs {
        &self.latency_cost
    }

    /// The simulation clock events are stamped with: whole device-days
    /// elapsed plus the host-write index. Both are already part of the
    /// deterministic simulation state, so stamps are thread-invariant.
    fn now(&self) -> SimTime {
        SimTime::new(self.flash.now_days() as u32, self.stats.host_writes)
    }

    /// The configuration this device was built with.
    pub fn config(&self) -> &FtlConfig {
        &self.cfg
    }

    /// Whether the device has failed (brick / fully shrunk).
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Active minidisk ids.
    pub fn active_mdisks(&self) -> Vec<MdiskId> {
        self.table.active_mdisks()
    }

    /// Fill `out` with the active minidisk ids (ascending), reusing its
    /// capacity — the allocation-free variant of [`Self::active_mdisks`]
    /// for hot loops that cache the set between events.
    pub fn active_mdisks_into(&self, out: &mut Vec<MdiskId>) {
        self.table.active_mdisks_into(out);
    }

    /// Number of active minidisks.
    pub fn mdisk_count(&self) -> u32 {
        self.table.mdisk_count()
    }

    /// Size (LBAs) of a minidisk, if active.
    pub fn mdisk_lbas(&self, id: MdiskId) -> Option<u32> {
        self.table.mdisk_lbas(id)
    }

    /// Valid (mapped) LBAs of a minidisk, if active.
    pub fn mdisk_valid_lbas(&self, id: MdiskId) -> Option<u32> {
        self.table.mdisk_valid_lbas(id)
    }

    /// Committed logical capacity in LBAs (sum over active minidisks).
    pub fn committed_lbas(&self) -> u64 {
        self.table.committed_lbas()
    }

    /// Usable physical capacity in oPages (Eq. 1 summed over levels).
    pub fn usable_opages(&self) -> u64 {
        self.wear.usable_opages()
    }

    /// The paper's `limbo[L_j]` counter: pages at tiredness `level`.
    pub fn pages_at_level(&self, level: Tiredness) -> u64 {
        self.wear.count(level)
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &FtlStats {
        &self.stats
    }

    /// Flash-level statistics (programs, erases, busy time).
    pub fn flash_stats(&self) -> &salamander_flash::stats::FlashStats {
        self.flash.stats()
    }

    /// Drain pending host notifications. Returns a draining iterator so
    /// the no-event case costs nothing — no `Vec` is materialized.
    pub fn drain_events(&mut self) -> std::collections::vec_deque::Drain<'_, FtlEvent> {
        self.events.drain(..)
    }

    /// Number of undrained host notifications (cheap check, no
    /// allocation — hot loops can poll this before draining).
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// Advance the simulated clock (retention).
    pub fn advance_days(&mut self, days: f64) {
        self.flash.advance_days(days);
    }

    /// Write one oPage. `data` must be exactly one oPage, or `None` for a
    /// metadata-only simulation write.
    pub fn write(&mut self, id: MdiskId, lba: Lba, data: Option<&[u8]>) -> Result<(), FtlError> {
        if self.dead {
            return Err(FtlError::DeviceDead);
        }
        let lbas = self.table.mdisk_lbas(id).ok_or(FtlError::NoSuchMdisk)?;
        if self.table.is_draining(id) {
            return Err(FtlError::MdiskReadOnly);
        }
        if lba.0 >= lbas {
            return Err(FtlError::LbaOutOfRange);
        }
        if let Some(d) = data {
            if d.len() != self.cfg.geometry.opage_bytes as usize {
                return Err(FtlError::BadDataLength);
            }
        }
        self.stats.host_writes += 1;
        // Write-through attribution (DESIGN.md §15): the program +
        // transfer cost is charged at submission, not at the later
        // stripe flush, so every host write carries exactly one sample.
        self.latency.charge(
            LatClass::HostWrite,
            self.latency_cost
                .host_write_ns(self.cfg.geometry.opage_bytes as u64),
        );
        self.table.set_buffered(id, lba);
        self.buffers[Stream::Host as usize].push(id, lba, data);
        self.drain_buffer()?;
        self.check_capacity();
        Ok(())
    }

    /// Issue a batch of synthetic (payload-free) writes, amortizing the
    /// per-op driver overhead of the simulation hot loops.
    ///
    /// Each op goes through exactly the same path as [`Self::write`], so
    /// the outcome is bit-identical to issuing them one by one. The
    /// batch returns early the moment equivalence with a serial driver
    /// would need the caller's attention:
    ///
    /// - after any op that raised host events (the caller's cached
    ///   minidisk set may be stale — [`BatchStop::Events`]);
    /// - before an op attempted on a dead device
    ///   ([`BatchStop::DeviceDead`], op not consumed);
    /// - before an op that failed with anything other than
    ///   `NoSuchMdisk` ([`BatchStop::Fatal`], op not consumed).
    ///
    /// `NoSuchMdisk` ops are consumed without counting as written,
    /// mirroring the drivers' skip-and-continue handling.
    pub fn write_batch(&mut self, ops: &[(MdiskId, Lba)]) -> BatchOutcome {
        let mut out = BatchOutcome {
            consumed: 0,
            written: 0,
            stop: None,
        };
        for &(id, lba) in ops {
            if self.dead {
                out.stop = Some(BatchStop::DeviceDead);
                return out;
            }
            let events_before = self.events.len();
            match self.write(id, lba, None) {
                Ok(()) => {
                    out.consumed += 1;
                    out.written += 1;
                }
                Err(FtlError::NoSuchMdisk) => {
                    out.consumed += 1;
                    continue;
                }
                Err(FtlError::DeviceDead) => {
                    out.stop = Some(BatchStop::DeviceDead);
                    return out;
                }
                Err(e) => {
                    out.stop = Some(BatchStop::Fatal(e));
                    return out;
                }
            }
            if self.events.len() > events_before {
                out.stop = Some(BatchStop::Events);
                return out;
            }
        }
        out
    }

    /// Read one oPage.
    pub fn read(&mut self, id: MdiskId, lba: Lba) -> Result<ReadData, FtlError> {
        let entry = match self.table.lookup(id, lba) {
            None => {
                return if self.table.contains(id) {
                    Err(FtlError::LbaOutOfRange)
                } else {
                    Err(FtlError::NoSuchMdisk)
                };
            }
            Some(e) => e,
        };
        self.stats.host_reads += 1;
        match entry {
            MapEntry::Unmapped => Err(FtlError::Unmapped),
            MapEntry::Buffered => {
                self.stats.buffer_hits += 1;
                // Present in one of the buffers by the map/buffer sync
                // invariant.
                let hit = self.buffers[0]
                    .get(id, lba)
                    .or_else(|| self.buffers[1].get(id, lba))
                    .expect("buffer out of sync");
                match hit {
                    Some(bytes) => Ok(ReadData::Bytes(bytes.to_vec())),
                    None => Ok(ReadData::Synthetic),
                }
            }
            MapEntry::Flash(slot) => self.read_flash(id, lba, slot),
        }
    }

    /// Trim (unmap) one oPage.
    pub fn trim(&mut self, id: MdiskId, lba: Lba) -> Result<(), FtlError> {
        let lbas = self.table.mdisk_lbas(id).ok_or(FtlError::NoSuchMdisk)?;
        if self.table.is_draining(id) {
            return Err(FtlError::MdiskReadOnly);
        }
        if lba.0 >= lbas {
            return Err(FtlError::LbaOutOfRange);
        }
        self.table.unmap(id, lba);
        self.buffers[0].remove(id, lba);
        self.buffers[1].remove(id, lba);
        Ok(())
    }

    fn read_flash(&mut self, id: MdiskId, lba: Lba, slot: OPageSlot) -> Result<ReadData, FtlError> {
        let outcome = self
            .flash
            .read(slot.fpage)
            .map_err(|_| FtlError::Unmapped)?;
        let level = self.wear.level(slot.fpage.index);
        let capability = self.page_capability(level);
        // Read retry (§2): as raw errors approach the level's retirement
        // threshold, the controller re-reads with adjusted reference
        // voltages. A freshly lowered code rate raises the threshold and
        // suppresses retries — the §4.2 mitigation.
        let threshold_errors = self.threshold_errors[level.index() as usize];
        let retries = retries_for(outcome.raw_bit_errors, threshold_errors);
        if retries > 0 {
            self.stats.read_retries += retries;
            self.flash.record_retries(retries);
            self.obs.trace.emit(
                self.now(),
                TraceEvent::ReadRetry {
                    mdisk: id.0,
                    retries: retries as u32,
                },
            );
            self.obs
                .metrics
                .observe("salamander_read_retry_depth", RETRY_DEPTH_BUCKETS, retries);
        }
        // Charge the full sense cost — the §4.2 `4/(4−L)` multi-read
        // factor from the page's current level, extra senses per retry,
        // one ECC decode per attempt, and the oPage transfer. Charged
        // even when the read ends uncorrectable: the time was spent.
        self.latency.charge(
            LatClass::HostRead,
            self.latency_cost.host_read_ns(
                self.cfg.geometry.opages_per_fpage(),
                level.index(),
                retries as u32,
                self.cfg.geometry.opage_bytes as u64,
            ),
        );
        if outcome.raw_bit_errors > capability {
            self.stats.uncorrectable_reads += 1;
            self.events
                .push_back(FtlEvent::UncorrectableRead { id, lba });
            self.obs.trace.emit(
                self.now(),
                TraceEvent::UncorrectableRead {
                    mdisk: id.0,
                    lba: lba.0,
                },
            );
            return Err(FtlError::Uncorrectable);
        }
        // Correctable: return the clean stored bytes (the ECC engine's
        // output); metadata-only pages carry no payload.
        let clean = self
            .flash
            .stored_data(slot.fpage)
            .map_err(|_| FtlError::Unmapped)?;
        match clean {
            None => Ok(ReadData::Synthetic),
            Some(page) => {
                let o = self.cfg.geometry.opage_bytes as usize;
                let start = slot.slot as usize * o;
                Ok(ReadData::Bytes(page[start..start + o].to_vec()))
            }
        }
    }

    /// Background scrub: patrol up to `pages` programmed fPages (resuming
    /// round-robin across calls) and refresh any whose raw errors exceed
    /// `scrub_refresh_fraction` of the ECC capability — counteracting
    /// retention and read-disturb error growth before data becomes
    /// uncorrectable. Returns the number of fPages refreshed.
    pub fn scrub(&mut self, pages: u32) -> Result<u32, FtlError> {
        if self.dead {
            return Ok(0);
        }
        let total = self.cfg.geometry.total_fpages();
        let threshold_frac = self.cfg.scrub_refresh_fraction;
        let mut refreshed = 0;
        for _ in 0..pages.min(total) {
            let fp = FPageAddr {
                index: self.scrub_cursor,
            };
            self.scrub_cursor = (self.scrub_cursor + 1) % total;
            // Only patrol pages holding valid data. The patrol path is
            // allocation-free: owners are only materialized (into the
            // reusable scratch) on the rare refresh path below.
            if self.table.owners_in_fpage(fp).next().is_none() {
                continue;
            }
            let outcome = match self.flash.read(fp) {
                Ok(o) => o,
                Err(_) => continue,
            };
            self.stats.scrub_reads += 1;
            let level = self.wear.level(fp.index);
            let capability = self.page_capability(level);
            if (outcome.raw_bit_errors as f64) < capability as f64 * threshold_frac {
                continue;
            }
            // Refresh: rewrite the still-correctable data elsewhere.
            let mut owners = std::mem::take(&mut self.gc_scratch);
            owners.clear();
            owners.extend(self.table.owners_in_fpage(fp));
            let o = self.cfg.geometry.opage_bytes as usize;
            let clean = self.flash.stored_data(fp).unwrap_or(None);
            self.obs.trace.emit(
                self.now(),
                TraceEvent::ScrubRefresh {
                    fpage: fp.index as u64,
                    opages: owners.len() as u32,
                },
            );
            // One stall sample per refresh: the patrol sense + decode
            // plus moving the refreshed oPages (their re-program is the
            // flush path's, charged nowhere — write-through rule).
            self.latency.charge(
                LatClass::Scrub,
                self.latency_cost
                    .scrub_ns(owners.len() as u64, self.cfg.geometry.opage_bytes as u64),
            );
            for &(slot, (id, lba)) in &owners {
                let payload = clean
                    .as_ref()
                    .map(|p| p[slot.slot as usize * o..(slot.slot as usize + 1) * o].to_vec());
                self.table.set_buffered(id, lba);
                let gc = self.gc_stream() as usize;
                self.buffers[1 - gc].remove(id, lba);
                self.buffers[gc].push(id, lba, payload.as_deref());
                self.stats.scrub_refreshes += 1;
            }
            self.gc_scratch = owners;
            refreshed += 1;
        }
        self.drain_buffer()?;
        self.check_capacity();
        Ok(refreshed)
    }

    /// Total correctable raw bit errors per fPage at `level`, assuming the
    /// per-chunk codewords are interleaved across the page.
    fn page_capability(&self, level: Tiredness) -> u64 {
        self.capability[level.index() as usize]
    }

    /// The stream GC relocations write to.
    fn gc_stream(&self) -> Stream {
        if self.cfg.hot_cold_separation {
            Stream::Gc
        } else {
            Stream::Host
        }
    }

    /// Flush full stripes out of both buffers while possible, running GC
    /// to keep the free-block reserve as stripes consume space.
    fn drain_buffer(&mut self) -> Result<(), FtlError> {
        loop {
            if self.dead {
                // A brick can land mid-write (GC discovers the threshold);
                // buffered data stays readable in the NV buffer.
                return Ok(());
            }
            self.maybe_gc()?;
            let mut progressed = false;
            for stream in [Stream::Host, Stream::Gc] {
                if self.buffers[stream as usize].is_empty() {
                    continue;
                }
                let Some(fp) = self.peek_fpage(stream) else {
                    // No programmable page: reclaim, then retry; only give
                    // up (and complain) when a full stripe is stranded.
                    if self.gc_once()? {
                        progressed = true;
                        continue;
                    }
                    let widest = self.cfg.geometry.opages_per_fpage() as usize;
                    let stranded = self.buffers[0].len() + self.buffers[1].len();
                    return if stranded >= widest {
                        Err(FtlError::OutOfSpace)
                    } else {
                        Ok(())
                    };
                };
                let level = self.wear.level(fp.index);
                let stripe = self.wear.data_opages(level) as usize;
                if self.buffers[stream as usize].len() < stripe {
                    continue;
                }
                self.flush_one(fp, stripe, stream)?;
                progressed = true;
            }
            if !progressed {
                return Ok(());
            }
        }
    }

    /// Reserve (without consuming) the next programmable fPage on `stream`.
    fn peek_fpage(&mut self, stream: Stream) -> Option<FPageAddr> {
        if self.pending_fpage[stream as usize].is_none() {
            self.pending_fpage[stream as usize] = self.alloc.next_fpage(&self.wear, stream);
        }
        self.pending_fpage[stream as usize]
    }

    /// Program one stripe of up to `stripe` oPages from `stream`'s buffer
    /// into `fp`.
    fn flush_one(&mut self, fp: FPageAddr, stripe: usize, stream: Stream) -> Result<(), FtlError> {
        // Collect still-live buffered entries (a trim or decommission may
        // have invalidated some while they waited). A rewrite may also
        // have moved the latest copy to the *other* stream's buffer.
        let mut entries = std::mem::take(&mut self.flush_scratch);
        entries.clear();
        while entries.len() < stripe {
            let Some(e) = self.buffers[stream as usize].take_one() else {
                break;
            };
            let other = 1 - stream as usize;
            if matches!(self.table.lookup(e.id, e.lba), Some(MapEntry::Buffered))
                && !self.buffers[other].contains(e.id, e.lba)
            {
                entries.push(e);
            }
        }
        if entries.is_empty() {
            self.flush_scratch = entries;
            return Ok(());
        }
        let geom = self.cfg.geometry;
        let has_data = entries.iter().any(|e| e.data.is_some());
        let payload = if has_data {
            let mut page = vec![0u8; (geom.fpage_data_bytes + geom.fpage_spare_bytes) as usize];
            for (i, e) in entries.iter().enumerate() {
                if let Some(d) = &e.data {
                    let start = i * geom.opage_bytes as usize;
                    page[start..start + d.len()].copy_from_slice(d);
                }
            }
            Some(page)
        } else {
            None
        };
        self.flash
            .program(fp, payload.as_deref())
            .map_err(|_| FtlError::OutOfSpace)?;
        self.pending_fpage[stream as usize] = None;
        self.stats.opages_programmed += entries.len() as u64;
        for (i, e) in entries.iter().enumerate() {
            let bound = self.table.set_flash(
                e.id,
                e.lba,
                OPageSlot {
                    fpage: fp,
                    slot: i as u8,
                },
            );
            debug_assert!(bound, "flush target vanished after liveness check");
        }
        self.flush_scratch = entries;
        Ok(())
    }

    /// Run GC until the free-block reserve is restored (or no progress).
    fn maybe_gc(&mut self) -> Result<(), FtlError> {
        while !self.dead && self.alloc.free_blocks() < self.cfg.gc_free_blocks {
            if !self.gc_once()? {
                break;
            }
        }
        Ok(())
    }

    /// One GC pass: pick the used block with the fewest valid oPages,
    /// relocate its live data through the buffer, erase, reclassify.
    /// Returns `false` if no victim exists.
    fn gc_once(&mut self) -> Result<bool, FtlError> {
        let _gc_phase = self.obs.profiler.phase("ftl/gc");
        let victim = self
            .alloc
            .used_blocks()
            .min_by_key(|b| self.table.block_valid(*b));
        let Some(victim) = victim else {
            return Ok(false);
        };
        self.stats.gc_runs += 1;
        let relocated_before = self.stats.relocated_opages;
        self.relocate_block(victim);
        self.erase_and_reclassify(victim)?;
        let relocated = self.stats.relocated_opages - relocated_before;
        // One stall sample per pass: every relocation is a sense + a
        // program, plus the victim erase (DESIGN.md §15).
        self.latency
            .charge(LatClass::Gc, self.latency_cost.gc_pass_ns(relocated));
        self.obs.trace.emit(
            self.now(),
            TraceEvent::GcPass {
                block: victim.index as u64,
                relocated,
            },
        );
        self.obs
            .metrics
            .observe("salamander_gc_burst_opages", GC_BURST_BUCKETS, relocated);
        // Wear may have shifted levels: re-run the capacity protocol. The
        // relocated data flushes from the buffer in the outer drain loop.
        self.check_capacity();
        Ok(true)
    }

    /// Move every valid oPage of `block` into the write buffer.
    fn relocate_block(&mut self, block: BlockAddr) {
        let mut valid = std::mem::take(&mut self.gc_scratch);
        let cap_before = valid.capacity();
        self.table.valid_in_block_into(block, &mut valid);
        // Steady-state GC must not allocate per block: the scratch was
        // pre-reserved to one block's worth of slots (capacity 0 only
        // right after a snapshot restore, before the first pass).
        debug_assert!(
            cap_before == 0 || valid.capacity() == cap_before,
            "GC scratch grew mid-run: {} -> {}",
            cap_before,
            valid.capacity()
        );
        let o = self.cfg.geometry.opage_bytes as usize;
        let mut last_fpage: Option<(FPageAddr, Option<Vec<u8>>)> = None;
        for &(slot, (id, lba)) in &valid {
            // One physical read per distinct fPage.
            let page_data = match &last_fpage {
                Some((fp, data)) if *fp == slot.fpage => data.clone(),
                _ => {
                    // Internal relocation read (counted in flash stats).
                    let _ = self.flash.read(slot.fpage);
                    let data = self.flash.stored_data(slot.fpage).unwrap_or(None);
                    last_fpage = Some((slot.fpage, data.clone()));
                    data
                }
            };
            let payload = page_data
                .as_ref()
                .map(|p| p[slot.slot as usize * o..(slot.slot as usize + 1) * o].to_vec());
            self.table.set_buffered(id, lba);
            let gc = self.gc_stream() as usize;
            // The relocation supersedes any stale host-buffer copy.
            self.buffers[1 - gc].remove(id, lba);
            self.buffers[gc].push(id, lba, payload.as_deref());
            self.stats.relocated_opages += 1;
        }
        self.gc_scratch = valid;
    }

    /// Erase `block`, bump its wear, and re-classify its pages according to
    /// the personality's retirement granularity.
    fn erase_and_reclassify(&mut self, block: BlockAddr) -> Result<(), FtlError> {
        self.flash.erase(block).map_err(|_| FtlError::OutOfSpace)?;
        let new_pec = self.flash.pec(block);
        let geom = self.cfg.geometry;
        let block_granular = matches!(self.cfg.mode, FtlMode::Baseline)
            || self.cfg.retire_granularity == RetireGranularity::Block;
        let mut any_dead = false;
        let mut any_usable = false;
        for fp in geom.fpages_in(block) {
            let projected = self.flash.projected_rber(fp);
            let (old, new) = self.wear.reclassify(fp.index, projected);
            if new.usable() {
                any_usable = true;
            } else {
                any_dead = true;
            }
            if old != new {
                let event = if new.usable() {
                    TraceEvent::PageTired {
                        fpage: fp.index as u64,
                        from: old.index() as u8,
                        to: new.index() as u8,
                    }
                } else {
                    TraceEvent::PageRetired {
                        fpage: fp.index as u64,
                        from: old.index() as u8,
                    }
                };
                self.obs.trace.emit(self.now(), event);
            }
        }
        if block_granular && any_dead {
            // Conventional SSDs (and CVSS-style shrinking) retire the whole
            // block once any page fails.
            for fp in geom.fpages_in(block) {
                let level = self.wear.level(fp.index);
                self.wear.kill(fp.index);
                if level.usable() {
                    // Collateral retirement of still-usable pages — the
                    // cost of block granularity, visible in the trace.
                    self.obs.trace.emit(
                        self.now(),
                        TraceEvent::PageRetired {
                            fpage: fp.index as u64,
                            from: level.index() as u8,
                        },
                    );
                }
            }
            any_usable = false;
        }
        self.alloc.on_erase(block, new_pec, any_usable);
        if matches!(self.cfg.mode, FtlMode::Baseline) {
            self.check_brick();
        }
        Ok(())
    }

    /// Baseline failure: brick once the bad-block fraction crosses the
    /// limit. The device becomes read-only.
    fn check_brick(&mut self) {
        if self.dead {
            return;
        }
        let frac = self.alloc.dead_blocks() as f64 / self.cfg.geometry.total_blocks() as f64;
        if frac > self.cfg.bad_block_limit {
            self.dead = true;
            self.events.push_back(FtlEvent::DeviceFailed {
                bad_block_fraction: frac,
            });
            self.obs.trace.emit(
                self.now(),
                TraceEvent::DeviceDied {
                    cause: DeathCause::Brick,
                },
            );
        }
    }

    /// oPages the GC reserve requires to stay free.
    fn reserve_opages(&self) -> u64 {
        let per_block =
            (self.cfg.geometry.fpages_per_block * self.cfg.geometry.opages_per_fpage()) as u64;
        self.cfg.gc_free_blocks as u64 * per_block
    }

    /// The capacity protocol of §3.3/§3.4. Minidisks are level-homogeneous
    /// (the paper: "we assume all oPages in a mDisk have the same tiredness
    /// level"), so each tiredness level is a separate capacity ledger:
    ///
    /// 1. **Per-level Eq. 2** — while a level's pool cannot back its
    ///    committed LBAs, decommission a victim minidisk of that level.
    /// 2. **GC headroom** — while total slack is below the reserve,
    ///    decommission from the most-constrained level.
    /// 3. **Regeneration** (RegenS) — while a worn level's pool has a
    ///    minidisk's worth of surplus (plus half a minidisk of hysteresis,
    ///    so shrink and regen cannot oscillate), create a new minidisk
    ///    backed by that level and notify the host.
    ///
    /// Why per-level ledgers are load-bearing: with a single aggregate
    /// ledger, a decommission raises slack by exactly one minidisk while
    /// usable capacity only ever shrinks, so slack always lands *below*
    /// any regeneration threshold of at least one minidisk — regeneration
    /// could never fire. Splitting the ledger per level lets transitions
    /// *into* a worn level grow that level's surplus without touching its
    /// committed side, which is what makes §3.4's "enough oPages are
    /// available, but not used" state reachable.
    fn check_capacity(&mut self) {
        if self.dead || matches!(self.cfg.mode, FtlMode::Baseline) {
            return;
        }
        let reserve = self.reserve_opages();
        let msize = self.table.lbas_per_mdisk() as u64;
        // The usable levels, without allocating: at most L0..L4.
        let all_levels: [Tiredness; 5] = [
            Tiredness::L0,
            Tiredness::L1,
            Tiredness::L2,
            Tiredness::L3,
            Tiredness::L4,
        ];
        let levels = &all_levels[..=self.wear.max_level().index() as usize];
        // 1. Per-level shortfall.
        for &level in levels {
            while self.table.committed_at(level) > self.wear.capacity_at(level) {
                if !self.decommission_one(level, DecommissionCause::LevelShortfall) {
                    break;
                }
            }
        }
        // 2. Global GC headroom. Draining minidisks still pin physical
        // space until the host acknowledges them, so they count here.
        while self.table.mdisk_count() > 0
            && self.wear.usable_opages()
                < self.table.committed_lbas() + self.table.draining_lbas() + reserve
        {
            let tightest = levels
                .iter()
                .filter(|&&l| self.table.committed_at(l) > 0)
                .min_by_key(|&&l| {
                    self.wear.capacity_at(l) as i64 - self.table.committed_at(l) as i64
                })
                .copied();
            let Some(level) = tightest else {
                break;
            };
            if !self.decommission_one(level, DecommissionCause::GcHeadroom) {
                break;
            }
        }
        // 3. Regeneration of worn levels.
        if matches!(self.cfg.mode, FtlMode::Regen) {
            let hysteresis = msize + msize / 2;
            for &level in levels.iter().skip(1) {
                while self.wear.capacity_at(level) >= self.table.committed_at(level) + hysteresis
                    && self.wear.usable_opages()
                        >= self.table.committed_lbas()
                            + self.table.draining_lbas()
                            + reserve
                            + hysteresis
                {
                    let id = self.table.create_mdisk(msize as u32, level);
                    self.stats.mdisks_regenerated += 1;
                    // One regen-copy stall sample: the host refills the
                    // regenerated minidisk (program + transfer per oPage).
                    self.latency.charge(
                        LatClass::Regen,
                        self.latency_cost
                            .regen_ns(msize, self.cfg.geometry.opage_bytes as u64),
                    );
                    self.events.push_back(FtlEvent::MdiskCreated { id, level });
                    self.obs.trace.emit(
                        self.now(),
                        TraceEvent::MdiskRegenerated {
                            id: id.0,
                            level: level.index() as u8,
                        },
                    );
                }
            }
        }
        if self.table.mdisk_count() == 0 {
            self.dead = true;
            let frac = self.alloc.dead_blocks() as f64 / self.cfg.geometry.total_blocks() as f64;
            self.events.push_back(FtlEvent::DeviceFailed {
                bad_block_fraction: frac,
            });
            self.obs.trace.emit(
                self.now(),
                TraceEvent::DeviceDied {
                    cause: DeathCause::FullyShrunk,
                },
            );
        }
    }

    /// Decommission one minidisk of `level` per the victim policy. Returns
    /// `false` if the level has no active minidisk.
    ///
    /// With grace-period decommissioning (§4.3 future work) the victim
    /// enters the *draining* state: its capacity leaves the ledger but its
    /// data stays readable until [`Self::ack_decommission`]. Otherwise the
    /// data is dropped immediately.
    fn decommission_one(&mut self, level: Tiredness, cause: DecommissionCause) -> bool {
        let _decomm_phase = self.obs.profiler.phase("ftl/decommission");
        let victim = match self.cfg.victim_policy {
            VictimPolicy::LeastValid => self.table.least_valid_mdisk_at(level),
            VictimPolicy::HighestId => self.table.highest_mdisk_at(level),
        };
        let Some(victim) = victim else {
            return false;
        };
        let grace = self.cfg.decommission_grace;
        let valid = if grace {
            self.table.set_draining(victim).unwrap_or(0)
        } else {
            let v = self.table.remove_mdisk(victim).unwrap_or(0);
            self.buffers[0].remove_mdisk(victim);
            self.buffers[1].remove_mdisk(victim);
            v
        };
        self.stats.mdisks_decommissioned += 1;
        self.events.push_back(FtlEvent::MdiskDecommissioned {
            id: victim,
            valid_lbas: valid,
            draining: grace,
        });
        self.obs.trace.emit(
            self.now(),
            TraceEvent::MdiskDecommissioned {
                id: victim.0,
                valid_lbas: valid,
                draining: grace,
                cause,
            },
        );
        if grace {
            self.enforce_draining_bound();
        }
        true
    }

    /// Acknowledge a draining minidisk: the host has re-replicated its
    /// data; drop it and free its space.
    pub fn ack_decommission(&mut self, id: MdiskId) -> Result<(), FtlError> {
        if !self.table.is_draining(id) {
            return Err(FtlError::NoSuchMdisk);
        }
        self.table.remove_mdisk(id);
        self.buffers[0].remove_mdisk(id);
        self.buffers[1].remove_mdisk(id);
        Ok(())
    }

    /// Draining minidisk ids (oldest first).
    pub fn draining_mdisks(&self) -> Vec<MdiskId> {
        self.table.draining_mdisks()
    }

    /// Purge the oldest draining minidisks beyond the configured bound —
    /// their valid data pins physical space the GC reserve needs.
    fn enforce_draining_bound(&mut self) {
        let mut draining = self.table.draining_mdisks();
        while draining.len() as u32 > self.cfg.max_draining {
            let victim = draining.remove(0);
            self.table.remove_mdisk(victim);
            self.buffers[0].remove_mdisk(victim);
            self.buffers[1].remove_mdisk(victim);
            self.events.push_back(FtlEvent::MdiskPurged { id: victim });
            self.obs
                .trace
                .emit(self.now(), TraceEvent::MdiskPurged { id: victim.0 });
        }
    }

    /// SMART-style telemetry snapshot (§2.1's failure-prediction inputs,
    /// self-reported).
    pub fn smart(&self) -> crate::smart::SmartReport {
        let geom = self.cfg.geometry;
        let total_blocks = geom.total_blocks();
        let (mut pec_sum, mut max_pec) = (0u64, 0u32);
        for b in geom.blocks() {
            let p = self.flash.pec(b);
            pec_sum += p as u64;
            max_pec = max_pec.max(p);
        }
        let mut histogram = [0u64; 5];
        for (i, h) in histogram.iter_mut().enumerate() {
            *h = self.wear.count(Tiredness::from_index(i as u32));
        }
        // Pages whose projected (safety-adjusted) RBER is within 25% of
        // their level's threshold: the next transitions in line.
        let mut pages_near_retirement = 0u64;
        for fp in geom.fpages() {
            let level = self.wear.level(fp.index);
            if !level.usable() {
                continue;
            }
            if let Some(threshold) = self.wear.threshold(level) {
                let projected = self.flash.projected_rber(fp) * self.cfg.rber_safety_factor;
                if projected >= threshold * 0.75 {
                    pages_near_retirement += 1;
                }
            }
        }
        let usable = self.wear.usable_opages();
        let committed = self.table.committed_lbas();
        let draining = self.table.draining_lbas();
        let reserve = self.reserve_opages();
        // Life remaining: median endurance is where mean RBER hits the L0
        // threshold; report the unconsumed fraction at the average PEC.
        let median_endurance = self
            .wear
            .threshold(Tiredness::L0)
            .map(|t| self.cfg.rber.pec_at_rber(t))
            .unwrap_or(u32::MAX) as f64;
        let avg_pec = pec_sum as f64 / total_blocks as f64;
        crate::smart::SmartReport {
            avg_pec,
            max_pec,
            level_histogram: histogram,
            dead_blocks: self.alloc.dead_blocks(),
            usable_opages: usable,
            committed_lbas: committed,
            draining_lbas: draining,
            headroom_opages: usable.saturating_sub(committed + draining + reserve),
            pages_near_retirement,
            opages_per_fpage: geom.opages_per_fpage(),
            uncorrectable_reads: self.stats.uncorrectable_reads,
            read_retries: self.stats.read_retries,
            life_remaining: (1.0 - avg_pec / median_endurance.max(1.0)).clamp(0.0, 1.0),
        }
    }

    /// Dump the cumulative [`FtlStats`] counters into the attached
    /// metrics registry (no-op when metrics are disabled). Called by
    /// the sim drivers at sample points and at end of run; counters are
    /// absolute, so re-export overwrites are idempotent per run.
    pub fn export_metrics(&self) {
        let m = &self.obs.metrics;
        if !m.is_enabled() {
            return;
        }
        let s = &self.stats;
        let reg = [
            ("salamander_host_writes_total", s.host_writes),
            ("salamander_host_reads_total", s.host_reads),
            ("salamander_opages_programmed_total", s.opages_programmed),
            ("salamander_relocated_opages_total", s.relocated_opages),
            ("salamander_gc_runs_total", s.gc_runs),
            (
                "salamander_mdisks_decommissioned_total",
                s.mdisks_decommissioned,
            ),
            ("salamander_mdisks_regenerated_total", s.mdisks_regenerated),
            (
                "salamander_uncorrectable_reads_total",
                s.uncorrectable_reads,
            ),
            ("salamander_buffer_hits_total", s.buffer_hits),
            ("salamander_read_retries_total", s.read_retries),
            ("salamander_scrub_reads_total", s.scrub_reads),
            ("salamander_scrub_refreshes_total", s.scrub_refreshes),
        ];
        for (key, v) in reg {
            // Counters are monotone; export the delta over what the
            // registry already holds so repeated exports stay absolute.
            m.inc(key, v.saturating_sub(m.counter(key)));
        }
        if let Some(wa) = s.write_amplification() {
            m.set_gauge("salamander_write_amplification", wa);
        }
    }

    /// Serialize the complete device state (flash contents, wear, maps,
    /// buffers, pending events) as JSON — a clean power-off image.
    pub fn snapshot_json(&self) -> String {
        serde_json::to_string(self).expect("ftl state serializes")
    }

    /// Restore a device from a [`Self::snapshot_json`] image — a power-on
    /// after a clean shutdown. All state, including the error-injection
    /// RNG, resumes exactly where the snapshot left off.
    pub fn restore_json(json: &str) -> Result<Self, serde_json::Error> {
        let mut ftl: Ftl = serde_json::from_str(json)?;
        // Derived caches and scratch buffers are not part of the image.
        ftl.rebuild_derived();
        Ok(ftl)
    }

    /// Debug invariant check across subsystems (tests only; O(device)).
    pub fn check_invariants(&self) -> Result<(), String> {
        self.table.check_invariants()?;
        // Buffered map entries and buffer contents agree.
        for id in self.table.active_mdisks() {
            let lbas = self.table.mdisk_lbas(id).unwrap();
            for lba in 0..lbas {
                let e = self.table.lookup(id, Lba(lba)).unwrap();
                let buffered = self.buffers[0].contains(id, Lba(lba))
                    || self.buffers[1].contains(id, Lba(lba));
                match e {
                    MapEntry::Buffered if !buffered => {
                        return Err(format!("{id:?}/{lba} says Buffered but absent"));
                    }
                    MapEntry::Flash(_) | MapEntry::Unmapped if buffered => {
                        return Err(format!("{id:?}/{lba} stale buffer entry"));
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }
}
