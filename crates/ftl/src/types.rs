//! Identifiers, configuration, events, and error types shared across the
//! FTL engine.

use salamander_ecc::profile::{EccConfig, Tiredness};
use salamander_flash::geometry::{FPageAddr, FlashGeometry};
use salamander_flash::rber::RberModel;
use serde::{Deserialize, Serialize};

/// Identifier of one minidisk exposed by the device.
///
/// Ids are never reused: a decommissioned minidisk's id stays dead, and
/// regenerated minidisks get fresh ids, so the host can track lifecycles
/// unambiguously.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MdiskId(pub u32);

/// Logical block address *within* one minidisk (oPage granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Lba(pub u32);

/// Physical location of one oPage: an fPage plus a slot in its data area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OPageSlot {
    /// The containing flash page.
    pub fpage: FPageAddr,
    /// Data slot within the fPage.
    pub slot: u8,
}

/// FTL personality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FtlMode {
    /// Conventional SSD: monolithic volume, block-granular retirement,
    /// bricks at the bad-block threshold.
    Baseline,
    /// ShrinkS: page-granular retirement, minidisk decommissioning.
    Shrink,
    /// RegenS: ShrinkS plus tiredness levels and minidisk regeneration.
    Regen,
}

/// Retirement granularity for ShrinkS — the paper argues page granularity
/// captures endurance variance that block-average retirement (CVSS-style)
/// wastes; [`RetireGranularity::Block`] exists for that ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RetireGranularity {
    /// Retire individual fPages (Salamander's choice).
    Page,
    /// Retire whole blocks when any page in them wears out (CVSS-style).
    Block,
}

/// Victim selection when a minidisk must be decommissioned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VictimPolicy {
    /// Decommission the minidisk with the fewest valid oPages (cheapest
    /// for the diFS to re-replicate).
    LeastValid,
    /// Decommission the highest-numbered active minidisk.
    HighestId,
}

/// Full FTL configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FtlConfig {
    /// Flash geometry.
    pub geometry: FlashGeometry,
    /// Wear model.
    pub rber: RberModel,
    /// ECC layout and reliability target (defines tiredness thresholds).
    pub ecc: EccConfig,
    /// Personality.
    pub mode: FtlMode,
    /// Minidisk size in bytes (the paper suggests ~1 MiB).
    pub msize_bytes: u64,
    /// Fraction of raw capacity reserved as over-provisioning.
    pub op_fraction: f64,
    /// Run GC when free blocks drop to this count.
    pub gc_free_blocks: u32,
    /// Baseline bricks when `bad_blocks / total_blocks` exceeds this
    /// (2.5% per the paper, citing Maneas et al.).
    pub bad_block_limit: f64,
    /// Highest tiredness level RegenS will use (the paper concludes
    /// L < 2 is the sweet spot, so `L1` is the default cap).
    pub regen_max_level: Tiredness,
    /// ShrinkS retirement granularity (Page, or Block for the ablation).
    pub retire_granularity: RetireGranularity,
    /// Victim choice on decommission.
    pub victim_policy: VictimPolicy,
    /// Scrub refresh threshold: patrol refreshes a page once its observed
    /// raw errors exceed this fraction of the ECC capability.
    pub scrub_refresh_fraction: f64,
    /// Grace-period decommissioning (§4.3 future work): a decommissioned
    /// minidisk stays internally readable ("draining") until the host
    /// acknowledges that its data has been re-replicated.
    pub decommission_grace: bool,
    /// Bound on simultaneously draining minidisks; beyond it the oldest
    /// is purged to protect the GC reserve.
    pub max_draining: u32,
    /// Separate write frontiers for host writes and GC relocations
    /// (hot/cold separation — lowers write amplification by keeping
    /// short-lived and long-lived data in different blocks).
    pub hot_cold_separation: bool,
    /// Safety factor applied to projected RBER when classifying pages
    /// (headroom for retention and read disturb between erases).
    pub rber_safety_factor: f64,
    /// RNG seed (page endurance variance, error injection).
    pub seed: u64,
}

impl FtlConfig {
    /// A small configuration for unit tests: tiny geometry, fast wear.
    pub fn small_test(mode: FtlMode) -> Self {
        FtlConfig {
            geometry: FlashGeometry::small_test(),
            rber: RberModel::fast_wear(),
            ecc: EccConfig::default(),
            mode,
            msize_bytes: 256 * 1024, // 64 LBAs per minidisk
            op_fraction: 0.07,
            gc_free_blocks: 2,
            bad_block_limit: 0.025,
            regen_max_level: Tiredness::L1,
            retire_granularity: RetireGranularity::Page,
            victim_policy: VictimPolicy::LeastValid,
            scrub_refresh_fraction: 0.5,
            decommission_grace: false,
            max_draining: 2,
            hot_cold_separation: true,
            rber_safety_factor: 1.25,
            seed: 42,
        }
    }

    /// A medium configuration for integration tests and benches.
    pub fn medium(mode: FtlMode) -> Self {
        FtlConfig {
            geometry: FlashGeometry::medium(),
            msize_bytes: 1024 * 1024,
            gc_free_blocks: 4,
            ..Self::small_test(mode)
        }
    }

    /// LBAs (oPages) per minidisk.
    pub fn lbas_per_mdisk(&self) -> u32 {
        (self.msize_bytes / self.geometry.opage_bytes as u64) as u32
    }

    /// Initial number of minidisks: raw capacity minus over-provisioning,
    /// in whole minidisks. Baseline exposes the same logical capacity as a
    /// single volume (modeled as one giant minidisk).
    pub fn initial_mdisks(&self) -> u32 {
        let logical_opages =
            (self.geometry.total_opages() as f64 * (1.0 - self.op_fraction)) as u64;
        (logical_opages / self.lbas_per_mdisk() as u64) as u32
    }
}

/// Host notifications emitted by the FTL.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FtlEvent {
    /// A minidisk was decommissioned; its data must be recovered. With
    /// grace-period decommissioning the minidisk stays readable (draining)
    /// until [`crate::ftl::Ftl::ack_decommission`]; otherwise its data is
    /// gone and must come from replicas. `valid_lbas` is how many LBAs
    /// held live data.
    MdiskDecommissioned {
        /// The decommissioned minidisk.
        id: MdiskId,
        /// Live LBAs lost (the diFS re-replicates these).
        valid_lbas: u32,
        /// Whether the data remains readable during a grace period.
        draining: bool,
    },
    /// A draining minidisk was purged before the host acknowledged it
    /// (space pressure exceeded the draining bound); its data is gone.
    MdiskPurged {
        /// The purged minidisk.
        id: MdiskId,
    },
    /// RegenS assembled enough worn capacity to expose a new minidisk.
    MdiskCreated {
        /// The new minidisk.
        id: MdiskId,
        /// Tiredness level of the capacity backing it (informational).
        level: Tiredness,
    },
    /// The device can no longer store data (baseline brick, or a
    /// Salamander device that has shrunk to nothing).
    DeviceFailed {
        /// Fraction of blocks bad at failure time.
        bad_block_fraction: f64,
    },
    /// An uncorrectable read was returned to the host (data loss at the
    /// device level; the diFS recovers from replicas).
    UncorrectableRead {
        /// Minidisk of the failed read.
        id: MdiskId,
        /// LBA of the failed read.
        lba: Lba,
    },
}

/// Errors returned by host-facing FTL operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtlError {
    /// The minidisk does not exist or is decommissioned.
    NoSuchMdisk,
    /// LBA beyond the minidisk's size.
    LbaOutOfRange,
    /// The LBA has never been written (reads only).
    Unmapped,
    /// The minidisk is draining (decommissioned, read-only).
    MdiskReadOnly,
    /// The device has failed (brick / fully shrunk); writes are rejected.
    DeviceDead,
    /// Data payload length does not match the oPage size.
    BadDataLength,
    /// The stored data could not be corrected by ECC.
    Uncorrectable,
    /// No physical space left to accept the write (should be prevented by
    /// decommissioning; returned if the device is out of room mid-protocol).
    OutOfSpace,
}

impl std::fmt::Display for FtlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FtlError::NoSuchMdisk => "no such minidisk",
            FtlError::LbaOutOfRange => "LBA out of range",
            FtlError::Unmapped => "LBA unmapped",
            FtlError::MdiskReadOnly => "minidisk is draining (read-only)",
            FtlError::DeviceDead => "device failed",
            FtlError::BadDataLength => "data length != oPage size",
            FtlError::Uncorrectable => "uncorrectable read",
            FtlError::OutOfSpace => "out of physical space",
        };
        f.write_str(s)
    }
}

impl std::error::Error for FtlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_test_config_sane() {
        let cfg = FtlConfig::small_test(FtlMode::Shrink);
        assert_eq!(cfg.lbas_per_mdisk(), 64);
        // 1024 raw oPages, 7% OP → 952 logical → 14 minidisks of 64.
        assert_eq!(cfg.initial_mdisks(), 14);
    }

    #[test]
    fn mdisk_count_scales_with_op() {
        let mut cfg = FtlConfig::small_test(FtlMode::Shrink);
        let base = cfg.initial_mdisks();
        cfg.op_fraction = 0.5;
        assert!(cfg.initial_mdisks() < base);
    }

    #[test]
    fn events_serialize() {
        let e = FtlEvent::MdiskDecommissioned {
            id: MdiskId(3),
            valid_lbas: 17,
            draining: false,
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: FtlEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn error_display() {
        assert_eq!(FtlError::NoSuchMdisk.to_string(), "no such minidisk");
        assert_eq!(FtlError::DeviceDead.to_string(), "device failed");
    }
}
