//! FTL-level statistics: write amplification, relocations, lifecycle
//! events, per-level page distribution.

use serde::{Deserialize, Serialize};

/// Cumulative FTL counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FtlStats {
    /// Host oPage writes accepted.
    pub host_writes: u64,
    /// Host oPage reads served.
    pub host_reads: u64,
    /// oPages programmed to flash (host + relocation).
    pub opages_programmed: u64,
    /// oPages relocated by GC or decommissioning.
    pub relocated_opages: u64,
    /// GC passes executed.
    pub gc_runs: u64,
    /// Minidisks decommissioned so far.
    pub mdisks_decommissioned: u64,
    /// Minidisks regenerated so far.
    pub mdisks_regenerated: u64,
    /// Uncorrectable host reads.
    pub uncorrectable_reads: u64,
    /// Reads served straight from the write buffer.
    pub buffer_hits: u64,
    /// Read-retry passes issued (§2: iterative voltage adjustment; grows
    /// as pages approach their ECC capability).
    pub read_retries: u64,
    /// Pages inspected by the background scrubber.
    pub scrub_reads: u64,
    /// oPages refreshed (relocated) by the scrubber before their errors
    /// became uncorrectable.
    pub scrub_refreshes: u64,
}

impl FtlStats {
    /// Write amplification: flash oPage programs per host oPage write.
    /// Returns `None` before any host write.
    pub fn write_amplification(&self) -> Option<f64> {
        if self.host_writes == 0 {
            None
        } else {
            Some(self.opages_programmed as f64 / self.host_writes as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_amplification_math() {
        let mut s = FtlStats::default();
        assert_eq!(s.write_amplification(), None);
        s.host_writes = 100;
        s.opages_programmed = 130;
        assert_eq!(s.write_amplification(), Some(1.3));
    }
}
