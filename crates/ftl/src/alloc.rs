//! Wear-leveled block allocation.
//!
//! The allocator hands out fPages from one *open* block at a time, skipping
//! pages the wear tracker marks dead, and picks the lowest-PEC free block
//! when a new open block is needed (static wear leveling on the write
//! path). Blocks cycle `Free → Open → Used → (erase) → Free`, or drop out
//! to `Dead` when no usable pages remain.

use crate::wear::WearTracker;
use salamander_flash::geometry::{BlockAddr, FPageAddr, FlashGeometry};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Lifecycle state of an erase block, from the allocator's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockState {
    /// Erased and available.
    Free,
    /// Currently receiving programs.
    Open,
    /// Fully programmed (or closed early); awaiting GC.
    Used,
    /// Retired: no usable pages (or marked bad).
    Dead,
}

/// Write stream: separating host writes from GC relocations ("hot/cold
/// separation") keeps short-lived and long-lived data in different blocks,
/// which lowers write amplification. The FTL exposes it as a config knob
/// for the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stream {
    /// Host (foreground) writes.
    Host = 0,
    /// GC relocations (cold data).
    Gc = 1,
}

/// Block allocator with PEC-ordered free list and one open block per
/// write stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlockAllocator {
    geom: FlashGeometry,
    state: Vec<BlockState>,
    pec: Vec<u32>,
    /// Free blocks ordered by (PEC, index): pop-first = least worn.
    free: BTreeSet<(u32, u32)>,
    open: [Option<(BlockAddr, u32)>; 2],
}

impl BlockAllocator {
    /// All blocks start free at PEC 0.
    pub fn new(geom: FlashGeometry) -> Self {
        let n = geom.total_blocks();
        BlockAllocator {
            geom,
            state: vec![BlockState::Free; n as usize],
            pec: vec![0; n as usize],
            free: (0..n).map(|i| (0, i)).collect(),
            open: [None, None],
        }
    }

    /// State of `block`.
    pub fn state(&self, block: BlockAddr) -> BlockState {
        self.state[block.index as usize]
    }

    /// Number of free blocks (excluding the open one).
    pub fn free_blocks(&self) -> u32 {
        self.free.len() as u32
    }

    /// The currently open block for `stream`, if any.
    pub fn open_block(&self, stream: Stream) -> Option<BlockAddr> {
        self.open[stream as usize].map(|(b, _)| b)
    }

    /// Next programmable fPage on `stream`, advancing its cursor. Dead
    /// pages are skipped. Opens a new (least-worn) free block when needed.
    /// Returns `None` when no free block remains.
    pub fn next_fpage(&mut self, wear: &WearTracker, stream: Stream) -> Option<FPageAddr> {
        loop {
            if let Some((block, ref mut cursor)) = self.open[stream as usize] {
                while *cursor < self.geom.fpages_per_block {
                    let fp = FPageAddr {
                        index: block.index * self.geom.fpages_per_block + *cursor,
                    };
                    *cursor += 1;
                    if wear.level(fp.index).usable() {
                        return Some(fp);
                    }
                }
                // Open block exhausted.
                self.state[block.index as usize] = BlockState::Used;
                self.open[stream as usize] = None;
            }
            let &(pec, idx) = self.free.iter().next()?;
            self.free.remove(&(pec, idx));
            self.state[idx as usize] = BlockState::Open;
            self.open[stream as usize] = Some((BlockAddr { index: idx }, 0));
        }
    }

    /// Record an erase of `block` at `new_pec`. If `usable` the block
    /// rejoins the free list; otherwise it is retired.
    ///
    /// # Panics
    ///
    /// Panics if the block is `Free` or `Open` (erasing those is an FTL
    /// logic error).
    pub fn on_erase(&mut self, block: BlockAddr, new_pec: u32, usable: bool) {
        let i = block.index as usize;
        assert!(
            matches!(self.state[i], BlockState::Used | BlockState::Dead),
            "erase of non-used block {}",
            block.index
        );
        self.pec[i] = new_pec;
        if usable {
            self.state[i] = BlockState::Free;
            self.free.insert((new_pec, block.index));
        } else {
            self.state[i] = BlockState::Dead;
        }
    }

    /// Retire `block` outright (bad block, baseline block failure). It is
    /// removed from the free list if present; an open block is closed.
    pub fn mark_dead(&mut self, block: BlockAddr) {
        let i = block.index as usize;
        match self.state[i] {
            BlockState::Free => {
                self.free.remove(&(self.pec[i], block.index));
            }
            BlockState::Open => {
                for slot in &mut self.open {
                    if slot.map(|(b, _)| b) == Some(block) {
                        *slot = None;
                    }
                }
            }
            _ => {}
        }
        self.state[i] = BlockState::Dead;
    }

    /// Close all open blocks early (e.g. before selecting GC victims).
    pub fn close_open(&mut self) {
        for slot in &mut self.open {
            if let Some((b, _)) = slot.take() {
                self.state[b.index as usize] = BlockState::Used;
            }
        }
    }

    /// Iterate blocks in `Used` state.
    pub fn used_blocks(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        self.state
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == BlockState::Used)
            .map(|(i, _)| BlockAddr { index: i as u32 })
    }

    /// Number of dead blocks.
    pub fn dead_blocks(&self) -> u32 {
        self.state
            .iter()
            .filter(|s| **s == BlockState::Dead)
            .count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> FlashGeometry {
        FlashGeometry::small_test() // 16 blocks × 16 pages
    }

    fn wear_all_alive(g: &FlashGeometry) -> WearTracker {
        WearTracker::new(vec![1.0], 0, 1.0, g.total_fpages(), g.opages_per_fpage())
    }

    #[test]
    fn allocates_sequentially_within_block() {
        let g = geom();
        let w = wear_all_alive(&g);
        let mut a = BlockAllocator::new(g);
        let p0 = a.next_fpage(&w, Stream::Host).unwrap();
        let p1 = a.next_fpage(&w, Stream::Host).unwrap();
        assert_eq!(p1.index, p0.index + 1);
        assert_eq!(g.block_of(p0), g.block_of(p1));
        assert_eq!(a.state(g.block_of(p0)), BlockState::Open);
    }

    #[test]
    fn moves_to_next_block_when_full() {
        let g = geom();
        let w = wear_all_alive(&g);
        let mut a = BlockAllocator::new(g);
        let first = a.next_fpage(&w, Stream::Host).unwrap();
        for _ in 1..g.fpages_per_block {
            a.next_fpage(&w, Stream::Host).unwrap();
        }
        let next = a.next_fpage(&w, Stream::Host).unwrap();
        assert_ne!(g.block_of(first), g.block_of(next));
        assert_eq!(a.state(g.block_of(first)), BlockState::Used);
    }

    #[test]
    fn skips_dead_pages() {
        let g = geom();
        let mut w = wear_all_alive(&g);
        w.kill(1);
        w.kill(2);
        let mut a = BlockAllocator::new(g);
        let p0 = a.next_fpage(&w, Stream::Host).unwrap();
        let p1 = a.next_fpage(&w, Stream::Host).unwrap();
        assert_eq!(p0.index, 0);
        assert_eq!(p1.index, 3);
    }

    #[test]
    fn wear_leveling_prefers_low_pec() {
        let g = geom();
        let w = wear_all_alive(&g);
        let mut a = BlockAllocator::new(g);
        // Drain every block, then erase them with different PECs.
        while a.next_fpage(&w, Stream::Host).is_some() {}
        assert_eq!(a.free_blocks(), 0);
        for b in g.blocks() {
            a.on_erase(b, 10 - (b.index % 4), true);
        }
        // First allocation comes from a block with the minimum PEC (7).
        let p = a.next_fpage(&w, Stream::Host).unwrap();
        assert_eq!(a.pec[g.block_of(p).index as usize], 7);
    }

    #[test]
    fn exhaustion_returns_none() {
        let g = geom();
        let w = wear_all_alive(&g);
        let mut a = BlockAllocator::new(g);
        let total = g.total_fpages();
        for _ in 0..total {
            assert!(a.next_fpage(&w, Stream::Host).is_some());
        }
        assert!(a.next_fpage(&w, Stream::Host).is_none());
    }

    #[test]
    fn dead_block_never_allocated() {
        let g = geom();
        let w = wear_all_alive(&g);
        let mut a = BlockAllocator::new(g);
        for b in g.blocks() {
            if b.index != 5 {
                a.mark_dead(b);
            }
        }
        let p = a.next_fpage(&w, Stream::Host).unwrap();
        assert_eq!(g.block_of(p).index, 5);
        assert_eq!(a.dead_blocks(), 15);
    }

    #[test]
    fn erase_dead_page_block_retires() {
        let g = geom();
        let mut w = wear_all_alive(&g);
        let mut a = BlockAllocator::new(g);
        // Fill block 0.
        for _ in 0..g.fpages_per_block {
            a.next_fpage(&w, Stream::Host).unwrap();
        }
        a.close_open();
        let b0 = BlockAddr { index: 0 };
        for fp in g.fpages_in(b0) {
            w.kill(fp.index);
        }
        a.on_erase(b0, 1, false);
        assert_eq!(a.state(b0), BlockState::Dead);
        assert!(!a.free.contains(&(1, 0)));
    }

    #[test]
    fn used_blocks_iterates() {
        let g = geom();
        let w = wear_all_alive(&g);
        let mut a = BlockAllocator::new(g);
        for _ in 0..g.fpages_per_block {
            a.next_fpage(&w, Stream::Host).unwrap();
        }
        a.next_fpage(&w, Stream::Host).unwrap(); // opens block 2
        let used: Vec<_> = a.used_blocks().collect();
        assert_eq!(used.len(), 1);
    }

    #[test]
    fn mark_dead_closes_open_block() {
        let g = geom();
        let w = wear_all_alive(&g);
        let mut a = BlockAllocator::new(g);
        let p = a.next_fpage(&w, Stream::Host).unwrap();
        let b = g.block_of(p);
        a.mark_dead(b);
        assert_eq!(a.state(b), BlockState::Dead);
        assert!(a.open_block(Stream::Host).is_none());
        // Next allocation opens a different block.
        let p2 = a.next_fpage(&w, Stream::Host).unwrap();
        assert_ne!(g.block_of(p2), b);
    }
}
