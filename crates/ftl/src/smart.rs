//! SMART-style device telemetry and wear-out prediction.
//!
//! §2.1 of the paper surveys the failure-prediction literature (Xu et al.
//! DSN '21, Mahdisoltani et al. ATC '17, Alter et al. SC '19) and argues
//! that datacenter operators *already* retire devices on predictions.
//! Salamander turns that around: instead of retiring whole devices early,
//! the host can use the same telemetry to anticipate *minidisk*
//! decommissions and pre-drain their data gracefully.
//!
//! [`SmartReport`] is the device's self-assessment; the prediction is a
//! first-order extrapolation of its own wear-transition machinery (the
//! device knows its thresholds and per-page variances exactly, so —
//! unlike the external ML predictors in the literature — its forecast is
//! structurally faithful, just not clairvoyant about future write rates).

use serde::{Deserialize, Serialize};

/// Device telemetry snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmartReport {
    /// Average erase cycles over all blocks.
    pub avg_pec: f64,
    /// Highest block erase count.
    pub max_pec: u32,
    /// fPages at each tiredness level (index 4 = dead) — the paper's
    /// `limbo[L_j]` histogram.
    pub level_histogram: [u64; 5],
    /// Dead (retired) blocks.
    pub dead_blocks: u32,
    /// Usable physical capacity in oPages (Eq. 1 aggregate).
    pub usable_opages: u64,
    /// Committed logical capacity in LBAs.
    pub committed_lbas: u64,
    /// LBAs pinned by draining minidisks.
    pub draining_lbas: u64,
    /// Headroom before the next forced decommission, in oPages
    /// (`usable − committed − draining − reserve`; 0 when shrink is
    /// imminent).
    pub headroom_opages: u64,
    /// Pages whose projected RBER is within 25% of their current level's
    /// threshold — the capacity that will transition or retire soonest.
    pub pages_near_retirement: u64,
    /// oPages per fPage (to convert page counts into capacity).
    pub opages_per_fpage: u32,
    /// Uncorrectable host reads so far.
    pub uncorrectable_reads: u64,
    /// Cumulative read retries (a leading indicator of wear).
    pub read_retries: u64,
    /// Remaining-life estimate in `[0, 1]`: the fraction of the median
    /// page's endurance not yet consumed.
    pub life_remaining: f64,
}

impl SmartReport {
    /// Export the report as gauges into a metrics registry, labelled
    /// with the sample point (e.g. `day="30"` or `op="120000"`). One
    /// run with `--metrics` then carries the whole headroom/limbo
    /// trajectory — the Fig. 3 curves — instead of needing a CSV per
    /// figure.
    pub fn export_gauges(&self, metrics: &salamander_obs::MetricsHandle, label: &str) {
        if !metrics.is_enabled() {
            return;
        }
        metrics.set_gauge(
            &format!("salamander_smart_headroom_opages{{{label}}}"),
            self.headroom_opages as f64,
        );
        metrics.set_gauge(
            &format!("salamander_smart_usable_opages{{{label}}}"),
            self.usable_opages as f64,
        );
        metrics.set_gauge(
            &format!("salamander_smart_committed_lbas{{{label}}}"),
            self.committed_lbas as f64,
        );
        // Limbo capacity pinned by draining minidisks: without it the
        // Eq. 1 headroom (usable − committed − draining − reserve) is
        // not reconstructable from the exported series alone.
        metrics.set_gauge(
            &format!("salamander_smart_draining_lbas{{{label}}}"),
            self.draining_lbas as f64,
        );
        metrics.set_gauge(
            &format!("salamander_smart_avg_pec{{{label}}}"),
            self.avg_pec,
        );
        metrics.set_gauge(
            &format!("salamander_smart_life_remaining{{{label}}}"),
            self.life_remaining,
        );
        metrics.set_gauge(
            &format!("salamander_smart_pages_near_retirement{{{label}}}"),
            self.pages_near_retirement as f64,
        );
        for (i, count) in self.level_histogram.iter().enumerate() {
            metrics.set_gauge(
                &format!("salamander_smart_limbo_pages{{level=\"L{i}\",{label}}}"),
                *count as f64,
            );
        }
    }

    /// Whether a minidisk decommission is imminent: the capacity at stake
    /// on near-retirement pages (scaled by `margin`) exceeds the remaining
    /// headroom. A fresh device reports no near-retirement pages and is
    /// never imminent, no matter how small its headroom.
    pub fn decommission_imminent(&self, _msize_opages: u64, margin: f64) -> bool {
        let at_stake = self.pages_near_retirement as f64 * self.opages_per_fpage as f64 * margin;
        self.pages_near_retirement > 0 && at_stake >= self.headroom_opages as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(headroom: u64, near: u64) -> SmartReport {
        SmartReport {
            avg_pec: 10.0,
            max_pec: 20,
            level_histogram: [100, 0, 0, 0, 0],
            dead_blocks: 0,
            usable_opages: 400,
            committed_lbas: 300,
            draining_lbas: 0,
            headroom_opages: headroom,
            pages_near_retirement: near,
            opages_per_fpage: 4,
            uncorrectable_reads: 0,
            read_retries: 0,
            life_remaining: 0.9,
        }
    }

    #[test]
    fn imminence_needs_actual_wear() {
        // Zero near-retirement pages: never imminent, even at headroom 0.
        assert!(!report(0, 0).decommission_imminent(64, 2.0));
        // Pages at stake cover the headroom: imminent.
        assert!(report(16, 10).decommission_imminent(64, 1.0)); // 40 >= 16
        assert!(!report(200, 10).decommission_imminent(64, 1.0)); // 40 < 200
                                                                  // Margin scales the estimate.
        assert!(report(60, 10).decommission_imminent(64, 2.0)); // 80 >= 60
    }

    #[test]
    fn export_gauges_carries_headroom_inputs() {
        let metrics = salamander_obs::MetricsHandle::enabled();
        let mut r = report(16, 2);
        r.draining_lbas = 48;
        r.export_gauges(&metrics, "day=\"30\"");
        let reg = metrics.take();
        // Every term of the Eq. 1 headroom identity is exported, so the
        // gauge series alone reconstructs the capacity math.
        assert_eq!(
            reg.gauge("salamander_smart_draining_lbas{day=\"30\"}"),
            Some(48.0)
        );
        assert_eq!(
            reg.gauge("salamander_smart_headroom_opages{day=\"30\"}"),
            Some(16.0)
        );
        assert_eq!(
            reg.gauge("salamander_smart_usable_opages{day=\"30\"}"),
            Some(400.0)
        );
        assert_eq!(
            reg.gauge("salamander_smart_committed_lbas{day=\"30\"}"),
            Some(300.0)
        );
    }

    #[test]
    fn serializes() {
        let r = report(10, 0);
        let back: SmartReport = serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
        assert_eq!(r, back);
    }
}
