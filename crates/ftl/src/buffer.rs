//! Non-volatile write buffer.
//!
//! Salamander buffers host oPage writes "in a small non-volatile buffer
//! until enough data is cached to fill all oPages in the next available
//! fPage" (§3.2). The buffer is a FIFO of unique `(minidisk, LBA)` keys;
//! rewriting a buffered LBA replaces its payload in place (no duplicate
//! flush). Because the buffer is modeled as non-volatile, buffered data
//! counts as durable for capacity accounting.

use crate::types::{Lba, MdiskId};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// One buffered oPage write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferedWrite {
    /// Target minidisk.
    pub id: MdiskId,
    /// Target LBA.
    pub lba: Lba,
    /// Payload (`None` for synthetic/metadata-only simulation writes).
    pub data: Option<Box<[u8]>>,
}

/// FIFO write buffer with in-place overwrite of duplicate keys.
///
/// # Examples
///
/// ```
/// use salamander_ftl::buffer::WriteBuffer;
/// use salamander_ftl::types::{Lba, MdiskId};
///
/// let mut b = WriteBuffer::new();
/// b.push(MdiskId(0), Lba(1), None);
/// b.push(MdiskId(0), Lba(1), None); // overwrite, not a new entry
/// assert_eq!(b.len(), 1);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WriteBuffer {
    queue: VecDeque<(MdiskId, Lba)>,
    #[serde(with = "crate::serde_util::pairs")]
    payload: HashMap<(MdiskId, Lba), Option<Box<[u8]>>>,
}

impl WriteBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct buffered oPages.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Buffer a write. Returns `true` if this is a new entry, `false` if it
    /// overwrote an already-buffered LBA.
    pub fn push(&mut self, id: MdiskId, lba: Lba, data: Option<&[u8]>) -> bool {
        let key = (id, lba);
        let boxed = data.map(|d| d.to_vec().into_boxed_slice());
        if self.payload.insert(key, boxed).is_some() {
            false
        } else {
            self.queue.push_back(key);
            true
        }
    }

    /// Whether `(id, lba)` is buffered.
    pub fn contains(&self, id: MdiskId, lba: Lba) -> bool {
        self.payload.contains_key(&(id, lba))
    }

    /// Payload of a buffered entry (`Some(None)` = buffered without data).
    pub fn get(&self, id: MdiskId, lba: Lba) -> Option<Option<&[u8]>> {
        self.payload
            .get(&(id, lba))
            .map(|d| d.as_ref().map(|b| b.as_ref()))
    }

    /// Pop up to `n` entries from the front, oldest first.
    pub fn take(&mut self, n: usize) -> Vec<BufferedWrite> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let Some(key) = self.queue.pop_front() else {
                break;
            };
            // The key is guaranteed present: it is removed from `payload`
            // only together with its queue entry.
            let data = self.payload.remove(&key).expect("buffer out of sync");
            out.push(BufferedWrite {
                id: key.0,
                lba: key.1,
                data,
            });
        }
        out
    }

    /// Pop the oldest entry, if any — the allocation-free flush-path
    /// variant of [`Self::take`].
    pub fn take_one(&mut self) -> Option<BufferedWrite> {
        let key = self.queue.pop_front()?;
        // The key is guaranteed present: it is removed from `payload`
        // only together with its queue entry.
        let data = self.payload.remove(&key).expect("buffer out of sync");
        Some(BufferedWrite {
            id: key.0,
            lba: key.1,
            data,
        })
    }

    /// Drop one buffered write (used by trim). Returns whether it existed.
    pub fn remove(&mut self, id: MdiskId, lba: Lba) -> bool {
        if self.payload.remove(&(id, lba)).is_some() {
            self.queue.retain(|k| *k != (id, lba));
            true
        } else {
            false
        }
    }

    /// Drop all buffered writes belonging to minidisk `id` (used when the
    /// minidisk is decommissioned). Returns how many were dropped.
    pub fn remove_mdisk(&mut self, id: MdiskId) -> usize {
        let before = self.queue.len();
        self.queue.retain(|k| k.0 != id);
        self.payload.retain(|k, _| k.0 != id);
        before - self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut b = WriteBuffer::new();
        for i in 0..5 {
            b.push(MdiskId(0), Lba(i), None);
        }
        let taken = b.take(3);
        assert_eq!(
            taken.iter().map(|w| w.lba.0).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn overwrite_keeps_position_updates_payload() {
        let mut b = WriteBuffer::new();
        b.push(MdiskId(0), Lba(0), Some(&[1u8; 4]));
        b.push(MdiskId(0), Lba(1), None);
        assert!(!b.push(MdiskId(0), Lba(0), Some(&[2u8; 4])));
        assert_eq!(b.len(), 2);
        assert_eq!(b.get(MdiskId(0), Lba(0)), Some(Some(&[2u8, 2, 2, 2][..])));
        let taken = b.take(2);
        assert_eq!(taken[0].lba, Lba(0));
        assert_eq!(taken[0].data.as_deref(), Some(&[2u8, 2, 2, 2][..]));
    }

    #[test]
    fn take_more_than_available() {
        let mut b = WriteBuffer::new();
        b.push(MdiskId(1), Lba(0), None);
        let taken = b.take(10);
        assert_eq!(taken.len(), 1);
        assert!(b.is_empty());
        assert!(b.take(1).is_empty());
    }

    #[test]
    fn remove_mdisk_filters() {
        let mut b = WriteBuffer::new();
        b.push(MdiskId(0), Lba(0), None);
        b.push(MdiskId(1), Lba(0), None);
        b.push(MdiskId(0), Lba(1), None);
        assert_eq!(b.remove_mdisk(MdiskId(0)), 2);
        assert_eq!(b.len(), 1);
        assert!(b.contains(MdiskId(1), Lba(0)));
        assert!(!b.contains(MdiskId(0), Lba(0)));
    }

    #[test]
    fn get_distinguishes_absent_and_synthetic() {
        let mut b = WriteBuffer::new();
        b.push(MdiskId(0), Lba(0), None);
        assert_eq!(b.get(MdiskId(0), Lba(0)), Some(None));
        assert_eq!(b.get(MdiskId(0), Lba(1)), None);
    }
}
