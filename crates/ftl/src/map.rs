//! Logical-to-physical mapping.
//!
//! Salamander's mapping is indexed by `(minidisk, LBA)` rather than a flat
//! device LBA (§3.2): each minidisk owns an independent LBA space whose
//! entries may point anywhere on the device. [`MdiskTable`] maintains the
//! forward map, the reverse map (fPage slot → `(minidisk, LBA)`), and
//! per-block valid-oPage counts for GC victim selection.
//!
//! Hot-path layout (DESIGN.md §10): minidisk ids are allocated
//! sequentially and never reused, so the id → minidisk map is a dense
//! slab (`Vec<Option<Mdisk>>` indexed by id) rather than a `BTreeMap`,
//! and the reverse map is one flat `fpage × slot` array rather than a
//! vector of per-fPage vectors. Ascending-id iteration over the slab
//! visits minidisks in exactly the order the old ordered map did, so
//! every victim/placement decision is unchanged. Each minidisk also
//! carries its valid-LBA count incrementally, making GC victim scoring
//! O(minidisks) instead of O(LBAs).

use crate::types::{Lba, MdiskId, OPageSlot};
use salamander_ecc::profile::Tiredness;
use salamander_flash::geometry::{BlockAddr, FlashGeometry};
use serde::{Deserialize, Serialize, Value};

/// State of one forward-map entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MapEntry {
    /// Never written (or trimmed).
    Unmapped,
    /// Latest copy lives in the NV write buffer.
    Buffered,
    /// Latest copy lives on flash.
    Flash(OPageSlot),
}

/// One minidisk's mapping state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mdisk {
    /// Forward map, one entry per LBA.
    map: Vec<MapEntry>,
    /// Tiredness level of the capacity pool backing this minidisk (§3.4:
    /// "we assume all oPages in a mDisk have the same tiredness level").
    level: Tiredness,
    /// Decommissioned but kept readable during the grace period (§4.3
    /// future work): no longer counted as committed capacity, rejects
    /// writes, awaits the host's acknowledgement.
    draining: bool,
    /// Cached count of mapped (buffered or flash) LBAs, maintained on
    /// every map transition so victim selection never rescans the map.
    valid: u32,
}

impl Mdisk {
    fn new(lbas: u32, level: Tiredness) -> Self {
        Mdisk {
            map: vec![MapEntry::Unmapped; lbas as usize],
            level,
            draining: false,
            valid: 0,
        }
    }

    /// Number of LBAs currently mapped (buffered or on flash). O(1):
    /// maintained incrementally by [`MdiskTable`].
    pub fn valid_lbas(&self) -> u32 {
        self.valid
    }
}

/// Dense id-indexed minidisk store. Ids are sequential and never
/// reused, so `slots[id]` is the whole lookup; freed ids stay `None`.
/// Serializes as the same ordered `(id, mdisk)` pair sequence the
/// previous `BTreeMap` + `serde_util::pairs` representation produced.
#[derive(Debug, Clone, Default)]
struct MdiskSlab {
    slots: Vec<Option<Mdisk>>,
}

impl MdiskSlab {
    fn get(&self, id: MdiskId) -> Option<&Mdisk> {
        self.slots.get(id.0 as usize).and_then(|m| m.as_ref())
    }

    fn get_mut(&mut self, id: MdiskId) -> Option<&mut Mdisk> {
        self.slots.get_mut(id.0 as usize).and_then(|m| m.as_mut())
    }

    fn insert(&mut self, id: MdiskId, m: Mdisk) {
        let idx = id.0 as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        self.slots[idx] = Some(m);
    }

    fn remove(&mut self, id: MdiskId) -> Option<Mdisk> {
        self.slots.get_mut(id.0 as usize).and_then(|m| m.take())
    }

    /// Live `(id, mdisk)` entries in ascending id order — the exact
    /// iteration order of the ordered map this slab replaced.
    fn iter(&self) -> impl DoubleEndedIterator<Item = (MdiskId, &Mdisk)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.as_ref().map(|m| (MdiskId(i as u32), m)))
    }
}

impl Serialize for MdiskSlab {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(id, m)| Value::Array(vec![id.to_value(), m.to_value()]))
                .collect(),
        )
    }
}

impl<'de> Deserialize<'de> for MdiskSlab {
    fn from_value(v: &Value) -> Result<Self, serde::de::DeError> {
        let pairs = Vec::<(MdiskId, Mdisk)>::from_value(v)?;
        let mut slab = MdiskSlab::default();
        for (id, m) in pairs {
            slab.insert(id, m);
        }
        Ok(slab)
    }
}

/// The device-wide mapping structure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MdiskTable {
    geom: FlashGeometry,
    lbas_per_mdisk: u32,
    next_id: u32,
    mdisks: MdiskSlab,
    /// Reverse map, flattened: `rmap[fpage · slots_per_fpage + slot]`
    /// → owning `(minidisk, LBA)`.
    rmap: Vec<Option<(MdiskId, Lba)>>,
    /// oPage slots per fPage (row stride of `rmap`).
    slots_per_fpage: u32,
    /// Valid oPages per block (GC victim metric).
    block_valid: Vec<u32>,
    /// Cached logical capacity (LBAs) committed per backing level
    /// (index = tiredness level; L4 unused).
    committed: [u64; 5],
    /// LBAs pinned by draining minidisks (their data still occupies
    /// physical space until acknowledged).
    draining_total: u64,
}

impl MdiskTable {
    /// Create an empty table for `geom` with the given minidisk size.
    pub fn new(geom: FlashGeometry, lbas_per_mdisk: u32) -> Self {
        let slots = geom.opages_per_fpage();
        MdiskTable {
            geom,
            lbas_per_mdisk,
            next_id: 0,
            mdisks: MdiskSlab::default(),
            rmap: vec![None; (geom.total_fpages() * slots) as usize],
            slots_per_fpage: slots,
            block_valid: vec![0; geom.total_blocks() as usize],
            committed: [0; 5],
            draining_total: 0,
        }
    }

    /// LBAs per minidisk.
    pub fn lbas_per_mdisk(&self) -> u32 {
        self.lbas_per_mdisk
    }

    /// Flat index of a slot in the reverse map.
    #[inline]
    fn ridx(&self, slot: OPageSlot) -> usize {
        (slot.fpage.index * self.slots_per_fpage + slot.slot as u32) as usize
    }

    /// Create a new minidisk of `lbas` LBAs backed by the `level` capacity
    /// pool, and return its id.
    pub fn create_mdisk(&mut self, lbas: u32, level: Tiredness) -> MdiskId {
        let id = MdiskId(self.next_id);
        self.next_id += 1;
        self.mdisks.insert(id, Mdisk::new(lbas, level));
        self.committed[level.index() as usize] += lbas as u64;
        id
    }

    /// Backing level of a minidisk, if active or draining.
    pub fn mdisk_level(&self, id: MdiskId) -> Option<Tiredness> {
        self.mdisks.get(id).map(|m| m.level)
    }

    /// Active (non-draining) minidisk ids, ascending.
    pub fn active_mdisks(&self) -> Vec<MdiskId> {
        let mut out = Vec::new();
        self.active_mdisks_into(&mut out);
        out
    }

    /// Fill `out` with the active minidisk ids, ascending, reusing its
    /// capacity — the hot-loop variant of [`Self::active_mdisks`].
    pub fn active_mdisks_into(&self, out: &mut Vec<MdiskId>) {
        out.clear();
        out.extend(
            self.mdisks
                .iter()
                .filter(|(_, m)| !m.draining)
                .map(|(id, _)| id),
        );
    }

    /// Number of active (non-draining) minidisks.
    pub fn mdisk_count(&self) -> u32 {
        self.mdisks.iter().filter(|(_, m)| !m.draining).count() as u32
    }

    /// Whether `id` is draining (grace period).
    pub fn is_draining(&self, id: MdiskId) -> bool {
        self.mdisks.get(id).map(|m| m.draining).unwrap_or(false)
    }

    /// Draining minidisk ids, ascending (oldest id first).
    pub fn draining_mdisks(&self) -> Vec<MdiskId> {
        self.mdisks
            .iter()
            .filter(|(_, m)| m.draining)
            .map(|(id, _)| id)
            .collect()
    }

    /// Move an active minidisk to the draining state: its capacity leaves
    /// the committed ledger but its data stays mapped and readable.
    /// Returns the number of valid LBAs it holds, or `None` if absent or
    /// already draining.
    pub fn set_draining(&mut self, id: MdiskId) -> Option<u32> {
        let m = self.mdisks.get_mut(id)?;
        if m.draining {
            return None;
        }
        m.draining = true;
        let (level, len, valid) = (m.level, m.map.len() as u64, m.valid_lbas());
        self.committed[level.index() as usize] -= len;
        self.draining_total += len;
        Some(valid)
    }

    /// Whether `id` is a known (active or draining) minidisk.
    pub fn contains(&self, id: MdiskId) -> bool {
        self.mdisks.get(id).is_some()
    }

    /// Size (LBAs) of minidisk `id`, if active.
    pub fn mdisk_lbas(&self, id: MdiskId) -> Option<u32> {
        self.mdisks.get(id).map(|m| m.map.len() as u32)
    }

    /// Valid (mapped) LBAs of minidisk `id`, if active.
    pub fn mdisk_valid_lbas(&self, id: MdiskId) -> Option<u32> {
        self.mdisks.get(id).map(|m| m.valid_lbas())
    }

    /// Total committed logical capacity across active minidisks, in LBAs.
    pub fn committed_lbas(&self) -> u64 {
        self.committed.iter().sum()
    }

    /// LBAs pinned by draining minidisks.
    pub fn draining_lbas(&self) -> u64 {
        self.draining_total
    }

    /// Committed LBAs backed by the `level` pool.
    pub fn committed_at(&self, level: Tiredness) -> u64 {
        self.committed[level.index() as usize]
    }

    /// The active `level`-backed minidisk with the fewest valid LBAs
    /// (decommission victim under
    /// [`crate::types::VictimPolicy::LeastValid`]).
    pub fn least_valid_mdisk_at(&self, level: Tiredness) -> Option<MdiskId> {
        self.mdisks
            .iter()
            .filter(|(_, m)| m.level == level && !m.draining)
            .min_by_key(|(id, m)| (m.valid_lbas(), id.0))
            .map(|(id, _)| id)
    }

    /// The highest-id active minidisk backed by `level`.
    pub fn highest_mdisk_at(&self, level: Tiredness) -> Option<MdiskId> {
        self.mdisks
            .iter()
            .rfind(|(_, m)| m.level == level && !m.draining)
            .map(|(id, _)| id)
    }

    /// Forward-map entry for `(id, lba)`, or `None` if the minidisk does
    /// not exist or the LBA is out of range.
    pub fn lookup(&self, id: MdiskId, lba: Lba) -> Option<MapEntry> {
        self.mdisks
            .get(id)
            .and_then(|m| m.map.get(lba.0 as usize))
            .copied()
    }

    /// Set `(id, lba)` to `Buffered`, invalidating any previous flash slot.
    ///
    /// Returns `false` if the target does not exist.
    pub fn set_buffered(&mut self, id: MdiskId, lba: Lba) -> bool {
        let Some(m) = self.mdisks.get_mut(id) else {
            return false;
        };
        let Some(entry) = m.map.get_mut(lba.0 as usize) else {
            return false;
        };
        let old = std::mem::replace(entry, MapEntry::Buffered);
        match old {
            MapEntry::Unmapped => m.valid += 1,
            MapEntry::Buffered => {}
            MapEntry::Flash(slot) => self.clear_slot(slot),
        }
        true
    }

    /// Bind `(id, lba)` to a flash slot (called at buffer flush). Any
    /// previous flash slot is invalidated.
    ///
    /// Returns `false` if the target no longer exists (e.g. the minidisk
    /// was decommissioned while the write sat in the buffer).
    pub fn set_flash(&mut self, id: MdiskId, lba: Lba, slot: OPageSlot) -> bool {
        let Some(m) = self.mdisks.get_mut(id) else {
            return false;
        };
        let Some(entry) = m.map.get_mut(lba.0 as usize) else {
            return false;
        };
        let old = std::mem::replace(entry, MapEntry::Flash(slot));
        match old {
            MapEntry::Unmapped => m.valid += 1,
            MapEntry::Buffered => {}
            MapEntry::Flash(old_slot) => self.clear_slot(old_slot),
        }
        let idx = self.ridx(slot);
        self.rmap[idx] = Some((id, lba));
        self.block_valid[self.geom.block_of(slot.fpage).index as usize] += 1;
        true
    }

    /// Unmap `(id, lba)` (trim). Returns the freed flash slot, if any.
    pub fn unmap(&mut self, id: MdiskId, lba: Lba) -> Option<OPageSlot> {
        let m = self.mdisks.get_mut(id)?;
        let entry = m.map.get_mut(lba.0 as usize)?;
        let old = std::mem::replace(entry, MapEntry::Unmapped);
        if !matches!(old, MapEntry::Unmapped) {
            m.valid -= 1;
        }
        match old {
            MapEntry::Flash(slot) => {
                self.clear_slot(slot);
                Some(slot)
            }
            _ => None,
        }
    }

    /// Remove a minidisk entirely, invalidating all of its slots.
    ///
    /// Returns the number of LBAs that were valid, or `None` if the
    /// minidisk does not exist.
    pub fn remove_mdisk(&mut self, id: MdiskId) -> Option<u32> {
        let m = self.mdisks.remove(id)?;
        if m.draining {
            self.draining_total -= m.map.len() as u64;
        } else {
            self.committed[m.level.index() as usize] -= m.map.len() as u64;
        }
        for entry in &m.map {
            if let MapEntry::Flash(slot) = entry {
                self.clear_slot(*slot);
            }
        }
        Some(m.valid_lbas())
    }

    /// The owner of a flash slot, if it holds valid data.
    pub fn owner(&self, slot: OPageSlot) -> Option<(MdiskId, Lba)> {
        self.rmap[self.ridx(slot)]
    }

    /// Valid oPages stored in `block`.
    pub fn block_valid(&self, block: BlockAddr) -> u32 {
        self.block_valid[block.index as usize]
    }

    /// All valid `(slot, owner)` pairs within `block`, in address order.
    pub fn valid_in_block(&self, block: BlockAddr) -> Vec<(OPageSlot, (MdiskId, Lba))> {
        let mut out = Vec::new();
        self.valid_in_block_into(block, &mut out);
        out
    }

    /// Fill `out` with the valid `(slot, owner)` pairs of `block` in
    /// address order, reusing its capacity — the GC-path variant of
    /// [`Self::valid_in_block`] (no allocation once the caller's
    /// scratch buffer has grown to one block's worth of slots).
    pub fn valid_in_block_into(
        &self,
        block: BlockAddr,
        out: &mut Vec<(OPageSlot, (MdiskId, Lba))>,
    ) {
        out.clear();
        // A block's fPages are contiguous, so its reverse-map slots are
        // one contiguous row range.
        let first_fp = block.index * self.geom.fpages_per_block;
        let base = (first_fp * self.slots_per_fpage) as usize;
        let len = (self.geom.fpages_per_block * self.slots_per_fpage) as usize;
        for (i, owner) in self.rmap[base..base + len].iter().enumerate() {
            if let Some(o) = owner {
                out.push((
                    OPageSlot {
                        fpage: salamander_flash::geometry::FPageAddr {
                            index: first_fp + (i as u32 / self.slots_per_fpage),
                        },
                        slot: (i as u32 % self.slots_per_fpage) as u8,
                    },
                    *o,
                ));
            }
        }
    }

    /// Valid `(slot, owner)` pairs within a single fPage, in slot
    /// order. Allocation-free; used by scrub, which refreshes one
    /// fPage at a time.
    pub fn owners_in_fpage(
        &self,
        fp: salamander_flash::geometry::FPageAddr,
    ) -> impl Iterator<Item = (OPageSlot, (MdiskId, Lba))> + '_ {
        let base = (fp.index * self.slots_per_fpage) as usize;
        self.rmap[base..base + self.slots_per_fpage as usize]
            .iter()
            .enumerate()
            .filter_map(move |(s, owner)| {
                owner.map(|o| {
                    (
                        OPageSlot {
                            fpage: fp,
                            slot: s as u8,
                        },
                        o,
                    )
                })
            })
    }

    /// Total valid oPages on flash across the device.
    pub fn total_valid(&self) -> u64 {
        self.block_valid.iter().map(|&v| v as u64).sum()
    }

    fn clear_slot(&mut self, slot: OPageSlot) {
        let idx = self.ridx(slot);
        if self.rmap[idx].take().is_some() {
            let b = self.geom.block_of(slot.fpage).index as usize;
            debug_assert!(self.block_valid[b] > 0, "valid-count underflow");
            self.block_valid[b] -= 1;
        }
    }

    /// Debug invariant check: forward and reverse maps agree, per-block
    /// counts match the reverse map, and cached per-minidisk valid
    /// counts match a recount. O(device); test-only.
    pub fn check_invariants(&self) -> Result<(), String> {
        // Every Flash forward entry has a matching reverse entry, and
        // the cached valid count matches the map contents.
        for (id, m) in self.mdisks.iter() {
            let mut recount = 0u32;
            for (lba_idx, entry) in m.map.iter().enumerate() {
                if !matches!(entry, MapEntry::Unmapped) {
                    recount += 1;
                }
                if let MapEntry::Flash(slot) = entry {
                    let back = self.rmap[self.ridx(*slot)];
                    if back != Some((id, Lba(lba_idx as u32))) {
                        return Err(format!(
                            "forward {:?}/{} -> {:?} but reverse says {:?}",
                            id, lba_idx, slot, back
                        ));
                    }
                }
            }
            if recount != m.valid_lbas() {
                return Err(format!(
                    "{:?} cached valid {} but map holds {}",
                    id,
                    m.valid_lbas(),
                    recount
                ));
            }
        }
        // Every reverse entry has a matching forward entry.
        let mut per_block = vec![0u32; self.block_valid.len()];
        for (idx, owner) in self.rmap.iter().enumerate() {
            if let Some((id, lba)) = owner {
                let fp_idx = idx / self.slots_per_fpage as usize;
                let s = idx % self.slots_per_fpage as usize;
                per_block[fp_idx / self.geom.fpages_per_block as usize] += 1;
                match self.lookup(*id, *lba) {
                    Some(MapEntry::Flash(slot))
                        if slot.fpage.index == fp_idx as u32 && slot.slot == s as u8 => {}
                    other => {
                        return Err(format!(
                            "reverse fp{fp_idx}/{s} -> {:?}/{:?} but forward is {:?}",
                            id, lba, other
                        ));
                    }
                }
            }
        }
        if per_block != self.block_valid {
            return Err("block_valid counts out of sync".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use salamander_flash::geometry::FPageAddr;

    fn table() -> MdiskTable {
        MdiskTable::new(FlashGeometry::small_test(), 64)
    }

    fn slot(fp: u32, s: u8) -> OPageSlot {
        OPageSlot {
            fpage: FPageAddr { index: fp },
            slot: s,
        }
    }

    #[test]
    fn create_and_lookup() {
        let mut t = table();
        let id = t.create_mdisk(64, Tiredness::L0);
        assert!(t.contains(id));
        assert_eq!(t.mdisk_lbas(id), Some(64));
        assert_eq!(t.lookup(id, Lba(0)), Some(MapEntry::Unmapped));
        assert_eq!(t.lookup(id, Lba(64)), None);
        assert_eq!(t.lookup(MdiskId(99), Lba(0)), None);
    }

    #[test]
    fn ids_never_reused() {
        let mut t = table();
        let a = t.create_mdisk(64, Tiredness::L0);
        t.remove_mdisk(a).unwrap();
        let b = t.create_mdisk(64, Tiredness::L0);
        assert_ne!(a, b);
    }

    #[test]
    fn buffered_then_flash_transition() {
        let mut t = table();
        let id = t.create_mdisk(64, Tiredness::L0);
        assert!(t.set_buffered(id, Lba(5)));
        assert_eq!(t.lookup(id, Lba(5)), Some(MapEntry::Buffered));
        let s = slot(10, 2);
        assert!(t.set_flash(id, Lba(5), s));
        assert_eq!(t.lookup(id, Lba(5)), Some(MapEntry::Flash(s)));
        assert_eq!(t.owner(s), Some((id, Lba(5))));
        assert_eq!(t.block_valid(BlockAddr { index: 0 }), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn overwrite_invalidates_old_slot() {
        let mut t = table();
        let id = t.create_mdisk(64, Tiredness::L0);
        let s1 = slot(3, 0);
        let s2 = slot(100, 1); // a different block
        t.set_buffered(id, Lba(7));
        t.set_flash(id, Lba(7), s1);
        // Rewrite: buffer then a new flash location.
        t.set_buffered(id, Lba(7));
        assert_eq!(t.owner(s1), None, "old slot invalidated on re-buffer");
        t.set_flash(id, Lba(7), s2);
        assert_eq!(t.owner(s2), Some((id, Lba(7))));
        assert_eq!(t.block_valid(BlockAddr { index: 0 }), 0);
        assert_eq!(t.block_valid(BlockAddr { index: 100 / 16 }), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn unmap_frees_slot() {
        let mut t = table();
        let id = t.create_mdisk(64, Tiredness::L0);
        t.set_buffered(id, Lba(1));
        t.set_flash(id, Lba(1), slot(0, 0));
        assert_eq!(t.unmap(id, Lba(1)), Some(slot(0, 0)));
        assert_eq!(t.lookup(id, Lba(1)), Some(MapEntry::Unmapped));
        assert_eq!(t.total_valid(), 0);
        assert_eq!(t.mdisk_valid_lbas(id), Some(0));
        // Unmapping again is a no-op.
        assert_eq!(t.unmap(id, Lba(1)), None);
        t.check_invariants().unwrap();
    }

    #[test]
    fn remove_mdisk_counts_valid_and_clears() {
        let mut t = table();
        let id = t.create_mdisk(64, Tiredness::L0);
        t.set_buffered(id, Lba(0));
        t.set_flash(id, Lba(0), slot(0, 0));
        t.set_buffered(id, Lba(1));
        t.set_flash(id, Lba(1), slot(0, 1));
        t.set_buffered(id, Lba(2)); // still in buffer
        assert_eq!(t.remove_mdisk(id), Some(3));
        assert!(!t.contains(id));
        assert_eq!(t.total_valid(), 0);
        assert_eq!(t.remove_mdisk(id), None);
        t.check_invariants().unwrap();
    }

    #[test]
    fn committed_capacity_tracks_mdisks() {
        let mut t = table();
        let a = t.create_mdisk(64, Tiredness::L0);
        let _b = t.create_mdisk(32, Tiredness::L1);
        assert_eq!(t.committed_lbas(), 96);
        t.remove_mdisk(a);
        assert_eq!(t.committed_lbas(), 32);
    }

    #[test]
    fn valid_in_block_enumerates() {
        let mut t = table();
        let id = t.create_mdisk(64, Tiredness::L0);
        for (i, s) in [(0u32, 0u8), (0, 3), (5, 1)].iter().enumerate() {
            t.set_buffered(id, Lba(i as u32));
            t.set_flash(id, Lba(i as u32), slot(s.0, s.1));
        }
        let v = t.valid_in_block(BlockAddr { index: 0 });
        assert_eq!(v.len(), 3);
        assert_eq!(v[0].0, slot(0, 0));
        assert_eq!(v[1].0, slot(0, 3));
        assert_eq!(v[2].0, slot(5, 1));
        assert_eq!(v[2].1, (id, Lba(2)));
        // The reused-scratch variant returns the same pairs without
        // growing a warm buffer.
        let mut scratch = Vec::with_capacity(v.len());
        t.valid_in_block_into(BlockAddr { index: 0 }, &mut scratch);
        assert_eq!(scratch, v);
        let cap = scratch.capacity();
        t.valid_in_block_into(BlockAddr { index: 0 }, &mut scratch);
        assert_eq!(scratch.capacity(), cap);
    }

    #[test]
    fn owners_in_fpage_matches_block_enumeration() {
        let mut t = table();
        let id = t.create_mdisk(64, Tiredness::L0);
        for (i, s) in [(0u32, 0u8), (0, 3), (5, 1)].iter().enumerate() {
            t.set_buffered(id, Lba(i as u32));
            t.set_flash(id, Lba(i as u32), slot(s.0, s.1));
        }
        let fp0: Vec<_> = t.owners_in_fpage(FPageAddr { index: 0 }).collect();
        assert_eq!(fp0.len(), 2);
        assert_eq!(fp0[0].0, slot(0, 0));
        assert_eq!(fp0[1].0, slot(0, 3));
        assert_eq!(t.owners_in_fpage(FPageAddr { index: 1 }).count(), 0);
    }

    #[test]
    fn active_mdisks_into_reuses_capacity() {
        let mut t = table();
        let a = t.create_mdisk(64, Tiredness::L0);
        let b = t.create_mdisk(64, Tiredness::L0);
        let mut ids = Vec::new();
        t.active_mdisks_into(&mut ids);
        assert_eq!(ids, vec![a, b]);
        t.set_draining(a);
        let cap = ids.capacity();
        t.active_mdisks_into(&mut ids);
        assert_eq!(ids, vec![b]);
        assert_eq!(ids.capacity(), cap);
    }

    #[test]
    fn invariant_checker_catches_corruption() {
        let mut t = table();
        let id = t.create_mdisk(64, Tiredness::L0);
        t.set_buffered(id, Lba(0));
        t.set_flash(id, Lba(0), slot(0, 0));
        // Corrupt the reverse map directly.
        t.rmap[0] = Some((id, Lba(9)));
        assert!(t.check_invariants().is_err());
    }
}
