//! Serde helpers for maps whose keys do not serialize as JSON strings.
//!
//! JSON only allows string object keys, so maps keyed by tuples or
//! newtype ids serialize as sequences of `(key, value)` pairs instead.
//! Use as `#[serde(with = "crate::serde_util::pairs")]`.

/// Map-as-pairs (de)serialization.
pub mod pairs {
    use serde::de::{Deserialize, Deserializer};
    use serde::ser::{Serialize, Serializer};

    /// Serialize any iterable map as a sequence of pairs.
    pub fn serialize<'a, M, K, V, S>(map: M, serializer: S) -> Result<S::Ok, S::Error>
    where
        M: IntoIterator<Item = (&'a K, &'a V)>,
        K: Serialize + 'a,
        V: Serialize + 'a,
        S: Serializer,
    {
        serializer.collect_seq(map)
    }

    /// Deserialize a sequence of pairs into any `FromIterator` map.
    pub fn deserialize<'de, M, K, V, D>(deserializer: D) -> Result<M, D::Error>
    where
        M: FromIterator<(K, V)>,
        K: Deserialize<'de>,
        V: Deserialize<'de>,
        D: Deserializer<'de>,
    {
        let pairs = Vec::<(K, V)>::deserialize(deserializer)?;
        Ok(pairs.into_iter().collect())
    }
}

/// Ephemeral-field (de)serialization: scratch buffers and derived
/// caches are not device state, so snapshots store `null` and restores
/// produce the type's default (callers rebuild derived values after
/// restore). Use as `#[serde(with = "crate::serde_util::ephemeral")]`.
pub mod ephemeral {
    use serde::de::Deserializer;
    use serde::ser::Serializer;

    /// Serialize any value as `null`.
    pub fn serialize<T, S: Serializer>(_value: &T, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(serde::Value::Null)
    }

    /// Restore the default value.
    pub fn deserialize<'de, T: Default, D: Deserializer<'de>>(
        deserializer: D,
    ) -> Result<T, D::Error> {
        let _ = deserializer.take_value()?;
        Ok(T::default())
    }
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};
    use std::collections::{BTreeMap, HashMap};

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Wrapper {
        #[serde(with = "super::pairs")]
        btree: BTreeMap<(u32, u32), String>,
        #[serde(with = "super::pairs")]
        hash: HashMap<u64, Vec<u8>>,
    }

    #[test]
    fn tuple_keyed_maps_round_trip_through_json() {
        let mut w = Wrapper {
            btree: BTreeMap::new(),
            hash: HashMap::new(),
        };
        w.btree.insert((1, 2), "a".into());
        w.btree.insert((3, 4), "b".into());
        w.hash.insert(9, vec![1, 2, 3]);
        let json = serde_json::to_string(&w).unwrap();
        let back: Wrapper = serde_json::from_str(&json).unwrap();
        assert_eq!(w, back);
    }
}
