//! Flash translation layers for the Salamander reproduction.
//!
//! Three FTL personalities share one engine ([`ftl::Ftl`]), selected by
//! [`types::FtlMode`]:
//!
//! - **Baseline** — a conventional SSD: one monolithic volume, block-
//!   granular retirement, and a hard failure ("brick") once a small
//!   fraction of blocks has gone bad (2.5% by default, per Maneas et al.,
//!   FAST '20, which the paper cites).
//! - **ShrinkS** — Salamander's shrinking mode (§3.3): fPages retire
//!   *individually* as they wear out, and when the remaining physical
//!   capacity can no longer back the logical capacity (Eq. 2), a victim
//!   minidisk is decommissioned and the host notified so the distributed
//!   file system can re-replicate.
//! - **RegenS** — Salamander's regenerating mode (§3.4): worn fPages drop
//!   to lower code rates (tiredness levels L1, L2, …), trading oPages for
//!   parity; when a minidisk's worth of capacity re-accumulates, a new
//!   minidisk is *created* and announced to the host.
//!
//! The engine implements the full FTL stack: an L2P map indexed by
//! `(minidisk, LBA)` ([`map`]), a non-volatile write buffer that fills
//! whole fPage stripes ([`buffer`]), wear tracking with per-page tiredness
//! classification ([`wear`]), wear-leveled block allocation ([`alloc`]),
//! greedy garbage collection, and host event notification ([`types`]).
//!
//! # Examples
//!
//! ```
//! use salamander_ftl::{ftl::Ftl, types::{FtlConfig, FtlMode, Lba}};
//!
//! let cfg = FtlConfig::small_test(FtlMode::Shrink);
//! let mut ftl = Ftl::new(cfg);
//! let mdisks = ftl.active_mdisks();
//! assert!(!mdisks.is_empty());
//! ftl.write(mdisks[0], Lba(0), None).unwrap();
//! ```

pub mod alloc;
pub mod buffer;
pub mod ftl;
pub mod map;
pub mod serde_util;
pub mod smart;
pub mod stats;
pub mod types;
pub mod wear;

pub use ftl::Ftl;
pub use types::{FtlConfig, FtlError, FtlEvent, FtlMode, Lba, MdiskId};
