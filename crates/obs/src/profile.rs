//! Scoped wall-clock phase timers.
//!
//! **Non-deterministic by nature** — these measure the host machine,
//! not the simulation. They are therefore excluded from traces and
//! metrics (which must stay byte-reproducible); callers print the
//! report to stdout and never into `results/` artifacts. A disabled
//! profiler (the default) costs one branch per phase entry.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Accumulated time for one named phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Times the phase was entered.
    pub calls: u64,
    /// Total wall-clock time inside the phase (nested phases included).
    pub total: Duration,
}

/// The shared phase-stat store behind a live [`Profiler`].
type PhaseStore = Arc<Mutex<BTreeMap<String, PhaseStat>>>;

/// Shared, optionally-disabled collection of phase timers. Cloning
/// shares the underlying store, so one profiler can span threads (the
/// lock is only taken on phase exit).
#[derive(Clone, Default)]
pub struct Profiler(Option<PhaseStore>);

impl Profiler {
    /// A profiler that measures nothing (the default).
    pub fn disabled() -> Self {
        Profiler(None)
    }

    /// A live profiler.
    pub fn enabled() -> Self {
        Profiler(Some(Arc::new(Mutex::new(BTreeMap::new()))))
    }

    /// Whether phases are being timed.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Enter a phase; the returned guard records elapsed wall-clock
    /// time when dropped. Inert when disabled.
    pub fn phase(&self, name: &str) -> PhaseGuard {
        PhaseGuard(
            self.0
                .as_ref()
                .map(|store| (store.clone(), name.to_string(), Instant::now())),
        )
    }

    /// Deposit externally-measured time into a phase. Hot loops that
    /// cannot afford a [`Self::phase`] guard per entry accumulate
    /// `(calls, total)` locally and fold them in once (e.g. per worker
    /// shard). A disabled profiler or a zero-call deposit is a no-op.
    pub fn record(&self, name: &str, calls: u64, total: Duration) {
        if calls == 0 {
            return;
        }
        if let Some(store) = &self.0 {
            let mut store = store.lock().expect("profiler lock");
            let stat = store.entry(name.to_string()).or_default();
            stat.calls += calls;
            stat.total += total;
        }
    }

    /// Phase totals sorted by name: `(name, calls, total)`.
    pub fn stats(&self) -> Vec<(String, PhaseStat)> {
        match &self.0 {
            Some(store) => store
                .lock()
                .expect("profiler lock")
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            None => Vec::new(),
        }
    }
}

impl fmt::Debug for Profiler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Profiler")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// RAII guard for one phase entry (see [`Profiler::phase`]).
#[must_use = "the phase is timed until this guard drops"]
pub struct PhaseGuard(Option<(PhaseStore, String, Instant)>);

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let Some((store, name, start)) = self.0.take() {
            let elapsed = start.elapsed();
            let mut store = store.lock().expect("profiler lock");
            let stat = store.entry(name).or_default();
            stat.calls += 1;
            stat.total += elapsed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let p = Profiler::disabled();
        drop(p.phase("x"));
        assert!(p.stats().is_empty());
    }

    #[test]
    fn phases_accumulate_calls_and_time() {
        let p = Profiler::enabled();
        for _ in 0..3 {
            let _g = p.phase("work");
        }
        let stats = p.stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].0, "work");
        assert_eq!(stats[0].1.calls, 3);
    }

    #[test]
    fn record_deposits_accumulated_time() {
        let p = Profiler::enabled();
        p.record("bulk", 0, Duration::from_secs(1)); // zero calls: no-op
        assert!(p.stats().is_empty());
        p.record("bulk", 5, Duration::from_millis(10));
        p.record("bulk", 2, Duration::from_millis(1));
        let stats = p.stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].1.calls, 7);
        assert!(stats[0].1.total >= Duration::from_millis(11));
        // Inert when disabled.
        Profiler::disabled().record("bulk", 5, Duration::from_millis(10));
    }

    #[test]
    fn clones_share_the_store() {
        let p = Profiler::enabled();
        let q = p.clone();
        drop(q.phase("shared"));
        assert_eq!(p.stats()[0].1.calls, 1);
    }
}
