//! Live-observer plumbing: the broadcast ring, progress counters, and
//! the [`LiveObs`] bundle a telemetry server reads from (DESIGN.md
//! §12).
//!
//! Everything here is a *mirror* of deterministic state, never the
//! state itself. Trace records are pushed into a bounded [`Broadcast`]
//! ring *after* the primary tracer has consumed them; metrics tee into
//! a live registry the primary shards never read back; progress is a
//! handful of atomics the simulation bumps and only the server reads.
//! Dropping every structure in this module on the floor changes no
//! simulation output — that is the determinism argument for `--serve`,
//! and the serve-determinism suite enforces it byte-for-byte.
//!
//! Wall-clock appears exactly once (ops-per-second in
//! [`ProgressHandle::render_json`]) and, like [`crate::profile`], is
//! served live only — it never reaches traces, metrics, or `results/`.

use crate::event::TraceRecord;
use crate::metrics::MetricsRegistry;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Default broadcast ring capacity: enough tail for a human watching
/// `/trace/stream`, bounded so a multi-year run can't grow it.
pub const DEFAULT_BROADCAST_CAP: usize = 65_536;

struct BroadcastState {
    /// Cursor of the *next* record to be pushed. Record `i` (0-based
    /// since attach) has cursor `i`.
    next: u64,
    /// Most recent records, each with its cursor.
    buf: VecDeque<(u64, TraceRecord)>,
    cap: usize,
    closed: bool,
}

/// Bounded multi-reader broadcast ring for live trace mirroring.
///
/// Writers [`Broadcast::push`] records as the simulation emits them;
/// readers poll with a cursor and block (bounded) on a condvar until
/// something newer arrives. Readers that fall more than `cap` records
/// behind silently skip ahead — the cursor gap tells them how much
/// they missed. Under `par_map` the push interleave across tasks is
/// scheduling-dependent; that is fine because this ring is only ever a
/// live view, never an output.
#[derive(Clone)]
pub struct Broadcast {
    inner: Arc<(Mutex<BroadcastState>, Condvar)>,
}

impl Broadcast {
    /// A ring keeping the most recent `cap` records.
    pub fn new(cap: usize) -> Self {
        Broadcast {
            inner: Arc::new((
                Mutex::new(BroadcastState {
                    next: 0,
                    buf: VecDeque::new(),
                    cap: cap.max(1),
                    closed: false,
                }),
                Condvar::new(),
            )),
        }
    }

    /// Append one record and wake pollers.
    pub fn push(&self, rec: &TraceRecord) {
        let (lock, cond) = &*self.inner;
        let mut st = lock.lock().expect("broadcast lock");
        if st.buf.len() == st.cap {
            st.buf.pop_front();
        }
        let cursor = st.next;
        st.next += 1;
        st.buf.push_back((cursor, rec.clone()));
        drop(st);
        cond.notify_all();
    }

    /// The most recent `n` records, oldest first.
    pub fn tail(&self, n: usize) -> Vec<TraceRecord> {
        let (lock, _) = &*self.inner;
        let st = lock.lock().expect("broadcast lock");
        let skip = st.buf.len().saturating_sub(n);
        st.buf.iter().skip(skip).map(|(_, r)| r.clone()).collect()
    }

    /// Cursor one past the newest record (a fresh reader's starting
    /// point for [`Broadcast::poll_after`]).
    pub fn cursor(&self) -> u64 {
        let (lock, _) = &*self.inner;
        lock.lock().expect("broadcast lock").next
    }

    /// Records with cursor ≥ `after`, blocking up to `timeout` for new
    /// ones when there are none yet. Returns `(records, next_cursor,
    /// closed)`; `next_cursor` is what the reader should pass next
    /// time. A reader that fell out of the ring resumes at the oldest
    /// retained record.
    pub fn poll_after(
        &self,
        after: u64,
        timeout: Duration,
    ) -> (Vec<(u64, TraceRecord)>, u64, bool) {
        let (lock, cond) = &*self.inner;
        let mut st = lock.lock().expect("broadcast lock");
        let deadline = Instant::now() + timeout;
        loop {
            if st.next > after || st.closed {
                let out: Vec<(u64, TraceRecord)> = st
                    .buf
                    .iter()
                    .filter(|(c, _)| *c >= after)
                    .cloned()
                    .collect();
                let next = st.next.max(after);
                return (out, next, st.closed);
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return (Vec::new(), after, st.closed);
            }
            let (guard, timed_out) = cond.wait_timeout(st, left).expect("broadcast lock");
            st = guard;
            if timed_out.timed_out() && st.next <= after && !st.closed {
                return (Vec::new(), after, st.closed);
            }
        }
    }

    /// Mark the stream finished and wake every poller. Pushing after
    /// close is allowed (late stragglers) but readers already saw
    /// `closed`.
    pub fn close(&self) {
        let (lock, cond) = &*self.inner;
        lock.lock().expect("broadcast lock").closed = true;
        cond.notify_all();
    }

    /// Whether [`Broadcast::close`] was called.
    pub fn is_closed(&self) -> bool {
        let (lock, _) = &*self.inner;
        lock.lock().expect("broadcast lock").closed
    }
}

impl fmt::Debug for Broadcast {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (lock, _) = &*self.inner;
        let st = lock.lock().expect("broadcast lock");
        f.debug_struct("Broadcast")
            .field("next", &st.next)
            .field("buffered", &st.buf.len())
            .field("closed", &st.closed)
            .finish()
    }
}

#[derive(Debug)]
struct ProgressInner {
    /// Highest simulated day reached by any task (`fetch_max`).
    day: AtomicU64,
    /// Day count the run expects to cover, if known.
    total_days: AtomicU64,
    /// Host operations processed so far.
    ops: AtomicU64,
    /// Devices the run simulates, if known.
    devices: AtomicU64,
    /// Devices finished so far (fleet runs).
    devices_done: AtomicU64,
    /// Per-mode day watermarks: label → (day, total_days). Only
    /// touched by mode-scoped handles (see [`ProgressHandle::for_mode`]),
    /// so the fast path stays atomic-only.
    modes: Mutex<BTreeMap<String, (u64, u64)>>,
    /// When the run attached — only for the served ops-per-second.
    started: Instant,
}

/// Optionally-disabled progress counters, mirroring the other obs
/// handles: `Default` is disabled and every bump is one branch.
///
/// Counters are monotone and commutative (`fetch_max` for day, adds
/// for the rest), so any number of `par_map` tasks can bump one shared
/// handle without coordination and without affecting determinism — the
/// values are served live and never written to run output.
///
/// Fan-out runs (one mode per task) additionally scope a clone with
/// [`ProgressHandle::for_mode`]: day bumps through that clone also
/// maintain a per-mode `label → (day, total_days)` watermark served as
/// the `"modes"` object in `/progress`, so a watcher sees how deep into
/// the simulated horizon each mode is, not just the global maximum.
#[derive(Clone, Default, Debug)]
pub struct ProgressHandle {
    inner: Option<Arc<ProgressInner>>,
    /// Mode label this clone reports day progress under, if any.
    mode: Option<Arc<str>>,
}

impl ProgressHandle {
    /// A live handle.
    pub fn enabled() -> Self {
        ProgressHandle {
            inner: Some(Arc::new(ProgressInner {
                day: AtomicU64::new(0),
                total_days: AtomicU64::new(0),
                ops: AtomicU64::new(0),
                devices: AtomicU64::new(0),
                devices_done: AtomicU64::new(0),
                modes: Mutex::new(BTreeMap::new()),
                started: Instant::now(),
            })),
            mode: None,
        }
    }

    /// A dead handle (the default).
    pub fn disabled() -> Self {
        ProgressHandle {
            inner: None,
            mode: None,
        }
    }

    /// Whether anything reads these counters.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A clone that also tracks day progress under `label` (e.g.
    /// `"fleet=ShrinkS"`). Shares every global counter with the
    /// original handle; only the day watermark is additionally
    /// mirrored into the per-mode map.
    pub fn for_mode(&self, label: &str) -> Self {
        ProgressHandle {
            inner: self.inner.clone(),
            mode: if self.inner.is_some() {
                Some(Arc::from(label))
            } else {
                None
            },
        }
    }

    /// Raise the current-day watermark (monotone across tasks).
    pub fn set_day(&self, day: u64) {
        if let Some(p) = &self.inner {
            p.day.fetch_max(day, Ordering::Relaxed);
            if let Some(mode) = &self.mode {
                let mut modes = p.modes.lock().expect("progress modes lock");
                let entry = modes.entry(mode.to_string()).or_insert((0, 0));
                entry.0 = entry.0.max(day);
            }
        }
    }

    /// Declare how many days the run will cover.
    pub fn set_total_days(&self, days: u64) {
        if let Some(p) = &self.inner {
            p.total_days.fetch_max(days, Ordering::Relaxed);
            if let Some(mode) = &self.mode {
                let mut modes = p.modes.lock().expect("progress modes lock");
                let entry = modes.entry(mode.to_string()).or_insert((0, 0));
                entry.1 = entry.1.max(days);
            }
        }
    }

    /// Count host operations processed.
    pub fn add_ops(&self, n: u64) {
        if let Some(p) = &self.inner {
            p.ops.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Declare how many devices the run simulates.
    pub fn add_devices(&self, n: u64) {
        if let Some(p) = &self.inner {
            p.devices.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Count devices that finished simulating.
    pub fn device_done(&self) {
        if let Some(p) = &self.inner {
            p.devices_done.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current `(day, total_days, ops, devices, devices_done)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64) {
        match &self.inner {
            Some(p) => (
                p.day.load(Ordering::Relaxed),
                p.total_days.load(Ordering::Relaxed),
                p.ops.load(Ordering::Relaxed),
                p.devices.load(Ordering::Relaxed),
                p.devices_done.load(Ordering::Relaxed),
            ),
            None => (0, 0, 0, 0, 0),
        }
    }

    /// Per-mode `(label, day, total_days)` watermarks, sorted by label.
    pub fn mode_snapshot(&self) -> Vec<(String, u64, u64)> {
        match &self.inner {
            Some(p) => p
                .modes
                .lock()
                .expect("progress modes lock")
                .iter()
                .map(|(label, &(day, total))| (label.clone(), day, total))
                .collect(),
            None => Vec::new(),
        }
    }

    /// The `/progress` JSON body. Hand-assembled (the vendored serde
    /// has no map serializer) with a fixed field order; `ops_per_sec`
    /// is wall-clock-derived and intentionally excluded from anything
    /// deterministic.
    pub fn render_json(&self, run: &str, done: bool) -> String {
        let (day, total_days, ops, devices, devices_done) = self.snapshot();
        let ops_per_sec = match &self.inner {
            Some(p) => {
                let secs = p.started.elapsed().as_secs_f64();
                if secs > 0.0 {
                    ops as f64 / secs
                } else {
                    0.0
                }
            }
            None => 0.0,
        };
        let mut modes = String::new();
        for (i, (label, mode_day, mode_total)) in self.mode_snapshot().iter().enumerate() {
            if i > 0 {
                modes.push(',');
            }
            modes.push_str(&format!(
                "{}:{{\"day\":{mode_day},\"total_days\":{mode_total}}}",
                json_string(label)
            ));
        }
        format!(
            concat!(
                "{{\"run\":{run},\"day\":{day},\"total_days\":{total},",
                "\"ops\":{ops},\"devices\":{devices},",
                "\"devices_done\":{done_devices},\"ops_per_sec\":{rate:.1},",
                "\"modes\":{{{modes}}},\"done\":{done}}}"
            ),
            run = json_string(run),
            day = day,
            total = total_days,
            ops = ops,
            devices = devices,
            done_devices = devices_done,
            rate = ops_per_sec,
            modes = modes,
            done = done,
        )
    }
}

/// Minimal JSON string escaping for hand-assembled bodies.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// What a live telemetry server reads: the trace broadcast, a mirror
/// metrics registry, and the progress counters. Simulation code never
/// reads any of it back — see the module docs for the determinism
/// argument.
#[derive(Clone, Debug)]
pub struct LiveObs {
    /// Live mirror of emitted trace records (bounded ring).
    pub trace: Broadcast,
    /// Live mirror of the metrics registries (teed writes plus
    /// end-of-task bulk merges).
    pub metrics: Arc<Mutex<MetricsRegistry>>,
    /// Run progress counters.
    pub progress: ProgressHandle,
}

impl LiveObs {
    /// A live bundle with the default broadcast capacity.
    pub fn new() -> Self {
        Self::with_cap(DEFAULT_BROADCAST_CAP)
    }

    /// A live bundle keeping the most recent `cap` trace records.
    pub fn with_cap(cap: usize) -> Self {
        LiveObs {
            trace: Broadcast::new(cap),
            metrics: Arc::new(Mutex::new(MetricsRegistry::new())),
            progress: ProgressHandle::enabled(),
        }
    }

    /// Fold a finished shard's registry into the live mirror (for
    /// layers that merge shards at end of task rather than teeing
    /// every update).
    pub fn merge_metrics(&self, shard: &MetricsRegistry) {
        self.metrics.lock().expect("live metrics lock").merge(shard);
    }

    /// Render the live metrics mirror as Prometheus text.
    pub fn render_metrics(&self) -> String {
        self.metrics.lock().expect("live metrics lock").render()
    }
}

impl Default for LiveObs {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{SimTime, TraceEvent};

    fn rec(seq: u64) -> TraceRecord {
        TraceRecord {
            seq,
            time: SimTime::new(0, seq),
            event: TraceEvent::GcPass {
                block: seq,
                relocated: 1,
            },
        }
    }

    #[test]
    fn tail_returns_most_recent_in_order() {
        let b = Broadcast::new(4);
        for i in 0..10 {
            b.push(&rec(i));
        }
        let t = b.tail(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].seq, 8);
        assert_eq!(t[1].seq, 9);
        assert_eq!(b.tail(100).len(), 4, "capped at ring size");
    }

    #[test]
    fn poll_after_sees_new_records_and_skips_evicted() {
        let b = Broadcast::new(4);
        for i in 0..3 {
            b.push(&rec(i));
        }
        let (got, next, closed) = b.poll_after(0, Duration::from_millis(0));
        assert_eq!(got.len(), 3);
        assert_eq!(next, 3);
        assert!(!closed);
        // Nothing new: bounded wait times out empty.
        let (got, next2, _) = b.poll_after(next, Duration::from_millis(1));
        assert!(got.is_empty());
        assert_eq!(next2, next);
        // Overflow past the reader: it resumes at the oldest retained.
        for i in 3..20 {
            b.push(&rec(i));
        }
        let (got, next3, _) = b.poll_after(next, Duration::from_millis(0));
        assert_eq!(got.len(), 4);
        assert_eq!(got[0].0, 16, "reader skipped to oldest retained");
        assert_eq!(next3, 20);
    }

    #[test]
    fn close_wakes_pollers() {
        let b = Broadcast::new(4);
        let b2 = b.clone();
        let waiter = std::thread::spawn(move || b2.poll_after(0, Duration::from_secs(10)));
        b.close();
        let (got, _, closed) = waiter.join().unwrap();
        assert!(got.is_empty());
        assert!(closed);
    }

    #[test]
    fn disabled_progress_is_inert() {
        let p = ProgressHandle::disabled();
        p.set_day(5);
        p.add_ops(100);
        assert_eq!(p.snapshot(), (0, 0, 0, 0, 0));
    }

    #[test]
    fn progress_counters_accumulate() {
        let p = ProgressHandle::enabled();
        p.set_total_days(100);
        p.set_day(3);
        p.set_day(2); // watermark: lower value ignored
        p.add_ops(10);
        p.add_ops(5);
        p.add_devices(4);
        p.device_done();
        assert_eq!(p.snapshot(), (3, 100, 15, 4, 1));
        let json = p.render_json("lifetime", false);
        assert!(json.contains("\"run\":\"lifetime\""), "{json}");
        assert!(json.contains("\"day\":3"), "{json}");
        assert!(json.contains("\"modes\":{}"), "{json}");
        assert!(json.contains("\"done\":false"), "{json}");
    }

    #[test]
    fn mode_scoped_handles_track_per_mode_days() {
        let p = ProgressHandle::enabled();
        let shrink = p.for_mode("fleet=ShrinkS");
        let base = p.for_mode("fleet=Baseline");
        shrink.set_total_days(200);
        shrink.set_day(40);
        shrink.set_day(10); // watermark: lower value ignored
        base.set_total_days(200);
        base.set_day(75);
        // Mode bumps flow into the shared global watermark too.
        assert_eq!(p.snapshot().0, 75);
        assert_eq!(
            p.mode_snapshot(),
            vec![
                ("fleet=Baseline".to_string(), 75, 200),
                ("fleet=ShrinkS".to_string(), 40, 200),
            ]
        );
        let json = p.render_json("fig3a", false);
        assert!(
            json.contains("\"fleet=ShrinkS\":{\"day\":40,\"total_days\":200}"),
            "{json}"
        );
        assert!(
            json.contains("\"fleet=Baseline\":{\"day\":75,\"total_days\":200}"),
            "{json}"
        );
        // Disabled handles stay inert through for_mode.
        let dead = ProgressHandle::disabled().for_mode("fleet=X");
        dead.set_day(9);
        assert!(dead.mode_snapshot().is_empty());
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn live_obs_merges_metric_shards() {
        let live = LiveObs::with_cap(8);
        let mut shard = MetricsRegistry::new();
        shard.inc("x_total", 2);
        live.merge_metrics(&shard);
        live.merge_metrics(&shard);
        let text = live.render_metrics();
        assert!(text.contains("x_total 4"), "{text}");
    }
}
