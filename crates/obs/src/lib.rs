//! `salamander-obs` — deterministic observability for the Salamander
//! stack (DESIGN.md §9).
//!
//! Three pillars, each individually optional and free when disabled:
//!
//! - [`trace`]: typed lifecycle events ([`TraceEvent`]) stamped with
//!   *simulation* time ([`SimTime`]) — never wall-clock — so serial and
//!   parallel runs of the same seed emit bit-identical traces.
//! - [`metrics`]: counters, gauges, and fixed-bucket histograms with
//!   Prometheus-style text exposition; per-task shards merge
//!   deterministically under `salamander_exec::par_map`.
//! - [`profile`]: scoped wall-clock phase timers, explicitly
//!   non-deterministic and excluded from traces/metrics output.
//!
//! Simulation layers hold one [`Obs`] bundle and emit through it; the
//! default bundle is fully disabled and costs a branch per site. This
//! crate sits at the bottom of the workspace dependency graph (vendored
//! serde only) so every layer — ftl, core, fleet, difs, bench — can
//! emit without cycles.

pub mod cluster;
pub mod event;
pub mod latency;
pub mod live;
pub mod metrics;
pub mod profile;
pub mod rollup;
pub mod strc;
pub mod trace;

pub use cluster::{
    ClusterKernel, ClusterRollup, CLUSTER_SCALARS, EXPOSURE_BUCKETS, EXPOSURE_STATS,
    FULLNESS_BUCKETS,
};
pub use event::{DeathCause, DecommissionCause, SimTime, TraceEvent, TraceRecord};
pub use latency::{
    ClassLatency, CostModelNs, LatClass, LatencyAcc, LatencyKernel, LatencyRollup, LAT_BUCKETS,
    LAT_CLASSES, LAT_STATS,
};
pub use live::{Broadcast, LiveObs, ProgressHandle};
pub use metrics::{Histogram, MetricsHandle, MetricsRegistry};
pub use profile::{PhaseGuard, PhaseStat, Profiler};
pub use rollup::{FleetRollup, RollupKernel, DIST_BUCKETS, DIST_NAMES, PERCENTILES};
pub use strc::{ChunkSummary, EventKind, RotatingStrcWriter, StrcError, StrcReader, StrcWriter};
pub use trace::{JsonlSink, NullTracer, ParseError, RingRecorder, TraceHandle, Tracer};

/// The bundle simulation code threads through its layers: a trace
/// handle, a metrics handle, a profiler, and live progress counters,
/// each independently enabled. `Default` is fully disabled.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    /// Structured event trace (deterministic).
    pub trace: TraceHandle,
    /// Metrics registry (deterministic).
    pub metrics: MetricsHandle,
    /// Wall-clock phase timers (non-deterministic, report-only).
    pub profiler: Profiler,
    /// Run-progress counters for a live server (non-deterministic,
    /// served only — see [`live`]).
    pub progress: ProgressHandle,
}

impl Obs {
    /// Everything off — the zero-overhead default.
    pub fn disabled() -> Self {
        Obs::default()
    }

    /// Unbounded trace recording + live metrics, profiler off. The
    /// usual configuration for observed runs.
    pub fn recording() -> Self {
        Obs {
            trace: TraceHandle::recording(),
            metrics: MetricsHandle::enabled(),
            profiler: Profiler::disabled(),
            progress: ProgressHandle::disabled(),
        }
    }

    /// Attach a [`LiveObs`] mirror: trace events tee into its
    /// broadcast, metric updates into its live registry, and progress
    /// bumps into its counters. Pillars that were disabled stay
    /// output-disabled (tap-only / tee-only), so deterministic output
    /// is unchanged — the mirror only widens what a server can see.
    pub fn with_live(&self, live: &LiveObs) -> Obs {
        let trace = if self.trace.is_enabled() {
            let t = self.trace.clone();
            t.set_tap(live.trace.clone());
            t
        } else {
            TraceHandle::tap_only(live.trace.clone())
        };
        let metrics = if self.metrics.is_enabled() {
            self.metrics.with_tee(live.metrics.clone())
        } else {
            MetricsHandle::tee_only(live.metrics.clone())
        };
        Obs {
            trace,
            metrics,
            profiler: self.profiler.clone(),
            progress: live.progress.clone(),
        }
    }

    /// True if any pillar is live.
    pub fn is_enabled(&self) -> bool {
        self.trace.is_enabled() || self.metrics.is_enabled() || self.profiler.is_enabled()
    }
}

/// `#[serde(with = "salamander_obs::obs_serde")]` support: an [`Obs`]
/// field on a serializable struct (the FTL snapshots itself, handles
/// included) writes a placeholder and restores to disabled. Live
/// tracer/registry state is run-scoped and intentionally not part of a
/// snapshot.
pub mod obs_serde {
    use super::Obs;
    use serde::de::Deserializer;
    use serde::ser::Serializer;

    /// Serialize as `null`.
    pub fn serialize<S: Serializer>(_obs: &Obs, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(serde::Value::Null)
    }

    /// Restore a disabled bundle.
    pub fn deserialize<'de, D: Deserializer<'de>>(deserializer: D) -> Result<Obs, D::Error> {
        let _ = deserializer.take_value()?;
        Ok(Obs::disabled())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[test]
    fn default_obs_is_disabled() {
        let obs = Obs::default();
        assert!(!obs.is_enabled());
        obs.trace
            .emit(SimTime::ZERO, TraceEvent::RunMarker { label: "x".into() });
        obs.metrics.inc("c", 1);
        assert!(obs.trace.take().is_empty());
        assert!(obs.metrics.take().is_empty());
    }

    #[derive(Debug, Serialize, Deserialize)]
    struct Holder {
        tag: u32,
        #[serde(with = "crate::obs_serde")]
        obs: Obs,
    }

    #[test]
    fn obs_field_round_trips_as_disabled() {
        let h = Holder {
            tag: 9,
            obs: Obs::recording(),
        };
        h.obs.metrics.inc("will_not_survive", 1);
        let json = serde_json::to_string(&h).unwrap();
        let back: Holder = serde_json::from_str(&json).unwrap();
        assert_eq!(back.tag, 9);
        assert!(!back.obs.is_enabled());
    }
}
