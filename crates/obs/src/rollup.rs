//! Fleet-wide per-day distribution rollups (DESIGN.md §14).
//!
//! At warehouse scale (100k–1M devices) per-device trace events are
//! infeasible, and the fleet timeline keeps only a handful of scalars
//! per sample day. A [`FleetRollup`] is the middle ground: one compact
//! record per sampled day carrying population counts plus fixed-bucket
//! integer histograms of the wear / remaining-life / capacity / health
//! distributions across the whole fleet. Percentiles are extracted
//! exactly from the buckets (reported as bucket upper edges), so the
//! record is byte-identical across engines and thread counts by
//! construction: every bin is a saturating integer counter, shards are
//! merged in shard order, and no f64 accumulation ever crosses a merge
//! boundary.
//!
//! The aggregation side lives in [`RollupKernel`]: each parallel shard
//! folds its devices into one kernel, and `salamander_exec::par_map`
//! returns shards in item order, so the fold
//! `kernels.fold(merge)` is deterministic regardless of how many
//! threads raced to produce them.

use serde::{Deserialize, Serialize};

/// Number of fixed-width histogram buckets per distribution. Bucket
/// `i` covers the half-open fraction range `[i/20, (i+1)/20)` (the
/// last bucket is closed at 1.0 via clamping).
pub const DIST_BUCKETS: usize = 20;

/// The percentiles extracted for tables and series queries.
pub const PERCENTILES: [u32; 5] = [1, 10, 50, 90, 99];

/// Distribution names, in the order they appear in a rollup record.
pub const DIST_NAMES: [&str; 4] = ["wear", "pec", "usable", "health"];

/// A device is "dying" once its committed capacity has shrunk to half
/// of what it shipped with.
pub const DYING_CAPACITY_FRAC: f64 = 0.5;

/// One per-day fleet-wide aggregate: population counts, capacity sum,
/// and four 20-bucket integer distributions. All counters are
/// saturating; distributions hold device counts per fraction bucket.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetRollup {
    /// Simulated day this rollup describes.
    pub day: u32,
    /// Devices still in service at end of day.
    pub alive: u32,
    /// Cumulative wear-out deaths so far.
    pub dead_wear: u32,
    /// Cumulative AFR (random-failure) deaths so far.
    pub dead_afr: u32,
    /// Alive devices whose committed capacity has shrunk to
    /// ≤ [`DYING_CAPACITY_FRAC`] of initial.
    pub dying: u32,
    /// Sum of committed oPages across alive devices.
    pub capacity_opages: u64,
    /// Wear fraction (PEC consumed / PEC budget to first tiredness
    /// boundary): alive-device counts per bucket.
    pub wear: Vec<u32>,
    /// PEC fraction consumed of the full endurance budget (to the last
    /// usable tiredness level).
    pub pec: Vec<u32>,
    /// Usable-capacity fraction (usable oPages / geometry total).
    pub usable: Vec<u32>,
    /// Health score (0–100, bucketed by 5): capacity-weighted
    /// composite, see [`health_score`].
    pub health: Vec<u32>,
}

impl FleetRollup {
    /// Total cumulative deaths.
    pub fn dead(&self) -> u32 {
        self.dead_wear.saturating_add(self.dead_afr)
    }

    /// The named distribution, if `name` is one of [`DIST_NAMES`].
    pub fn dist(&self, name: &str) -> Option<&[u32]> {
        match name {
            "wear" => Some(&self.wear),
            "pec" => Some(&self.pec),
            "usable" => Some(&self.usable),
            "health" => Some(&self.health),
            _ => None,
        }
    }

    /// A scalar series value for `/fleet/series` and `obsctl`:
    /// `alive`, `dead_wear`, `dead_afr`, `dead`, `dying`, `capacity`,
    /// or `<dist>_p<q>` (e.g. `wear_p50`, permille of the bucket upper
    /// edge). `None` for unknown metrics or empty distributions.
    pub fn series_value(&self, metric: &str) -> Option<u64> {
        match metric {
            "alive" => return Some(u64::from(self.alive)),
            "dead_wear" => return Some(u64::from(self.dead_wear)),
            "dead_afr" => return Some(u64::from(self.dead_afr)),
            "dead" => return Some(u64::from(self.dead())),
            "dying" => return Some(u64::from(self.dying)),
            "capacity" => return Some(self.capacity_opages),
            _ => {}
        }
        let (dist, q) = metric.rsplit_once("_p")?;
        let q: u32 = q.parse().ok()?;
        if q == 0 || q > 100 {
            return None;
        }
        percentile_permille(self.dist(dist)?, q).map(u64::from)
    }
}

/// Exact percentile from an integer histogram, reported as the upper
/// edge of the bucket holding the q-th percentile device, in permille
/// (‰ of the fraction range — bucket `i` of 20 reports `(i+1)·50`).
/// Rank follows the nearest-rank definition `max(1, ceil(q·N/100))`.
/// `None` on an empty histogram.
pub fn percentile_permille(bins: &[u32], q: u32) -> Option<u32> {
    let total: u64 = bins.iter().map(|&b| u64::from(b)).sum();
    if total == 0 || bins.is_empty() {
        return None;
    }
    let rank = (u64::from(q) * total).div_ceil(100).max(1);
    let mut cum = 0u64;
    for (i, &b) in bins.iter().enumerate() {
        cum += u64::from(b);
        if cum >= rank {
            return Some(((i + 1) * 1000 / bins.len()) as u32);
        }
    }
    // Unreachable: cum reaches `total >= rank` on the last bucket.
    Some(1000)
}

/// Bucket index for a fraction in `[0, 1]`. Out-of-range values clamp
/// to the edge buckets; NaN lands deterministically in bucket 0 (the
/// `as` cast saturates NaN to 0).
pub fn bucket_index(frac: f64) -> usize {
    let i = (frac * DIST_BUCKETS as f64) as isize;
    i.clamp(0, DIST_BUCKETS as isize - 1) as usize
}

/// Composite 0–100 device health score: up to 70 points for retained
/// committed capacity, up to 30 for remaining endurance budget. Pure
/// integer output of two clamped f64 expressions, so any two engines
/// computing the same fractions score identically.
pub fn health_score(cap_frac: f64, pec_frac: f64) -> u32 {
    let capacity = (cap_frac.clamp(0.0, 1.0) * 70.0) as u32;
    let life = ((1.0 - pec_frac).clamp(0.0, 1.0) * 30.0) as u32;
    capacity + life
}

/// Per-shard rollup accumulator: `days` parallel sets of one dying
/// counter plus four [`DIST_BUCKETS`]-wide histograms, all saturating
/// `u32`. Shards observe their own devices, then the caller merges
/// kernels in shard order ([`RollupKernel::merge`] is commutative, but
/// fixed order keeps the story simple).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RollupKernel {
    days: usize,
    /// Dying-device count per grid day.
    pub dying: Vec<u32>,
    /// Wear-fraction histogram, `days × DIST_BUCKETS`, day-major.
    pub wear: Vec<u32>,
    /// PEC-fraction histogram, same layout.
    pub pec: Vec<u32>,
    /// Usable-capacity-fraction histogram, same layout.
    pub usable: Vec<u32>,
    /// Health-score histogram, same layout.
    pub health: Vec<u32>,
}

impl RollupKernel {
    /// An empty kernel over `days` grid days.
    pub fn new(days: usize) -> Self {
        RollupKernel {
            days,
            dying: vec![0; days],
            wear: vec![0; days * DIST_BUCKETS],
            pec: vec![0; days * DIST_BUCKETS],
            usable: vec![0; days * DIST_BUCKETS],
            health: vec![0; days * DIST_BUCKETS],
        }
    }

    /// Number of grid days this kernel covers.
    pub fn days(&self) -> usize {
        self.days
    }

    /// Fold one alive device's state at grid day `gi` into the
    /// histograms. Fractions are f64 but only ever bucketed — no
    /// cross-device float accumulation happens anywhere in a rollup.
    pub fn observe(
        &mut self,
        gi: usize,
        wear_frac: f64,
        pec_frac: f64,
        use_frac: f64,
        cap_frac: f64,
    ) {
        let base = gi * DIST_BUCKETS;
        bump(&mut self.wear[base + bucket_index(wear_frac)]);
        bump(&mut self.pec[base + bucket_index(pec_frac)]);
        bump(&mut self.usable[base + bucket_index(use_frac)]);
        let score = health_score(cap_frac, pec_frac) as usize;
        bump(&mut self.health[base + (score / 5).min(DIST_BUCKETS - 1)]);
        if cap_frac <= DYING_CAPACITY_FRAC {
            bump(&mut self.dying[gi]);
        }
    }

    /// Merge another shard's counts into this one (element-wise
    /// saturating add). Commutative and associative, so the merged
    /// kernel is independent of how devices were sharded.
    pub fn merge(&mut self, other: &RollupKernel) {
        debug_assert_eq!(self.days, other.days);
        for (a, b) in self.dying.iter_mut().zip(&other.dying) {
            *a = a.saturating_add(*b);
        }
        for (dst, src) in [
            (&mut self.wear, &other.wear),
            (&mut self.pec, &other.pec),
            (&mut self.usable, &other.usable),
            (&mut self.health, &other.health),
        ] {
            for (a, b) in dst.iter_mut().zip(src.iter()) {
                *a = a.saturating_add(*b);
            }
        }
    }

    /// The four histograms and dying count for grid day `gi`, as the
    /// distribution slices a [`FleetRollup`] wants.
    pub fn day_slices(&self, gi: usize) -> (u32, &[u32], &[u32], &[u32], &[u32]) {
        let r = gi * DIST_BUCKETS..(gi + 1) * DIST_BUCKETS;
        (
            self.dying[gi],
            &self.wear[r.clone()],
            &self.pec[r.clone()],
            &self.usable[r.clone()],
            &self.health[r],
        )
    }
}

fn bump(slot: &mut u32) {
    *slot = slot.saturating_add(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_pin_down() {
        // Exact lower edges land in their own bucket; 1.0 clamps into
        // the last; out-of-range and NaN are deterministic.
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(0.049), 0);
        assert_eq!(bucket_index(0.05), 1);
        assert_eq!(bucket_index(0.999), 19);
        assert_eq!(bucket_index(1.0), 19);
        assert_eq!(bucket_index(7.5), 19);
        assert_eq!(bucket_index(-0.3), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
    }

    #[test]
    fn percentiles_use_nearest_rank_and_upper_edges() {
        // 10 devices in bucket 0, 10 in bucket 19.
        let mut bins = [0u32; DIST_BUCKETS];
        bins[0] = 10;
        bins[19] = 10;
        // rank(p50) = ceil(50*20/100) = 10 -> still bucket 0, upper
        // edge 50 permille; p90 -> rank 18 -> bucket 19 -> 1000.
        assert_eq!(percentile_permille(&bins, 50), Some(50));
        assert_eq!(percentile_permille(&bins, 90), Some(1000));
        assert_eq!(percentile_permille(&bins, 1), Some(50));
        assert_eq!(percentile_permille(&bins, 100), Some(1000));
    }

    #[test]
    fn percentile_of_empty_histogram_is_none() {
        assert_eq!(percentile_permille(&[0; DIST_BUCKETS], 50), None);
        assert_eq!(percentile_permille(&[], 50), None);
    }

    #[test]
    fn percentile_rank_never_drops_below_one() {
        // A single device: every percentile reports its bucket.
        let mut bins = [0u32; DIST_BUCKETS];
        bins[3] = 1;
        for q in PERCENTILES {
            assert_eq!(percentile_permille(&bins, q), Some(200));
        }
    }

    #[test]
    fn kernel_merge_is_order_independent() {
        let mut a = RollupKernel::new(2);
        let mut b = RollupKernel::new(2);
        a.observe(0, 0.1, 0.2, 0.9, 1.0);
        a.observe(1, 0.5, 0.6, 0.7, 0.4);
        b.observe(0, 0.95, 0.99, 0.2, 0.3);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        let (dying, wear, ..) = ab.day_slices(0);
        assert_eq!(dying, 1); // cap_frac 0.3 <= 0.5
        assert_eq!(wear.iter().sum::<u32>(), 2);
    }

    #[test]
    fn health_score_weighs_capacity_then_life() {
        assert_eq!(health_score(1.0, 0.0), 100);
        assert_eq!(health_score(0.0, 1.0), 0);
        assert_eq!(health_score(1.0, 1.0), 70);
        assert_eq!(health_score(0.5, 0.5), 35 + 15);
    }

    #[test]
    fn series_values_cover_counts_and_percentiles() {
        let mut r = FleetRollup {
            day: 30,
            alive: 90,
            dead_wear: 7,
            dead_afr: 3,
            dying: 5,
            capacity_opages: 1_000_000,
            wear: vec![0; DIST_BUCKETS],
            pec: vec![0; DIST_BUCKETS],
            usable: vec![0; DIST_BUCKETS],
            health: vec![0; DIST_BUCKETS],
        };
        r.wear[4] = 90;
        assert_eq!(r.series_value("alive"), Some(90));
        assert_eq!(r.series_value("dead"), Some(10));
        assert_eq!(r.series_value("capacity"), Some(1_000_000));
        assert_eq!(r.series_value("wear_p50"), Some(250));
        assert_eq!(r.series_value("pec_p50"), None); // empty dist
        assert_eq!(r.series_value("bogus"), None);
        assert_eq!(r.series_value("wear_p0"), None);
    }

    #[test]
    fn rollup_round_trips_through_json() {
        let r = FleetRollup {
            day: 60,
            alive: 3,
            dead_wear: 1,
            dead_afr: 0,
            dying: 2,
            capacity_opages: 42,
            wear: vec![1; DIST_BUCKETS],
            pec: vec![2; DIST_BUCKETS],
            usable: vec![0; DIST_BUCKETS],
            health: vec![3; DIST_BUCKETS],
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: FleetRollup = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
