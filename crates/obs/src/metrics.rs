//! Deterministic metrics registry: counters, gauges, fixed-bucket
//! histograms, Prometheus-style text exposition.
//!
//! Keys are flat strings with Prometheus label syntax embedded
//! (`salamander_headroom_opages{day="30"}`); storage is `BTreeMap`, so
//! rendering is byte-deterministic. Under `par_map`, give each task its
//! own registry (a shard) and [`MetricsRegistry::merge`] the shards in
//! task-index order: counters and histograms are commutative sums, and
//! gauges are last-write-wins, so a fixed merge order pins the result.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Fixed-bucket histogram (cumulative-at-render, Prometheus `le`
/// semantics). Bucket bounds are set by the first `observe` for a key
/// and must match on merge.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Histogram {
    /// Upper bounds, ascending. An implicit `+Inf` bucket follows.
    pub bounds: Vec<u64>,
    /// Per-bucket counts (non-cumulative; `len == bounds.len() + 1`).
    pub counts: Vec<u64>,
    /// Sum of observed values.
    pub sum: u64,
    /// Number of observations.
    pub total: u64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0,
            total: 0,
        }
    }

    fn observe(&mut self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += v;
        self.total += 1;
    }

    fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "histogram bucket bounds must match to merge"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.total += other.total;
    }
}

/// Counter/gauge/histogram store with deterministic rendering.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `by` to a counter (created at zero on first touch).
    pub fn inc(&mut self, key: &str, by: u64) {
        *self.counters.entry(key.to_string()).or_insert(0) += by;
    }

    /// Set a gauge to `v` (last write wins).
    pub fn set_gauge(&mut self, key: &str, v: f64) {
        self.gauges.insert(key.to_string(), v);
    }

    /// Record `v` into the histogram `key` with the given bucket upper
    /// bounds (ascending; an implicit `+Inf` bucket is appended). The
    /// bounds are fixed by the first call per key.
    pub fn observe(&mut self, key: &str, bounds: &[u64], v: u64) {
        self.histograms
            .entry(key.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(v);
    }

    /// Read a counter (zero if never touched).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Read a gauge.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.gauges.get(key).copied()
    }

    /// Read a histogram.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// True if nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Fold another registry (a per-task shard) into this one.
    /// Counters and histograms add; gauges take `other`'s value. Merge
    /// shards in task-index order to keep gauge overwrites
    /// deterministic.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// A copy of this registry with `label` (e.g. `mode="RegenS"`)
    /// spliced into every key, so shards from runs that reuse the same
    /// metric names (one per fleet mode, say) can merge without
    /// colliding.
    pub fn relabelled(&self, label: &str) -> MetricsRegistry {
        fn splice(key: &str, label: &str) -> String {
            match key.find('{') {
                Some(i) => format!("{}{{{},{}", &key[..i], label, &key[i + 1..]),
                None => format!("{key}{{{label}}}"),
            }
        }
        MetricsRegistry {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| (splice(k, label), *v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(k, v)| (splice(k, label), *v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| (splice(k, label), h.clone()))
                .collect(),
        }
    }

    /// Prometheus text exposition. Families sorted by name, one
    /// `# TYPE` line per family, histograms expanded into cumulative
    /// `_bucket{le=...}` series plus `_sum`/`_count`. Floats render via
    /// `{}` (shortest round-trip form), so output is byte-stable for
    /// identical inputs.
    pub fn render(&self) -> String {
        // Family name = key up to the label block.
        fn family(key: &str) -> &str {
            key.split('{').next().unwrap_or(key)
        }
        // Splice extra labels (e.g. le) into a possibly-labelled key.
        fn with_label(key: &str, label: &str) -> String {
            match key.find('{') {
                Some(i) => format!("{}{{{},{}", &key[..i], label, &key[i + 1..]),
                None => format!("{key}{{{label}}}"),
            }
        }
        let mut out = String::new();
        let mut last_family = String::new();
        let mut type_line = |out: &mut String, key: &str, kind: &str| {
            let fam = family(key).to_string();
            if fam != last_family {
                let _ = writeln!(out, "# TYPE {fam} {kind}");
                last_family = fam;
            }
        };
        for (k, v) in &self.counters {
            type_line(&mut out, k, "counter");
            let _ = writeln!(out, "{k} {v}");
        }
        for (k, v) in &self.gauges {
            type_line(&mut out, k, "gauge");
            let _ = writeln!(out, "{k} {v}");
        }
        for (k, h) in &self.histograms {
            type_line(&mut out, k, "histogram");
            let mut cum = 0u64;
            for (i, c) in h.counts.iter().enumerate() {
                cum += c;
                let le = match h.bounds.get(i) {
                    Some(b) => b.to_string(),
                    None => "+Inf".to_string(),
                };
                let series = with_label(k, &format!("le=\"{le}\""));
                let _ = writeln!(out, "{series} {cum}");
            }
            let _ = writeln!(out, "{}_sum {}", k, h.sum);
            let _ = writeln!(out, "{}_count {}", k, h.total);
        }
        out
    }
}

/// Shared, optionally-disabled handle to a [`MetricsRegistry`],
/// mirroring [`crate::trace::TraceHandle`].
///
/// A handle may additionally carry a *tee*: a second registry every
/// update is mirrored into. The tee is how `--serve` observes metrics
/// mid-run without perturbing determinism — reads ([`MetricsHandle::take`],
/// [`MetricsHandle::snapshot`], [`MetricsHandle::counter`]) see only
/// the primary, so deterministic output never depends on what the live
/// mirror accumulated.
#[derive(Clone, Default)]
pub struct MetricsHandle {
    primary: Option<Arc<Mutex<MetricsRegistry>>>,
    tee: Option<Arc<Mutex<MetricsRegistry>>>,
}

impl MetricsHandle {
    /// A handle that drops every update (the default).
    pub fn disabled() -> Self {
        MetricsHandle::default()
    }

    /// A live registry.
    pub fn enabled() -> Self {
        MetricsHandle {
            primary: Some(Arc::new(Mutex::new(MetricsRegistry::new()))),
            tee: None,
        }
    }

    /// This handle plus a live mirror: every update also lands in
    /// `tee`, reads still see only the primary.
    pub fn with_tee(&self, tee: Arc<Mutex<MetricsRegistry>>) -> MetricsHandle {
        MetricsHandle {
            primary: self.primary.clone(),
            tee: Some(tee),
        }
    }

    /// A handle that *only* mirrors into `tee` (the
    /// `--serve`-without-`--metrics` configuration): updates are
    /// recorded live, but `take`/`snapshot` stay empty so no
    /// deterministic output appears.
    pub fn tee_only(tee: Arc<Mutex<MetricsRegistry>>) -> MetricsHandle {
        MetricsHandle {
            primary: None,
            tee: Some(tee),
        }
    }

    /// Whether updates are recorded anywhere (primary or tee).
    pub fn is_enabled(&self) -> bool {
        self.primary.is_some() || self.tee.is_some()
    }

    /// Add `by` to a counter.
    pub fn inc(&self, key: &str, by: u64) {
        if let Some(reg) = &self.primary {
            reg.lock().expect("metrics lock").inc(key, by);
        }
        if let Some(reg) = &self.tee {
            reg.lock().expect("metrics lock").inc(key, by);
        }
    }

    /// Set a gauge.
    pub fn set_gauge(&self, key: &str, v: f64) {
        if let Some(reg) = &self.primary {
            reg.lock().expect("metrics lock").set_gauge(key, v);
        }
        if let Some(reg) = &self.tee {
            reg.lock().expect("metrics lock").set_gauge(key, v);
        }
    }

    /// Record a histogram observation.
    pub fn observe(&self, key: &str, bounds: &[u64], v: u64) {
        if let Some(reg) = &self.primary {
            reg.lock().expect("metrics lock").observe(key, bounds, v);
        }
        if let Some(reg) = &self.tee {
            reg.lock().expect("metrics lock").observe(key, bounds, v);
        }
    }

    /// Read a counter (zero when disabled or never touched). Reads the
    /// primary only — the tee is a write-only mirror.
    pub fn counter(&self, key: &str) -> u64 {
        match &self.primary {
            Some(reg) => reg.lock().expect("metrics lock").counter(key),
            None => 0,
        }
    }

    /// Take the accumulated primary registry, leaving an empty one
    /// behind. The tee keeps what it mirrored.
    pub fn take(&self) -> MetricsRegistry {
        match &self.primary {
            Some(reg) => std::mem::take(&mut *reg.lock().expect("metrics lock")),
            None => MetricsRegistry::new(),
        }
    }

    /// Clone the accumulated primary registry without draining it.
    pub fn snapshot(&self) -> MetricsRegistry {
        match &self.primary {
            Some(reg) => reg.lock().expect("metrics lock").clone(),
            None => MetricsRegistry::new(),
        }
    }
}

impl fmt::Debug for MetricsHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricsHandle")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// Standard retry-depth buckets (extra array reads per host read).
pub const RETRY_DEPTH_BUCKETS: &[u64] = &[1, 2, 4, 8];
/// Standard relocation-burst buckets (oPages moved per GC pass).
pub const GC_BURST_BUCKETS: &[u64] = &[8, 16, 32, 64, 128, 256];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut r = MetricsRegistry::new();
        r.inc("a_total", 2);
        r.inc("a_total", 3);
        assert_eq!(r.counter("a_total"), 5);
    }

    #[test]
    fn histogram_buckets_and_render() {
        let mut r = MetricsRegistry::new();
        for v in [1, 2, 3, 10] {
            r.observe("h", &[2, 5], v);
        }
        let h = r.histogram("h").unwrap();
        assert_eq!(h.counts, vec![2, 1, 1]);
        assert_eq!(h.sum, 16);
        let text = r.render();
        assert!(text.contains("# TYPE h histogram"));
        assert!(text.contains("h{le=\"2\"} 2"));
        assert!(text.contains("h{le=\"5\"} 3"));
        assert!(text.contains("h{le=\"+Inf\"} 4"));
        assert!(text.contains("h_sum 16"));
        assert!(text.contains("h_count 4"));
    }

    #[test]
    fn labelled_histogram_key_splices_le() {
        let mut r = MetricsRegistry::new();
        r.observe("h{mode=\"shrink\"}", &[1], 1);
        let text = r.render();
        assert!(text.contains("h{le=\"1\",mode=\"shrink\"} 1"), "{text}");
    }

    #[test]
    fn merge_is_order_sensitive_only_for_gauges() {
        let mut a = MetricsRegistry::new();
        a.inc("c", 1);
        a.set_gauge("g", 1.0);
        a.observe("h", &[10], 3);
        let mut b = MetricsRegistry::new();
        b.inc("c", 2);
        b.set_gauge("g", 2.0);
        b.observe("h", &[10], 30);
        let mut m = MetricsRegistry::new();
        m.merge(&a);
        m.merge(&b);
        assert_eq!(m.counter("c"), 3);
        assert_eq!(m.gauge("g"), Some(2.0));
        assert_eq!(m.histogram("h").unwrap().total, 2);
    }

    #[test]
    fn render_is_deterministic_and_sorted() {
        let mut r = MetricsRegistry::new();
        r.inc("z_total", 1);
        r.inc("a_total", 1);
        r.set_gauge("m_gauge", 0.5);
        let once = r.render();
        assert_eq!(once, r.render());
        let a = once.find("a_total").unwrap();
        let z = once.find("z_total").unwrap();
        assert!(a < z);
    }

    #[test]
    fn relabelled_splices_into_bare_and_labelled_keys() {
        let mut r = MetricsRegistry::new();
        r.inc("deaths_total", 3);
        r.set_gauge("cap{day=\"30\"}", 7.0);
        let l = r.relabelled("mode=\"RegenS\"");
        assert_eq!(l.counter("deaths_total{mode=\"RegenS\"}"), 3);
        assert_eq!(l.gauge("cap{mode=\"RegenS\",day=\"30\"}"), Some(7.0));
        // Shards relabelled differently no longer collide on merge.
        let mut merged = r.relabelled("mode=\"A\"");
        merged.merge(&r.relabelled("mode=\"B\""));
        assert_eq!(merged.counter("deaths_total{mode=\"A\"}"), 3);
        assert_eq!(merged.counter("deaths_total{mode=\"B\"}"), 3);
    }

    #[test]
    fn disabled_handle_is_inert() {
        let h = MetricsHandle::disabled();
        h.inc("c", 1);
        assert!(h.take().is_empty());
    }

    #[test]
    fn handle_take_drains() {
        let h = MetricsHandle::enabled();
        h.inc("c", 1);
        let first = h.take();
        assert_eq!(first.counter("c"), 1);
        assert!(h.take().is_empty());
    }

    #[test]
    fn tee_mirrors_writes_but_never_serves_reads() {
        let live = Arc::new(Mutex::new(MetricsRegistry::new()));
        let h = MetricsHandle::enabled().with_tee(live.clone());
        h.inc("c", 2);
        h.set_gauge("g", 1.5);
        h.observe("h", &[10], 3);
        // Both sides saw the writes…
        assert_eq!(h.counter("c"), 2);
        assert_eq!(live.lock().unwrap().counter("c"), 2);
        assert_eq!(live.lock().unwrap().gauge("g"), Some(1.5));
        // …but take() drains only the primary.
        assert_eq!(h.take().counter("c"), 2);
        assert_eq!(live.lock().unwrap().counter("c"), 2);
    }

    #[test]
    fn tee_only_handle_records_live_but_outputs_nothing() {
        let live = Arc::new(Mutex::new(MetricsRegistry::new()));
        let h = MetricsHandle::tee_only(live.clone());
        assert!(h.is_enabled());
        h.inc("c", 7);
        assert_eq!(h.counter("c"), 0, "no primary to read");
        assert!(h.take().is_empty(), "no deterministic output");
        assert_eq!(live.lock().unwrap().counter("c"), 7);
    }
}
