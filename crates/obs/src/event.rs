//! Typed trace events and the simulation clock they are stamped with.
//!
//! Every event carries a [`SimTime`] — a (day, op-index) pair read off
//! the simulation itself — never wall-clock. That is the whole
//! determinism contract: two runs of the same seed produce the same
//! event sequence with the same stamps, regardless of thread count or
//! host machine. Anything wall-clock lives in [`crate::profile`] and is
//! excluded from traces by construction.
//!
//! Events use raw integer ids (`u32` minidisk ids, `u64` page indexes)
//! instead of the FTL's newtypes so this crate sits below every
//! simulation layer in the dependency graph.

use serde::{Deserialize, Serialize};

/// Simulation timestamp: the device clock in days plus the host-write
/// op index at emission time. Ordered chronologically (day first, then
/// op) so traces sort the way they replayed.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime {
    /// Whole simulated days elapsed.
    pub day: u32,
    /// Host operations issued so far (monotone within a run).
    pub op: u64,
}

impl SimTime {
    /// The start of a run.
    pub const ZERO: SimTime = SimTime { day: 0, op: 0 };

    /// Build a timestamp.
    pub fn new(day: u32, op: u64) -> Self {
        SimTime { day, op }
    }
}

/// Why a minidisk was decommissioned (the two shortfall loops of the
/// capacity protocol).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DecommissionCause {
    /// A tiredness level's committed ledger exceeded its usable pages.
    LevelShortfall,
    /// Global GC headroom dropped below the overprovisioning floor.
    GcHeadroom,
}

/// Why a device left service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeathCause {
    /// Baseline bricking: bad-block budget exhausted.
    Brick,
    /// ShrinkS/RegenS end state: every minidisk decommissioned.
    FullyShrunk,
    /// Fleet statistical model: wear-out death.
    Wear,
    /// Fleet statistical model: annualized-failure-rate death.
    Afr,
}

/// One structured trace event. Externally-tagged (serde's default), so
/// the JSONL form is `{"EventName":{...fields...}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// Segment marker: everything after this record (until the next
    /// marker) belongs to the named run. Lets one trace file carry a
    /// whole bench fan-out deterministically.
    RunMarker {
        /// Run label, e.g. `"mode=ShrinkS"` or `"device=3"`.
        label: String,
    },
    /// A flash page crossed a tiredness boundary (still usable).
    PageTired {
        /// Flat fPage index.
        fpage: u64,
        /// Level before the transition (0–4).
        from: u8,
        /// Level after the transition (0–4).
        to: u8,
    },
    /// A flash page reached L4 and left service.
    PageRetired {
        /// Flat fPage index.
        fpage: u64,
        /// Level it retired from.
        from: u8,
    },
    /// The capacity protocol decommissioned a minidisk.
    MdiskDecommissioned {
        /// Minidisk id.
        id: u32,
        /// Valid LBAs it still held.
        valid_lbas: u32,
        /// Whether it entered the draining grace period.
        draining: bool,
        /// Which shortfall loop triggered it.
        cause: DecommissionCause,
    },
    /// A draining minidisk was force-purged (grace expired).
    MdiskPurged {
        /// Minidisk id.
        id: u32,
    },
    /// RegenS created a replacement minidisk on tired pages.
    MdiskRegenerated {
        /// New minidisk id.
        id: u32,
        /// Tiredness level it was carved from.
        level: u8,
    },
    /// One garbage-collection pass completed.
    GcPass {
        /// Victim block index.
        block: u64,
        /// Valid oPages relocated out of the victim.
        relocated: u64,
    },
    /// Scrub patrol rewrote a page nearing its retention limit.
    ScrubRefresh {
        /// Flat fPage index.
        fpage: u64,
        /// oPages refreshed.
        opages: u32,
    },
    /// A host read needed ECC retries.
    ReadRetry {
        /// Minidisk id served.
        mdisk: u32,
        /// Extra array reads performed.
        retries: u32,
    },
    /// A read failed even after retries.
    UncorrectableRead {
        /// Minidisk id served.
        mdisk: u32,
        /// Logical address within the minidisk.
        lba: u32,
    },
    /// The device left service.
    DeviceDied {
        /// Why.
        cause: DeathCause,
    },
    /// A fleet-simulated device died (statistical model).
    FleetDeviceDied {
        /// Device index within the fleet.
        device: u32,
        /// Why.
        cause: DeathCause,
    },
    /// diFS re-replicated a chunk after a unit loss.
    ChunkReReplicated {
        /// Chunk id.
        chunk: u64,
        /// Bytes moved.
        bytes: u64,
    },
    /// diFS lost a chunk (all replicas gone).
    ChunkLost {
        /// Chunk id.
        chunk: u64,
    },
    /// Fleet-wide per-day distribution rollup (DESIGN.md §14). Emitted
    /// once per sampled day by the fleet engines; deterministic by
    /// construction (integer bins merged in shard order).
    FleetRollup(crate::rollup::FleetRollup),
    /// Per-sampled-day latency distributions (DESIGN.md §15): one
    /// histogram per op class, charged from the integer cost model.
    /// Deterministic like [`TraceEvent::FleetRollup`] — integer bins,
    /// shard-order merges.
    LatencyRollup(crate::latency::LatencyRollup),
    /// Per-tick cluster durability rollup (DESIGN.md §16): replication
    /// states, recovery backlog and traffic, exposure windows.
    /// Deterministic like [`TraceEvent::FleetRollup`] — integer bins,
    /// shard-order merges.
    ClusterRollup(crate::cluster::ClusterRollup),
}

/// A trace event plus its position in the run: a per-handle sequence
/// number and the simulation clock at emission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Monotone per-trace sequence number (0-based).
    pub seq: u64,
    /// Simulation clock at emission.
    pub time: SimTime,
    /// The event.
    pub event: TraceEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_time_orders_chronologically() {
        let a = SimTime::new(1, 99);
        let b = SimTime::new(2, 0);
        assert!(a < b);
        assert!(SimTime::ZERO < a);
    }

    #[test]
    fn event_round_trips_through_json() {
        let e = TraceEvent::MdiskDecommissioned {
            id: 7,
            valid_lbas: 120,
            draining: true,
            cause: DecommissionCause::GcHeadroom,
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
