//! Tracer trait, recorders, and the shared [`TraceHandle`].
//!
//! The handle is the thing simulation code holds: a cheap `Clone`
//! wrapper that is a no-op when tracing is disabled (one `Option`
//! branch per emission) and appends a [`TraceRecord`] to the configured
//! [`Tracer`] when enabled. Sequence numbers are assigned by the handle
//! so a trace is self-ordering even if the sink reorders writes.
//!
//! Determinism under `par_map`: give each task its *own* handle (ring
//! recorder), then concatenate the `take()`n records in task-index
//! order. Sharing one handle across threads is safe (it locks) but the
//! interleave would depend on scheduling — only do that on
//! single-threaded paths.

use crate::event::{SimTime, TraceEvent, TraceRecord};
use crate::live::Broadcast;
use std::collections::VecDeque;
use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A sink for trace records.
pub trait Tracer: Send {
    /// Consume one record.
    fn record(&mut self, rec: &TraceRecord);

    /// Drain buffered records, if this tracer buffers. Streaming sinks
    /// return nothing.
    fn take(&mut self) -> Vec<TraceRecord> {
        Vec::new()
    }

    /// Flush any underlying writer. Buffering tracers need not do
    /// anything.
    fn flush(&mut self) {}

    /// Records dropped due to capacity (ring overflow).
    fn dropped(&self) -> u64 {
        0
    }

    /// Take the first I/O error a streaming sink hit, if any. Purely
    /// in-memory tracers never error.
    fn take_error(&mut self) -> Option<std::io::Error> {
        None
    }
}

/// A tracer that drops every record. Used when a live tap wants the
/// event stream but nothing persists it (`--serve` without `--trace`).
#[derive(Debug, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn record(&mut self, _rec: &TraceRecord) {}
}

/// Bounded in-memory recorder: keeps the most recent `cap` records and
/// counts what it sheds.
#[derive(Debug, Default)]
pub struct RingRecorder {
    cap: usize,
    buf: VecDeque<TraceRecord>,
    dropped: u64,
}

impl RingRecorder {
    /// Keep at most `cap` records (oldest evicted first).
    pub fn new(cap: usize) -> Self {
        RingRecorder {
            cap: cap.max(1),
            buf: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Effectively unbounded (bounded only by memory).
    pub fn unbounded() -> Self {
        Self::new(usize::MAX)
    }
}

impl Tracer for RingRecorder {
    fn record(&mut self, rec: &TraceRecord) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(rec.clone());
    }

    fn take(&mut self) -> Vec<TraceRecord> {
        self.buf.drain(..).collect()
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Streaming JSONL sink: one record per line, written as it arrives.
/// Single-threaded use only if byte-stable output matters — under
/// `par_map`, record to rings and serialize the merged trace instead.
///
/// I/O failures (full disk, closed pipe) do not panic the run: the
/// first error is held, later records are dropped, and the owner of
/// the [`TraceHandle`] surfaces it via [`TraceHandle::sink_error`] at
/// end of run. The sink flushes on drop as a last resort.
pub struct JsonlSink<W: Write + Send> {
    out: W,
    error: Option<std::io::Error>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wrap a writer.
    pub fn new(out: W) -> Self {
        JsonlSink { out, error: None }
    }
}

impl<W: Write + Send> Tracer for JsonlSink<W> {
    fn record(&mut self, rec: &TraceRecord) {
        if self.error.is_some() {
            return;
        }
        let line = match serde_json::to_string(rec) {
            Ok(line) => line,
            Err(e) => {
                self.error = Some(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("trace record failed to serialize: {e}"),
                ));
                return;
            }
        };
        if let Err(e) = writeln!(self.out, "{line}") {
            self.error = Some(e);
        }
    }

    fn flush(&mut self) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.out.flush() {
            self.error = Some(e);
        }
    }

    fn take_error(&mut self) -> Option<std::io::Error> {
        self.error.take()
    }
}

impl<W: Write + Send> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        // Best effort: an error here has nowhere to go, but callers
        // that checked `sink_error` before dropping already saw it.
        let _ = self.out.flush();
    }
}

struct Inner {
    seq: u64,
    tracer: Box<dyn Tracer>,
    /// Live mirror: every recorded event is also pushed here, after
    /// the tracer consumed it. Never read back by simulation code.
    tap: Option<Broadcast>,
}

/// Shared, optionally-disabled handle to a [`Tracer`].
#[derive(Clone, Default)]
pub struct TraceHandle(Option<Arc<Mutex<Inner>>>);

impl TraceHandle {
    /// A handle that drops every event (the default). Emission through
    /// it is a single branch.
    pub fn disabled() -> Self {
        TraceHandle(None)
    }

    /// Record into a bounded ring.
    pub fn ring(cap: usize) -> Self {
        Self::with(Box::new(RingRecorder::new(cap)))
    }

    /// Record into an unbounded buffer.
    pub fn recording() -> Self {
        Self::with(Box::new(RingRecorder::unbounded()))
    }

    /// Use an arbitrary tracer.
    pub fn with(tracer: Box<dyn Tracer>) -> Self {
        TraceHandle(Some(Arc::new(Mutex::new(Inner {
            seq: 0,
            tracer,
            tap: None,
        }))))
    }

    /// A handle that persists nothing but feeds a live [`Broadcast`] —
    /// the `--serve`-without-`--trace` configuration.
    pub fn tap_only(tap: Broadcast) -> Self {
        let h = Self::with(Box::new(NullTracer));
        h.set_tap(tap);
        h
    }

    /// Attach a live tap: every subsequently emitted record is also
    /// pushed into `tap`. No-op on a disabled handle.
    pub fn set_tap(&self, tap: Broadcast) {
        if let Some(inner) = &self.0 {
            inner.lock().expect("trace lock").tap = Some(tap);
        }
    }

    /// Whether events are being consumed at all.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Stamp and record one event. No-op (one branch) when disabled.
    pub fn emit(&self, time: SimTime, event: TraceEvent) {
        if let Some(inner) = &self.0 {
            let mut inner = inner.lock().expect("trace lock");
            let rec = TraceRecord {
                seq: inner.seq,
                time,
                event,
            };
            inner.seq += 1;
            inner.tracer.record(&rec);
            if let Some(tap) = &inner.tap {
                tap.push(&rec);
            }
        }
    }

    /// Drain buffered records from the underlying tracer.
    pub fn take(&self) -> Vec<TraceRecord> {
        match &self.0 {
            Some(inner) => inner.lock().expect("trace lock").tracer.take(),
            None => Vec::new(),
        }
    }

    /// Records shed by the underlying tracer (ring overflow).
    pub fn dropped(&self) -> u64 {
        match &self.0 {
            Some(inner) => inner.lock().expect("trace lock").tracer.dropped(),
            None => 0,
        }
    }

    /// Flush a streaming tracer.
    pub fn flush(&self) {
        if let Some(inner) = &self.0 {
            inner.lock().expect("trace lock").tracer.flush();
        }
    }

    /// Take the first I/O error a streaming sink hit, if any. Callers
    /// that stream to disk should check this at end of run and exit
    /// nonzero — the sink itself never panics.
    pub fn sink_error(&self) -> Option<std::io::Error> {
        match &self.0 {
            Some(inner) => inner.lock().expect("trace lock").tracer.take_error(),
            None => None,
        }
    }
}

impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceHandle")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// Render records as JSONL (one JSON object per line, trailing
/// newline). Byte-deterministic: field order is fixed by the serde
/// derive, floats never appear in events.
pub fn to_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        out.push_str(&serde_json::to_string(rec).expect("trace records always serialize"));
        out.push('\n');
    }
    out
}

/// A malformed line in a JSONL trace: where it is, what it looks like,
/// and what the parser objected to. `Display` renders all three so a
/// consumer (`obsctl`, the examples) can point straight at the byte
/// range to fix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// The offending line, truncated to [`ParseError::SNIPPET_MAX`]
    /// characters (with a `…` marker when cut).
    pub snippet: String,
    /// The underlying JSON parser's message.
    pub reason: String,
}

impl ParseError {
    /// Longest snippet `Display` carries (traces can have long lines;
    /// the line number locates the rest).
    pub const SNIPPET_MAX: usize = 80;

    fn new(line: usize, raw: &str, reason: String) -> Self {
        let mut snippet: String = raw.chars().take(Self::SNIPPET_MAX).collect();
        if raw.chars().count() > Self::SNIPPET_MAX {
            snippet.push('…');
        }
        ParseError {
            line,
            snippet,
            reason,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}: `{}`", self.line, self.reason, self.snippet)
    }
}

impl std::error::Error for ParseError {}

/// Parse a JSONL trace back into records. Blank lines are skipped.
/// Malformed lines fail with a [`ParseError`] carrying the line number
/// and offending snippet.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceRecord>, ParseError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec: TraceRecord =
            serde_json::from_str(line).map_err(|e| ParseError::new(i + 1, line, e.to_string()))?;
        out.push(rec);
    }
    Ok(out)
}

/// Re-sequence a merged trace: records concatenated from several
/// per-task handles each restart at seq 0; this renumbers them
/// globally so the merged file is self-ordering.
pub fn resequence(records: &mut [TraceRecord]) {
    for (i, rec) in records.iter_mut().enumerate() {
        rec.seq = i as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DeathCause;

    fn ev(n: u64) -> TraceEvent {
        TraceEvent::GcPass {
            block: n,
            relocated: n * 2,
        }
    }

    #[test]
    fn disabled_handle_drops_everything() {
        let h = TraceHandle::disabled();
        h.emit(SimTime::ZERO, ev(1));
        assert!(!h.is_enabled());
        assert!(h.take().is_empty());
    }

    #[test]
    fn recording_handle_sequences_events() {
        let h = TraceHandle::recording();
        for n in 0..5 {
            h.emit(SimTime::new(0, n), ev(n));
        }
        let recs = h.take();
        assert_eq!(recs.len(), 5);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
        // Drained: a second take is empty.
        assert!(h.take().is_empty());
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let h = TraceHandle::ring(3);
        for n in 0..10 {
            h.emit(SimTime::new(0, n), ev(n));
        }
        assert_eq!(h.dropped(), 7);
        let recs = h.take();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].seq, 7);
        assert_eq!(recs[2].seq, 9);
    }

    #[test]
    fn jsonl_round_trips() {
        let h = TraceHandle::recording();
        h.emit(
            SimTime::new(3, 77),
            TraceEvent::DeviceDied {
                cause: DeathCause::FullyShrunk,
            },
        );
        h.emit(SimTime::new(3, 78), ev(9));
        let recs = h.take();
        let text = to_jsonl(&recs);
        assert_eq!(text.lines().count(), 2);
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn jsonl_sink_streams_lines() {
        let buf: Vec<u8> = Vec::new();
        let shared = Arc::new(Mutex::new(buf));
        struct SharedWriter(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedWriter {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let h = TraceHandle::with(Box::new(JsonlSink::new(SharedWriter(shared.clone()))));
        h.emit(SimTime::ZERO, ev(1));
        h.flush();
        let text = String::from_utf8(shared.lock().unwrap().clone()).unwrap();
        let recs = parse_jsonl(&text).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].event, ev(1));
    }

    #[test]
    fn jsonl_sink_surfaces_write_errors_without_panicking() {
        struct FailingWriter;
        impl Write for FailingWriter {
            fn write(&mut self, _data: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let h = TraceHandle::with(Box::new(JsonlSink::new(FailingWriter)));
        h.emit(SimTime::ZERO, ev(1));
        h.emit(SimTime::ZERO, ev(2)); // dropped silently after first error
        let err = h.sink_error().expect("error surfaced");
        assert!(err.to_string().contains("disk full"), "{err}");
        assert!(h.sink_error().is_none(), "error is taken once");
    }

    #[test]
    fn tap_mirrors_emitted_records() {
        let tap = crate::live::Broadcast::new(8);
        let h = TraceHandle::recording();
        h.set_tap(tap.clone());
        h.emit(SimTime::new(1, 2), ev(5));
        let live = tap.tail(10);
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].event, ev(5));
        // Primary recording unaffected by the tap.
        assert_eq!(h.take().len(), 1);
    }

    #[test]
    fn tap_only_handle_persists_nothing_but_broadcasts() {
        let tap = crate::live::Broadcast::new(8);
        let h = TraceHandle::tap_only(tap.clone());
        assert!(h.is_enabled());
        h.emit(SimTime::ZERO, ev(3));
        assert!(h.take().is_empty(), "NullTracer keeps nothing");
        assert_eq!(tap.tail(10).len(), 1);
    }

    #[test]
    fn parse_error_reports_line_and_snippet() {
        let good =
            r#"{"seq":0,"time":{"day":0,"op":0},"event":{"GcPass":{"block":1,"relocated":2}}}"#;
        let text = format!("{good}\n\n{{not json\n");
        let err = parse_jsonl(&text).unwrap_err();
        assert_eq!(err.line, 3, "blank lines count toward line numbers");
        assert_eq!(err.snippet, "{not json");
        assert!(!err.reason.is_empty());
        let shown = err.to_string();
        assert!(shown.contains("line 3"), "{shown}");
        assert!(shown.contains("{not json"), "{shown}");
    }

    #[test]
    fn parse_error_truncates_long_snippets() {
        let long = format!("{{\"seq\":{}}}", "9".repeat(200));
        let err = parse_jsonl(&long).unwrap_err();
        assert!(err.snippet.chars().count() <= ParseError::SNIPPET_MAX + 1);
        assert!(err.snippet.ends_with('…'));
    }

    #[test]
    fn resequence_renumbers_globally() {
        let mut recs: Vec<TraceRecord> = (0..3)
            .chain(0..2)
            .map(|s| TraceRecord {
                seq: s,
                time: SimTime::ZERO,
                event: ev(s),
            })
            .collect();
        resequence(&mut recs);
        let seqs: Vec<u64> = recs.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }
}
