//! `.strc` — the indexed binary flight-recorder trace format
//! (DESIGN.md §12).
//!
//! JSONL traces are perfect for small runs and `grep`, but a multi-year
//! fleet simulation emits millions of records and every query pays a
//! full JSON parse of every line. `.strc` stores the same
//! [`TraceRecord`] stream as length-prefixed binary chunks of
//! [`DEFAULT_CHUNK_RECORDS`] records, each fronted by a
//! [`ChunkSummary`] — day range, id bloom, event-kind bitmask, and
//! per-kind counts — collected into a footer index. A query that only
//! cares about, say, decommissions of minidisk 7 reads the footer,
//! decodes the chunks whose summaries can possibly match, and takes
//! aggregate totals straight from the summaries of everything it
//! skipped.
//!
//! The format is lossless against JSONL in both directions:
//! [`write_strc`]/[`read_strc`] round-trip exactly the records
//! [`crate::trace::to_jsonl`]/[`crate::trace::parse_jsonl`] carry, and
//! [`convert_file`] translates whole files. Multi-GB fleet traces
//! rotate across `trace.0001.strc`, `trace.0002.strc`, … via
//! [`RotatingStrcWriter`].
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! file   := magic "STRC" | version u32 | chunk* | footer
//! chunk  := payload_len u32 | record*            (payload_len bytes)
//! footer := count u32 | summary*count | footer_len u32 | magic "XIDX"
//! record := seq u64 | day u32 | op u64 | kind u8 | fields…
//! ```
//!
//! The footer is self-locating from the end of the file (8 trailing
//! bytes give its length), so readers never scan forward and writers
//! never seek back.

use crate::event::{DeathCause, DecommissionCause, SimTime, TraceEvent, TraceRecord};
use std::fmt;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File magic, first four bytes of every `.strc` file.
pub const MAGIC: &[u8; 4] = b"STRC";
/// Footer magic, last four bytes of every `.strc` file.
pub const FOOTER_MAGIC: &[u8; 4] = b"XIDX";
/// Format version this module writes. Readers accept `1..=VERSION`:
/// v2 added the `FleetRollup` event kind (and its per-kind count slot
/// in the footer summaries); v3 added `LatencyRollup` the same way;
/// v4 added `ClusterRollup` and widened the footer kind mask from u16
/// to u32 (kind 16 needs a 17th bit). Older files decode with the
/// missing count slots zero and the mask zero-extended.
pub const VERSION: u32 = 4;
/// Records per chunk unless the writer is told otherwise. ~4K records
/// keeps chunks in the hundreds-of-KB range — big enough to amortize
/// the summary, small enough that skipping matters.
pub const DEFAULT_CHUNK_RECORDS: usize = 4096;

/// Number of event kinds (one bit each in [`ChunkSummary::kind_mask`]).
pub const EVENT_KINDS: usize = 17;

/// Event kinds in a version-1 footer (before `FleetRollup`).
const EVENT_KINDS_V1: usize = 14;

/// Event kinds in a version-2 footer (before `LatencyRollup`).
const EVENT_KINDS_V2: usize = 15;

/// Event kinds in a version-3 footer (before `ClusterRollup`).
const EVENT_KINDS_V3: usize = 16;

/// The wire tag of each [`TraceEvent`] variant. Order is part of the
/// format: renumbering breaks every existing `.strc` file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// [`TraceEvent::RunMarker`]
    RunMarker = 0,
    /// [`TraceEvent::PageTired`]
    PageTired = 1,
    /// [`TraceEvent::PageRetired`]
    PageRetired = 2,
    /// [`TraceEvent::MdiskDecommissioned`]
    MdiskDecommissioned = 3,
    /// [`TraceEvent::MdiskPurged`]
    MdiskPurged = 4,
    /// [`TraceEvent::MdiskRegenerated`]
    MdiskRegenerated = 5,
    /// [`TraceEvent::GcPass`]
    GcPass = 6,
    /// [`TraceEvent::ScrubRefresh`]
    ScrubRefresh = 7,
    /// [`TraceEvent::ReadRetry`]
    ReadRetry = 8,
    /// [`TraceEvent::UncorrectableRead`]
    UncorrectableRead = 9,
    /// [`TraceEvent::DeviceDied`]
    DeviceDied = 10,
    /// [`TraceEvent::FleetDeviceDied`]
    FleetDeviceDied = 11,
    /// [`TraceEvent::ChunkReReplicated`]
    ChunkReReplicated = 12,
    /// [`TraceEvent::ChunkLost`]
    ChunkLost = 13,
    /// [`TraceEvent::FleetRollup`] (format v2)
    FleetRollup = 14,
    /// [`TraceEvent::LatencyRollup`] (format v3)
    LatencyRollup = 15,
    /// [`TraceEvent::ClusterRollup`] (format v4)
    ClusterRollup = 16,
}

impl EventKind {
    /// The kind of an event.
    pub fn of(event: &TraceEvent) -> EventKind {
        match event {
            TraceEvent::RunMarker { .. } => EventKind::RunMarker,
            TraceEvent::PageTired { .. } => EventKind::PageTired,
            TraceEvent::PageRetired { .. } => EventKind::PageRetired,
            TraceEvent::MdiskDecommissioned { .. } => EventKind::MdiskDecommissioned,
            TraceEvent::MdiskPurged { .. } => EventKind::MdiskPurged,
            TraceEvent::MdiskRegenerated { .. } => EventKind::MdiskRegenerated,
            TraceEvent::GcPass { .. } => EventKind::GcPass,
            TraceEvent::ScrubRefresh { .. } => EventKind::ScrubRefresh,
            TraceEvent::ReadRetry { .. } => EventKind::ReadRetry,
            TraceEvent::UncorrectableRead { .. } => EventKind::UncorrectableRead,
            TraceEvent::DeviceDied { .. } => EventKind::DeviceDied,
            TraceEvent::FleetDeviceDied { .. } => EventKind::FleetDeviceDied,
            TraceEvent::ChunkReReplicated { .. } => EventKind::ChunkReReplicated,
            TraceEvent::ChunkLost { .. } => EventKind::ChunkLost,
            TraceEvent::FleetRollup(_) => EventKind::FleetRollup,
            TraceEvent::LatencyRollup(_) => EventKind::LatencyRollup,
            TraceEvent::ClusterRollup(_) => EventKind::ClusterRollup,
        }
    }

    /// This kind's bit in a [`ChunkSummary::kind_mask`].
    pub fn bit(self) -> u32 {
        1u32 << (self as u8)
    }

    /// A mask covering several kinds.
    pub fn mask(kinds: &[EventKind]) -> u32 {
        kinds.iter().fold(0, |m, k| m | k.bit())
    }
}

/// The id an event concerns (minidisk, fleet device, or diFS chunk),
/// if it carries one — the input to the per-chunk id bloom filter.
fn event_id(event: &TraceEvent) -> Option<u64> {
    match event {
        TraceEvent::MdiskDecommissioned { id, .. }
        | TraceEvent::MdiskPurged { id }
        | TraceEvent::MdiskRegenerated { id, .. } => Some(*id as u64),
        TraceEvent::ReadRetry { mdisk, .. } | TraceEvent::UncorrectableRead { mdisk, .. } => {
            Some(*mdisk as u64)
        }
        TraceEvent::FleetDeviceDied { device, .. } => Some(*device as u64),
        TraceEvent::ChunkReReplicated { chunk, .. } | TraceEvent::ChunkLost { chunk } => {
            Some(*chunk)
        }
        _ => None,
    }
}

/// What a reader can know about a chunk without decoding it. ~220
/// bytes per ~4K records — the whole index of a million-record trace
/// is a few dozen KB.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChunkSummary {
    /// Byte offset of the chunk's length prefix from file start.
    pub offset: u64,
    /// Payload length in bytes (not counting the prefix).
    pub byte_len: u32,
    /// Records in the chunk.
    pub records: u32,
    /// Stamp of the first record.
    pub first: SimTime,
    /// Stamp of the last record.
    pub last: SimTime,
    /// OR of [`EventKind::bit`] over every record. On disk this is a
    /// u16 through format v3 and a u32 from v4 (kind 16 overflows 16
    /// bits); in memory it is always the wide form.
    pub kind_mask: u32,
    /// 64-bit bloom of `id % 64` over every id-bearing event. A query
    /// for id `i` may skip any chunk whose bloom lacks bit `i % 64`
    /// (false positives possible, false negatives not).
    pub id_bloom: u64,
    /// Per-kind record counts, indexed by `EventKind as u8`.
    pub counts: [u32; EVENT_KINDS],
    /// `PageTired` transition counts, indexed `from * 5 + to`.
    pub transitions: [u32; 25],
    /// Sum of `GcPass::relocated`.
    pub gc_relocated: u64,
    /// Sum of `ChunkReReplicated::bytes`.
    pub rerep_bytes: u64,
}

impl ChunkSummary {
    /// Fold one record into the summary (offset/byte_len untouched).
    pub fn absorb(&mut self, rec: &TraceRecord) {
        if self.records == 0 {
            self.first = rec.time;
        }
        self.last = rec.time;
        self.records += 1;
        let kind = EventKind::of(&rec.event);
        self.kind_mask |= kind.bit();
        self.counts[kind as u8 as usize] += 1;
        if let Some(id) = event_id(&rec.event) {
            self.id_bloom |= 1u64 << (id % 64);
        }
        match &rec.event {
            TraceEvent::PageTired { from, to, .. } => {
                let from = (*from).min(4) as usize;
                let to = (*to).min(4) as usize;
                self.transitions[from * 5 + to] += 1;
            }
            // Saturating: summaries are advisory aggregates and must
            // never panic on adversarial (or corrupt) magnitudes.
            TraceEvent::GcPass { relocated, .. } => {
                self.gc_relocated = self.gc_relocated.saturating_add(*relocated);
            }
            TraceEvent::ChunkReReplicated { bytes, .. } => {
                self.rerep_bytes = self.rerep_bytes.saturating_add(*bytes);
            }
            _ => {}
        }
    }

    /// Whether the chunk can contain an event of one of `kinds`.
    pub fn may_contain_kinds(&self, kinds_mask: u32) -> bool {
        self.kind_mask & kinds_mask != 0
    }

    /// Whether the chunk can contain an event concerning `id`.
    pub fn may_concern(&self, id: u64) -> bool {
        self.id_bloom & (1u64 << (id % 64)) != 0
    }

    /// Count of one event kind.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.counts[kind as u8 as usize] as u64
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.offset.to_le_bytes());
        out.extend_from_slice(&self.byte_len.to_le_bytes());
        out.extend_from_slice(&self.records.to_le_bytes());
        out.extend_from_slice(&self.first.day.to_le_bytes());
        out.extend_from_slice(&self.first.op.to_le_bytes());
        out.extend_from_slice(&self.last.day.to_le_bytes());
        out.extend_from_slice(&self.last.op.to_le_bytes());
        out.extend_from_slice(&self.kind_mask.to_le_bytes());
        out.extend_from_slice(&self.id_bloom.to_le_bytes());
        for c in &self.counts {
            out.extend_from_slice(&c.to_le_bytes());
        }
        for t in &self.transitions {
            out.extend_from_slice(&t.to_le_bytes());
        }
        out.extend_from_slice(&self.gc_relocated.to_le_bytes());
        out.extend_from_slice(&self.rerep_bytes.to_le_bytes());
    }

    fn decode(cur: &mut Cursor<'_>, version: u32) -> Result<ChunkSummary, StrcError> {
        let mut s = ChunkSummary {
            offset: cur.u64()?,
            byte_len: cur.u32()?,
            records: cur.u32()?,
            first: SimTime::new(cur.u32()?, cur.u64()?),
            ..ChunkSummary::default()
        };
        s.last = SimTime::new(cur.u32()?, cur.u64()?);
        // The kind mask widened to u32 in v4 (kind 16 overflows u16);
        // older masks zero-extend, which is exact.
        s.kind_mask = if version >= 4 {
            cur.u32()?
        } else {
            cur.u16()? as u32
        };
        s.id_bloom = cur.u64()?;
        // Older footers carry fewer count slots (v1 predates
        // FleetRollup, v2 predates LatencyRollup, v3 predates
        // ClusterRollup); the missing slots stay zero, which is exact —
        // those files cannot contain the kinds.
        let kinds = match version {
            1 => EVENT_KINDS_V1,
            2 => EVENT_KINDS_V2,
            3 => EVENT_KINDS_V3,
            _ => EVENT_KINDS,
        };
        for c in &mut s.counts[..kinds] {
            *c = cur.u32()?;
        }
        for t in &mut s.transitions {
            *t = cur.u32()?;
        }
        s.gc_relocated = cur.u64()?;
        s.rerep_bytes = cur.u64()?;
        Ok(s)
    }
}

/// Summarize a record slice as one chunk (offset/byte_len zero).
pub fn summarize(records: &[TraceRecord]) -> ChunkSummary {
    let mut s = ChunkSummary::default();
    for r in records {
        s.absorb(r);
    }
    s
}

/// Why a `.strc` operation failed: I/O, or a structural problem at a
/// known byte offset.
#[derive(Debug)]
pub enum StrcError {
    /// The underlying I/O failed.
    Io(std::io::Error),
    /// The bytes are not a valid `.strc` stream.
    Corrupt {
        /// Byte offset (best effort) of the problem.
        offset: u64,
        /// What the decoder objected to.
        reason: String,
    },
}

impl StrcError {
    fn corrupt(offset: u64, reason: impl Into<String>) -> StrcError {
        StrcError::Corrupt {
            offset,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for StrcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StrcError::Io(e) => write!(f, "i/o error: {e}"),
            StrcError::Corrupt { offset, reason } => {
                write!(f, "corrupt .strc at byte {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for StrcError {}

impl From<std::io::Error> for StrcError {
    fn from(e: std::io::Error) -> Self {
        StrcError::Io(e)
    }
}

/// Bounds-checked little-endian reader over a byte slice.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    /// File offset of `buf[0]`, for error reporting.
    base: u64,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8], base: u64) -> Self {
        Cursor { buf, pos: 0, base }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StrcError> {
        if self.pos + n > self.buf.len() {
            return Err(StrcError::corrupt(
                self.base + self.pos as u64,
                format!(
                    "truncated: wanted {n} bytes, {} left",
                    self.buf.len() - self.pos
                ),
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, StrcError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, StrcError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, StrcError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, StrcError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn encode_event(event: &TraceEvent, out: &mut Vec<u8>) {
    out.push(EventKind::of(event) as u8);
    match event {
        TraceEvent::RunMarker { label } => {
            let bytes = label.as_bytes();
            let len = bytes.len().min(u16::MAX as usize);
            out.extend_from_slice(&(len as u16).to_le_bytes());
            out.extend_from_slice(&bytes[..len]);
        }
        TraceEvent::PageTired { fpage, from, to } => {
            out.extend_from_slice(&fpage.to_le_bytes());
            out.push(*from);
            out.push(*to);
        }
        TraceEvent::PageRetired { fpage, from } => {
            out.extend_from_slice(&fpage.to_le_bytes());
            out.push(*from);
        }
        TraceEvent::MdiskDecommissioned {
            id,
            valid_lbas,
            draining,
            cause,
        } => {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&valid_lbas.to_le_bytes());
            out.push(u8::from(*draining));
            out.push(match cause {
                DecommissionCause::LevelShortfall => 0,
                DecommissionCause::GcHeadroom => 1,
            });
        }
        TraceEvent::MdiskPurged { id } => out.extend_from_slice(&id.to_le_bytes()),
        TraceEvent::MdiskRegenerated { id, level } => {
            out.extend_from_slice(&id.to_le_bytes());
            out.push(*level);
        }
        TraceEvent::GcPass { block, relocated } => {
            out.extend_from_slice(&block.to_le_bytes());
            out.extend_from_slice(&relocated.to_le_bytes());
        }
        TraceEvent::ScrubRefresh { fpage, opages } => {
            out.extend_from_slice(&fpage.to_le_bytes());
            out.extend_from_slice(&opages.to_le_bytes());
        }
        TraceEvent::ReadRetry { mdisk, retries } => {
            out.extend_from_slice(&mdisk.to_le_bytes());
            out.extend_from_slice(&retries.to_le_bytes());
        }
        TraceEvent::UncorrectableRead { mdisk, lba } => {
            out.extend_from_slice(&mdisk.to_le_bytes());
            out.extend_from_slice(&lba.to_le_bytes());
        }
        TraceEvent::DeviceDied { cause } => out.push(death_code(*cause)),
        TraceEvent::FleetDeviceDied { device, cause } => {
            out.extend_from_slice(&device.to_le_bytes());
            out.push(death_code(*cause));
        }
        TraceEvent::ChunkReReplicated { chunk, bytes } => {
            out.extend_from_slice(&chunk.to_le_bytes());
            out.extend_from_slice(&bytes.to_le_bytes());
        }
        TraceEvent::ChunkLost { chunk } => out.extend_from_slice(&chunk.to_le_bytes()),
        TraceEvent::FleetRollup(r) => {
            out.extend_from_slice(&r.day.to_le_bytes());
            out.extend_from_slice(&r.alive.to_le_bytes());
            out.extend_from_slice(&r.dead_wear.to_le_bytes());
            out.extend_from_slice(&r.dead_afr.to_le_bytes());
            out.extend_from_slice(&r.dying.to_le_bytes());
            out.extend_from_slice(&r.capacity_opages.to_le_bytes());
            for dist in [&r.wear, &r.pec, &r.usable, &r.health] {
                encode_u32_vec(dist, out);
            }
        }
        TraceEvent::LatencyRollup(r) => {
            out.extend_from_slice(&r.day.to_le_bytes());
            let classes = r.classes.len().min(u16::MAX as usize);
            out.extend_from_slice(&(classes as u16).to_le_bytes());
            for c in &r.classes[..classes] {
                out.extend_from_slice(&c.count.to_le_bytes());
                out.extend_from_slice(&c.total_ns.to_le_bytes());
                encode_u64_vec(&c.bins, out);
            }
        }
        TraceEvent::ClusterRollup(r) => {
            out.extend_from_slice(&r.day.to_le_bytes());
            for scalar in [
                r.full,
                r.degraded,
                r.critical,
                r.lost,
                r.backlog_chunks,
                r.backlog_bytes,
                r.repair_bytes,
                r.drain_bytes,
                r.data_at_risk,
                r.exposure_windows,
            ] {
                out.extend_from_slice(&scalar.to_le_bytes());
            }
            encode_u32_vec(&r.fullness, out);
            encode_u64_vec(&r.exposure, out);
        }
    }
}

fn encode_u32_vec(v: &[u32], out: &mut Vec<u8>) {
    let len = v.len().min(u16::MAX as usize);
    out.extend_from_slice(&(len as u16).to_le_bytes());
    for x in &v[..len] {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

fn decode_u32_vec(cur: &mut Cursor<'_>) -> Result<Vec<u32>, StrcError> {
    let len = cur.u16()? as usize;
    let mut v = Vec::with_capacity(len);
    for _ in 0..len {
        v.push(cur.u32()?);
    }
    Ok(v)
}

fn encode_u64_vec(v: &[u64], out: &mut Vec<u8>) {
    let len = v.len().min(u16::MAX as usize);
    out.extend_from_slice(&(len as u16).to_le_bytes());
    for x in &v[..len] {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

fn decode_u64_vec(cur: &mut Cursor<'_>) -> Result<Vec<u64>, StrcError> {
    let len = cur.u16()? as usize;
    let mut v = Vec::with_capacity(len);
    for _ in 0..len {
        v.push(cur.u64()?);
    }
    Ok(v)
}

fn death_code(cause: DeathCause) -> u8 {
    match cause {
        DeathCause::Brick => 0,
        DeathCause::FullyShrunk => 1,
        DeathCause::Wear => 2,
        DeathCause::Afr => 3,
    }
}

fn decode_death(code: u8, at: u64) -> Result<DeathCause, StrcError> {
    Ok(match code {
        0 => DeathCause::Brick,
        1 => DeathCause::FullyShrunk,
        2 => DeathCause::Wear,
        3 => DeathCause::Afr,
        n => return Err(StrcError::corrupt(at, format!("bad death cause {n}"))),
    })
}

fn decode_event(cur: &mut Cursor<'_>) -> Result<TraceEvent, StrcError> {
    let at = cur.base + cur.pos as u64;
    let kind = cur.u8()?;
    Ok(match kind {
        0 => {
            let len = cur.u16()? as usize;
            let bytes = cur.take(len)?;
            TraceEvent::RunMarker {
                label: String::from_utf8(bytes.to_vec())
                    .map_err(|e| StrcError::corrupt(at, format!("bad marker label: {e}")))?,
            }
        }
        1 => TraceEvent::PageTired {
            fpage: cur.u64()?,
            from: cur.u8()?,
            to: cur.u8()?,
        },
        2 => TraceEvent::PageRetired {
            fpage: cur.u64()?,
            from: cur.u8()?,
        },
        3 => TraceEvent::MdiskDecommissioned {
            id: cur.u32()?,
            valid_lbas: cur.u32()?,
            draining: cur.u8()? != 0,
            cause: match cur.u8()? {
                0 => DecommissionCause::LevelShortfall,
                1 => DecommissionCause::GcHeadroom,
                n => {
                    return Err(StrcError::corrupt(
                        at,
                        format!("bad decommission cause {n}"),
                    ));
                }
            },
        },
        4 => TraceEvent::MdiskPurged { id: cur.u32()? },
        5 => TraceEvent::MdiskRegenerated {
            id: cur.u32()?,
            level: cur.u8()?,
        },
        6 => TraceEvent::GcPass {
            block: cur.u64()?,
            relocated: cur.u64()?,
        },
        7 => TraceEvent::ScrubRefresh {
            fpage: cur.u64()?,
            opages: cur.u32()?,
        },
        8 => TraceEvent::ReadRetry {
            mdisk: cur.u32()?,
            retries: cur.u32()?,
        },
        9 => TraceEvent::UncorrectableRead {
            mdisk: cur.u32()?,
            lba: cur.u32()?,
        },
        10 => TraceEvent::DeviceDied {
            cause: decode_death(cur.u8()?, at)?,
        },
        11 => TraceEvent::FleetDeviceDied {
            device: cur.u32()?,
            cause: decode_death(cur.u8()?, at)?,
        },
        12 => TraceEvent::ChunkReReplicated {
            chunk: cur.u64()?,
            bytes: cur.u64()?,
        },
        13 => TraceEvent::ChunkLost { chunk: cur.u64()? },
        14 => TraceEvent::FleetRollup(crate::rollup::FleetRollup {
            day: cur.u32()?,
            alive: cur.u32()?,
            dead_wear: cur.u32()?,
            dead_afr: cur.u32()?,
            dying: cur.u32()?,
            capacity_opages: cur.u64()?,
            wear: decode_u32_vec(cur)?,
            pec: decode_u32_vec(cur)?,
            usable: decode_u32_vec(cur)?,
            health: decode_u32_vec(cur)?,
        }),
        15 => {
            let day = cur.u32()?;
            let classes = cur.u16()? as usize;
            let mut out = Vec::with_capacity(classes);
            for _ in 0..classes {
                out.push(crate::latency::ClassLatency {
                    count: cur.u64()?,
                    total_ns: cur.u64()?,
                    bins: decode_u64_vec(cur)?,
                });
            }
            TraceEvent::LatencyRollup(crate::latency::LatencyRollup { day, classes: out })
        }
        16 => TraceEvent::ClusterRollup(crate::cluster::ClusterRollup {
            day: cur.u32()?,
            full: cur.u64()?,
            degraded: cur.u64()?,
            critical: cur.u64()?,
            lost: cur.u64()?,
            backlog_chunks: cur.u64()?,
            backlog_bytes: cur.u64()?,
            repair_bytes: cur.u64()?,
            drain_bytes: cur.u64()?,
            data_at_risk: cur.u64()?,
            exposure_windows: cur.u64()?,
            fullness: decode_u32_vec(cur)?,
            exposure: decode_u64_vec(cur)?,
        }),
        n => return Err(StrcError::corrupt(at, format!("unknown event kind {n}"))),
    })
}

/// Encode one record onto `out`.
pub fn encode_record(rec: &TraceRecord, out: &mut Vec<u8>) {
    out.extend_from_slice(&rec.seq.to_le_bytes());
    out.extend_from_slice(&rec.time.day.to_le_bytes());
    out.extend_from_slice(&rec.time.op.to_le_bytes());
    encode_event(&rec.event, out);
}

fn decode_record(cur: &mut Cursor<'_>) -> Result<TraceRecord, StrcError> {
    Ok(TraceRecord {
        seq: cur.u64()?,
        time: SimTime::new(cur.u32()?, cur.u64()?),
        event: decode_event(cur)?,
    })
}

/// Decode a whole chunk payload.
pub fn decode_chunk(payload: &[u8], file_offset: u64) -> Result<Vec<TraceRecord>, StrcError> {
    let mut cur = Cursor::new(payload, file_offset);
    let mut out = Vec::new();
    while !cur.done() {
        out.push(decode_record(&mut cur)?);
    }
    Ok(out)
}

/// Streaming `.strc` writer: push records, get chunking, summaries,
/// and the footer index on [`StrcWriter::finish`].
pub struct StrcWriter<W: Write> {
    out: W,
    chunk_records: usize,
    buf: Vec<TraceRecord>,
    summaries: Vec<ChunkSummary>,
    /// Bytes written so far (header + finished chunks).
    written: u64,
    scratch: Vec<u8>,
}

impl<W: Write> StrcWriter<W> {
    /// Start a `.strc` stream on `out` (writes the header eagerly).
    pub fn new(mut out: W, chunk_records: usize) -> Result<Self, StrcError> {
        out.write_all(MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        Ok(StrcWriter {
            out,
            chunk_records: chunk_records.max(1),
            buf: Vec::new(),
            summaries: Vec::new(),
            written: 8,
            scratch: Vec::new(),
        })
    }

    /// Append one record.
    pub fn push(&mut self, rec: &TraceRecord) -> Result<(), StrcError> {
        self.buf.push(rec.clone());
        if self.buf.len() >= self.chunk_records {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Bytes committed to the stream so far (buffered records excluded).
    pub fn bytes_written(&self) -> u64 {
        self.written
    }

    fn flush_chunk(&mut self) -> Result<(), StrcError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let mut summary = summarize(&self.buf);
        self.scratch.clear();
        for rec in &self.buf {
            encode_record(rec, &mut self.scratch);
        }
        summary.offset = self.written;
        summary.byte_len = self.scratch.len() as u32;
        self.out
            .write_all(&(self.scratch.len() as u32).to_le_bytes())?;
        self.out.write_all(&self.scratch)?;
        self.written += 4 + self.scratch.len() as u64;
        self.summaries.push(summary);
        self.buf.clear();
        Ok(())
    }

    /// Flush the tail chunk, write the footer index, and return the
    /// underlying writer.
    pub fn finish(mut self) -> Result<W, StrcError> {
        self.flush_chunk()?;
        let mut footer = Vec::new();
        footer.extend_from_slice(&(self.summaries.len() as u32).to_le_bytes());
        for s in &self.summaries {
            s.encode(&mut footer);
        }
        let footer_len = footer.len() as u32;
        self.out.write_all(&footer)?;
        self.out.write_all(&footer_len.to_le_bytes())?;
        self.out.write_all(FOOTER_MAGIC)?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Indexed `.strc` reader: the footer summaries up front, chunk
/// decoding on demand, and counters recording how much of the file a
/// query actually touched.
#[derive(Debug)]
pub struct StrcReader {
    file: File,
    summaries: Vec<ChunkSummary>,
    /// Chunks decoded so far (queries use this to prove index skips).
    pub chunks_decoded: u64,
}

impl StrcReader {
    /// Open a `.strc` file and parse its footer index.
    pub fn open(path: &Path) -> Result<StrcReader, StrcError> {
        let mut file = File::open(path)?;
        let total = file.seek(SeekFrom::End(0))?;
        if total < 16 {
            return Err(StrcError::corrupt(0, "file too short for header + footer"));
        }
        let mut head = [0u8; 8];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut head)?;
        if &head[..4] != MAGIC {
            return Err(StrcError::corrupt(0, "bad magic (not a .strc file)"));
        }
        let version = u32::from_le_bytes(head[4..8].try_into().unwrap());
        if version == 0 || version > VERSION {
            return Err(StrcError::corrupt(
                4,
                format!("unsupported version {version}"),
            ));
        }
        let mut tail = [0u8; 8];
        file.seek(SeekFrom::Start(total - 8))?;
        file.read_exact(&mut tail)?;
        if &tail[4..8] != FOOTER_MAGIC {
            return Err(StrcError::corrupt(
                total - 4,
                "bad footer magic (truncated file?)",
            ));
        }
        let footer_len = u32::from_le_bytes(tail[..4].try_into().unwrap()) as u64;
        if footer_len + 16 > total {
            return Err(StrcError::corrupt(total - 8, "footer length exceeds file"));
        }
        let footer_start = total - 8 - footer_len;
        file.seek(SeekFrom::Start(footer_start))?;
        let mut footer = vec![0u8; footer_len as usize];
        file.read_exact(&mut footer)?;
        let mut cur = Cursor::new(&footer, footer_start);
        let count = cur.u32()? as usize;
        let mut summaries = Vec::with_capacity(count);
        for _ in 0..count {
            summaries.push(ChunkSummary::decode(&mut cur, version)?);
        }
        if !cur.done() {
            return Err(StrcError::corrupt(
                footer_start + cur.pos as u64,
                "trailing bytes in footer index",
            ));
        }
        Ok(StrcReader {
            file,
            summaries,
            chunks_decoded: 0,
        })
    }

    /// The footer index.
    pub fn summaries(&self) -> &[ChunkSummary] {
        &self.summaries
    }

    /// Number of chunks in the file.
    pub fn chunk_count(&self) -> usize {
        self.summaries.len()
    }

    /// Total records across all chunks (from the index alone).
    pub fn record_count(&self) -> u64 {
        self.summaries.iter().map(|s| s.records as u64).sum()
    }

    /// Decode chunk `i`.
    pub fn read_chunk(&mut self, i: usize) -> Result<Vec<TraceRecord>, StrcError> {
        let s = self.summaries[i].clone();
        self.file.seek(SeekFrom::Start(s.offset))?;
        let mut len = [0u8; 4];
        self.file.read_exact(&mut len)?;
        let len = u32::from_le_bytes(len);
        if len != s.byte_len {
            return Err(StrcError::corrupt(
                s.offset,
                format!("chunk length {len} disagrees with index {}", s.byte_len),
            ));
        }
        let mut payload = vec![0u8; len as usize];
        self.file.read_exact(&mut payload)?;
        self.chunks_decoded += 1;
        let records = decode_chunk(&payload, s.offset + 4)?;
        if records.len() as u32 != s.records {
            return Err(StrcError::corrupt(
                s.offset,
                format!(
                    "chunk has {} records, index says {}",
                    records.len(),
                    s.records
                ),
            ));
        }
        Ok(records)
    }

    /// Decode every chunk in order.
    pub fn read_all(&mut self) -> Result<Vec<TraceRecord>, StrcError> {
        let mut out = Vec::with_capacity(self.record_count() as usize);
        for i in 0..self.summaries.len() {
            out.extend(self.read_chunk(i)?);
        }
        Ok(out)
    }
}

/// Write `records` to `path` as a single `.strc` file.
pub fn write_strc(
    path: &Path,
    records: &[TraceRecord],
    chunk_records: usize,
) -> Result<(), StrcError> {
    let file = File::create(path)?;
    let mut w = StrcWriter::new(std::io::BufWriter::new(file), chunk_records)?;
    for rec in records {
        w.push(rec)?;
    }
    w.finish()?;
    Ok(())
}

/// Read every record of a `.strc` file.
pub fn read_strc(path: &Path) -> Result<Vec<TraceRecord>, StrcError> {
    StrcReader::open(path)?.read_all()
}

/// Size-rotating `.strc` writer for multi-GB fleet traces: records go
/// to `<stem>.0001.strc`, and whenever a finished chunk pushes the
/// current file past `max_bytes` the writer seals it (footer included)
/// and opens `<stem>.0002.strc`, and so on. Every rotated file is a
/// complete, independently readable `.strc`.
pub struct RotatingStrcWriter {
    stem: PathBuf,
    max_bytes: u64,
    chunk_records: usize,
    current: Option<StrcWriter<std::io::BufWriter<File>>>,
    index: u32,
    paths: Vec<PathBuf>,
}

impl RotatingStrcWriter {
    /// Rotate over `<stem>.NNNN.strc` files of at most ~`max_bytes`
    /// each (the limit is checked at chunk granularity, so files exceed
    /// it by at most one chunk).
    pub fn new(stem: impl Into<PathBuf>, max_bytes: u64, chunk_records: usize) -> Self {
        RotatingStrcWriter {
            stem: stem.into(),
            max_bytes: max_bytes.max(1),
            chunk_records: chunk_records.max(1),
            current: None,
            index: 0,
            paths: Vec::new(),
        }
    }

    fn file_path(&self, index: u32) -> PathBuf {
        let stem = self.stem.display();
        PathBuf::from(format!("{stem}.{index:04}.strc"))
    }

    /// Append one record, rotating first if the current file is full.
    pub fn push(&mut self, rec: &TraceRecord) -> Result<(), StrcError> {
        if let Some(w) = &self.current {
            if w.bytes_written() >= self.max_bytes {
                self.rotate()?;
            }
        }
        if self.current.is_none() {
            self.index += 1;
            let path = self.file_path(self.index);
            let file = File::create(&path)?;
            self.paths.push(path);
            self.current = Some(StrcWriter::new(
                std::io::BufWriter::new(file),
                self.chunk_records,
            )?);
        }
        self.current.as_mut().expect("writer open").push(rec)
    }

    fn rotate(&mut self) -> Result<(), StrcError> {
        if let Some(w) = self.current.take() {
            w.finish()?;
        }
        Ok(())
    }

    /// Seal the current file and return every path written, in order.
    pub fn finish(mut self) -> Result<Vec<PathBuf>, StrcError> {
        self.rotate()?;
        Ok(self.paths)
    }
}

/// Convert between trace formats by file extension: `.strc` ↔ anything
/// else (treated as JSONL). Returns the number of records moved.
pub fn convert_file(input: &Path, output: &Path) -> Result<u64, ConvertError> {
    let in_strc = input.extension().is_some_and(|e| e == "strc");
    let out_strc = output.extension().is_some_and(|e| e == "strc");
    let records = if in_strc {
        read_strc(input).map_err(ConvertError::Strc)?
    } else {
        let text = std::fs::read_to_string(input).map_err(|e| ConvertError::Strc(e.into()))?;
        crate::trace::parse_jsonl(&text).map_err(ConvertError::Jsonl)?
    };
    if out_strc {
        write_strc(output, &records, DEFAULT_CHUNK_RECORDS).map_err(ConvertError::Strc)?;
    } else {
        std::fs::write(output, crate::trace::to_jsonl(&records))
            .map_err(|e| ConvertError::Strc(e.into()))?;
    }
    Ok(records.len() as u64)
}

/// A [`convert_file`] failure: either side's parse/IO error.
#[derive(Debug)]
pub enum ConvertError {
    /// The `.strc` side (or plain I/O) failed.
    Strc(StrcError),
    /// The JSONL side failed to parse.
    Jsonl(crate::trace::ParseError),
}

impl fmt::Display for ConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvertError::Strc(e) => write!(f, "{e}"),
            ConvertError::Jsonl(e) => write!(f, "invalid JSONL trace: {e}"),
        }
    }
}

impl std::error::Error for ConvertError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DeathCause, DecommissionCause};

    fn sample_records(n: u64) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| TraceRecord {
                seq: i,
                time: SimTime::new((i / 10) as u32, i),
                event: match i % 7 {
                    0 => TraceEvent::PageTired {
                        fpage: i,
                        from: (i % 4) as u8,
                        to: (i % 4) as u8 + 1,
                    },
                    1 => TraceEvent::GcPass {
                        block: i,
                        relocated: i * 3,
                    },
                    2 => TraceEvent::ReadRetry {
                        mdisk: (i % 5) as u32,
                        retries: 2,
                    },
                    3 => TraceEvent::ScrubRefresh {
                        fpage: i,
                        opages: 4,
                    },
                    4 => TraceEvent::MdiskDecommissioned {
                        id: (i % 5) as u32,
                        valid_lbas: 10,
                        draining: i % 2 == 0,
                        cause: DecommissionCause::GcHeadroom,
                    },
                    5 => TraceEvent::FleetDeviceDied {
                        device: (i % 9) as u32,
                        cause: DeathCause::Afr,
                    },
                    _ => TraceEvent::ChunkReReplicated {
                        chunk: i,
                        bytes: 4096,
                    },
                },
            })
            .collect()
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("salamander-strc-{}-{name}", std::process::id()))
    }

    #[test]
    fn empty_trace_round_trips() {
        let path = tmp("empty.strc");
        write_strc(&path, &[], 8).unwrap();
        let back = read_strc(&path).unwrap();
        assert!(back.is_empty());
        let r = StrcReader::open(&path).unwrap();
        assert_eq!(r.chunk_count(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn records_round_trip_across_chunk_boundaries() {
        // 25 records at 8/chunk: 3 full chunks + 1 single-record chunk.
        let records = sample_records(25);
        let path = tmp("chunks.strc");
        write_strc(&path, &records, 8).unwrap();
        let mut r = StrcReader::open(&path).unwrap();
        assert_eq!(r.chunk_count(), 4);
        assert_eq!(r.record_count(), 25);
        assert_eq!(r.summaries()[3].records, 1, "tail chunk holds 1 record");
        assert_eq!(r.read_all().unwrap(), records);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn summaries_describe_their_chunks() {
        let records = sample_records(40);
        let path = tmp("summaries.strc");
        write_strc(&path, &records, 10).unwrap();
        let mut r = StrcReader::open(&path).unwrap();
        for i in 0..r.chunk_count() {
            let s = r.summaries()[i].clone();
            let recs = r.read_chunk(i).unwrap();
            let expect = summarize(&recs);
            assert_eq!(s.kind_mask, expect.kind_mask);
            assert_eq!(s.counts, expect.counts);
            assert_eq!(s.transitions, expect.transitions);
            assert_eq!(s.id_bloom, expect.id_bloom);
            assert_eq!(s.first, recs.first().unwrap().time);
            assert_eq!(s.last, recs.last().unwrap().time);
            assert_eq!(s.gc_relocated, expect.gc_relocated);
            assert_eq!(s.rerep_bytes, expect.rerep_bytes);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn kind_and_id_filters_never_false_negative() {
        let records = sample_records(64);
        let path = tmp("filters.strc");
        write_strc(&path, &records, 16).unwrap();
        let mut r = StrcReader::open(&path).unwrap();
        for i in 0..r.chunk_count() {
            let s = r.summaries()[i].clone();
            for rec in r.read_chunk(i).unwrap() {
                assert!(s.may_contain_kinds(EventKind::of(&rec.event).bit()));
                if let Some(id) = event_id(&rec.event) {
                    assert!(s.may_concern(id));
                }
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rotation_splits_and_each_file_reads_alone() {
        let records = sample_records(200);
        let stem = tmp("rot");
        let mut w = RotatingStrcWriter::new(&stem, 700, 8);
        for rec in &records {
            w.push(rec).unwrap();
        }
        let paths = w.finish().unwrap();
        assert!(paths.len() > 1, "expected rotation, got {paths:?}");
        assert!(paths[0].to_string_lossy().ends_with(".0001.strc"));
        let mut back = Vec::new();
        for p in &paths {
            back.extend(read_strc(p).unwrap());
        }
        assert_eq!(back, records);
        for p in paths {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn convert_is_lossless_both_ways() {
        let records = sample_records(33);
        let jsonl = tmp("conv.jsonl");
        let strc = tmp("conv.strc");
        let jsonl2 = tmp("conv2.jsonl");
        std::fs::write(&jsonl, crate::trace::to_jsonl(&records)).unwrap();
        assert_eq!(convert_file(&jsonl, &strc).unwrap(), 33);
        assert_eq!(read_strc(&strc).unwrap(), records);
        assert_eq!(convert_file(&strc, &jsonl2).unwrap(), 33);
        assert_eq!(
            std::fs::read(&jsonl).unwrap(),
            std::fs::read(&jsonl2).unwrap(),
            "JSONL → .strc → JSONL is byte-identical"
        );
        for p in [jsonl, strc, jsonl2] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn corrupt_files_fail_with_typed_errors() {
        let path = tmp("corrupt.strc");
        std::fs::write(&path, b"JSONL{not strc}xxxxxxxxxxxxxxxx").unwrap();
        match StrcReader::open(&path) {
            Err(StrcError::Corrupt { reason, .. }) => {
                assert!(reason.contains("magic"), "{reason}")
            }
            other => panic!("expected corrupt error, got {other:?}"),
        }
        // Truncate a valid file: footer magic check must catch it.
        write_strc(&path, &sample_records(20), 8).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(matches!(
            StrcReader::open(&path),
            Err(StrcError::Corrupt { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    /// A version-1 footer summary: identical to v2 minus the
    /// `FleetRollup` count slot.
    fn encode_summary_v1(s: &ChunkSummary, out: &mut Vec<u8>) {
        out.extend_from_slice(&s.offset.to_le_bytes());
        out.extend_from_slice(&s.byte_len.to_le_bytes());
        out.extend_from_slice(&s.records.to_le_bytes());
        out.extend_from_slice(&s.first.day.to_le_bytes());
        out.extend_from_slice(&s.first.op.to_le_bytes());
        out.extend_from_slice(&s.last.day.to_le_bytes());
        out.extend_from_slice(&s.last.op.to_le_bytes());
        out.extend_from_slice(&(s.kind_mask as u16).to_le_bytes());
        out.extend_from_slice(&s.id_bloom.to_le_bytes());
        for c in &s.counts[..EVENT_KINDS_V1] {
            out.extend_from_slice(&c.to_le_bytes());
        }
        for t in &s.transitions {
            out.extend_from_slice(&t.to_le_bytes());
        }
        out.extend_from_slice(&s.gc_relocated.to_le_bytes());
        out.extend_from_slice(&s.rerep_bytes.to_le_bytes());
    }

    #[test]
    fn version1_files_still_open() {
        // Hand-build a v1 file: the record encoding of pre-rollup
        // kinds is unchanged, only the footer summary is narrower.
        let records = sample_records(5);
        let mut payload = Vec::new();
        for r in &records {
            encode_record(r, &mut payload);
        }
        let mut s = summarize(&records);
        s.offset = 8;
        s.byte_len = payload.len() as u32;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let mut footer = Vec::new();
        footer.extend_from_slice(&1u32.to_le_bytes());
        encode_summary_v1(&s, &mut footer);
        bytes.extend_from_slice(&footer);
        bytes.extend_from_slice(&(footer.len() as u32).to_le_bytes());
        bytes.extend_from_slice(FOOTER_MAGIC);
        let path = tmp("v1.strc");
        std::fs::write(&path, &bytes).unwrap();
        let mut r = StrcReader::open(&path).unwrap();
        assert_eq!(r.summaries()[0].counts, s.counts);
        assert_eq!(r.read_all().unwrap(), records);
        let _ = std::fs::remove_file(&path);
    }

    /// A version-2 footer summary: identical to v3 minus the
    /// `LatencyRollup` count slot.
    fn encode_summary_v2(s: &ChunkSummary, out: &mut Vec<u8>) {
        out.extend_from_slice(&s.offset.to_le_bytes());
        out.extend_from_slice(&s.byte_len.to_le_bytes());
        out.extend_from_slice(&s.records.to_le_bytes());
        out.extend_from_slice(&s.first.day.to_le_bytes());
        out.extend_from_slice(&s.first.op.to_le_bytes());
        out.extend_from_slice(&s.last.day.to_le_bytes());
        out.extend_from_slice(&s.last.op.to_le_bytes());
        out.extend_from_slice(&(s.kind_mask as u16).to_le_bytes());
        out.extend_from_slice(&s.id_bloom.to_le_bytes());
        for c in &s.counts[..EVENT_KINDS_V2] {
            out.extend_from_slice(&c.to_le_bytes());
        }
        for t in &s.transitions {
            out.extend_from_slice(&t.to_le_bytes());
        }
        out.extend_from_slice(&s.gc_relocated.to_le_bytes());
        out.extend_from_slice(&s.rerep_bytes.to_le_bytes());
    }

    #[test]
    fn version2_files_still_open() {
        // Hand-build a v2 file: record encoding of pre-latency kinds
        // is unchanged, only the footer summary is narrower.
        let records = sample_records(5);
        let mut payload = Vec::new();
        for r in &records {
            encode_record(r, &mut payload);
        }
        let mut s = summarize(&records);
        s.offset = 8;
        s.byte_len = payload.len() as u32;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let mut footer = Vec::new();
        footer.extend_from_slice(&1u32.to_le_bytes());
        encode_summary_v2(&s, &mut footer);
        bytes.extend_from_slice(&footer);
        bytes.extend_from_slice(&(footer.len() as u32).to_le_bytes());
        bytes.extend_from_slice(FOOTER_MAGIC);
        let path = tmp("v2.strc");
        std::fs::write(&path, &bytes).unwrap();
        let mut r = StrcReader::open(&path).unwrap();
        assert_eq!(r.summaries()[0].counts, s.counts);
        assert_eq!(r.read_all().unwrap(), records);
        let _ = std::fs::remove_file(&path);
    }

    /// A version-3 footer summary: u16 kind mask and no
    /// `ClusterRollup` count slot.
    fn encode_summary_v3(s: &ChunkSummary, out: &mut Vec<u8>) {
        out.extend_from_slice(&s.offset.to_le_bytes());
        out.extend_from_slice(&s.byte_len.to_le_bytes());
        out.extend_from_slice(&s.records.to_le_bytes());
        out.extend_from_slice(&s.first.day.to_le_bytes());
        out.extend_from_slice(&s.first.op.to_le_bytes());
        out.extend_from_slice(&s.last.day.to_le_bytes());
        out.extend_from_slice(&s.last.op.to_le_bytes());
        out.extend_from_slice(&(s.kind_mask as u16).to_le_bytes());
        out.extend_from_slice(&s.id_bloom.to_le_bytes());
        for c in &s.counts[..EVENT_KINDS_V3] {
            out.extend_from_slice(&c.to_le_bytes());
        }
        for t in &s.transitions {
            out.extend_from_slice(&t.to_le_bytes());
        }
        out.extend_from_slice(&s.gc_relocated.to_le_bytes());
        out.extend_from_slice(&s.rerep_bytes.to_le_bytes());
    }

    #[test]
    fn version3_files_still_open() {
        // Hand-build a v3 file: record encoding of pre-cluster kinds
        // is unchanged; the footer summary still has a u16 kind mask
        // and one fewer count slot.
        let records = sample_records(5);
        let mut payload = Vec::new();
        for r in &records {
            encode_record(r, &mut payload);
        }
        let mut s = summarize(&records);
        s.offset = 8;
        s.byte_len = payload.len() as u32;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&3u32.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let mut footer = Vec::new();
        footer.extend_from_slice(&1u32.to_le_bytes());
        encode_summary_v3(&s, &mut footer);
        bytes.extend_from_slice(&footer);
        bytes.extend_from_slice(&(footer.len() as u32).to_le_bytes());
        bytes.extend_from_slice(FOOTER_MAGIC);
        let path = tmp("v3.strc");
        std::fs::write(&path, &bytes).unwrap();
        let mut r = StrcReader::open(&path).unwrap();
        assert_eq!(r.summaries()[0].counts, s.counts);
        assert_eq!(r.summaries()[0].kind_mask, s.kind_mask);
        assert_eq!(r.read_all().unwrap(), records);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cluster_rollups_round_trip_and_index() {
        let mut rollup = crate::cluster::ClusterRollup::empty(77);
        rollup.full = 1000;
        rollup.degraded = 12;
        rollup.critical = 1;
        rollup.lost = 2;
        rollup.backlog_chunks = 13;
        rollup.backlog_bytes = 13 << 18;
        rollup.repair_bytes = 99 << 18;
        rollup.drain_bytes = 44 << 18;
        rollup.data_at_risk = 123_456;
        rollup.fullness[3] = 7;
        rollup.exposure[2] = 40;
        rollup.exposure_windows = 40;
        let mut records = sample_records(10);
        records.push(TraceRecord {
            seq: 10,
            time: SimTime::new(77, 0),
            event: TraceEvent::ClusterRollup(rollup),
        });
        let path = tmp("cluster.strc");
        write_strc(&path, &records, 4).unwrap();
        let mut r = StrcReader::open(&path).unwrap();
        let tail = r.summaries().last().unwrap();
        assert!(tail.may_contain_kinds(EventKind::ClusterRollup.bit()));
        assert_eq!(tail.count(EventKind::ClusterRollup), 1);
        assert!(
            !r.summaries()[0].may_contain_kinds(EventKind::ClusterRollup.bit()),
            "head chunks must be skippable for cluster queries"
        );
        assert_eq!(r.read_all().unwrap(), records);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn latency_rollups_round_trip_and_index() {
        let mut rollup = crate::latency::LatencyRollup::empty(45);
        rollup.classes[0].observe(55_120, 1000);
        rollup.classes[0].observe(71_786, 37);
        rollup.classes[2].observe(3_650_000, 2);
        let mut records = sample_records(10);
        records.push(TraceRecord {
            seq: 10,
            time: SimTime::new(45, 0),
            event: TraceEvent::LatencyRollup(rollup),
        });
        let path = tmp("latency.strc");
        write_strc(&path, &records, 4).unwrap();
        let mut r = StrcReader::open(&path).unwrap();
        let tail = r.summaries().last().unwrap();
        assert!(tail.may_contain_kinds(EventKind::LatencyRollup.bit()));
        assert_eq!(tail.count(EventKind::LatencyRollup), 1);
        assert!(
            !r.summaries()[0].may_contain_kinds(EventKind::LatencyRollup.bit()),
            "head chunks must be skippable for latency queries"
        );
        assert_eq!(r.read_all().unwrap(), records);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fleet_rollups_round_trip_and_index() {
        let rollup = crate::rollup::FleetRollup {
            day: 30,
            alive: 97,
            dead_wear: 2,
            dead_afr: 1,
            dying: 4,
            capacity_opages: 123_456_789,
            wear: (0..20).collect(),
            pec: vec![5; 20],
            usable: vec![0; 20],
            health: vec![1; 20],
        };
        let mut records = sample_records(10);
        records.push(TraceRecord {
            seq: 10,
            time: SimTime::new(30, 0),
            event: TraceEvent::FleetRollup(rollup),
        });
        let path = tmp("rollup.strc");
        write_strc(&path, &records, 4).unwrap();
        let mut r = StrcReader::open(&path).unwrap();
        let tail = r.summaries().last().unwrap();
        assert!(tail.may_contain_kinds(EventKind::FleetRollup.bit()));
        assert_eq!(tail.count(EventKind::FleetRollup), 1);
        assert_eq!(r.read_all().unwrap(), records);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn run_marker_labels_survive() {
        let records = vec![
            TraceRecord {
                seq: 0,
                time: SimTime::ZERO,
                event: TraceEvent::RunMarker {
                    label: "mode=Shrink/δ-test".into(),
                },
            },
            TraceRecord {
                seq: 1,
                time: SimTime::new(1, 2),
                event: TraceEvent::DeviceDied {
                    cause: DeathCause::FullyShrunk,
                },
            },
        ];
        let path = tmp("marker.strc");
        write_strc(&path, &records, 4096).unwrap();
        assert_eq!(read_strc(&path).unwrap(), records);
        let _ = std::fs::remove_file(&path);
    }
}
