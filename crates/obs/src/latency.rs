//! Deterministic sim-time I/O latency observability (DESIGN.md §15).
//!
//! The paper's §4.2 performance story — reads slow down as fPages
//! regenerate to lower levels (the `4/(4−L)` multi-read factor),
//! retries and GC steal device time — becomes a first-class observable
//! here. The FTL charges every host op an integer-nanosecond cost from
//! a [`CostModelNs`] quantized once from the flash timing parameters,
//! folds the samples into per-class log2-bucket histograms, and drains
//! one [`LatencyRollup`] per sampled day into the trace. The fleet
//! engines produce the same record statistically via [`LatencyKernel`].
//!
//! Determinism is by construction, exactly like [`crate::rollup`]:
//! costs are integers (no float ever crosses a merge boundary), bins
//! are saturating `u64` counters, shards merge element-wise in device
//! order, and percentiles are extracted exactly from bucket edges with
//! nearest-rank. Two engines or thread counts producing the same
//! samples produce byte-identical rollups.
//!
//! The histogram is HDR-style: values below [`LAT_SUB`] get exact
//! buckets; above that, each power-of-two octave splits into
//! [`LAT_SUB`] linear sub-buckets, so the relative quantization error
//! of any reported edge is at most `1/LAT_SUB` (12.5%).

use serde::{Deserialize, Serialize};

/// Op classes, in rollup record order.
pub const LAT_CLASSES: [&str; 5] = ["host_read", "host_write", "gc", "scrub", "regen"];

/// Percentile stats extracted for tables and series queries, as
/// permille ranks paired with their names.
pub const LAT_STATS: [(&str, u32); 4] = [("p50", 500), ("p90", 900), ("p99", 990), ("p999", 999)];

/// Linear sub-buckets per octave (must be a power of two).
pub const LAT_SUB: usize = 8;

const LAT_SUB_BITS: usize = 3; // log2(LAT_SUB)

/// Histogram width: 8 exact low buckets + 31 octaves × 8 sub-buckets
/// covers 0 ns .. ~17 s with ≤12.5% relative error, clamped above.
pub const LAT_BUCKETS: usize = 256;

/// An op class, doubling as the index into [`LatencyRollup::classes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum LatClass {
    /// Host read (sense + retries + ECC + transfer).
    HostRead = 0,
    /// Host write (program + transfer, charged at submission).
    HostWrite = 1,
    /// One whole GC pass (relocations + erase).
    Gc = 2,
    /// One scrub patrol invocation (sense + refresh transfer).
    Scrub = 3,
    /// One regeneration copy (filling a regenerated minidisk).
    Regen = 4,
}

impl LatClass {
    /// Every class, in record order.
    pub const ALL: [LatClass; 5] = [
        LatClass::HostRead,
        LatClass::HostWrite,
        LatClass::Gc,
        LatClass::Scrub,
        LatClass::Regen,
    ];

    /// The class's name, as used in queries and endpoints.
    pub fn name(self) -> &'static str {
        LAT_CLASSES[self as usize]
    }
}

/// Histogram bucket for a nanosecond value. Values `< LAT_SUB` map to
/// their own exact bucket; above that, bucket
/// `LAT_SUB + octave·LAT_SUB + sub` where `sub` is the next
/// [`LAT_SUB_BITS`] bits after the leading one. Monotone in `ns`,
/// clamped to the last bucket.
pub fn lat_bucket(ns: u64) -> usize {
    if ns < LAT_SUB as u64 {
        return ns as usize;
    }
    let msb = 63 - ns.leading_zeros() as usize; // >= LAT_SUB_BITS
    let octave = msb - LAT_SUB_BITS;
    let sub = ((ns >> (msb - LAT_SUB_BITS)) & (LAT_SUB as u64 - 1)) as usize;
    (LAT_SUB + octave * LAT_SUB + sub).min(LAT_BUCKETS - 1)
}

/// Exclusive upper edge (ns) of bucket `i` — the value percentiles
/// report. The inverse of [`lat_bucket`]: every `ns` in bucket `i`
/// satisfies `ns < bucket_upper_ns(i)`.
pub fn bucket_upper_ns(i: usize) -> u64 {
    if i < LAT_SUB {
        return i as u64 + 1;
    }
    let octave = (i - LAT_SUB) / LAT_SUB;
    let sub = ((i - LAT_SUB) % LAT_SUB) as u64;
    (LAT_SUB as u64 + sub + 1) << octave
}

/// Exact nearest-rank percentile from a latency histogram, reported as
/// the upper edge of the bucket holding the rank-th sample. `q` is in
/// permille (`990` = p99). `None` on an empty histogram.
pub fn percentile_ns(bins: &[u64], q_permille: u32) -> Option<u64> {
    let total: u64 = bins.iter().fold(0u64, |a, &b| a.saturating_add(b));
    if total == 0 || bins.is_empty() {
        return None;
    }
    let rank = (u128::from(q_permille) * u128::from(total))
        .div_ceil(1000)
        .max(1) as u64;
    let mut cum = 0u64;
    for (i, &b) in bins.iter().enumerate() {
        cum = cum.saturating_add(b);
        if cum >= rank {
            return Some(bucket_upper_ns(i));
        }
    }
    Some(bucket_upper_ns(bins.len() - 1))
}

/// Render a nanosecond value as microseconds with fixed precision —
/// the deterministic human form used by `obsctl` tables.
pub fn fmt_ns(ns: u64) -> String {
    format!("{}.{:03}us", ns / 1000, ns % 1000)
}

/// One op class's latency distribution: exact sample count and total
/// (so the mean is exact), plus the bucketed histogram. All counters
/// saturate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassLatency {
    /// Samples observed (weighted).
    pub count: u64,
    /// Sum of sample costs in ns (weighted, saturating).
    pub total_ns: u64,
    /// [`LAT_BUCKETS`]-wide histogram of sample costs.
    pub bins: Vec<u64>,
}

impl Default for ClassLatency {
    fn default() -> Self {
        ClassLatency {
            count: 0,
            total_ns: 0,
            bins: vec![0; LAT_BUCKETS],
        }
    }
}

impl ClassLatency {
    /// Fold `weight` samples of `ns` each into the distribution.
    pub fn observe(&mut self, ns: u64, weight: u64) {
        if weight == 0 {
            return;
        }
        self.count = self.count.saturating_add(weight);
        self.total_ns = self.total_ns.saturating_add(ns.saturating_mul(weight));
        let i = lat_bucket(ns).min(self.bins.len().saturating_sub(1));
        if let Some(slot) = self.bins.get_mut(i) {
            *slot = slot.saturating_add(weight);
        }
    }

    /// Exact mean cost (integer ns), `None` when empty.
    pub fn mean_ns(&self) -> Option<u64> {
        (self.count > 0).then(|| self.total_ns / self.count)
    }

    /// Nearest-rank percentile (permille), `None` when empty.
    pub fn percentile(&self, q_permille: u32) -> Option<u64> {
        percentile_ns(&self.bins, q_permille)
    }

    /// Element-wise saturating merge.
    pub fn merge(&mut self, other: &ClassLatency) {
        self.count = self.count.saturating_add(other.count);
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a = a.saturating_add(*b);
        }
    }
}

/// One per-sampled-day latency aggregate: a [`ClassLatency`] per
/// [`LAT_CLASSES`] entry, in that order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyRollup {
    /// Simulated day (or sample ordinal, for sims without a day clock).
    pub day: u32,
    /// Per-class distributions, indexed like [`LAT_CLASSES`].
    pub classes: Vec<ClassLatency>,
}

impl LatencyRollup {
    /// An all-zero rollup for `day`.
    pub fn empty(day: u32) -> Self {
        LatencyRollup {
            day,
            classes: (0..LAT_CLASSES.len())
                .map(|_| ClassLatency::default())
                .collect(),
        }
    }

    /// The named class's distribution, if `name` is a [`LAT_CLASSES`]
    /// entry present in this record.
    pub fn class(&self, name: &str) -> Option<&ClassLatency> {
        let i = LAT_CLASSES.iter().position(|&c| c == name)?;
        self.classes.get(i)
    }

    /// True when no class observed any sample.
    pub fn is_empty(&self) -> bool {
        self.classes.iter().all(|c| c.count == 0)
    }

    /// A scalar series value for `/latency/series` and `obsctl`:
    /// `stat` is one of `p50|p90|p99|p999|mean|count`. `None` for
    /// unknown names or empty distributions.
    pub fn stat(&self, class: &str, stat: &str) -> Option<u64> {
        let c = self.class(class)?;
        match stat {
            "count" => Some(c.count),
            "mean" => c.mean_ns(),
            _ => {
                let (_, q) = LAT_STATS.iter().find(|(name, _)| *name == stat)?;
                c.percentile(*q)
            }
        }
    }

    /// Element-wise saturating merge (keeps `self.day`).
    pub fn merge(&mut self, other: &LatencyRollup) {
        for (a, b) in self.classes.iter_mut().zip(&other.classes) {
            a.merge(b);
        }
    }
}

/// The integer-nanosecond op cost model, quantized once from the flash
/// timing parameters (`flash::timing::TimingModel`) so that no float
/// ever reaches a histogram or a merge. All downstream arithmetic is
/// u64 adds/multiplies and one integer division for the `per/(per−L)`
/// multi-read factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(default)]
pub struct CostModelNs {
    /// Array read (sense) time, ns.
    pub read_ns: u64,
    /// Array program time, ns.
    pub prog_ns: u64,
    /// Block erase time, ns.
    pub erase_ns: u64,
    /// Extra latency per ECC decode, ns.
    pub ecc_ns: u64,
    /// Channel bandwidth, bytes per µs (integer; 800 = 800 MB/s).
    pub xfer_bytes_per_us: u64,
}

impl Default for CostModelNs {
    /// The quantization of the default mid-generation 3D TLC timing
    /// (tR 50 µs, tPROG 600 µs, tBERS 3 ms, ECC 5 µs, ONFI ~800 MB/s)
    /// — byte-identical to `CostModelNs::from_us` over
    /// `flash::timing::TimingModel::default()`, pinned by a test there.
    fn default() -> Self {
        CostModelNs {
            read_ns: 50_000,
            prog_ns: 600_000,
            erase_ns: 3_000_000,
            ecc_ns: 5_000,
            xfer_bytes_per_us: 800,
        }
    }
}

impl CostModelNs {
    /// Quantize microsecond timing parameters to integer nanoseconds.
    pub fn from_us(
        t_read_us: f64,
        t_prog_us: f64,
        t_erase_us: f64,
        ecc_extra_us: f64,
        xfer_bytes_per_us: f64,
    ) -> Self {
        let ns = |us: f64| (us * 1000.0).round().max(0.0) as u64;
        CostModelNs {
            read_ns: ns(t_read_us),
            prog_ns: ns(t_prog_us),
            erase_ns: ns(t_erase_us),
            ecc_ns: ns(ecc_extra_us),
            xfer_bytes_per_us: (xfer_bytes_per_us.round().max(1.0)) as u64,
        }
    }

    /// Bus transfer time for `bytes`, ns.
    pub fn xfer_ns(&self, bytes: u64) -> u64 {
        bytes.saturating_mul(1000) / self.xfer_bytes_per_us.max(1)
    }

    /// The §4.2 multi-read sense cost: an fPage at tiredness level `L`
    /// yields only `per − L` useful oPages per sense, so serving one
    /// oPage costs `read_ns · per/(per−L)` of array time. Integer
    /// division; a dead level (`level >= per`) clamps to the full
    /// `per` senses.
    pub fn multi_read_ns(&self, per: u32, level: u32) -> u64 {
        let per = per.max(1) as u64;
        let useful = per.saturating_sub(level as u64).max(1);
        self.read_ns.saturating_mul(per) / useful
    }

    /// Full host-read cost for one oPage on a level-`level` page with
    /// `retries` extra senses: multi-read sense + retry senses + one
    /// ECC decode per sense attempt + transfer of the oPage.
    pub fn host_read_ns(&self, per: u32, level: u32, retries: u32, opage_bytes: u64) -> u64 {
        self.multi_read_ns(per, level)
            .saturating_add(self.read_ns.saturating_mul(retries as u64))
            .saturating_add(self.ecc_ns.saturating_mul(retries as u64 + 1))
            .saturating_add(self.xfer_ns(opage_bytes))
    }

    /// Host-write cost for one oPage, charged at submission
    /// (write-through attribution): program + transfer.
    pub fn host_write_ns(&self, opage_bytes: u64) -> u64 {
        self.prog_ns.saturating_add(self.xfer_ns(opage_bytes))
    }

    /// One whole GC pass as a single stall sample: each relocated
    /// oPage costs a sense + a program, plus the victim erase.
    pub fn gc_pass_ns(&self, relocated: u64) -> u64 {
        relocated
            .saturating_mul(self.read_ns.saturating_add(self.prog_ns))
            .saturating_add(self.erase_ns)
    }

    /// One scrub patrol invocation: the patrol sense + decode, plus
    /// transfer of whatever it refreshed (the re-program is charged by
    /// the flush path's writer, not here).
    pub fn scrub_ns(&self, refreshed_opages: u64, opage_bytes: u64) -> u64 {
        self.read_ns
            .saturating_add(self.ecc_ns)
            .saturating_add(self.xfer_ns(refreshed_opages.saturating_mul(opage_bytes)))
    }

    /// One regeneration copy: the host refills a regenerated minidisk
    /// of `msize_opages` oPages (program + transfer each).
    pub fn regen_ns(&self, msize_opages: u64, opage_bytes: u64) -> u64 {
        msize_opages.saturating_mul(self.host_write_ns(opage_bytes))
    }
}

/// Per-run latency accumulator the FTL charges into: one
/// [`ClassLatency`] per class, drained into a [`LatencyRollup`] at
/// every sample boundary. Ephemeral — never part of a snapshot.
#[derive(Debug, Clone, Default)]
pub struct LatencyAcc {
    classes: [ClassLatency; 5],
    any: bool,
}

impl LatencyAcc {
    /// An empty accumulator.
    pub fn new() -> Self {
        LatencyAcc {
            classes: Default::default(),
            any: false,
        }
    }

    /// Charge one op.
    pub fn charge(&mut self, class: LatClass, ns: u64) {
        self.classes[class as usize].observe(ns, 1);
        self.any = true;
    }

    /// True if anything was charged since the last drain.
    pub fn is_charged(&self) -> bool {
        self.any
    }

    /// Drain everything charged so far into a rollup for `day`.
    pub fn drain(&mut self, day: u32) -> LatencyRollup {
        let classes = std::mem::take(&mut self.classes);
        self.any = false;
        LatencyRollup {
            day,
            classes: classes.into_iter().collect(),
        }
    }
}

/// Per-shard fleet latency accumulator: `days` parallel sets of one
/// [`ClassLatency`] per class, observed per device per grid day and
/// merged in shard order — the latency counterpart of
/// [`crate::rollup::RollupKernel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyKernel {
    days: usize,
    /// `days × LAT_CLASSES.len()` distributions, day-major.
    slots: Vec<ClassLatency>,
}

impl LatencyKernel {
    /// An empty kernel over `days` grid days.
    pub fn new(days: usize) -> Self {
        LatencyKernel {
            days,
            slots: (0..days * LAT_CLASSES.len())
                .map(|_| ClassLatency::default())
                .collect(),
        }
    }

    /// Number of grid days this kernel covers.
    pub fn days(&self) -> usize {
        self.days
    }

    /// Fold `weight` samples of cost `ns` into grid day `gi`'s
    /// distribution for `class`.
    pub fn observe(&mut self, gi: usize, class: LatClass, ns: u64, weight: u64) {
        self.slots[gi * LAT_CLASSES.len() + class as usize].observe(ns, weight);
    }

    /// Merge another shard's distributions (element-wise saturating;
    /// commutative, but callers merge in shard order regardless).
    pub fn merge(&mut self, other: &LatencyKernel) {
        debug_assert_eq!(self.days, other.days);
        for (a, b) in self.slots.iter_mut().zip(&other.slots) {
            a.merge(b);
        }
    }

    /// Extract grid day `gi` as a [`LatencyRollup`] stamped `day`.
    pub fn day_rollup(&self, gi: usize, day: u32) -> LatencyRollup {
        let base = gi * LAT_CLASSES.len();
        LatencyRollup {
            day,
            classes: self.slots[base..base + LAT_CLASSES.len()].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_invert() {
        let mut last = 0usize;
        for ns in [
            0u64,
            1,
            7,
            8,
            9,
            100,
            4096,
            50_000,
            66_666,
            600_000,
            3_000_000,
            u64::MAX,
        ] {
            let b = lat_bucket(ns);
            assert!(b >= last, "bucket order broke at {ns}");
            last = b;
            if b < LAT_BUCKETS - 1 {
                assert!(ns < bucket_upper_ns(b), "{ns} outside bucket {b}");
            }
        }
        // Exact low buckets.
        assert_eq!(lat_bucket(0), 0);
        assert_eq!(lat_bucket(7), 7);
        assert_eq!(bucket_upper_ns(7), 8);
    }

    #[test]
    fn quantization_error_is_bounded() {
        // Reported upper edges stay within 1/LAT_SUB of the sample.
        for ns in [50_000u64, 66_666, 600_000, 3_000_000, 123_456_789] {
            let edge = bucket_upper_ns(lat_bucket(ns));
            assert!(edge > ns);
            assert!(
                (edge - ns) as f64 / ns as f64 <= 1.0 / LAT_SUB as f64 + 1e-12,
                "edge {edge} too far above {ns}"
            );
        }
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut c = ClassLatency::default();
        // 99 cheap samples, 1 expensive: p50/p90 report the cheap
        // bucket, p99 straddles, p999 reports the expensive one.
        c.observe(50_000, 99);
        c.observe(3_000_000, 1);
        let cheap = bucket_upper_ns(lat_bucket(50_000));
        let dear = bucket_upper_ns(lat_bucket(3_000_000));
        assert_eq!(c.percentile(500), Some(cheap));
        assert_eq!(c.percentile(900), Some(cheap));
        assert_eq!(c.percentile(990), Some(cheap)); // rank 99 of 100
        assert_eq!(c.percentile(999), Some(dear)); // rank 100
        assert_eq!(c.mean_ns(), Some((99 * 50_000 + 3_000_000) / 100));
        assert_eq!(percentile_ns(&[0; LAT_BUCKETS], 500), None);
    }

    #[test]
    fn cost_model_quantizes_the_timing_defaults() {
        // The flash TimingModel defaults, hand-quantized: tR 50 µs,
        // tPROG 600 µs, tBERS 3 ms, ECC 5 µs, 800 B/µs.
        let m = CostModelNs::from_us(50.0, 600.0, 3000.0, 5.0, 800.0);
        assert_eq!(m.read_ns, 50_000);
        assert_eq!(m.prog_ns, 600_000);
        assert_eq!(m.erase_ns, 3_000_000);
        assert_eq!(m.ecc_ns, 5_000);
        assert_eq!(m.xfer_ns(4096), 5120);
        // The §4.2 multi-read factor at 4 oPages/fPage.
        assert_eq!(m.multi_read_ns(4, 0), 50_000);
        assert_eq!(m.multi_read_ns(4, 1), 66_666); // 4/3, integer
        assert_eq!(m.multi_read_ns(4, 2), 100_000); // 4/2
        assert_eq!(m.multi_read_ns(4, 3), 200_000); // 4/1
                                                    // Retries add whole senses plus decodes.
        let base = m.host_read_ns(4, 0, 0, 4096);
        let retried = m.host_read_ns(4, 0, 2, 4096);
        assert_eq!(retried - base, 2 * 50_000 + 2 * 5_000);
    }

    #[test]
    fn acc_drains_and_resets() {
        let mut acc = LatencyAcc::new();
        assert!(!acc.is_charged());
        acc.charge(LatClass::HostRead, 55_120);
        acc.charge(LatClass::Gc, 3_650_000);
        assert!(acc.is_charged());
        let r = acc.drain(7);
        assert_eq!(r.day, 7);
        assert_eq!(r.class("host_read").unwrap().count, 1);
        assert_eq!(r.class("gc").unwrap().count, 1);
        assert_eq!(r.class("scrub").unwrap().count, 0);
        assert!(!acc.is_charged());
        assert!(acc.drain(8).is_empty());
    }

    #[test]
    fn kernel_merge_is_order_independent() {
        let mut a = LatencyKernel::new(2);
        let mut b = LatencyKernel::new(2);
        a.observe(0, LatClass::HostRead, 50_000, 10);
        a.observe(1, LatClass::HostWrite, 605_120, 3);
        b.observe(0, LatClass::HostRead, 66_666, 5);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        let day0 = ab.day_rollup(0, 100);
        assert_eq!(day0.day, 100);
        assert_eq!(day0.class("host_read").unwrap().count, 15);
        assert_eq!(day0.stat("host_write", "count"), Some(0));
    }

    #[test]
    fn rollup_stats_and_json_round_trip() {
        let mut r = LatencyRollup::empty(42);
        r.classes[0].observe(50_000, 90);
        r.classes[0].observe(66_666, 10);
        assert_eq!(r.stat("host_read", "count"), Some(100));
        assert_eq!(
            r.stat("host_read", "p999"),
            Some(bucket_upper_ns(lat_bucket(66_666)))
        );
        assert_eq!(
            r.stat("host_read", "mean"),
            Some((90 * 50_000 + 10 * 66_666) / 100)
        );
        assert_eq!(r.stat("host_read", "bogus"), None);
        assert_eq!(r.stat("bogus", "p50"), None);
        assert_eq!(r.stat("gc", "p50"), None); // empty class
        let json = serde_json::to_string(&r).unwrap();
        let back: LatencyRollup = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn fmt_ns_is_fixed_precision() {
        assert_eq!(fmt_ns(55_120), "55.120us");
        assert_eq!(fmt_ns(999), "0.999us");
        assert_eq!(fmt_ns(3_000_000), "3000.000us");
    }
}
