//! Cluster durability rollups (DESIGN.md §16).
//!
//! The diFS layer's fault-tolerance story is quantitative: shrinking is
//! cheap only if the volume of re-replicated data and the windows of
//! reduced redundancy stay small. A [`ClusterRollup`] is one per-tick
//! aggregate of exactly that — chunk counts by replication state,
//! recovery backlog, recovery traffic split by cause (failure repair vs
//! proactive drain), a per-unit fullness-imbalance histogram, and a
//! log2 histogram of closed replication-exposure windows with exact
//! nearest-rank percentiles — plus an MTTDL-style `data_at_risk`
//! figure derived from degraded-chunk dwell times.
//!
//! Determinism follows the [`crate::rollup`] recipe verbatim: every
//! field is a saturating integer, histograms merge element-wise in
//! shard order via [`ClusterKernel`], and percentiles are extracted
//! exactly from bucket edges. Two runs producing the same chunk-store
//! history produce byte-identical rollups at any thread count.

use serde::{Deserialize, Serialize};

/// Buckets in the per-unit fullness histogram: bucket `i` covers the
/// half-open used/capacity range `[i/16, (i+1)/16)`, the last bucket
/// closed at 1.0 by clamping.
pub const FULLNESS_BUCKETS: usize = 16;

/// Buckets in the exposure-window log2 histogram: bucket 0 holds
/// zero-tick windows (failed and repaired within one tick); bucket
/// `i >= 1` holds windows of `[2^(i-1), 2^i)` ticks. 33 buckets cover
/// every u32 tick count; longer windows clamp into the last bucket.
pub const EXPOSURE_BUCKETS: usize = 33;

/// The exposure-window percentiles extracted for tables and series,
/// as (name, permille rank) pairs.
pub const EXPOSURE_STATS: [(&str, u32); 3] = [("p50", 500), ("p90", 900), ("p99", 990)];

/// Scalar series names a [`ClusterRollup`] serves (exposure
/// percentiles come on top as `exposure_p50|p90|p99`).
pub const CLUSTER_SCALARS: [&str; 10] = [
    "full",
    "degraded",
    "critical",
    "lost",
    "backlog_chunks",
    "backlog_bytes",
    "repair_bytes",
    "drain_bytes",
    "data_at_risk",
    "exposure_windows",
];

/// Histogram bucket for an exposure window of `ticks`. Monotone in
/// `ticks`, clamped to the last bucket.
pub fn exposure_bucket(ticks: u64) -> usize {
    if ticks == 0 {
        return 0;
    }
    (64 - ticks.leading_zeros() as usize).min(EXPOSURE_BUCKETS - 1)
}

/// Exclusive upper edge (ticks) of exposure bucket `i` — the value
/// percentiles report. Every window in bucket `i < EXPOSURE_BUCKETS-1`
/// satisfies `ticks < exposure_upper_ticks(i)`.
pub fn exposure_upper_ticks(i: usize) -> u64 {
    1u64 << i
}

/// Exact nearest-rank percentile from an exposure histogram, reported
/// as the upper edge of the bucket holding the rank-th window. `q` is
/// in permille (`990` = p99). `None` on an empty histogram.
pub fn exposure_percentile(bins: &[u64], q_permille: u32) -> Option<u64> {
    let total: u64 = bins.iter().fold(0u64, |a, &b| a.saturating_add(b));
    if total == 0 || bins.is_empty() {
        return None;
    }
    let rank = (u128::from(q_permille) * u128::from(total))
        .div_ceil(1000)
        .max(1) as u64;
    let mut cum = 0u64;
    for (i, &b) in bins.iter().enumerate() {
        cum = cum.saturating_add(b);
        if cum >= rank {
            return Some(exposure_upper_ticks(i));
        }
    }
    Some(exposure_upper_ticks(bins.len() - 1))
}

/// One per-tick cluster durability aggregate. Counts classify every
/// live chunk by how many of its R replicas are missing: `full` (none),
/// `degraded` (exactly one), `critical` (two or more, at least one
/// left). `lost`, traffic, and the exposure histogram are cumulative
/// over the run, so the final rollup carries the whole story.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterRollup {
    /// Simulation tick (churn round) this rollup describes.
    pub day: u32,
    /// Chunks with every replica in place.
    pub full: u64,
    /// Chunks missing exactly one replica.
    pub degraded: u64,
    /// Chunks missing two or more replicas but not yet lost.
    pub critical: u64,
    /// Cumulative chunks lost (all replicas gone).
    pub lost: u64,
    /// Under-replicated chunks awaiting repair (the recovery backlog).
    pub backlog_chunks: u64,
    /// Missing-replica bytes in the backlog: Σ missing × chunk_bytes.
    pub backlog_bytes: u64,
    /// Cumulative bytes re-replicated repairing unit failures.
    pub repair_bytes: u64,
    /// Cumulative bytes moved by proactive drains (never exposed).
    pub drain_bytes: u64,
    /// MTTDL-style byte·tick exposure integral: Σ over currently
    /// under-replicated chunks of chunk_bytes × missing replicas ×
    /// ticks spent exposed so far. Zero means no data is at risk.
    pub data_at_risk: u64,
    /// Per-unit fullness histogram over alive units:
    /// [`FULLNESS_BUCKETS`] counts of used/capacity.
    pub fullness: Vec<u32>,
    /// Cumulative closed exposure windows, log2-bucketed by dwell
    /// ticks ([`EXPOSURE_BUCKETS`] wide).
    pub exposure: Vec<u64>,
    /// Cumulative closed exposure windows (Σ of `exposure`).
    pub exposure_windows: u64,
}

impl ClusterRollup {
    /// An all-zero rollup for tick `day`.
    pub fn empty(day: u32) -> Self {
        ClusterRollup {
            day,
            full: 0,
            degraded: 0,
            critical: 0,
            lost: 0,
            backlog_chunks: 0,
            backlog_bytes: 0,
            repair_bytes: 0,
            drain_bytes: 0,
            data_at_risk: 0,
            fullness: vec![0; FULLNESS_BUCKETS],
            exposure: vec![0; EXPOSURE_BUCKETS],
            exposure_windows: 0,
        }
    }

    /// Nearest-rank exposure-window percentile (permille), `None` when
    /// no window has closed yet.
    pub fn exposure_percentile(&self, q_permille: u32) -> Option<u64> {
        exposure_percentile(&self.exposure, q_permille)
    }

    /// A scalar series value for `/cluster/series` and `obsctl`: one
    /// of [`CLUSTER_SCALARS`], or `exposure_p50|p90|p99` (window upper
    /// edge in ticks). `None` for unknown names or, for the exposure
    /// stats, before any window has closed.
    pub fn series_value(&self, metric: &str) -> Option<u64> {
        match metric {
            "full" => return Some(self.full),
            "degraded" => return Some(self.degraded),
            "critical" => return Some(self.critical),
            "lost" => return Some(self.lost),
            "backlog_chunks" => return Some(self.backlog_chunks),
            "backlog_bytes" => return Some(self.backlog_bytes),
            "repair_bytes" => return Some(self.repair_bytes),
            "drain_bytes" => return Some(self.drain_bytes),
            "data_at_risk" => return Some(self.data_at_risk),
            "exposure_windows" => return Some(self.exposure_windows),
            _ => {}
        }
        let stat = metric.strip_prefix("exposure_")?;
        let (_, q) = EXPOSURE_STATS.iter().find(|(name, _)| *name == stat)?;
        self.exposure_percentile(*q)
    }

    /// Element-wise saturating merge (keeps `self.day`). Commutative,
    /// but callers merge in shard order regardless.
    pub fn merge(&mut self, other: &ClusterRollup) {
        self.full = self.full.saturating_add(other.full);
        self.degraded = self.degraded.saturating_add(other.degraded);
        self.critical = self.critical.saturating_add(other.critical);
        self.lost = self.lost.saturating_add(other.lost);
        self.backlog_chunks = self.backlog_chunks.saturating_add(other.backlog_chunks);
        self.backlog_bytes = self.backlog_bytes.saturating_add(other.backlog_bytes);
        self.repair_bytes = self.repair_bytes.saturating_add(other.repair_bytes);
        self.drain_bytes = self.drain_bytes.saturating_add(other.drain_bytes);
        self.data_at_risk = self.data_at_risk.saturating_add(other.data_at_risk);
        for (a, b) in self.fullness.iter_mut().zip(&other.fullness) {
            *a = a.saturating_add(*b);
        }
        for (a, b) in self.exposure.iter_mut().zip(&other.exposure) {
            *a = a.saturating_add(*b);
        }
        self.exposure_windows = self.exposure_windows.saturating_add(other.exposure_windows);
    }
}

/// Fullness bucket for `used` chunks of `capacity`. Zero-capacity
/// units land in bucket 0; over-full (clamped) in the last.
pub fn fullness_bucket(used: u64, capacity: u64) -> usize {
    if capacity == 0 {
        return 0;
    }
    ((used.saturating_mul(FULLNESS_BUCKETS as u64) / capacity) as usize).min(FULLNESS_BUCKETS - 1)
}

/// Per-shard cluster accumulator: one [`ClusterRollup`] per tick,
/// folded by saturating merges in shard order — the cluster
/// counterpart of [`crate::rollup::RollupKernel`]. A single-threaded
/// chunk store folds into one kernel; a sharded drill merges kernels
/// element-wise, and the result is byte-identical either way.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClusterKernel {
    rollups: Vec<ClusterRollup>,
}

impl ClusterKernel {
    /// An empty kernel.
    pub fn new() -> Self {
        ClusterKernel::default()
    }

    /// Fold one per-tick rollup. Ticks observed out of order or twice
    /// merge into the slot for that tick index (slots are created in
    /// observation order and keyed by `rollup.day`).
    pub fn observe(&mut self, rollup: &ClusterRollup) {
        if let Some(slot) = self.rollups.iter_mut().find(|r| r.day == rollup.day) {
            slot.merge(rollup);
        } else {
            self.rollups.push(rollup.clone());
        }
    }

    /// Merge another shard's ticks (element-wise saturating per tick;
    /// ticks only one side observed copy over unchanged).
    pub fn merge(&mut self, other: &ClusterKernel) {
        for r in &other.rollups {
            self.observe(r);
        }
    }

    /// The folded per-tick rollups, ascending by tick.
    pub fn rollups(&self) -> Vec<ClusterRollup> {
        let mut out = self.rollups.clone();
        out.sort_by_key(|r| r.day);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposure_buckets_are_monotone_and_invert() {
        assert_eq!(exposure_bucket(0), 0);
        assert_eq!(exposure_bucket(1), 1);
        assert_eq!(exposure_bucket(2), 2);
        assert_eq!(exposure_bucket(3), 2);
        assert_eq!(exposure_bucket(4), 3);
        assert_eq!(exposure_bucket(u64::MAX), EXPOSURE_BUCKETS - 1);
        let mut last = 0usize;
        for ticks in [0u64, 1, 2, 3, 4, 7, 8, 100, 1 << 20, u64::MAX] {
            let b = exposure_bucket(ticks);
            assert!(b >= last, "bucket order broke at {ticks}");
            last = b;
            if b < EXPOSURE_BUCKETS - 1 {
                assert!(
                    ticks < exposure_upper_ticks(b),
                    "{ticks} outside bucket {b}"
                );
            }
        }
    }

    #[test]
    fn exposure_percentiles_use_nearest_rank() {
        let mut bins = vec![0u64; EXPOSURE_BUCKETS];
        // 99 one-tick windows, 1 hundred-tick window.
        bins[exposure_bucket(1)] = 99;
        bins[exposure_bucket(100)] = 1;
        assert_eq!(exposure_percentile(&bins, 500), Some(2));
        assert_eq!(exposure_percentile(&bins, 900), Some(2));
        assert_eq!(exposure_percentile(&bins, 990), Some(2)); // rank 99
        assert_eq!(exposure_percentile(&bins, 999), Some(128)); // rank 100
        assert_eq!(exposure_percentile(&[0; EXPOSURE_BUCKETS], 500), None);
        assert_eq!(exposure_percentile(&[], 500), None);
    }

    #[test]
    fn fullness_buckets_clamp() {
        assert_eq!(fullness_bucket(0, 10), 0);
        assert_eq!(fullness_bucket(5, 10), 8);
        assert_eq!(fullness_bucket(10, 10), FULLNESS_BUCKETS - 1);
        assert_eq!(fullness_bucket(99, 10), FULLNESS_BUCKETS - 1);
        assert_eq!(fullness_bucket(3, 0), 0);
    }

    #[test]
    fn series_values_cover_scalars_and_exposure_stats() {
        let mut r = ClusterRollup::empty(9);
        r.full = 100;
        r.degraded = 4;
        r.critical = 1;
        r.lost = 2;
        r.backlog_chunks = 5;
        r.backlog_bytes = 5 << 18;
        r.repair_bytes = 1 << 20;
        r.drain_bytes = 1 << 19;
        r.data_at_risk = 777;
        r.exposure[exposure_bucket(3)] = 10;
        r.exposure_windows = 10;
        assert_eq!(r.series_value("full"), Some(100));
        assert_eq!(r.series_value("degraded"), Some(4));
        assert_eq!(r.series_value("critical"), Some(1));
        assert_eq!(r.series_value("lost"), Some(2));
        assert_eq!(r.series_value("backlog_chunks"), Some(5));
        assert_eq!(r.series_value("backlog_bytes"), Some(5 << 18));
        assert_eq!(r.series_value("repair_bytes"), Some(1 << 20));
        assert_eq!(r.series_value("drain_bytes"), Some(1 << 19));
        assert_eq!(r.series_value("data_at_risk"), Some(777));
        assert_eq!(r.series_value("exposure_windows"), Some(10));
        assert_eq!(r.series_value("exposure_p99"), Some(4));
        assert_eq!(r.series_value("bogus"), None);
        assert_eq!(r.series_value("exposure_p12"), None);
        assert_eq!(
            ClusterRollup::empty(1).series_value("exposure_p50"),
            None,
            "no closed window yet"
        );
    }

    #[test]
    fn merge_saturates_and_keeps_day() {
        let mut a = ClusterRollup::empty(3);
        a.full = u64::MAX - 1;
        a.fullness[0] = u32::MAX;
        a.exposure[1] = 5;
        let mut b = ClusterRollup::empty(7);
        b.full = 10;
        b.fullness[0] = 10;
        b.exposure[1] = 7;
        b.exposure_windows = 7;
        a.merge(&b);
        assert_eq!(a.day, 3);
        assert_eq!(a.full, u64::MAX);
        assert_eq!(a.fullness[0], u32::MAX);
        assert_eq!(a.exposure[1], 12);
        assert_eq!(a.exposure_windows, 7);
    }

    #[test]
    fn kernel_merge_is_order_independent() {
        let mut r0 = ClusterRollup::empty(0);
        r0.full = 7;
        let mut r1 = ClusterRollup::empty(1);
        r1.degraded = 3;
        let mut a = ClusterKernel::new();
        a.observe(&r1);
        let mut b = ClusterKernel::new();
        b.observe(&r0);
        b.observe(&r1);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.rollups(), ba.rollups());
        let folded = ab.rollups();
        assert_eq!(folded.len(), 2);
        assert_eq!(folded[0].day, 0);
        assert_eq!(folded[1].degraded, 6, "tick 1 observed twice merges");
    }

    #[test]
    fn rollup_round_trips_through_json() {
        let mut r = ClusterRollup::empty(12);
        r.full = 3;
        r.lost = 1;
        r.fullness[2] = 4;
        r.exposure[5] = 9;
        r.exposure_windows = 9;
        let json = serde_json::to_string(&r).unwrap();
        let back: ClusterRollup = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
