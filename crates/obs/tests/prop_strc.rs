//! Property tests for the indexed binary flight-recorder format:
//! every event the taxonomy can express must survive a JSONL ↔ `.strc`
//! round-trip bit-exactly, at any chunk size (including 1-record
//! chunks and boundary-straddling traces), across rotation, and the
//! footer index must agree with the records it summarizes.

mod common;

use common::{cluster_rollup_strategy, latency_rollup_strategy, record_strategy};
use proptest::prelude::*;
use salamander_obs::event::{SimTime, TraceEvent, TraceRecord};
use salamander_obs::strc::{
    convert_file, read_strc, summarize, write_strc, RotatingStrcWriter, StrcReader,
};
use salamander_obs::trace::to_jsonl;
use std::path::PathBuf;

/// A per-case temp path; proptest shrinks re-run cases, so the file is
/// removed before each return path.
fn tmp(name: &str, case: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "salamander-prop-strc-{}-{case}-{name}",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn strc_round_trips_at_any_chunk_size(
        records in proptest::collection::vec(record_strategy(), 0..60),
        chunk_records in 1usize..10,
        case in any::<u64>(),
    ) {
        let path = tmp("roundtrip.strc", case);
        write_strc(&path, &records, chunk_records).unwrap();
        let back = read_strc(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(back, records);
    }

    #[test]
    fn footer_index_matches_the_records(
        records in proptest::collection::vec(record_strategy(), 0..60),
        chunk_records in 1usize..10,
        case in any::<u64>(),
    ) {
        let path = tmp("index.strc", case);
        write_strc(&path, &records, chunk_records).unwrap();
        let mut reader = StrcReader::open(&path).unwrap();
        prop_assert_eq!(reader.record_count(), records.len() as u64);
        let expected_chunks = records.len().div_ceil(chunk_records);
        prop_assert_eq!(reader.chunk_count(), expected_chunks);
        for i in 0..reader.chunk_count() {
            let chunk = reader.read_chunk(i).unwrap();
            prop_assert_eq!(&chunk[..], &records[i * chunk_records..(i * chunk_records + chunk.len())]);
            // The stored summary equals a fresh fold over the decoded
            // records (offsets aside, which only the writer knows).
            let mut fresh = summarize(&chunk);
            let stored = &reader.summaries()[i];
            fresh.offset = stored.offset;
            fresh.byte_len = stored.byte_len;
            prop_assert_eq!(&fresh, stored);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rotation_preserves_records_across_files(
        records in proptest::collection::vec(record_strategy(), 0..80),
        max_kib in 1u64..4,
        case in any::<u64>(),
    ) {
        let stem = tmp("rot", case);
        // Tiny size cap (1–3 KiB) with small chunks: most cases rotate
        // several times, and chunk flushes land on rotation boundaries.
        let mut w = RotatingStrcWriter::new(&stem, max_kib * 1024, 4);
        for r in &records {
            w.push(r).unwrap();
        }
        let paths = w.finish().unwrap();
        let mut back: Vec<TraceRecord> = Vec::new();
        for p in &paths {
            back.extend(read_strc(p).unwrap());
        }
        for p in &paths {
            let _ = std::fs::remove_file(p);
        }
        prop_assert_eq!(back, records);
    }

    #[test]
    fn latency_rollups_round_trip_at_any_chunk_size(
        rollups in proptest::collection::vec(latency_rollup_strategy(), 0..8),
        chunk_records in 1usize..5,
        case in any::<u64>(),
    ) {
        // ISSUE 9: arbitrary LatencyRollups — any class count, any bin
        // widths, any counter values — survive JSONL ↔ .strc at any
        // chunk size, byte-exactly in both directions.
        let records: Vec<TraceRecord> = rollups
            .into_iter()
            .enumerate()
            .map(|(i, r)| TraceRecord {
                seq: i as u64,
                time: SimTime::new(r.day, i as u64),
                event: TraceEvent::LatencyRollup(r),
            })
            .collect();
        let strc = tmp("lat.strc", case);
        let jsonl = tmp("lat.jsonl", case);
        write_strc(&strc, &records, chunk_records).unwrap();
        let back = read_strc(&strc).unwrap();
        let n = convert_file(&strc, &jsonl).unwrap();
        let text = std::fs::read_to_string(&jsonl).unwrap();
        let _ = std::fs::remove_file(&strc);
        let _ = std::fs::remove_file(&jsonl);
        prop_assert_eq!(n, records.len() as u64);
        prop_assert_eq!(text, to_jsonl(&records));
        prop_assert_eq!(back, records);
    }

    #[test]
    fn cluster_rollups_round_trip_at_any_chunk_size(
        rollups in proptest::collection::vec(cluster_rollup_strategy(), 0..8),
        chunk_records in 1usize..5,
        case in any::<u64>(),
    ) {
        // ISSUE 10: arbitrary ClusterRollups — any counter values, any
        // histogram lengths — survive JSONL ↔ .strc at any chunk size,
        // byte-exactly in both directions.
        let records: Vec<TraceRecord> = rollups
            .into_iter()
            .enumerate()
            .map(|(i, r)| TraceRecord {
                seq: i as u64,
                time: SimTime::new(r.day, i as u64),
                event: TraceEvent::ClusterRollup(r),
            })
            .collect();
        let strc = tmp("cluster.strc", case);
        let jsonl = tmp("cluster.jsonl", case);
        write_strc(&strc, &records, chunk_records).unwrap();
        let back = read_strc(&strc).unwrap();
        let n = convert_file(&strc, &jsonl).unwrap();
        let text = std::fs::read_to_string(&jsonl).unwrap();
        let _ = std::fs::remove_file(&strc);
        let _ = std::fs::remove_file(&jsonl);
        prop_assert_eq!(n, records.len() as u64);
        prop_assert_eq!(text, to_jsonl(&records));
        prop_assert_eq!(back, records);
    }

    #[test]
    fn jsonl_and_strc_converters_are_lossless(
        records in proptest::collection::vec(record_strategy(), 0..40),
        case in any::<u64>(),
    ) {
        let jsonl_in = tmp("conv-in.jsonl", case);
        let strc_mid = tmp("conv-mid.strc", case);
        let jsonl_out = tmp("conv-out.jsonl", case);
        let text = to_jsonl(&records);
        std::fs::write(&jsonl_in, &text).unwrap();
        let n1 = convert_file(&jsonl_in, &strc_mid).unwrap();
        let n2 = convert_file(&strc_mid, &jsonl_out).unwrap();
        let round = std::fs::read_to_string(&jsonl_out).unwrap();
        for p in [&jsonl_in, &strc_mid, &jsonl_out] {
            let _ = std::fs::remove_file(p);
        }
        prop_assert_eq!(n1, records.len() as u64);
        prop_assert_eq!(n2, records.len() as u64);
        // Byte-identical JSONL after a full round trip.
        prop_assert_eq!(round, text);
    }
}
