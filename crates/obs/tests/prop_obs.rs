//! Property tests for the trace format: every event the taxonomy can
//! express must survive JSON and JSONL round-trips bit-exactly, and
//! merged traces must renumber cleanly.

use proptest::prelude::*;
use salamander_obs::event::{DeathCause, DecommissionCause, SimTime, TraceEvent, TraceRecord};
use salamander_obs::trace::{parse_jsonl, resequence, to_jsonl};

fn cause_strategy() -> impl Strategy<Value = DecommissionCause> {
    prop_oneof![
        Just(DecommissionCause::LevelShortfall),
        Just(DecommissionCause::GcHeadroom),
    ]
}

fn death_strategy() -> impl Strategy<Value = DeathCause> {
    prop_oneof![
        Just(DeathCause::Brick),
        Just(DeathCause::FullyShrunk),
        Just(DeathCause::Wear),
        Just(DeathCause::Afr),
    ]
}

fn event_strategy() -> impl Strategy<Value = TraceEvent> {
    prop_oneof![
        any::<u32>().prop_map(|n| TraceEvent::RunMarker {
            label: format!("mode=run-{n}"),
        }),
        (any::<u64>(), 0u8..4, 0u8..5).prop_map(|(fpage, from, to)| TraceEvent::PageTired {
            fpage,
            from,
            to
        }),
        (any::<u64>(), 0u8..5).prop_map(|(fpage, from)| TraceEvent::PageRetired { fpage, from }),
        (any::<u32>(), any::<u32>(), any::<bool>(), cause_strategy()).prop_map(
            |(id, valid_lbas, draining, cause)| TraceEvent::MdiskDecommissioned {
                id,
                valid_lbas,
                draining,
                cause,
            }
        ),
        any::<u32>().prop_map(|id| TraceEvent::MdiskPurged { id }),
        (any::<u32>(), 0u8..5).prop_map(|(id, level)| TraceEvent::MdiskRegenerated { id, level }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(block, relocated)| TraceEvent::GcPass { block, relocated }),
        (any::<u64>(), any::<u32>())
            .prop_map(|(fpage, opages)| TraceEvent::ScrubRefresh { fpage, opages }),
        (any::<u32>(), any::<u32>())
            .prop_map(|(mdisk, retries)| TraceEvent::ReadRetry { mdisk, retries }),
        (any::<u32>(), any::<u32>())
            .prop_map(|(mdisk, lba)| TraceEvent::UncorrectableRead { mdisk, lba }),
        death_strategy().prop_map(|cause| TraceEvent::DeviceDied { cause }),
        (any::<u32>(), death_strategy())
            .prop_map(|(device, cause)| TraceEvent::FleetDeviceDied { device, cause }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(chunk, bytes)| TraceEvent::ChunkReReplicated { chunk, bytes }),
        any::<u64>().prop_map(|chunk| TraceEvent::ChunkLost { chunk }),
    ]
}

fn record_strategy() -> impl Strategy<Value = TraceRecord> {
    (any::<u64>(), any::<u32>(), any::<u64>(), event_strategy()).prop_map(
        |(seq, day, op, event)| TraceRecord {
            seq,
            time: SimTime::new(day, op),
            event,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_event_round_trips_through_json(event in event_strategy()) {
        let json = serde_json::to_string(&event).unwrap();
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, event);
    }

    #[test]
    fn traces_round_trip_through_jsonl(
        records in proptest::collection::vec(record_strategy(), 0..40),
    ) {
        let text = to_jsonl(&records);
        let back = parse_jsonl(&text).unwrap();
        prop_assert_eq!(&back, &records);
        // JSONL is stable: serializing the parsed records reproduces
        // the exact bytes.
        prop_assert_eq!(to_jsonl(&back), text);
    }

    #[test]
    fn resequence_is_idempotent_and_order_preserving(
        mut records in proptest::collection::vec(record_strategy(), 0..40),
    ) {
        let events: Vec<TraceEvent> =
            records.iter().map(|r| r.event.clone()).collect();
        resequence(&mut records);
        for (i, r) in records.iter().enumerate() {
            prop_assert_eq!(r.seq, i as u64);
            prop_assert_eq!(&r.event, &events[i]);
        }
        let again = records.clone();
        resequence(&mut records);
        prop_assert_eq!(records, again);
    }
}
