//! Property tests for the trace format: every event the taxonomy can
//! express must survive JSON and JSONL round-trips bit-exactly, and
//! merged traces must renumber cleanly.

mod common;

use common::{event_strategy, record_strategy};
use proptest::prelude::*;
use salamander_obs::event::TraceEvent;
use salamander_obs::trace::{parse_jsonl, resequence, to_jsonl};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_event_round_trips_through_json(event in event_strategy()) {
        let json = serde_json::to_string(&event).unwrap();
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, event);
    }

    #[test]
    fn traces_round_trip_through_jsonl(
        records in proptest::collection::vec(record_strategy(), 0..40),
    ) {
        let text = to_jsonl(&records);
        let back = parse_jsonl(&text).unwrap();
        prop_assert_eq!(&back, &records);
        // JSONL is stable: serializing the parsed records reproduces
        // the exact bytes.
        prop_assert_eq!(to_jsonl(&back), text);
    }

    #[test]
    fn resequence_is_idempotent_and_order_preserving(
        mut records in proptest::collection::vec(record_strategy(), 0..40),
    ) {
        let events: Vec<TraceEvent> =
            records.iter().map(|r| r.event.clone()).collect();
        resequence(&mut records);
        for (i, r) in records.iter().enumerate() {
            prop_assert_eq!(r.seq, i as u64);
            prop_assert_eq!(&r.event, &events[i]);
        }
        let again = records.clone();
        resequence(&mut records);
        prop_assert_eq!(records, again);
    }
}
