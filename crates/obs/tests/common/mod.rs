//! Shared proptest strategies over the trace event taxonomy, used by
//! both the JSONL (`prop_obs`) and `.strc` (`prop_strc`) suites so new
//! event variants are exercised by every format from one place.

use proptest::prelude::*;
use salamander_obs::event::{DeathCause, DecommissionCause, SimTime, TraceEvent, TraceRecord};
use salamander_obs::{
    ClassLatency, ClusterRollup, FleetRollup, LatencyRollup, DIST_BUCKETS, EXPOSURE_BUCKETS,
    FULLNESS_BUCKETS, LAT_BUCKETS,
};

pub fn cause_strategy() -> impl Strategy<Value = DecommissionCause> {
    prop_oneof![
        Just(DecommissionCause::LevelShortfall),
        Just(DecommissionCause::GcHeadroom),
    ]
}

pub fn death_strategy() -> impl Strategy<Value = DeathCause> {
    prop_oneof![
        Just(DeathCause::Brick),
        Just(DeathCause::FullyShrunk),
        Just(DeathCause::Wear),
        Just(DeathCause::Afr),
    ]
}

pub fn event_strategy() -> impl Strategy<Value = TraceEvent> {
    prop_oneof![
        any::<u32>().prop_map(|n| TraceEvent::RunMarker {
            label: format!("mode=run-{n}"),
        }),
        (any::<u64>(), 0u8..4, 0u8..5).prop_map(|(fpage, from, to)| TraceEvent::PageTired {
            fpage,
            from,
            to
        }),
        (any::<u64>(), 0u8..5).prop_map(|(fpage, from)| TraceEvent::PageRetired { fpage, from }),
        (any::<u32>(), any::<u32>(), any::<bool>(), cause_strategy()).prop_map(
            |(id, valid_lbas, draining, cause)| TraceEvent::MdiskDecommissioned {
                id,
                valid_lbas,
                draining,
                cause,
            }
        ),
        any::<u32>().prop_map(|id| TraceEvent::MdiskPurged { id }),
        (any::<u32>(), 0u8..5).prop_map(|(id, level)| TraceEvent::MdiskRegenerated { id, level }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(block, relocated)| TraceEvent::GcPass { block, relocated }),
        (any::<u64>(), any::<u32>())
            .prop_map(|(fpage, opages)| TraceEvent::ScrubRefresh { fpage, opages }),
        (any::<u32>(), any::<u32>())
            .prop_map(|(mdisk, retries)| TraceEvent::ReadRetry { mdisk, retries }),
        (any::<u32>(), any::<u32>())
            .prop_map(|(mdisk, lba)| TraceEvent::UncorrectableRead { mdisk, lba }),
        death_strategy().prop_map(|cause| TraceEvent::DeviceDied { cause }),
        (any::<u32>(), death_strategy())
            .prop_map(|(device, cause)| TraceEvent::FleetDeviceDied { device, cause }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(chunk, bytes)| TraceEvent::ChunkReReplicated { chunk, bytes }),
        any::<u64>().prop_map(|chunk| TraceEvent::ChunkLost { chunk }),
        rollup_strategy().prop_map(TraceEvent::FleetRollup),
        latency_rollup_strategy().prop_map(TraceEvent::LatencyRollup),
        cluster_rollup_strategy().prop_map(TraceEvent::ClusterRollup),
    ]
}

/// Arbitrary per-day fleet rollups: any counter values, any histogram
/// contents — the formats must round-trip all of them, not just the
/// shapes the simulator happens to emit.
pub fn rollup_strategy() -> impl Strategy<Value = FleetRollup> {
    let dist = || proptest::collection::vec(any::<u32>(), DIST_BUCKETS);
    (
        (any::<u32>(), any::<u32>(), any::<u32>()),
        (any::<u32>(), any::<u32>(), any::<u64>()),
        (dist(), dist()),
        (dist(), dist()),
    )
        .prop_map(
            |(
                (day, alive, dead_wear),
                (dead_afr, dying, capacity_opages),
                (wear, pec),
                (usable, health),
            )| {
                FleetRollup {
                    day,
                    alive,
                    dead_wear,
                    dead_afr,
                    dying,
                    capacity_opages,
                    wear,
                    pec,
                    usable,
                    health,
                }
            },
        )
}

/// Arbitrary per-day latency rollups: any class count (not just the
/// canonical five), any bin widths (up to past [`LAT_BUCKETS`]), any
/// counter values — the formats must round-trip all of them.
pub fn latency_rollup_strategy() -> impl Strategy<Value = LatencyRollup> {
    let class = (
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec(any::<u64>(), 0..LAT_BUCKETS + 16),
    )
        .prop_map(|(count, total_ns, bins)| ClassLatency {
            count,
            total_ns,
            bins,
        });
    (any::<u32>(), proptest::collection::vec(class, 0..6))
        .prop_map(|(day, classes)| LatencyRollup { day, classes })
}

/// Arbitrary per-tick cluster rollups: any counter values, any
/// histogram lengths (shorter and longer than the canonical bucket
/// counts) — the formats must round-trip all of them, not just the
/// shapes the chunk store happens to emit.
pub fn cluster_rollup_strategy() -> impl Strategy<Value = ClusterRollup> {
    (
        (any::<u32>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        (
            any::<u64>(),
            proptest::collection::vec(any::<u32>(), 0..FULLNESS_BUCKETS + 8),
            proptest::collection::vec(any::<u64>(), 0..EXPOSURE_BUCKETS + 8),
        ),
        any::<u64>(),
    )
        .prop_map(
            |(
                (day, full, degraded),
                (critical, lost, backlog_chunks),
                (backlog_bytes, repair_bytes, drain_bytes),
                (data_at_risk, fullness, exposure),
                exposure_windows,
            )| {
                ClusterRollup {
                    day,
                    full,
                    degraded,
                    critical,
                    lost,
                    backlog_chunks,
                    backlog_bytes,
                    repair_bytes,
                    drain_bytes,
                    data_at_risk,
                    fullness,
                    exposure,
                    exposure_windows,
                }
            },
        )
}

pub fn record_strategy() -> impl Strategy<Value = TraceRecord> {
    (any::<u64>(), any::<u32>(), any::<u64>(), event_strategy()).prop_map(
        |(seq, day, op, event)| TraceRecord {
            seq,
            time: SimTime::new(day, op),
            event,
        },
    )
}
