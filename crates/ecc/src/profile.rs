//! Per-tiredness-level ECC profiles (§3.1 of the paper, and Fig. 2).
//!
//! A Salamander fPage at tiredness level `L` repurposes `L` of its oPages
//! as extra ECC parity. Given the fPage layout (data, spare, oPage sizes),
//! [`EccConfig::profiles`] derives, for each level, the resulting code
//! parameters (field, `t`, code rate) and the **maximum tolerable RBER** —
//! the threshold at which an fPage must transition to the next level.

use crate::capability::{field_for_codeword, max_correctable_rber, t_from_parity_bits};
use serde::{Deserialize, Serialize};

/// Page tiredness level: the number of oPages repurposed for extra ECC.
///
/// `L0` is a fresh page storing data in all oPages; `L4` can no longer
/// reliably store anything (with a 4-oPage fPage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Tiredness {
    /// All oPages store data.
    L0,
    /// One oPage repurposed for parity.
    L1,
    /// Two oPages repurposed for parity.
    L2,
    /// Three oPages repurposed for parity.
    L3,
    /// Worn beyond use.
    L4,
}

impl Tiredness {
    /// All levels in increasing wear order.
    pub const ALL: [Tiredness; 5] = [
        Tiredness::L0,
        Tiredness::L1,
        Tiredness::L2,
        Tiredness::L3,
        Tiredness::L4,
    ];

    /// Numeric level: the count of repurposed oPages.
    pub fn index(self) -> u32 {
        match self {
            Tiredness::L0 => 0,
            Tiredness::L1 => 1,
            Tiredness::L2 => 2,
            Tiredness::L3 => 3,
            Tiredness::L4 => 4,
        }
    }

    /// Level from a numeric index (values ≥ 4 collapse to `L4`).
    pub fn from_index(i: u32) -> Self {
        match i {
            0 => Tiredness::L0,
            1 => Tiredness::L1,
            2 => Tiredness::L2,
            3 => Tiredness::L3,
            _ => Tiredness::L4,
        }
    }

    /// The next (more worn) level.
    pub fn next(self) -> Self {
        Tiredness::from_index(self.index() + 1)
    }

    /// Whether the page can still store data (on a 4-oPage fPage).
    pub fn usable(self) -> bool {
        self != Tiredness::L4
    }
}

/// Layout and reliability targets from which level profiles are derived.
///
/// Defaults are the paper's running example: 16 KiB fPage holding four
/// 4 KiB oPages, 2 KiB spare (code rate 88%), 1 KiB ECC chunks, and a
/// 1e-15 per-page uncorrectable-error target.
///
/// # Examples
///
/// ```
/// use salamander_ecc::profile::{EccConfig, Tiredness};
///
/// let cfg = EccConfig::default();
/// let profiles = cfg.profiles();
/// assert_eq!(profiles.len(), 4); // L0..L3 are usable
/// // Lower code rate at every level, higher tolerable RBER.
/// assert!(profiles[1].code_rate < profiles[0].code_rate);
/// assert!(profiles[1].max_rber > profiles[0].max_rber);
/// assert_eq!(profiles[1].level, Tiredness::L1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EccConfig {
    /// fPage data-area bytes.
    pub fpage_data_bytes: u32,
    /// fPage spare-area bytes (native ECC budget).
    pub fpage_spare_bytes: u32,
    /// oPage size in bytes.
    pub opage_bytes: u32,
    /// ECC chunk (codeword data) size in bytes.
    pub chunk_data_bytes: u32,
    /// Target probability of an uncorrectable error per fPage read.
    pub target_page_uber: f64,
}

impl Default for EccConfig {
    fn default() -> Self {
        EccConfig {
            fpage_data_bytes: 16 * 1024,
            fpage_spare_bytes: 2 * 1024,
            opage_bytes: 4 * 1024,
            chunk_data_bytes: 1024,
            target_page_uber: 1e-15,
        }
    }
}

/// Derived code parameters for one tiredness level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LevelProfile {
    /// The tiredness level this profile describes.
    pub level: Tiredness,
    /// oPages still storing data at this level.
    pub data_opages: u32,
    /// Total parity bytes (spare + repurposed oPages).
    pub parity_bytes: u64,
    /// ECC chunks per fPage at this level.
    pub chunks: u32,
    /// GF(2^m) field parameter per chunk codeword.
    pub m: u32,
    /// Correctable bits per chunk.
    pub t: u32,
    /// Chunk codeword length in bits.
    pub codeword_bits: u64,
    /// Code rate: data / (data + parity) over the whole fPage.
    pub code_rate: f64,
    /// Maximum RBER meeting the page UBER target — the tiredness threshold.
    pub max_rber: f64,
}

impl EccConfig {
    /// oPages per fPage.
    pub fn opages_per_fpage(&self) -> u32 {
        self.fpage_data_bytes / self.opage_bytes
    }

    /// Derive the profile for one tiredness level, or `None` if the level
    /// leaves no data capacity.
    pub fn profile(&self, level: Tiredness) -> Option<LevelProfile> {
        let per = self.opages_per_fpage();
        let l = level.index();
        if l >= per {
            return None;
        }
        let data_opages = per - l;
        let data_bytes = (data_opages * self.opage_bytes) as u64;
        let parity_bytes = self.fpage_spare_bytes as u64 + (l * self.opage_bytes) as u64;
        let chunks = (data_bytes / self.chunk_data_bytes as u64).max(1) as u32;
        let parity_chunk_bits = parity_bytes * 8 / chunks as u64;
        let chunk_bits = self.chunk_data_bytes as u64 * 8;
        let codeword_bits = chunk_bits + parity_chunk_bits;
        let m = field_for_codeword(codeword_bits);
        let t = t_from_parity_bits(parity_chunk_bits, m);
        let chunk_target = self.target_page_uber / chunks as f64;
        let max_rber = max_correctable_rber(codeword_bits, t, chunk_target);
        Some(LevelProfile {
            level,
            data_opages,
            parity_bytes,
            chunks,
            m,
            t,
            codeword_bits,
            code_rate: data_bytes as f64 / (data_bytes + parity_bytes) as f64,
            max_rber,
        })
    }

    /// Profiles for every usable level (L0 up to, but excluding, the level
    /// with zero data oPages).
    pub fn profiles(&self) -> Vec<LevelProfile> {
        Tiredness::ALL
            .iter()
            .filter_map(|&l| self.profile(l))
            .collect()
    }

    /// Tiredness thresholds: `thresholds()[j]` is the highest RBER an fPage
    /// may project while remaining at level `Lj`. Exceeding the last entry
    /// means `L4` (dead).
    pub fn thresholds(&self) -> Vec<f64> {
        self.profiles().iter().map(|p| p.max_rber).collect()
    }

    /// Fig. 2's y-axis: the PEC lifetime multiplier unlocked at each level,
    /// assuming RBER grows as `pec^exponent` (see
    /// `salamander_flash::rber::RberModel`): `(max_rber_L / max_rber_0)^(1/exponent)`.
    pub fn lifetime_benefit(&self, rber_exponent: f64) -> Vec<(Tiredness, f64)> {
        let profiles = self.profiles();
        let base = profiles[0].max_rber;
        profiles
            .iter()
            .map(|p| (p.level, (p.max_rber / base).powf(1.0 / rber_exponent)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiredness_ordering_and_conversion() {
        assert!(Tiredness::L0 < Tiredness::L3);
        for i in 0..=4 {
            assert_eq!(Tiredness::from_index(i).index(), i);
        }
        assert_eq!(Tiredness::from_index(17), Tiredness::L4);
        assert_eq!(Tiredness::L0.next(), Tiredness::L1);
        assert_eq!(Tiredness::L4.next(), Tiredness::L4);
        assert!(Tiredness::L3.usable());
        assert!(!Tiredness::L4.usable());
    }

    #[test]
    fn default_profiles_shape() {
        let cfg = EccConfig::default();
        let ps = cfg.profiles();
        assert_eq!(ps.len(), 4);
        // Paper's example: L0 = 4 data oPages ... L3 = 1.
        for (i, p) in ps.iter().enumerate() {
            assert_eq!(p.level.index() as usize, i);
            assert_eq!(p.data_opages as usize, 4 - i);
        }
        // Code rate decreases, capability (and thus max RBER) increases.
        for w in ps.windows(2) {
            assert!(w[1].code_rate < w[0].code_rate);
            assert!(w[1].max_rber > w[0].max_rber);
            assert!(w[1].t > w[0].t);
        }
    }

    #[test]
    fn l0_matches_hand_computation() {
        let cfg = EccConfig::default();
        let p = cfg.profile(Tiredness::L0).unwrap();
        assert_eq!(p.chunks, 16);
        assert_eq!(p.parity_bytes, 2048);
        assert_eq!(p.codeword_bits, (1024 + 128) * 8);
        assert_eq!(p.m, 14);
        assert_eq!(p.t, 73);
        assert!((p.code_rate - 16.0 / 18.0).abs() < 1e-12);
    }

    #[test]
    fn l1_matches_hand_computation() {
        let cfg = EccConfig::default();
        let p = cfg.profile(Tiredness::L1).unwrap();
        assert_eq!(p.chunks, 12);
        assert_eq!(p.parity_bytes, 2048 + 4096);
        assert_eq!(p.codeword_bits, (1024 + 512) * 8);
        assert_eq!(p.m, 14);
        assert_eq!(p.t, 292);
    }

    #[test]
    fn l4_has_no_profile() {
        let cfg = EccConfig::default();
        assert!(cfg.profile(Tiredness::L4).is_none());
    }

    #[test]
    fn fig2_l1_benefit_near_fifty_percent() {
        // The paper: "a 50% potential lifetime benefit for L1" with a
        // standard 16 KiB fPage and 2 KiB spare.
        let cfg = EccConfig::default();
        let benefit = cfg.lifetime_benefit(4.3);
        assert_eq!(benefit[0].1, 1.0);
        let l1 = benefit[1].1;
        assert!((1.35..=1.65).contains(&l1), "L1 benefit {l1}");
    }

    #[test]
    fn fig2_diminishing_returns() {
        // Marginal benefit shrinks with each level — the reason the paper
        // concludes RegenS should limit itself to L < 2.
        let cfg = EccConfig::default();
        let b = cfg.lifetime_benefit(4.3);
        let marg1 = b[1].1 / b[0].1;
        let marg2 = b[2].1 / b[1].1;
        let marg3 = b[3].1 / b[2].1;
        assert!(marg1 > marg2, "{marg1} vs {marg2}");
        assert!(marg2 > marg3, "{marg2} vs {marg3}");
    }

    #[test]
    fn thresholds_increase() {
        let th = EccConfig::default().thresholds();
        assert_eq!(th.len(), 4);
        assert!(th.windows(2).all(|w| w[1] > w[0]));
        // L0 threshold at the native code rate: a few 1e-3.
        assert!(th[0] > 1e-3 && th[0] < 5e-3);
    }

    #[test]
    fn smaller_fpage_geometry() {
        // An 8 KiB fPage with two oPages: only L0 and L1 usable.
        let cfg = EccConfig {
            fpage_data_bytes: 8 * 1024,
            fpage_spare_bytes: 1024,
            ..EccConfig::default()
        };
        let ps = cfg.profiles();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[1].data_opages, 1);
    }

    #[test]
    fn profiles_serialize() {
        let cfg = EccConfig::default();
        let ps = cfg.profiles();
        let json = serde_json::to_string(&ps).unwrap();
        let back: Vec<LevelProfile> = serde_json::from_str(&json).unwrap();
        assert_eq!(ps, back);
    }
}
