//! Arithmetic over the finite field GF(2^m), 3 ≤ m ≤ 16.
//!
//! Elements are represented as integers in `[0, 2^m)`, with 0 the additive
//! identity. Multiplication uses log/antilog tables built from a primitive
//! polynomial, the standard construction for BCH hardware and software
//! codecs.

/// Primitive polynomials for GF(2^m), m = 3..=16, including the x^m term.
///
/// These are the conventional minimum-weight primitive polynomials (e.g.
/// Lin & Costello, Appendix A).
const PRIMITIVE_POLY: [u32; 17] = [
    0, 0, 0,       // m = 0..2 unused
    0xB,     // x^3 + x + 1
    0x13,    // x^4 + x + 1
    0x25,    // x^5 + x^2 + 1
    0x43,    // x^6 + x + 1
    0x89,    // x^7 + x^3 + 1
    0x11D,   // x^8 + x^4 + x^3 + x^2 + 1
    0x211,   // x^9 + x^4 + 1
    0x409,   // x^10 + x^3 + 1
    0x805,   // x^11 + x^2 + 1
    0x1053,  // x^12 + x^6 + x^4 + x + 1
    0x201B,  // x^13 + x^4 + x^3 + x + 1
    0x4443,  // x^14 + x^10 + x^6 + x + 1
    0x8003,  // x^15 + x + 1
    0x1100B, // x^16 + x^12 + x^3 + x + 1
];

/// A finite field GF(2^m) with precomputed log/antilog tables.
///
/// # Examples
///
/// ```
/// use salamander_ecc::gf::GfField;
///
/// let f = GfField::new(8).unwrap();
/// let a = 0x53;
/// let b = 0xCA;
/// let p = f.mul(a, b);
/// assert_eq!(f.div(p, b), a);
/// assert_eq!(f.mul(a, f.inv(a)), 1);
/// ```
#[derive(Debug, Clone)]
pub struct GfField {
    m: u32,
    /// Field size minus one: the multiplicative group order, 2^m - 1.
    order: u32,
    /// exp[i] = α^i for i in [0, 2*order) (doubled to skip a mod).
    exp: Vec<u16>,
    /// log[x] = i with α^i = x, for x in [1, 2^m).
    log: Vec<u16>,
}

impl GfField {
    /// Build GF(2^m). Returns `None` unless 3 ≤ m ≤ 16.
    pub fn new(m: u32) -> Option<Self> {
        if !(3..=16).contains(&m) {
            return None;
        }
        let order = (1u32 << m) - 1;
        let poly = PRIMITIVE_POLY[m as usize];
        let mut exp = vec![0u16; 2 * order as usize];
        let mut log = vec![0u16; (order + 1) as usize + 1];
        let mut x: u32 = 1;
        for i in 0..order {
            exp[i as usize] = x as u16;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & (1 << m) != 0 {
                x ^= poly;
            }
        }
        debug_assert_eq!(x, 1, "polynomial must be primitive");
        for i in order..2 * order {
            exp[i as usize] = exp[(i - order) as usize];
        }
        Some(GfField { m, order, exp, log })
    }

    /// Field parameter m.
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Multiplicative group order, 2^m − 1.
    pub fn order(&self) -> u32 {
        self.order
    }

    /// α^i (i may exceed the group order; it is reduced mod 2^m−1).
    pub fn alpha_pow(&self, i: u64) -> u16 {
        self.exp[(i % self.order as u64) as usize]
    }

    /// Discrete log of a nonzero element.
    ///
    /// # Panics
    ///
    /// Panics if `x == 0` (zero has no logarithm).
    pub fn log_of(&self, x: u16) -> u32 {
        assert!(x != 0, "log of zero");
        self.log[x as usize] as u32
    }

    /// Product of two field elements.
    pub fn mul(&self, a: u16, b: u16) -> u16 {
        if a == 0 || b == 0 {
            return 0;
        }
        self.exp[(self.log[a as usize] as usize) + (self.log[b as usize] as usize)]
    }

    /// Quotient `a / b`.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    pub fn div(&self, a: u16, b: u16) -> u16 {
        assert!(b != 0, "division by zero");
        if a == 0 {
            return 0;
        }
        let la = self.log[a as usize] as u32;
        let lb = self.log[b as usize] as u32;
        self.exp[((la + self.order - lb) % self.order) as usize]
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `x == 0`.
    pub fn inv(&self, x: u16) -> u16 {
        self.div(1, x)
    }

    /// `x` raised to the integer power `e` (e ≥ 0).
    pub fn pow(&self, x: u16, e: u64) -> u16 {
        if x == 0 {
            return if e == 0 { 1 } else { 0 };
        }
        let lx = self.log[x as usize] as u64;
        self.exp[((lx * e) % self.order as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_bounds() {
        assert!(GfField::new(2).is_none());
        assert!(GfField::new(17).is_none());
        for m in 3..=16 {
            assert!(GfField::new(m).is_some(), "m={m}");
        }
    }

    #[test]
    fn exp_log_round_trip() {
        let f = GfField::new(10).unwrap();
        for i in 0..f.order() {
            let x = f.alpha_pow(i as u64);
            assert_eq!(f.log_of(x), i);
        }
    }

    #[test]
    fn field_axioms_small_exhaustive() {
        // GF(2^4) is small enough to check associativity/distributivity
        // exhaustively.
        let f = GfField::new(4).unwrap();
        let n = 16u16;
        for a in 0..n {
            for b in 0..n {
                assert_eq!(f.mul(a, b), f.mul(b, a));
                for c in 0..n {
                    assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
                    // Distributivity over GF(2) addition (xor).
                    assert_eq!(f.mul(a, b ^ c), f.mul(a, b) ^ f.mul(a, c));
                }
            }
        }
    }

    #[test]
    fn inverse_works_for_all_nonzero() {
        let f = GfField::new(8).unwrap();
        for x in 1..=f.order() as u16 {
            assert_eq!(f.mul(x, f.inv(x)), 1, "x={x}");
        }
    }

    #[test]
    fn mul_by_zero_and_one() {
        let f = GfField::new(6).unwrap();
        for x in 0..64u16 {
            assert_eq!(f.mul(x, 0), 0);
            assert_eq!(f.mul(x, 1), x);
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let f = GfField::new(7).unwrap();
        let x = 0x2Au16;
        let mut acc = 1u16;
        for e in 0..20u64 {
            assert_eq!(f.pow(x, e), acc, "e={e}");
            acc = f.mul(acc, x);
        }
        assert_eq!(f.pow(0, 0), 1);
        assert_eq!(f.pow(0, 5), 0);
    }

    #[test]
    fn alpha_generates_whole_group() {
        for m in [3u32, 5, 8, 13, 14] {
            let f = GfField::new(m).unwrap();
            let mut seen = vec![false; (f.order() + 1) as usize];
            for i in 0..f.order() {
                let x = f.alpha_pow(i as u64);
                assert!(!seen[x as usize], "m={m}: repeat at i={i}");
                seen[x as usize] = true;
            }
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let f = GfField::new(4).unwrap();
        f.div(3, 0);
    }

    #[test]
    #[should_panic(expected = "log of zero")]
    fn log_of_zero_panics() {
        let f = GfField::new(4).unwrap();
        f.log_of(0);
    }
}
