//! Binary BCH codec: systematic encoder and algebraic decoder.
//!
//! This is the mechanism behind Salamander's code-rate knob. A
//! `BCH(n, k, t)` code over GF(2^m) corrects up to `t` bit errors using
//! `n − k ≤ m·t` parity bits; repurposing an oPage for parity raises `t`
//! and therefore the tolerable RBER. The decoder is the textbook pipeline:
//! syndromes → Berlekamp–Massey → Chien search (Lin & Costello; Marelli &
//! Micheloni, *BCH and LDPC error correction codes for NAND flash
//! memories*).
//!
//! Codewords are `Vec<bool>` with data bits first and parity appended;
//! shortened codes (fewer data bits than the natural `k`) are supported,
//! matching how flash controllers fit codewords to chunk sizes.

use crate::gf::GfField;

/// Decode failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// More errors than the code can correct (detected).
    Uncorrectable,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("uncorrectable: error count exceeds code capability")
    }
}

impl std::error::Error for DecodeError {}

/// A binary BCH code over GF(2^m) correcting up to `t` errors.
///
/// # Examples
///
/// ```
/// use salamander_ecc::bch::Bch;
///
/// let code = Bch::new(6, 3).unwrap(); // BCH(63, 45), t = 3
/// assert_eq!(code.codeword_bits(), 63);
/// assert_eq!(code.parity_bits(), 18);
/// ```
#[derive(Debug, Clone)]
pub struct Bch {
    field: GfField,
    t: u32,
    /// Generator polynomial coefficients, `g[i]` = coefficient of `x^i`.
    g: Vec<bool>,
    /// Parity bits = deg(g).
    r: usize,
    /// Data bits actually used (shortened length allowed).
    k_used: usize,
}

impl Bch {
    /// Construct the natural-length code: n = 2^m − 1, k = n − deg(g).
    ///
    /// Returns `None` if `m` is out of range (3..=16), `t == 0`, or the
    /// requested `t` leaves no room for data.
    pub fn new(m: u32, t: u32) -> Option<Self> {
        let field = GfField::new(m)?;
        if t == 0 {
            return None;
        }
        let g = generator_poly(&field, t);
        let r = g.len() - 1;
        let n = field.order() as usize;
        if r >= n {
            return None;
        }
        Some(Bch {
            field,
            t,
            g,
            r,
            k_used: n - r,
        })
    }

    /// Construct a shortened code carrying exactly `data_bits` data bits.
    ///
    /// Returns `None` if the natural code cannot hold that many data bits.
    pub fn new_shortened(m: u32, t: u32, data_bits: usize) -> Option<Self> {
        let mut code = Self::new(m, t)?;
        if data_bits == 0 || data_bits > code.k_used {
            return None;
        }
        code.k_used = data_bits;
        Some(code)
    }

    /// Number of data bits per codeword.
    pub fn data_bits(&self) -> usize {
        self.k_used
    }

    /// Number of parity bits per codeword.
    pub fn parity_bits(&self) -> usize {
        self.r
    }

    /// Total codeword length in bits.
    pub fn codeword_bits(&self) -> usize {
        self.k_used + self.r
    }

    /// Correction capability in bits.
    pub fn t(&self) -> u32 {
        self.t
    }

    /// Code rate `k / n`.
    pub fn code_rate(&self) -> f64 {
        self.k_used as f64 / self.codeword_bits() as f64
    }

    /// Systematically encode `data` (length must equal [`Self::data_bits`]):
    /// returns `data ++ parity`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.data_bits()`.
    pub fn encode(&self, data: &[bool]) -> Vec<bool> {
        assert_eq!(data.len(), self.k_used, "data length mismatch");
        // LFSR division: remainder of d(x)·x^r by g(x). `reg[i]` holds the
        // coefficient of x^i of the running remainder.
        let mut reg = vec![false; self.r];
        for &bit in data {
            let feedback = bit ^ reg[self.r - 1];
            for i in (1..self.r).rev() {
                reg[i] = reg[i - 1] ^ (feedback & self.g[i]);
            }
            reg[0] = feedback & self.g[0];
        }
        let mut cw = Vec::with_capacity(self.codeword_bits());
        cw.extend_from_slice(data);
        // Parity appended highest-degree first so that position `pos` in the
        // codeword is the coefficient of x^(n_used - 1 - pos) throughout.
        cw.extend(reg.iter().rev());
        cw
    }

    /// Compute the 2t syndromes of `cw`. All-zero means a valid codeword.
    fn syndromes(&self, cw: &[bool]) -> Vec<u16> {
        let n_used = self.codeword_bits() as u64;
        let mut synd = vec![0u16; 2 * self.t as usize];
        for (pos, &bit) in cw.iter().enumerate() {
            if !bit {
                continue;
            }
            let degree = n_used - 1 - pos as u64;
            for (i, s) in synd.iter_mut().enumerate() {
                *s ^= self.field.alpha_pow(degree * (i as u64 + 1));
            }
        }
        synd
    }

    /// Decode in place. Returns the number of corrected bits, or
    /// [`DecodeError::Uncorrectable`] if the error pattern exceeds `t`
    /// (leaving `cw` unmodified in that case).
    ///
    /// # Panics
    ///
    /// Panics if `cw.len() != self.codeword_bits()`.
    pub fn decode(&self, cw: &mut [bool]) -> Result<usize, DecodeError> {
        assert_eq!(cw.len(), self.codeword_bits(), "codeword length mismatch");
        let synd = self.syndromes(cw);
        if synd.iter().all(|&s| s == 0) {
            return Ok(0);
        }
        let sigma = self.berlekamp_massey(&synd);
        let degree = sigma.len() - 1;
        if degree == 0 || degree > self.t as usize {
            return Err(DecodeError::Uncorrectable);
        }
        // Chien search: error at coefficient-degree j iff σ(α^{-j}) = 0.
        let n_used = self.codeword_bits() as u64;
        let order = self.field.order() as u64;
        let mut error_positions = Vec::with_capacity(degree);
        for j in 0..n_used {
            let x = self.field.alpha_pow((order - (j % order)) % order);
            let mut acc = 0u16;
            let mut xp = 1u16;
            for &c in &sigma {
                acc ^= self.field.mul(c, xp);
                xp = self.field.mul(xp, x);
            }
            if acc == 0 {
                error_positions.push((n_used - 1 - j) as usize);
            }
        }
        if error_positions.len() != degree {
            return Err(DecodeError::Uncorrectable);
        }
        for &pos in &error_positions {
            cw[pos] = !cw[pos];
        }
        // Miscorrection guard: verify the corrected word is a codeword.
        if self.syndromes(cw).iter().any(|&s| s != 0) {
            for &pos in &error_positions {
                cw[pos] = !cw[pos];
            }
            return Err(DecodeError::Uncorrectable);
        }
        Ok(error_positions.len())
    }

    /// Berlekamp–Massey: smallest LFSR (error-locator polynomial σ) that
    /// generates the syndrome sequence. Returned with σ[0] = 1.
    fn berlekamp_massey(&self, synd: &[u16]) -> Vec<u16> {
        let f = &self.field;
        let mut sigma: Vec<u16> = vec![1];
        let mut prev: Vec<u16> = vec![1];
        let mut l = 0usize;
        let mut b: u16 = 1;
        let mut shift = 1usize;
        for n in 0..synd.len() {
            // Discrepancy d = S_n + Σ σ_i · S_{n-i}.
            let mut d = synd[n];
            for i in 1..=l.min(sigma.len() - 1) {
                d ^= f.mul(sigma[i], synd[n - i]);
            }
            if d == 0 {
                shift += 1;
            } else if 2 * l <= n {
                let old = sigma.clone();
                let coef = f.div(d, b);
                sigma = poly_sub_scaled(f, &sigma, &prev, coef, shift);
                l = n + 1 - l;
                prev = old;
                b = d;
                shift = 1;
            } else {
                let coef = f.div(d, b);
                sigma = poly_sub_scaled(f, &sigma, &prev, coef, shift);
                shift += 1;
            }
        }
        // Trim trailing zero coefficients.
        while sigma.len() > 1 && *sigma.last().unwrap() == 0 {
            sigma.pop();
        }
        sigma
    }
}

/// `sigma ⊕ coef · x^shift · prev` (char-2 subtraction is xor).
fn poly_sub_scaled(f: &GfField, sigma: &[u16], prev: &[u16], coef: u16, shift: usize) -> Vec<u16> {
    let len = sigma.len().max(prev.len() + shift);
    let mut out = vec![0u16; len];
    out[..sigma.len()].copy_from_slice(sigma);
    for (i, &p) in prev.iter().enumerate() {
        out[i + shift] ^= f.mul(coef, p);
    }
    out
}

/// Generator polynomial: lcm of the minimal polynomials of α, α^2, …, α^2t.
fn generator_poly(field: &GfField, t: u32) -> Vec<bool> {
    let n = field.order();
    // Collect distinct cyclotomic cosets of 1..=2t (odd representatives
    // suffice: even powers are conjugates of smaller odd ones).
    let mut done = std::collections::HashSet::new();
    let mut g: Vec<bool> = vec![true]; // the constant polynomial 1
    let mut i = 1u32;
    while i <= 2 * t {
        // Normalize the exponent into [0, n) so the coset walk terminates
        // even when 2t ≥ n (α^n = α^0).
        let start = i % n;
        let mut coset = Vec::new();
        let mut j = start;
        loop {
            if !done.insert(j) {
                break;
            }
            coset.push(j);
            j = (j * 2) % n;
            if j == start {
                break;
            }
        }
        if !coset.is_empty() {
            // Minimal polynomial: Π (x − α^j) over the coset, computed in
            // GF(2^m); the result has binary coefficients.
            let mut min_poly: Vec<u16> = vec![1];
            for &j in &coset {
                let root = field.alpha_pow(j as u64);
                let mut next = vec![0u16; min_poly.len() + 1];
                for (d, &c) in min_poly.iter().enumerate() {
                    next[d + 1] ^= c; // x · c_d
                    next[d] ^= field.mul(c, root); // root · c_d
                }
                min_poly = next;
            }
            debug_assert!(min_poly.iter().all(|&c| c <= 1), "non-binary minimal poly");
            let min_bool: Vec<bool> = min_poly.iter().map(|&c| c == 1).collect();
            g = poly_mul_binary(&g, &min_bool);
        }
        i += 2;
    }
    g
}

/// Product of two binary polynomials, computed on u64 words: for every
/// set coefficient of `a`, xor a shifted copy of `b` into the result.
/// O(|a| · |b|/64) instead of O(|a| · |b|).
fn poly_mul_binary(a: &[bool], b: &[bool]) -> Vec<bool> {
    let out_len = a.len() + b.len() - 1;
    let words = out_len.div_ceil(64);
    // Pack b.
    let b_words_len = b.len().div_ceil(64) + 1;
    let mut bw = vec![0u64; b_words_len];
    for (j, &bit) in b.iter().enumerate() {
        if bit {
            bw[j / 64] |= 1 << (j % 64);
        }
    }
    let mut out = vec![0u64; words + b_words_len + 1];
    for (i, &ai) in a.iter().enumerate() {
        if !ai {
            continue;
        }
        let (word, shift) = (i / 64, (i % 64) as u32);
        for (k, &bwk) in bw.iter().enumerate() {
            out[word + k] ^= bwk << shift;
            if shift != 0 {
                out[word + k + 1] ^= bwk >> (64 - shift);
            }
        }
    }
    (0..out_len)
        .map(|i| out[i / 64] & (1 << (i % 64)) != 0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_data(code: &Bch, rng: &mut impl Rng) -> Vec<bool> {
        (0..code.data_bits()).map(|_| rng.gen()).collect()
    }

    #[test]
    fn known_code_parameters() {
        // Classic codes: BCH(15,7,t=2), BCH(31,21,t=2), BCH(63,45,t=3).
        let c = Bch::new(4, 2).unwrap();
        assert_eq!((c.codeword_bits(), c.data_bits()), (15, 7));
        let c = Bch::new(5, 2).unwrap();
        assert_eq!((c.codeword_bits(), c.data_bits()), (31, 21));
        let c = Bch::new(6, 3).unwrap();
        assert_eq!((c.codeword_bits(), c.data_bits()), (63, 45));
    }

    #[test]
    fn hamming_special_case() {
        // t = 1 BCH is the Hamming code: n = 2^m − 1, r = m.
        for m in 3..=10u32 {
            let c = Bch::new(m, 1).unwrap();
            assert_eq!(c.parity_bits() as u32, m);
        }
    }

    #[test]
    fn encode_is_systematic() {
        let code = Bch::new(6, 3).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let data = random_data(&code, &mut rng);
        let cw = code.encode(&data);
        assert_eq!(&cw[..code.data_bits()], &data[..]);
        assert_eq!(cw.len(), code.codeword_bits());
    }

    #[test]
    fn clean_codeword_decodes_as_zero_errors() {
        let code = Bch::new(7, 4).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let data = random_data(&code, &mut rng);
        let mut cw = code.encode(&data);
        assert_eq!(code.decode(&mut cw), Ok(0));
        assert_eq!(&cw[..code.data_bits()], &data[..]);
    }

    #[test]
    fn exhaustive_single_and_double_errors() {
        let code = Bch::new(5, 2).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let data = random_data(&code, &mut rng);
        let clean = code.encode(&data);
        let n = code.codeword_bits();
        for i in 0..n {
            let mut cw = clean.clone();
            cw[i] = !cw[i];
            assert_eq!(code.decode(&mut cw), Ok(1), "single error at {i}");
            assert_eq!(cw, clean);
            for j in (i + 1)..n {
                let mut cw = clean.clone();
                cw[i] = !cw[i];
                cw[j] = !cw[j];
                assert_eq!(code.decode(&mut cw), Ok(2), "errors at {i},{j}");
                assert_eq!(cw, clean);
            }
        }
    }

    #[test]
    fn corrects_up_to_t_random_errors() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for (m, t) in [(6u32, 5u32), (7, 6), (8, 8)] {
            let code = Bch::new(m, t).unwrap();
            for trial in 0..20 {
                let data = random_data(&code, &mut rng);
                let clean = code.encode(&data);
                let mut cw = clean.clone();
                let e = rng.gen_range(0..=t) as usize;
                let mut flipped = std::collections::HashSet::new();
                while flipped.len() < e {
                    flipped.insert(rng.gen_range(0..code.codeword_bits()));
                }
                for &p in &flipped {
                    cw[p] = !cw[p];
                }
                assert_eq!(
                    code.decode(&mut cw),
                    Ok(e),
                    "m={m} t={t} trial={trial} e={e}"
                );
                assert_eq!(cw, clean);
            }
        }
    }

    #[test]
    fn overload_detected_or_left_alone() {
        // With > t errors, decoding must either report Uncorrectable or
        // miscorrect to some *valid* codeword — never panic, never return
        // Ok with an invalid word. BCH(255, 223, t=4): decoding spheres
        // cover only a few percent of the space, so most overloads are
        // detected.
        let code = Bch::new(8, 4).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut uncorrectable_seen = 0;
        for _ in 0..100 {
            let data = random_data(&code, &mut rng);
            let mut cw = code.encode(&data);
            let mut flipped = std::collections::HashSet::new();
            while flipped.len() < 9 {
                flipped.insert(rng.gen_range(0..code.codeword_bits()));
            }
            for &p in &flipped {
                cw[p] = !cw[p];
            }
            let before = cw.clone();
            match code.decode(&mut cw) {
                Err(DecodeError::Uncorrectable) => {
                    uncorrectable_seen += 1;
                    assert_eq!(cw, before, "failed decode must not modify cw");
                }
                Ok(_) => {
                    // Miscorrection: result must at least be a valid codeword.
                    let reencoded = code.encode(&cw[..code.data_bits()]);
                    assert_eq!(cw, reencoded);
                }
            }
        }
        assert!(uncorrectable_seen > 50, "most overloads should be detected");
    }

    #[test]
    fn shortened_code_round_trip() {
        // 512-bit data chunk in a shortened BCH over GF(2^11), t = 8.
        let code = Bch::new_shortened(11, 8, 512).unwrap();
        assert_eq!(code.data_bits(), 512);
        assert_eq!(code.parity_bits(), 8 * 11);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let data = random_data(&code, &mut rng);
        let clean = code.encode(&data);
        let mut cw = clean.clone();
        for p in [0usize, 100, 300, 511, 512, 560, 580, 599] {
            cw[p] = !cw[p];
        }
        assert_eq!(code.decode(&mut cw), Ok(8));
        assert_eq!(cw, clean);
    }

    #[test]
    fn shortened_rejects_oversize() {
        assert!(Bch::new_shortened(5, 2, 22).is_none()); // k = 21
        assert!(Bch::new_shortened(5, 2, 0).is_none());
        assert!(Bch::new_shortened(5, 2, 21).is_some());
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Bch::new(2, 1).is_none());
        assert!(Bch::new(5, 0).is_none());
        // t = 7 over GF(2^4) is the degenerate one-data-bit code; t = 8
        // leaves no room for data at all.
        assert_eq!(Bch::new(4, 7).unwrap().data_bits(), 1);
        assert!(Bch::new(4, 8).is_none());
    }

    #[test]
    fn code_rate_sane() {
        let code = Bch::new(8, 8).unwrap();
        let rate = code.code_rate();
        assert!(rate > 0.5 && rate < 1.0);
        assert_eq!(rate, code.data_bits() as f64 / code.codeword_bits() as f64);
    }

    #[test]
    fn flash_scale_code_round_trip() {
        // The paper's L0 configuration: 1 KiB data chunk, 128 B parity,
        // GF(2^14), t = 73 → tolerates 73 flipped bits in 9216.
        let code = Bch::new_shortened(14, 73, 8192).unwrap();
        assert!(code.parity_bits() <= 1024 + 14); // ≤ spare budget (+slack)
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let data = random_data(&code, &mut rng);
        let clean = code.encode(&data);
        let mut cw = clean.clone();
        let mut flipped = std::collections::HashSet::new();
        while flipped.len() < 73 {
            flipped.insert(rng.gen_range(0..code.codeword_bits()));
        }
        for &p in &flipped {
            cw[p] = !cw[p];
        }
        assert_eq!(code.decode(&mut cw), Ok(73));
        assert_eq!(cw, clean);
    }
}
