//! Closed-form ECC reliability model.
//!
//! The FTL cannot run a full BCH decode to *predict* whether a page is
//! still reliable — it needs the analytical relationship between code
//! rate, correction capability, and tolerable RBER. This module provides:
//!
//! - [`t_from_parity_bits`] — the BCH bound `t ≈ parity / m`
//!   (Marelli & Micheloni).
//! - [`page_uber`] — probability a codeword of `n` bits at raw error rate
//!   `rber` has more than `t` errors (binomial tail, computed in log
//!   space so 1e-30 tails don't underflow).
//! - [`max_correctable_rber`] — the inverse: the largest RBER meeting a
//!   target uncorrectable-error probability. This is exactly the per-level
//!   tiredness threshold of the paper's §3.1.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Memo table shared by [`page_uber`] / [`max_correctable_rber`]: the
/// exact argument triple (floats by bit pattern) to the computed value.
type Memo = Mutex<HashMap<(u64, u32, u64), f64>>;

/// Process-global memo for [`page_uber`], keyed by the exact argument
/// triple (`rber` by its bit pattern). The function is pure, so the
/// cache is transparent: a hit returns the very value a fresh
/// computation would. Shared across threads behind a mutex — the
/// callers are device-construction and figure-sweep paths, not the
/// per-op hot loop.
fn page_uber_memo() -> &'static Memo {
    static MEMO: OnceLock<Memo> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Process-global memo for [`max_correctable_rber`] (200 bisection
/// iterations per miss; every `Ftl::new`/`StatDevice::new` asks for
/// the same handful of ECC profiles).
fn max_rber_memo() -> &'static Memo {
    static MEMO: OnceLock<Memo> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

/// `ln Γ(x)` via the Lanczos approximation (g = 7, n = 9), accurate to
/// ~1e-13 for x > 0 — plenty for binomial coefficients.
fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// `ln C(n, k)`.
fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// BCH correction capability from a parity budget: `t = parity_bits / m`.
///
/// Each corrected bit costs `m` parity bits in a BCH code over GF(2^m)
/// (Marelli & Micheloni, ch. 9).
///
/// # Examples
///
/// ```
/// use salamander_ecc::capability::t_from_parity_bits;
///
/// // 128 B of parity per 1 KiB chunk over GF(2^14): t = 73.
/// assert_eq!(t_from_parity_bits(128 * 8, 14), 73);
/// ```
pub fn t_from_parity_bits(parity_bits: u64, m: u32) -> u32 {
    (parity_bits / m as u64) as u32
}

/// Smallest field parameter `m` such that a codeword of `n_bits` fits:
/// `2^m − 1 ≥ n_bits`.
pub fn field_for_codeword(n_bits: u64) -> u32 {
    let mut m = 3u32;
    while ((1u64 << m) - 1) < n_bits {
        m += 1;
    }
    m
}

/// Probability that a codeword of `n_bits` at raw bit-error rate `rber`
/// contains **more than** `t` errors: `P[Binomial(n, rber) > t]`.
///
/// Computed as a log-space sum from `t+1` until terms are negligible, so
/// values down to ~1e-300 are exact rather than flushed to zero.
pub fn page_uber(n_bits: u64, t: u32, rber: f64) -> f64 {
    let key = (n_bits, t, rber.to_bits());
    if let Some(&hit) = page_uber_memo().lock().unwrap().get(&key) {
        return hit;
    }
    let out = page_uber_uncached(n_bits, t, rber);
    page_uber_memo().lock().unwrap().insert(key, out);
    out
}

/// The log-space binomial tail itself; [`page_uber`] memoizes it, and
/// [`max_correctable_rber`]'s bisection probes it directly so 200
/// never-revisited midpoints don't pollute the cache.
fn page_uber_uncached(n_bits: u64, t: u32, rber: f64) -> f64 {
    if rber <= 0.0 {
        return 0.0;
    }
    if rber >= 1.0 {
        return 1.0;
    }
    if t as u64 >= n_bits {
        return 0.0;
    }
    let ln_p = rber.ln();
    // ln(1 − rber) without cancellation for tiny rber.
    let ln_q = (-rber).ln_1p();
    // Sum from i = t+1 upward, anchored at the distribution's mode so the
    // scaled terms never overflow (the largest term sits at ~n·p, which
    // may be far above t when the code is overwhelmed).
    let first = (t + 1) as u64;
    let mode = (((n_bits + 1) as f64) * rber).floor() as u64;
    let anchor = mode.clamp(first, n_bits);
    let ln_anchor =
        ln_choose(n_bits, anchor) + anchor as f64 * ln_p + (n_bits - anchor) as f64 * ln_q;
    let mut total = 0.0f64; // in units of exp(ln_anchor)
    let mut ln_term =
        ln_choose(n_bits, first) + first as f64 * ln_p + (n_bits - first) as f64 * ln_q;
    let mut i = first;
    loop {
        total += (ln_term - ln_anchor).exp();
        i += 1;
        if i > n_bits {
            break;
        }
        // term(i) = term(i-1) · (n-i+1)/i · p/q.
        let ratio = ((n_bits - i + 1) as f64 / i as f64).ln() + ln_p - ln_q;
        ln_term += ratio;
        // Past the mode, terms only shrink; stop once negligible.
        if i > anchor && ln_term - ln_anchor < -45.0 {
            break;
        }
        if i - first > 500_000 {
            break;
        }
    }
    let ln_total = ln_anchor + total.ln();
    ln_total.exp().min(1.0)
}

/// The largest RBER at which a codeword of `n_bits` with capability `t`
/// still meets `target_uber` (probability of uncorrectable error).
///
/// Binary search over RBER; monotonicity of [`page_uber`] in `rber`
/// guarantees convergence.
///
/// # Examples
///
/// ```
/// use salamander_ecc::capability::{max_correctable_rber, page_uber};
///
/// let n = 9216; // 1 KiB data + 128 B parity
/// let rber = max_correctable_rber(n, 73, 1e-16);
/// assert!(page_uber(n, 73, rber) <= 1.0000001e-16);
/// assert!(page_uber(n, 73, rber * 1.1) > 1e-16);
/// ```
pub fn max_correctable_rber(n_bits: u64, t: u32, target_uber: f64) -> f64 {
    let key = (n_bits, t, target_uber.to_bits());
    if let Some(&hit) = max_rber_memo().lock().unwrap().get(&key) {
        return hit;
    }
    let mut lo = 1e-12f64;
    let mut hi = 0.4f64;
    let out = if page_uber_uncached(n_bits, t, lo) > target_uber {
        0.0
    } else {
        for _ in 0..200 {
            let mid = (lo * hi).sqrt(); // geometric bisection over decades
            if page_uber_uncached(n_bits, t, mid) > target_uber {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        lo
    };
    max_rber_memo().lock().unwrap().insert(key, out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        let mut fact = 1.0f64;
        for n in 1..=20u32 {
            fact *= n as f64;
            let lg = ln_gamma(n as f64 + 1.0);
            assert!((lg - fact.ln()).abs() < 1e-9, "n={n}");
        }
    }

    #[test]
    fn ln_choose_small_cases() {
        assert!((ln_choose(5, 2) - 10f64.ln()).abs() < 1e-10);
        assert!((ln_choose(10, 5) - 252f64.ln()).abs() < 1e-10);
        assert_eq!(ln_choose(3, 7), f64::NEG_INFINITY);
    }

    #[test]
    fn uber_edge_cases() {
        assert_eq!(page_uber(1000, 10, 0.0), 0.0);
        assert_eq!(page_uber(1000, 10, 1.0), 1.0);
        assert_eq!(page_uber(10, 10, 0.5), 0.0); // t ≥ n: nothing to exceed
    }

    #[test]
    fn uber_exact_small_case() {
        // n = 4, t = 1, p = 0.5: P(X > 1) = (C(4,2)+C(4,3)+C(4,4))/16 = 11/16.
        let u = page_uber(4, 1, 0.5);
        assert!((u - 11.0 / 16.0).abs() < 1e-9, "got {u}");
    }

    #[test]
    fn uber_exact_poisson_regime() {
        // n = 10000, p = 1e-4 (mean 1), t = 0: P(X ≥ 1) = 1 − (1−p)^n.
        let expect = 1.0 - (1.0 - 1e-4f64).powi(10_000);
        let u = page_uber(10_000, 0, 1e-4);
        assert!((u - expect).abs() / expect < 1e-6, "got {u} want {expect}");
    }

    #[test]
    fn uber_monotone_in_rber_and_t() {
        let n = 9216;
        let u1 = page_uber(n, 73, 1e-3);
        let u2 = page_uber(n, 73, 2e-3);
        assert!(u2 > u1);
        let u3 = page_uber(n, 100, 2e-3);
        assert!(u3 < u2);
    }

    #[test]
    fn deep_tails_do_not_underflow_to_zero() {
        let u = page_uber(9216, 73, 1e-4);
        assert!(u > 0.0 && u < 1e-30, "got {u}");
    }

    #[test]
    fn max_rber_inverts_uber() {
        for (n, t) in [(9216u64, 73u32), (12288, 292), (18432, 682)] {
            let target = 1e-16;
            let r = max_correctable_rber(n, t, target);
            assert!(r > 0.0);
            assert!(page_uber(n, t, r) <= target * 1.01);
            assert!(page_uber(n, t, r * 1.05) > target);
        }
    }

    #[test]
    fn paper_l0_threshold_magnitude() {
        // Native code rate (1 KiB + 128 B, t = 73): max RBER should be a
        // couple of 1e-3 — consistent with 3D-TLC endurance specs.
        let r = max_correctable_rber(9216, 73, 1e-16);
        assert!(r > 1.5e-3 && r < 4e-3, "got {r}");
    }

    #[test]
    fn lower_code_rate_buys_rber_headroom() {
        // L1 (512 B parity per 1 KiB chunk, t = 292 over GF(2^14)) should
        // tolerate ~5-6x the RBER of L0 — the ratio behind Fig. 2's 50%.
        let l0 = max_correctable_rber(9216, 73, 1e-16);
        let l1 = max_correctable_rber(12288, 292, 1e-16);
        let ratio = l1 / l0;
        assert!(ratio > 4.5 && ratio < 7.0, "ratio {ratio}");
    }

    #[test]
    fn field_selection() {
        assert_eq!(field_for_codeword(7), 3);
        assert_eq!(field_for_codeword(8), 4);
        assert_eq!(field_for_codeword(9216), 14);
        assert_eq!(field_for_codeword(12288), 14);
        assert_eq!(field_for_codeword(18432), 15);
        assert_eq!(field_for_codeword(36864), 16);
    }

    #[test]
    fn t_from_parity() {
        assert_eq!(t_from_parity_bits(1024, 14), 73);
        assert_eq!(t_from_parity_bits(4096, 14), 292);
        assert_eq!(t_from_parity_bits(0, 14), 0);
    }

    #[test]
    fn impossible_target_returns_zero() {
        // t = 0 and astronomically strict target: no positive RBER works.
        assert_eq!(max_correctable_rber(1 << 17, 0, 1e-300), 0.0);
    }

    #[test]
    fn memoized_calls_are_bit_stable() {
        // Memo hits must return the exact value the first call produced,
        // and the memo must key on every argument.
        let a = max_correctable_rber(9216, 73, 1e-16);
        let b = max_correctable_rber(9216, 73, 1e-16);
        assert_eq!(a.to_bits(), b.to_bits());
        assert_ne!(max_correctable_rber(9216, 73, 1e-15).to_bits(), a.to_bits());
        let u1 = page_uber(9216, 73, 2.5e-3);
        let u2 = page_uber(9216, 73, 2.5e-3);
        assert_eq!(u1.to_bits(), u2.to_bits());
        assert_eq!(u1.to_bits(), page_uber_uncached(9216, 73, 2.5e-3).to_bits());
    }
}
