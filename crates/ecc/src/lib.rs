//! Error-correction substrate for the Salamander reproduction.
//!
//! Salamander trades flash capacity for error-correction strength: a worn
//! fPage repurposes some of its data oPages as extra ECC parity, lowering
//! the code rate and raising the maximum raw bit-error rate (RBER) the page
//! can tolerate (§3.1, Fig. 2 of the paper). This crate provides both the
//! *mechanism* and the *model*:
//!
//! - [`gf`] — arithmetic over GF(2^m), 3 ≤ m ≤ 16.
//! - [`bch`] — a real binary BCH codec (systematic encoder, syndrome
//!   computation, Berlekamp–Massey, Chien search), used by functional
//!   tests and the `ecc_codec` bench to validate correct/uncorrectable
//!   outcomes bit-exactly.
//! - [`capability`] — the closed-form reliability model: correctable bits
//!   `t` from spare size (Marelli & Micheloni), page UBER from the binomial
//!   tail, and its inverse `max_rber` — the quantity the FTL's tiredness
//!   thresholds are built from.
//! - [`profile`] — per-tiredness-level ECC profiles for the paper's example
//!   layout (16 KiB fPage, four 4 KiB oPages, 2 KiB spare).
//!
//! # Examples
//!
//! ```
//! use salamander_ecc::bch::Bch;
//!
//! // A BCH(31, 21) code correcting t=2 errors.
//! let code = Bch::new(5, 2).unwrap();
//! let data: Vec<bool> = (0..code.data_bits()).map(|i| i % 3 == 0).collect();
//! let mut cw = code.encode(&data);
//! cw[4] ^= true; // inject two bit errors
//! cw[17] ^= true;
//! let fixed = code.decode(&mut cw).unwrap();
//! assert_eq!(fixed, 2);
//! assert_eq!(&cw[..code.data_bits()], &data[..]);
//! ```

pub mod bch;
pub mod capability;
pub mod gf;
pub mod page_codec;
pub mod profile;

pub use bch::{Bch, DecodeError};
pub use capability::{max_correctable_rber, page_uber, t_from_parity_bits};
pub use page_codec::{DecodedPage, PageCodec};
pub use profile::{EccConfig, LevelProfile, Tiredness};
