//! Whole-fPage encoding/decoding with real BCH parity.
//!
//! The FTL's fast path uses the closed-form capability model; this codec
//! is the *mechanism* it stands in for: it lays out a tiredness level's
//! chunk codewords across an fPage — data oPages first, then the parity
//! region (the native spare area plus any repurposed oPages) — encodes
//! with the real BCH code, and decodes/corrects raw page images.
//!
//! Bit order is LSB-first within each byte. Chunks are laid out
//! sequentially; since error injection in `salamander-flash` is i.i.d.
//! across the page, sequential and interleaved layouts are statistically
//! identical here (real controllers interleave to hedge against spatially
//! correlated errors).

use crate::bch::{Bch, DecodeError};
use crate::profile::{EccConfig, LevelProfile, Tiredness};

/// Bit accessors over a byte slice, LSB-first.
fn get_bit(bytes: &[u8], i: usize) -> bool {
    bytes[i / 8] & (1 << (i % 8)) != 0
}

fn set_bit(bytes: &mut [u8], i: usize, v: bool) {
    if v {
        bytes[i / 8] |= 1 << (i % 8);
    } else {
        bytes[i / 8] &= !(1 << (i % 8));
    }
}

/// A page codec for one [`EccConfig`], holding one BCH code per usable
/// tiredness level.
///
/// # Examples
///
/// ```
/// use salamander_ecc::page_codec::PageCodec;
/// use salamander_ecc::profile::{EccConfig, Tiredness};
///
/// // A small layout so the doctest is fast: 4 KiB fPage, 1 KiB oPages.
/// let cfg = EccConfig {
///     fpage_data_bytes: 4096,
///     fpage_spare_bytes: 512,
///     opage_bytes: 1024,
///     ..EccConfig::default()
/// };
/// let codec = PageCodec::new(cfg).unwrap();
/// let opages = vec![vec![0xA5u8; 1024]; 4];
/// let refs: Vec<&[u8]> = opages.iter().map(|o| o.as_slice()).collect();
/// let mut page = codec.encode_page(Tiredness::L0, &refs).unwrap();
/// page[100] ^= 0x10; // one bit error
/// let decoded = codec.decode_page(Tiredness::L0, &page).unwrap();
/// assert_eq!(decoded.opages[0], opages[0]);
/// assert_eq!(decoded.corrected_bits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct PageCodec {
    cfg: EccConfig,
    /// `(profile, code)` per usable level, indexed by level.
    levels: Vec<(LevelProfile, Bch)>,
}

/// A successfully decoded page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedPage {
    /// The corrected data oPages (as many as the level stores).
    pub opages: Vec<Vec<u8>>,
    /// Total bit errors corrected across all chunks.
    pub corrected_bits: usize,
}

impl PageCodec {
    /// Build codecs for every usable level of `cfg`. Returns `None` if any
    /// level's BCH parameters are unconstructible.
    pub fn new(cfg: EccConfig) -> Option<Self> {
        let mut levels = Vec::new();
        for p in cfg.profiles() {
            let chunk_bits = cfg.chunk_data_bytes as usize * 8;
            let code = Bch::new_shortened(p.m, p.t, chunk_bits)?;
            // The parity budget must hold every chunk's parity.
            let need = code.parity_bits() * p.chunks as usize;
            if need as u64 > p.parity_bytes * 8 {
                return None;
            }
            levels.push((p, code));
        }
        Some(PageCodec { cfg, levels })
    }

    /// The configuration.
    pub fn config(&self) -> &EccConfig {
        &self.cfg
    }

    /// The profile/code pair for `level`, if usable.
    pub fn level(&self, level: Tiredness) -> Option<&(LevelProfile, Bch)> {
        self.levels.get(level.index() as usize)
    }

    /// Total page image size: data area + spare.
    pub fn page_bytes(&self) -> usize {
        (self.cfg.fpage_data_bytes + self.cfg.fpage_spare_bytes) as usize
    }

    /// Encode `opages` (exactly the level's data-oPage count, each exactly
    /// one oPage) into a full page image with parity laid in. Returns
    /// `None` if the level is unusable or the inputs are mis-sized.
    pub fn encode_page(&self, level: Tiredness, opages: &[&[u8]]) -> Option<Vec<u8>> {
        let (profile, code) = self.level(level)?;
        if opages.len() != profile.data_opages as usize {
            return None;
        }
        let o = self.cfg.opage_bytes as usize;
        if opages.iter().any(|p| p.len() != o) {
            return None;
        }
        let mut page = vec![0u8; self.page_bytes()];
        for (i, op) in opages.iter().enumerate() {
            page[i * o..(i + 1) * o].copy_from_slice(op);
        }
        // Parity region starts right after the data oPages.
        let data_bytes = profile.data_opages as usize * o;
        let parity_base_bit = data_bytes * 8;
        let chunk_bits = self.cfg.chunk_data_bytes as usize * 8;
        let r = code.parity_bits();
        for c in 0..profile.chunks as usize {
            let data: Vec<bool> = (0..chunk_bits)
                .map(|b| get_bit(&page, c * chunk_bits + b))
                .collect();
            let cw = code.encode(&data);
            for (j, &bit) in cw[chunk_bits..].iter().enumerate() {
                set_bit(&mut page, parity_base_bit + c * r + j, bit);
            }
        }
        Some(page)
    }

    /// Decode a (possibly corrupted) page image, returning the corrected
    /// oPages or [`DecodeError::Uncorrectable`] if any chunk is beyond the
    /// code's capability.
    pub fn decode_page(&self, level: Tiredness, raw: &[u8]) -> Result<DecodedPage, DecodeError> {
        let (profile, code) = self.level(level).ok_or(DecodeError::Uncorrectable)?;
        if raw.len() != self.page_bytes() {
            return Err(DecodeError::Uncorrectable);
        }
        let o = self.cfg.opage_bytes as usize;
        let data_bytes = profile.data_opages as usize * o;
        let parity_base_bit = data_bytes * 8;
        let chunk_bits = self.cfg.chunk_data_bytes as usize * 8;
        let r = code.parity_bits();
        let mut corrected_data = vec![0u8; data_bytes];
        let mut corrected_bits = 0usize;
        for c in 0..profile.chunks as usize {
            let mut cw: Vec<bool> = (0..chunk_bits)
                .map(|b| get_bit(raw, c * chunk_bits + b))
                .collect();
            cw.extend((0..r).map(|j| get_bit(raw, parity_base_bit + c * r + j)));
            corrected_bits += code.decode(&mut cw)?;
            for (b, &bit) in cw[..chunk_bits].iter().enumerate() {
                set_bit(&mut corrected_data, c * chunk_bits + b, bit);
            }
        }
        let opages = corrected_data.chunks(o).map(|ch| ch.to_vec()).collect();
        Ok(DecodedPage {
            opages,
            corrected_bits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Small layout: 4 KiB fPage of four 1 KiB oPages, 512 B spare.
    fn small_cfg() -> EccConfig {
        EccConfig {
            fpage_data_bytes: 4096,
            fpage_spare_bytes: 512,
            opage_bytes: 1024,
            chunk_data_bytes: 1024,
            target_page_uber: 1e-15,
        }
    }

    /// Tiny layout (1 KiB fPage, 256 B oPages) so even the L3 code's
    /// Chien search stays fast in debug builds.
    fn tiny_cfg() -> EccConfig {
        EccConfig {
            fpage_data_bytes: 1024,
            fpage_spare_bytes: 128,
            opage_bytes: 256,
            chunk_data_bytes: 256,
            target_page_uber: 1e-15,
        }
    }

    fn random_opages(n: usize, bytes: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..bytes).map(|_| rng.gen()).collect())
            .collect()
    }

    fn corrupt(page: &mut [u8], bits: &[usize]) {
        for &b in bits {
            page[b / 8] ^= 1 << (b % 8);
        }
    }

    #[test]
    fn clean_round_trip_all_levels() {
        let cfg = tiny_cfg();
        let codec = PageCodec::new(cfg).unwrap();
        for level in [Tiredness::L0, Tiredness::L1, Tiredness::L2, Tiredness::L3] {
            let (profile, _) = *codec.level(level).unwrap();
            let opages = random_opages(
                profile.data_opages as usize,
                cfg.opage_bytes as usize,
                level.index() as u64,
            );
            let refs: Vec<&[u8]> = opages.iter().map(|o| o.as_slice()).collect();
            let page = codec.encode_page(level, &refs).unwrap();
            let decoded = codec.decode_page(level, &page).unwrap();
            assert_eq!(decoded.opages, opages, "level {level:?}");
            assert_eq!(decoded.corrected_bits, 0);
        }
    }

    #[test]
    fn corrects_scattered_errors() {
        let codec = PageCodec::new(small_cfg()).unwrap();
        let opages = random_opages(4, 1024, 9);
        let refs: Vec<&[u8]> = opages.iter().map(|o| o.as_slice()).collect();
        let mut page = codec.encode_page(Tiredness::L0, &refs).unwrap();
        // Scatter errors across data and parity regions.
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let bits: Vec<usize> = (0..40).map(|_| rng.gen_range(0..page.len() * 8)).collect();
        corrupt(&mut page, &bits);
        let decoded = codec.decode_page(Tiredness::L0, &page).unwrap();
        assert_eq!(decoded.opages, opages);
        assert!(decoded.corrected_bits > 0 && decoded.corrected_bits <= 40);
    }

    #[test]
    fn higher_level_survives_heavier_corruption() {
        let codec = PageCodec::new(tiny_cfg()).unwrap();
        let (p0, _) = *codec.level(Tiredness::L0).unwrap();
        let (p2, _) = *codec.level(Tiredness::L2).unwrap();
        assert!(p2.t > 3 * p0.t, "L2 must correct much more per chunk");
        // Overwhelm one L0 chunk (t0+1 errors in its first bits), then show
        // the same density is fine at L2.
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let errors: Vec<usize> = {
            let mut set = std::collections::HashSet::new();
            while set.len() < (p0.t + 1) as usize {
                set.insert(rng.gen_range(0..256 * 8));
            }
            set.into_iter().collect()
        };
        let opages = random_opages(4, 256, 12);
        let refs: Vec<&[u8]> = opages.iter().map(|o| o.as_slice()).collect();
        let mut page = codec.encode_page(Tiredness::L0, &refs).unwrap();
        corrupt(&mut page, &errors);
        assert_eq!(
            codec.decode_page(Tiredness::L0, &page),
            Err(DecodeError::Uncorrectable)
        );
        let opages2 = random_opages(2, 256, 13);
        let refs2: Vec<&[u8]> = opages2.iter().map(|o| o.as_slice()).collect();
        let mut page2 = codec.encode_page(Tiredness::L2, &refs2).unwrap();
        corrupt(&mut page2, &errors);
        let decoded = codec.decode_page(Tiredness::L2, &page2).unwrap();
        assert_eq!(decoded.opages, opages2);
    }

    #[test]
    fn mis_sized_inputs_rejected() {
        let codec = PageCodec::new(small_cfg()).unwrap();
        let opages = random_opages(3, 1024, 14); // L0 wants 4
        let refs: Vec<&[u8]> = opages.iter().map(|o| o.as_slice()).collect();
        assert!(codec.encode_page(Tiredness::L0, &refs).is_none());
        let short = vec![vec![0u8; 100]; 4];
        let refs: Vec<&[u8]> = short.iter().map(|o| o.as_slice()).collect();
        assert!(codec.encode_page(Tiredness::L0, &refs).is_none());
        assert!(codec.decode_page(Tiredness::L0, &[0u8; 10]).is_err());
        assert!(codec.level(Tiredness::L4).is_none());
    }

    #[test]
    fn parity_budget_honored_default_layout() {
        // The paper's 16 KiB layout: every level's real parity fits its
        // budget (spare + repurposed oPages).
        let codec = PageCodec::new(EccConfig::default()).unwrap();
        for (p, code) in &codec.levels {
            let used = code.parity_bits() * p.chunks as usize;
            assert!(used as u64 <= p.parity_bytes * 8, "level {:?}", p.level);
        }
    }
}
