//! Property-based tests for the ECC substrate.

use proptest::prelude::*;
use salamander_ecc::bch::Bch;
use salamander_ecc::capability::{max_correctable_rber, page_uber};
use salamander_ecc::gf::GfField;
use salamander_ecc::profile::{EccConfig, Tiredness};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// GF(2^m) multiplication is commutative and associative, and every
    /// nonzero element has a working inverse.
    #[test]
    fn gf_field_axioms(m in 3u32..=12, a in 0u16..4096, b in 0u16..4096, c in 0u16..4096) {
        let f = GfField::new(m).unwrap();
        let mask = ((1u32 << m) - 1) as u16;
        let (a, b, c) = (a & mask, b & mask, c & mask);
        prop_assert_eq!(f.mul(a, b), f.mul(b, a));
        prop_assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
        prop_assert_eq!(f.mul(a, b ^ c), f.mul(a, b) ^ f.mul(a, c));
        if a != 0 {
            prop_assert_eq!(f.mul(a, f.inv(a)), 1);
        }
    }

    /// BCH corrects any error pattern of weight ≤ t, exactly.
    #[test]
    fn bch_round_trip(
        (m, t) in (5u32..=9).prop_flat_map(|m| (Just(m), 1u32..=6)),
        seed in any::<u64>(),
    ) {
        let Some(code) = Bch::new(m, t) else {
            return Ok(()); // degenerate parameter combination
        };
        let mut rng_state = seed | 1;
        let mut next = || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            rng_state
        };
        let data: Vec<bool> = (0..code.data_bits()).map(|_| next() & 1 == 1).collect();
        let clean = code.encode(&data);
        let mut cw = clean.clone();
        let errors = (next() % (t as u64 + 1)) as usize;
        let mut positions = std::collections::HashSet::new();
        while positions.len() < errors {
            positions.insert((next() % code.codeword_bits() as u64) as usize);
        }
        for &p in &positions {
            cw[p] = !cw[p];
        }
        prop_assert_eq!(code.decode(&mut cw), Ok(errors));
        prop_assert_eq!(cw, clean);
    }

    /// Page UBER is monotone: more errors tolerated or lower RBER never
    /// makes things worse.
    #[test]
    fn uber_monotonicity(
        n in 1024u64..65536,
        t in 1u32..200,
        rber in 1e-6f64..1e-2,
    ) {
        let u = page_uber(n, t, rber);
        prop_assert!((0.0..=1.0).contains(&u));
        // Allow last-ulp noise when both sides saturate near 1.
        prop_assert!(page_uber(n, t, rber * 1.5) >= u - 1e-9);
        prop_assert!(page_uber(n, t + 10, rber) <= u + 1e-9);
    }

    /// max_correctable_rber is a true inverse: the returned RBER meets the
    /// target and a slightly larger one does not.
    #[test]
    fn max_rber_is_boundary(
        n in 4096u64..32768,
        t in 16u32..256,
        exp in 10f64..20.0,
    ) {
        let target = 10f64.powf(-exp);
        let r = max_correctable_rber(n, t, target);
        prop_assume!(r > 0.0);
        prop_assert!(page_uber(n, t, r) <= target * 1.01);
        prop_assert!(page_uber(n, t, r * 1.1) > target);
    }

    /// Tiredness profiles: for any sane fPage layout, code rate decreases
    /// and RBER tolerance increases with the level.
    #[test]
    fn profiles_monotone(
        spare_kib in 1u32..=4,
        target_exp in 12f64..18.0,
    ) {
        let cfg = EccConfig {
            fpage_spare_bytes: spare_kib * 1024,
            target_page_uber: 10f64.powf(-target_exp),
            ..EccConfig::default()
        };
        let ps = cfg.profiles();
        prop_assert_eq!(ps.len(), 4);
        for w in ps.windows(2) {
            prop_assert!(w[1].code_rate < w[0].code_rate);
            prop_assert!(w[1].max_rber > w[0].max_rber);
        }
        // Thresholds agree with profiles.
        let th = cfg.thresholds();
        for (p, t) in ps.iter().zip(&th) {
            prop_assert_eq!(p.max_rber, *t);
        }
    }
}

/// Non-random exhaustive check kept here because it is expensive: every
/// weight-1 and weight-2 pattern for a mid-size code.
#[test]
fn bch_exhaustive_weight_two_midsize() {
    let code = Bch::new(6, 2).unwrap();
    let data: Vec<bool> = (0..code.data_bits()).map(|i| i % 5 < 2).collect();
    let clean = code.encode(&data);
    for i in 0..code.codeword_bits() {
        for j in (i + 1)..code.codeword_bits() {
            let mut cw = clean.clone();
            cw[i] = !cw[i];
            cw[j] = !cw[j];
            assert_eq!(code.decode(&mut cw), Ok(2), "pattern ({i},{j})");
            assert_eq!(cw, clean);
        }
    }
}

/// The Fig. 2 anchor as an invariant: L1 benefit stays in the paper's
/// neighbourhood for the default configuration.
#[test]
fn l1_benefit_anchor() {
    let b = EccConfig::default().lifetime_benefit(4.3);
    assert_eq!(b[1].0, Tiredness::L1);
    assert!((1.35..=1.65).contains(&b[1].1));
}
