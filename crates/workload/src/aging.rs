//! DWPD-style aging.
//!
//! SSD vendors rate endurance in *drive writes per day* (DWPD) over the
//! warranty period (§2 of the paper). The aging driver converts a DWPD
//! target and a device capacity into a per-day oPage write budget, so
//! lifetime experiments advance in simulated days.

use serde::{Deserialize, Serialize};

/// Converts DWPD into daily oPage write budgets.
///
/// # Examples
///
/// ```
/// use salamander_workload::aging::AgingDriver;
///
/// // 1 DWPD on a device of 1024 oPages: 1024 writes per day.
/// let mut d = AgingDriver::new(1.0, 1024);
/// assert_eq!(d.writes_for_days(1.0), 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgingDriver {
    /// Drive writes per day.
    pub dwpd: f64,
    /// Device logical capacity in oPages.
    pub capacity_opages: u64,
    /// Fractional writes carried between steps so long runs don't drift.
    carry: f64,
}

impl AgingDriver {
    /// Create a driver for a device of `capacity_opages` at `dwpd`.
    pub fn new(dwpd: f64, capacity_opages: u64) -> Self {
        AgingDriver {
            dwpd,
            capacity_opages,
            carry: 0.0,
        }
    }

    /// oPage writes to issue for the next `days` of operation. Fractional
    /// remainders carry over, so repeated small steps sum exactly.
    pub fn writes_for_days(&mut self, days: f64) -> u64 {
        let exact = self.dwpd * self.capacity_opages as f64 * days + self.carry;
        let whole = exact.floor();
        self.carry = exact - whole;
        whole as u64
    }

    /// Days needed to write the device end-to-end `n` times.
    pub fn days_for_full_writes(&self, n: f64) -> f64 {
        n / self.dwpd
    }

    /// Adjust capacity (a shrunk device absorbs the same DWPD over fewer
    /// oPages — per-page wear accelerates).
    pub fn set_capacity(&mut self, capacity_opages: u64) {
        self.capacity_opages = capacity_opages;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn daily_budget() {
        let mut d = AgingDriver::new(2.0, 1000);
        assert_eq!(d.writes_for_days(1.0), 2000);
        assert_eq!(d.writes_for_days(0.5), 1000);
    }

    #[test]
    fn fractional_carry_sums_exactly() {
        let mut d = AgingDriver::new(1.0, 3); // 3 writes/day
        let total: u64 = (0..30).map(|_| d.writes_for_days(0.1)).sum();
        assert_eq!(total, 9); // 3 days × 3 writes
    }

    #[test]
    fn full_write_days() {
        let d = AgingDriver::new(0.5, 1000);
        assert_eq!(d.days_for_full_writes(1.0), 2.0);
        assert_eq!(d.days_for_full_writes(3000.0), 6000.0);
    }

    #[test]
    fn capacity_change_shrinks_budget() {
        let mut d = AgingDriver::new(1.0, 1000);
        d.set_capacity(500);
        assert_eq!(d.writes_for_days(1.0), 500);
    }
}
