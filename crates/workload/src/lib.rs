//! Workload generation for the Salamander reproduction.
//!
//! Provides the I/O patterns the paper's analysis assumes:
//!
//! - [`gen`] — address-pattern generators: sequential, uniform random, and
//!   zipfian (hot/cold skew), with configurable read/write mixes and
//!   operation sizes.
//! - [`aging`] — DWPD-style aging: the paper reasons about device lifetime
//!   in *drive writes per day*; the aging driver converts a DWPD target
//!   into a daily oPage write budget.
//! - [`trace`] — a small serde-serializable trace format so experiments
//!   can be recorded and replayed deterministically.

pub mod aging;
pub mod gen;
pub mod profiles;
pub mod trace;

pub use aging::AgingDriver;
pub use gen::{AccessPattern, Op, OpKind, Workload, WorkloadConfig};
pub use profiles::Profile;
pub use trace::{Trace, TraceOp};
