//! Address-pattern and operation generators.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Spatial access pattern over a flat oPage address space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Ascending addresses, wrapping at the end.
    Sequential,
    /// Uniform random addresses.
    UniformRandom,
    /// Zipfian skew with parameter `theta` in (0, 1): higher is more
    /// skewed. Approximated with the standard power-law inversion.
    Zipfian {
        /// Skew parameter; 0.99 is the YCSB default.
        theta: f64,
    },
}

/// Operation type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpKind {
    /// Read one oPage run.
    Read,
    /// Write one oPage run.
    Write,
}

/// One generated operation: a run of `len` consecutive oPages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Op {
    /// Read or write.
    pub kind: OpKind,
    /// First oPage address.
    pub addr: u64,
    /// Run length in oPages (≥ 1).
    pub len: u32,
}

/// Workload parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Address space size in oPages.
    pub opages: u64,
    /// Spatial pattern.
    pub pattern: AccessPattern,
    /// Fraction of operations that are writes, in `[0, 1]`.
    pub write_fraction: f64,
    /// Run length per op in oPages (e.g. 4 = 16 KiB ops on 4 KiB oPages).
    pub op_len: u32,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadConfig {
    /// A write-only uniform-random workload — the standard endurance
    /// stressor (worst case for wear).
    pub fn write_churn(opages: u64, seed: u64) -> Self {
        WorkloadConfig {
            opages,
            pattern: AccessPattern::UniformRandom,
            write_fraction: 1.0,
            op_len: 1,
            seed,
        }
    }
}

/// A deterministic, infinite operation generator.
///
/// # Examples
///
/// ```
/// use salamander_workload::gen::{AccessPattern, Workload, WorkloadConfig};
///
/// let mut w = Workload::new(WorkloadConfig {
///     opages: 1000,
///     pattern: AccessPattern::Sequential,
///     write_fraction: 1.0,
///     op_len: 4,
///     seed: 7,
/// });
/// let a = w.next_op();
/// let b = w.next_op();
/// assert_eq!(b.addr, a.addr + 4);
/// ```
#[derive(Debug, Clone)]
pub struct Workload {
    cfg: WorkloadConfig,
    rng: ChaCha8Rng,
    cursor: u64,
    /// Precomputed zipfian normalization (zeta) when applicable.
    zipf_zeta: f64,
}

impl Workload {
    /// Build a generator.
    ///
    /// # Panics
    ///
    /// Panics if `opages == 0` or `op_len == 0`.
    pub fn new(cfg: WorkloadConfig) -> Self {
        assert!(cfg.opages > 0, "empty address space");
        assert!(cfg.op_len > 0, "zero op length");
        let zipf_zeta = match cfg.pattern {
            AccessPattern::Zipfian { theta } => {
                // Approximate zeta for large n: n^(1-theta)/(1-theta).
                let n = cfg.opages as f64;
                n.powf(1.0 - theta) / (1.0 - theta)
            }
            _ => 0.0,
        };
        Workload {
            rng: ChaCha8Rng::seed_from_u64(cfg.seed),
            cursor: 0,
            cfg,
            zipf_zeta,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.cfg
    }

    /// Generate the next operation.
    pub fn next_op(&mut self) -> Op {
        let kind = if self.rng.gen_bool(self.cfg.write_fraction.clamp(0.0, 1.0)) {
            OpKind::Write
        } else {
            OpKind::Read
        };
        let addr = match self.cfg.pattern {
            AccessPattern::Sequential => {
                let a = self.cursor;
                self.cursor = (self.cursor + self.cfg.op_len as u64) % self.cfg.opages;
                a
            }
            AccessPattern::UniformRandom => self.rng.gen_range(0..self.cfg.opages),
            AccessPattern::Zipfian { theta } => self.zipf(theta),
        };
        // Clamp the run to the end of the address space.
        let len = self
            .cfg
            .op_len
            .min((self.cfg.opages - addr).min(u32::MAX as u64) as u32)
            .max(1);
        Op { kind, addr, len }
    }

    /// Power-law inversion: rank ≈ (u · zeta · (1−θ))^(1/(1−θ)).
    fn zipf(&mut self, theta: f64) -> u64 {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let rank = (u * self.zipf_zeta * (1.0 - theta)).powf(1.0 / (1.0 - theta));
        (rank as u64).min(self.cfg.opages - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(pattern: AccessPattern) -> WorkloadConfig {
        WorkloadConfig {
            opages: 10_000,
            pattern,
            write_fraction: 0.5,
            op_len: 1,
            seed: 3,
        }
    }

    #[test]
    fn sequential_wraps() {
        let mut w = Workload::new(WorkloadConfig {
            opages: 10,
            pattern: AccessPattern::Sequential,
            write_fraction: 1.0,
            op_len: 4,
            seed: 0,
        });
        let addrs: Vec<u64> = (0..6).map(|_| w.next_op().addr).collect();
        assert_eq!(addrs, vec![0, 4, 8, 2, 6, 0]);
    }

    #[test]
    fn uniform_covers_space() {
        let mut w = Workload::new(cfg(AccessPattern::UniformRandom));
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..5000 {
            let a = w.next_op().addr;
            assert!(a < 10_000);
            if a < 1000 {
                seen_low = true;
            }
            if a >= 9000 {
                seen_high = true;
            }
        }
        assert!(seen_low && seen_high);
    }

    #[test]
    fn zipfian_is_skewed() {
        let mut w = Workload::new(cfg(AccessPattern::Zipfian { theta: 0.99 }));
        let mut hot = 0u32;
        let n = 20_000;
        for _ in 0..n {
            if w.next_op().addr < 100 {
                hot += 1;
            }
        }
        // The hottest 1% of the space should draw far more than 1% of ops.
        assert!(
            hot as f64 / n as f64 > 0.10,
            "hot fraction {}",
            hot as f64 / n as f64
        );
    }

    #[test]
    fn write_fraction_respected() {
        let mut w = Workload::new(WorkloadConfig {
            write_fraction: 0.7,
            ..cfg(AccessPattern::UniformRandom)
        });
        let n = 10_000;
        let writes = (0..n).filter(|_| w.next_op().kind == OpKind::Write).count();
        let frac = writes as f64 / n as f64;
        assert!((frac - 0.7).abs() < 0.03, "write fraction {frac}");
    }

    #[test]
    fn runs_clamped_at_end() {
        let mut w = Workload::new(WorkloadConfig {
            opages: 10,
            pattern: AccessPattern::Sequential,
            write_fraction: 1.0,
            op_len: 4,
            seed: 0,
        });
        for _ in 0..10 {
            let op = w.next_op();
            assert!(op.addr + op.len as u64 <= 10);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut w = Workload::new(WorkloadConfig {
                seed,
                ..cfg(AccessPattern::Zipfian { theta: 0.9 })
            });
            (0..100).map(|_| w.next_op()).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    #[should_panic(expected = "empty address space")]
    fn zero_space_panics() {
        Workload::new(WorkloadConfig {
            opages: 0,
            ..cfg(AccessPattern::Sequential)
        });
    }
}
