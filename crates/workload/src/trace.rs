//! Trace recording and replay.
//!
//! Experiments can record the exact operation stream they issued and replay
//! it later (or on a different FTL personality) for apples-to-apples
//! comparisons. Traces serialize as JSON lines via serde.

use crate::gen::{Op, OpKind};
use serde::{Deserialize, Serialize};

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceOp {
    /// Simulated time of issue (days).
    pub at_days: f64,
    /// Read or write.
    pub kind: OpKind,
    /// First oPage address.
    pub addr: u64,
    /// Run length in oPages.
    pub len: u32,
}

impl From<(f64, Op)> for TraceOp {
    fn from((at_days, op): (f64, Op)) -> Self {
        TraceOp {
            at_days,
            kind: op.kind,
            addr: op.addr,
            len: op.len,
        }
    }
}

/// An in-memory trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Records in issue order.
    pub ops: Vec<TraceOp>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one record.
    pub fn record(&mut self, at_days: f64, op: Op) {
        self.ops.push((at_days, op).into());
    }

    /// Serialize as JSON-lines (one record per line).
    pub fn to_jsonl(&self) -> String {
        self.ops
            .iter()
            .map(|op| serde_json::to_string(op).expect("trace op serializes"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Parse a JSON-lines trace. Blank lines are skipped.
    pub fn from_jsonl(s: &str) -> Result<Self, serde_json::Error> {
        let mut ops = Vec::new();
        for line in s.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            ops.push(serde_json::from_str(line)?);
        }
        Ok(Trace { ops })
    }

    /// Total oPages written in the trace.
    pub fn written_opages(&self) -> u64 {
        self.ops
            .iter()
            .filter(|o| o.kind == OpKind::Write)
            .map(|o| o.len as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{AccessPattern, Workload, WorkloadConfig};

    #[test]
    fn jsonl_round_trip() {
        let mut w = Workload::new(WorkloadConfig {
            opages: 100,
            pattern: AccessPattern::UniformRandom,
            write_fraction: 0.5,
            op_len: 2,
            seed: 1,
        });
        let mut t = Trace::new();
        for i in 0..20 {
            // Binary-exact timestamps so JSON round-trips bit-for-bit.
            t.record(i as f64 * 0.25, w.next_op());
        }
        let text = t.to_jsonl();
        let back = Trace::from_jsonl(&text).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn blank_lines_skipped() {
        let t = Trace::from_jsonl("\n\n").unwrap();
        assert!(t.ops.is_empty());
    }

    #[test]
    fn bad_json_rejected() {
        assert!(Trace::from_jsonl("{not json}").is_err());
    }

    #[test]
    fn written_opages_counts_writes_only() {
        let mut t = Trace::new();
        t.record(
            0.0,
            Op {
                kind: OpKind::Write,
                addr: 0,
                len: 4,
            },
        );
        t.record(
            0.0,
            Op {
                kind: OpKind::Read,
                addr: 0,
                len: 8,
            },
        );
        assert_eq!(t.written_opages(), 4);
    }
}
