//! Named workload profiles.
//!
//! The paper's sustainability argument spans heterogeneous datacenter
//! tenants — §1 notes "many users and applications that are more
//! sensitive to cost or environmental concerns than latency". These
//! profiles give the benches realistic, named mixes to compare device
//! lifetime and write amplification across, instead of a single synthetic
//! churn.

use crate::gen::{AccessPattern, WorkloadConfig};
use serde::{Deserialize, Serialize};

/// A named I/O profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Profile {
    /// Key-value cache tier: zipfian, write-heavy, small ops.
    KvCache,
    /// Log-structured ingest: sequential writes, rare reads.
    LogIngest,
    /// Object store: uniform large writes, read-mostly.
    ObjectStore,
    /// OLTP-ish: zipfian, balanced read/write, small ops.
    Oltp,
    /// Archival: sequential large writes, almost no rewrites.
    Archive,
}

impl Profile {
    /// Every profile.
    pub const ALL: [Profile; 5] = [
        Profile::KvCache,
        Profile::LogIngest,
        Profile::ObjectStore,
        Profile::Oltp,
        Profile::Archive,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Profile::KvCache => "kv-cache",
            Profile::LogIngest => "log-ingest",
            Profile::ObjectStore => "object-store",
            Profile::Oltp => "oltp",
            Profile::Archive => "archive",
        }
    }

    /// The generator configuration over an address space of `opages`.
    pub fn config(self, opages: u64, seed: u64) -> WorkloadConfig {
        match self {
            Profile::KvCache => WorkloadConfig {
                opages,
                pattern: AccessPattern::Zipfian { theta: 0.99 },
                write_fraction: 0.7,
                op_len: 1,
                seed,
            },
            Profile::LogIngest => WorkloadConfig {
                opages,
                pattern: AccessPattern::Sequential,
                write_fraction: 0.95,
                op_len: 4,
                seed,
            },
            Profile::ObjectStore => WorkloadConfig {
                opages,
                pattern: AccessPattern::UniformRandom,
                write_fraction: 0.2,
                op_len: 8,
                seed,
            },
            Profile::Oltp => WorkloadConfig {
                opages,
                pattern: AccessPattern::Zipfian { theta: 0.9 },
                write_fraction: 0.5,
                op_len: 1,
                seed,
            },
            Profile::Archive => WorkloadConfig {
                opages,
                pattern: AccessPattern::Sequential,
                write_fraction: 0.99,
                op_len: 16,
                seed,
            },
        }
    }

    /// Whether the profile is latency-critical (the paper: such tenants
    /// "would prefer to lose storage rather than slow it down" — they
    /// favor ShrinkS; the rest can take RegenS's bandwidth trade).
    pub fn latency_critical(self) -> bool {
        matches!(self, Profile::KvCache | Profile::Oltp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{OpKind, Workload};

    #[test]
    fn profiles_produce_distinct_mixes() {
        let mut write_fracs = Vec::new();
        for p in Profile::ALL {
            let mut w = Workload::new(p.config(10_000, 1));
            let n = 4000;
            let writes = (0..n).filter(|_| w.next_op().kind == OpKind::Write).count();
            write_fracs.push((p, writes as f64 / n as f64));
        }
        // Each profile lands near its configured write fraction.
        for (p, frac) in &write_fracs {
            let want = p.config(10_000, 1).write_fraction;
            assert!(
                (frac - want).abs() < 0.05,
                "{}: measured {frac}, want {want}",
                p.name()
            );
        }
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<_> = Profile::ALL.iter().map(|p| p.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), Profile::ALL.len());
    }

    #[test]
    fn latency_critical_classification() {
        assert!(Profile::KvCache.latency_critical());
        assert!(!Profile::Archive.latency_critical());
    }
}
