//! E5 / Fig. 3d — random access latency as fPages transition to L1: large
//! (16 KiB) accesses degrade by up to 4/3; small (4 KiB) accesses are
//! unaffected (§4.2).
//!
//! Run: `cargo run --release -p salamander-bench --bin fig3d`
//! Observability: `--trace <path>`, `--metrics`, `--serve <addr>` emit
//! the sweep as integer-cost latency rollups (DESIGN.md §15) —
//! queryable offline with `obsctl latency` or live at `/latency`.

use salamander::report::{fmt, Table};
use salamander_bench::{emit, finish_sweep_obs, l1_sweep_latency_rollups, ObsArgs};
use salamander_flash::timing::TimingModel;
use salamander_fleet::perf::{large_random_latency_rel, small_random_latency_rel};

fn main() {
    let obs_args = ObsArgs::parse();
    let session = obs_args.serve_session("fig3d");
    let timing = TimingModel::default();
    let mut table = Table::new(
        "Fig. 3d — random access latency vs fraction of L1 fPages",
        &[
            "L1 fraction",
            "16KiB latency (relative)",
            "16KiB latency (us)",
            "4KiB latency (relative)",
            "4KiB latency (us)",
        ],
    );
    let base_16k = timing.read_latency_us(16 * 1024);
    let base_4k = timing.read_latency_us(4 * 1024);
    for i in 0..=10 {
        let f = i as f64 / 10.0;
        let large = large_random_latency_rel(f);
        let small = small_random_latency_rel(f);
        table.row(vec![
            fmt(f, 1),
            fmt(large, 4),
            fmt(base_16k * large, 1),
            fmt(small, 4),
            fmt(base_4k * small, 1),
        ]);
    }
    emit("fig3d", &table);
    println!(
        "Paper anchor: large random accesses degrade by 4/(4-L) (1.333x at \
         all-L1); 4 KiB accesses keep baseline latency."
    );
    let rollups = l1_sweep_latency_rollups(10);
    std::process::exit(finish_sweep_obs(&obs_args, "fig3d", &rollups, session));
}
