//! E9 / §4.3 — recovery traffic: minidisk-granular failures produce
//! recovery traffic comparable to the baseline (the same LBAs fail over a
//! lifetime), but spread over many small events instead of one massive
//! one; regeneration adds short-lived capacity that later re-fails.
//!
//! Four-node cluster of real FTL devices bridged to the diFS chunk store;
//! the devices are churned to death while the store re-replicates.
//!
//! Run: `cargo run --release -p salamander-bench --bin recovery [-- --msize-sweep]`
//! `--recovery-budget <chunks>` throttles repair to that many chunks per
//! tick (0 = unthrottled), stretching the replication-exposure windows
//! the cluster rollups measure (DESIGN.md §16). `--churn <writes>`
//! scales the per-device wear applied each tick (default 5000; smaller
//! values stretch the run over more ticks, giving the durability
//! timeline more resolution).
//! Observability: `--trace <path>`, `--metrics`, `--profile`,
//! `--serve <addr>` (DESIGN.md §9/§12).

use salamander::config::{Mode, SsdConfig};
use salamander::report::Table;
use salamander_bench::{arg_or, emit, task_obs, ObsArgs};
use salamander_difs::types::DifsConfig;
use salamander_fleet::bridge::ClusterHarness;
use salamander_obs::{ClusterRollup, LiveObs, MetricsRegistry, TraceRecord};

/// Run one cluster to device exhaustion; returns
/// (recovery_bytes, re_replication events, lost chunks, churn rounds)
/// plus the run's telemetry shard. The harness is single-threaded, so
/// the shared device + store trace interleaving is deterministic.
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn run(
    mode: Mode,
    msize_bytes: u64,
    seed: u64,
    recovery_budget: Option<u32>,
    churn: u64,
    obs_args: &ObsArgs,
    profiler: &salamander_obs::Profiler,
    label: &str,
    live: Option<&LiveObs>,
) -> (
    (u64, u64, u64, u32),
    Vec<TraceRecord>,
    MetricsRegistry,
    Vec<ClusterRollup>,
) {
    let difs = DifsConfig {
        replication: 3,
        chunk_bytes: msize_bytes.min(256 * 1024),
        recovery_chunks_per_tick: recovery_budget,
    };
    let obs = task_obs(obs_args.trace(), obs_args.metrics, profiler, label, live);
    let mut h = ClusterHarness::new(difs).with_obs(obs.clone());
    for s in 0..4 {
        h.add_device(
            SsdConfig::small_test()
                .mode(mode)
                .msize_bytes(msize_bytes)
                .seed(seed + s),
        );
    }
    h.fill(0.7);
    let mut rounds = 0;
    while h.alive_devices() > 0 && rounds < 500 {
        h.churn(churn);
        rounds += 1;
    }
    let m = h.metrics();
    (
        (m.recovery_bytes, m.re_replications, m.lost_chunks, rounds),
        obs.trace.take(),
        obs.metrics.take(),
        h.cluster_rollups(),
    )
}

fn main() {
    let seed: u64 = arg_or("--seed", 7);
    let budget = arg_or("--recovery-budget", 0u32);
    let recovery_budget = (budget > 0).then_some(budget);
    let churn = arg_or("--churn", 5_000u64);
    let obs_args = ObsArgs::parse();
    let profiler = obs_args.profiler();
    let session = obs_args.serve_session("recovery");
    let live = session.as_ref().map(|s| s.live.clone());
    let mut trace = Vec::new();
    let mut metrics = MetricsRegistry::default();
    let mut table = Table::new(
        "§4.3 — recovery traffic over a fleet lifetime (4 devices, R=3)",
        &[
            "mode",
            "recovery MiB",
            "re-replication events",
            "lost chunks",
            "avg MiB/event",
        ],
    );
    for mode in [Mode::Baseline, Mode::Shrink, Mode::Regen] {
        let label = format!("recovery={}", mode.name());
        let ((bytes, events, lost, _), t, m, rollups) = run(
            mode,
            256 * 1024,
            seed,
            recovery_budget,
            churn,
            &obs_args,
            &profiler,
            &label,
            live.as_ref(),
        );
        trace.extend(t);
        metrics.merge(&m.relabelled(&format!("mode=\"{}\"", mode.name())));
        if let Some(s) = &session {
            s.publish_cluster(&label, &rollups);
        }
        let mib = bytes as f64 / (1024.0 * 1024.0);
        table.row(vec![
            mode.name().to_string(),
            format!("{mib:.1}"),
            events.to_string(),
            lost.to_string(),
            if events > 0 {
                format!("{:.3}", mib / events as f64)
            } else {
                "-".into()
            },
        ]);
    }
    emit("recovery", &table);

    if std::env::args().any(|a| a == "--msize-sweep") {
        let mut sweep = Table::new(
            "Recovery granularity vs minidisk size (ShrinkS)",
            &["mSize KiB", "recovery MiB", "events", "avg MiB/event"],
        );
        for msize_kib in [64u64, 128, 256, 512] {
            let label = format!("recovery=msize/{msize_kib}KiB");
            let ((bytes, events, _, _), t, m, rollups) = run(
                Mode::Shrink,
                msize_kib * 1024,
                seed,
                recovery_budget,
                churn,
                &obs_args,
                &profiler,
                &label,
                live.as_ref(),
            );
            trace.extend(t);
            metrics.merge(&m.relabelled(&format!("msize=\"{msize_kib}KiB\"")));
            if let Some(s) = &session {
                s.publish_cluster(&label, &rollups);
            }
            let mib = bytes as f64 / (1024.0 * 1024.0);
            sweep.row(vec![
                msize_kib.to_string(),
                format!("{mib:.1}"),
                events.to_string(),
                if events > 0 {
                    format!("{:.3}", mib / events as f64)
                } else {
                    "-".into()
                },
            ]);
        }
        emit("recovery_msize", &sweep);
    }
    let code = obs_args.finish("recovery", trace, metrics, &profiler, session);
    println!(
        "Paper shape: total recovery volume is comparable across modes \
         (the same LBAs eventually fail); Salamander spreads it over many \
         small events (smaller MiB/event), and RegenS adds re-failing \
         regenerated capacity."
    );
    std::process::exit(code);
}
