//! Extension experiment — SMART-driven proactive draining (§2.1 turned
//! around): the fleet watches device telemetry and migrates data off
//! minidisks *before* they are decommissioned. Under bandwidth-limited
//! recovery this trades planned migration traffic for a smaller
//! under-replication exposure window.
//!
//! Run: `cargo run --release -p salamander-bench --bin proactive`

use salamander::config::{Mode, SsdConfig};
use salamander::report::{fmt, Table};
use salamander_bench::{arg_or, emit};
use salamander_difs::types::DifsConfig;
use salamander_exec::{par_map_collect, Threads};
use salamander_fleet::bridge::{ClusterHarness, RecoveryPolicy};

fn run(policy: RecoveryPolicy, bandwidth: u32, seed: u64) -> (u64, u64, u64, u64) {
    let mut h = ClusterHarness::new(DifsConfig {
        replication: 3,
        chunk_bytes: 256 * 1024,
        recovery_chunks_per_tick: Some(bandwidth),
    })
    .with_policy(policy);
    for s in 0..6 {
        h.add_device(SsdConfig::small_test().mode(Mode::Shrink).seed(seed + s));
    }
    h.fill(0.6);
    for _ in 0..1500 {
        h.churn(250);
        if h.alive_devices() == 0 {
            break;
        }
    }
    let m = h.metrics();
    (
        m.exposure_chunk_ticks,
        m.max_under_replicated,
        m.recovery_bytes / (1 << 10),
        m.migration_bytes / (1 << 10),
    )
}

fn main() {
    let seed: u64 = arg_or("--seed", 900);
    let mut table = Table::new(
        "Proactive vs reactive recovery under limited re-replication bandwidth",
        &[
            "policy",
            "bandwidth (chunks/tick)",
            "exposure (chunk-ticks)",
            "peak under-replicated",
            "recovery KiB",
            "migration KiB",
        ],
    );
    // Full bandwidth × policy cross product, fanned out on the exec
    // engine (each cell is an independent cluster simulation).
    let combos: Vec<(u32, &str, RecoveryPolicy)> = [1u32, 2, 8]
        .into_iter()
        .flat_map(|bandwidth| {
            [
                (bandwidth, "reactive", RecoveryPolicy::Reactive),
                (
                    bandwidth,
                    "proactive",
                    RecoveryPolicy::Proactive {
                        margin: 2.0,
                        drain_budget: 8,
                    },
                ),
            ]
        })
        .collect();
    for row in par_map_collect(Threads::Auto, combos, |_, &(bandwidth, label, policy)| {
        let (exposure, peak, recovery, migration) = run(policy, bandwidth, seed);
        vec![
            label.to_string(),
            bandwidth.to_string(),
            exposure.to_string(),
            peak.to_string(),
            fmt(recovery as f64, 0),
            fmt(migration as f64, 0),
        ]
    }) {
        table.row(row);
    }
    emit("proactive", &table);
    println!(
        "Proactive draining converts emergency re-replication into planned \
         migration: failure-time recovery traffic drops several-fold because \
         most minidisks are already empty when they fail. Exposure is \
         roughly neutral at this small scale — the win is moving the traffic \
         off the critical recovery path, exactly the §4.3 grace-period \
         motivation."
    );
}
