//! Extension experiment — SMART-driven proactive draining (§2.1 turned
//! around): the fleet watches device telemetry and migrates data off
//! minidisks *before* they are decommissioned. Under bandwidth-limited
//! recovery this trades planned migration traffic for a smaller
//! under-replication exposure window.
//!
//! Run: `cargo run --release -p salamander-bench --bin proactive`
//! Observability: `--trace <path>`, `--metrics`, `--profile`,
//! `--serve <addr>` (DESIGN.md §9/§12).

use salamander::config::{Mode, SsdConfig};
use salamander::report::{fmt, Table};
use salamander_bench::{arg_or, emit, task_obs, ObsArgs};
use salamander_difs::types::DifsConfig;
use salamander_exec::{par_map_collect, Threads};
use salamander_fleet::bridge::{ClusterHarness, RecoveryPolicy};
use salamander_obs::{MetricsRegistry, Obs, ProgressHandle};

const CHURN_ROUNDS: u64 = 1500;

fn run(
    policy: RecoveryPolicy,
    bandwidth: u32,
    seed: u64,
    obs: Obs,
    progress: &ProgressHandle,
) -> (u64, u64, u64, u64) {
    let mut h = ClusterHarness::new(DifsConfig {
        replication: 3,
        chunk_bytes: 256 * 1024,
        recovery_chunks_per_tick: Some(bandwidth),
    })
    .with_policy(policy)
    .with_obs(obs);
    progress.set_total_days(CHURN_ROUNDS);
    for s in 0..6 {
        h.add_device(SsdConfig::small_test().mode(Mode::Shrink).seed(seed + s));
        progress.add_devices(1);
    }
    h.fill(0.6);
    for round in 0..CHURN_ROUNDS {
        h.churn(250);
        progress.set_day(round + 1);
        progress.add_ops(250);
        if h.alive_devices() == 0 {
            break;
        }
    }
    progress.device_done();
    let m = h.metrics();
    (
        m.exposure_chunk_ticks,
        m.max_under_replicated,
        m.recovery_bytes / (1 << 10),
        m.migration_bytes / (1 << 10),
    )
}

fn main() {
    let seed: u64 = arg_or("--seed", 900);
    let obs_args = ObsArgs::parse();
    let profiler = obs_args.profiler();
    let session = obs_args.serve_session("proactive");
    let mut table = Table::new(
        "Proactive vs reactive recovery under limited re-replication bandwidth",
        &[
            "policy",
            "bandwidth (chunks/tick)",
            "exposure (chunk-ticks)",
            "peak under-replicated",
            "recovery KiB",
            "migration KiB",
        ],
    );
    // Full bandwidth × policy cross product, fanned out on the exec
    // engine (each cell is an independent cluster simulation).
    let combos: Vec<(u32, &str, RecoveryPolicy)> = [1u32, 2, 8]
        .into_iter()
        .flat_map(|bandwidth| {
            [
                (bandwidth, "reactive", RecoveryPolicy::Reactive),
                (
                    bandwidth,
                    "proactive",
                    RecoveryPolicy::Proactive {
                        margin: 2.0,
                        drain_budget: 8,
                    },
                ),
            ]
        })
        .collect();
    let prof = profiler.clone();
    let live = session.as_ref().map(|s| s.live.clone());
    let want_trace = obs_args.trace();
    let want_metrics = obs_args.metrics;
    // Each cell keeps its own obs shard; shards merge in combo order
    // below, so the artifacts are thread-count invariant.
    let observed = par_map_collect(
        Threads::Auto,
        combos.clone(),
        move |_, &(bandwidth, label, policy)| {
            let run_label = format!("policy={label} bw={bandwidth}");
            let obs = task_obs(want_trace, want_metrics, &prof, &run_label, live.as_ref());
            let progress = obs.progress.for_mode(&run_label);
            let _phase = prof.phase("proactive/cluster");
            let (exposure, peak, recovery, migration) =
                run(policy, bandwidth, seed, obs.clone(), &progress);
            let row = vec![
                label.to_string(),
                bandwidth.to_string(),
                exposure.to_string(),
                peak.to_string(),
                fmt(recovery as f64, 0),
                fmt(migration as f64, 0),
            ];
            (row, obs)
        },
    );
    let mut trace = Vec::new();
    let mut metrics = MetricsRegistry::default();
    for ((bandwidth, label, _), (row, obs)) in combos.iter().zip(observed) {
        trace.extend(obs.trace.take());
        metrics.merge(
            &obs.metrics
                .take()
                .relabelled(&format!("policy=\"{label}\",bw=\"{bandwidth}\"")),
        );
        table.row(row);
    }
    emit("proactive", &table);
    let code = obs_args.finish("proactive", trace, metrics, &profiler, session);
    println!(
        "Proactive draining converts emergency re-replication into planned \
         migration: failure-time recovery traffic drops several-fold because \
         most minidisks are already empty when they fail. Exposure is \
         roughly neutral at this small scale — the win is moving the traffic \
         off the critical recovery path, exactly the §4.3 grace-period \
         motivation."
    );
    std::process::exit(code);
}
