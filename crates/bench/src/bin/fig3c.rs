//! E4 / Fig. 3c — sequential read throughput as fPages transition to L1:
//! degrades toward 4/(4−L) = 25% loss when every page is L1 (§4.2).
//!
//! Both the analytical model and the flash timing model are reported; they
//! agree to numerical precision (see `salamander_fleet::perf`).
//!
//! Run: `cargo run --release -p salamander-bench --bin fig3c`
//! Observability: `--trace <path>`, `--metrics`, `--serve <addr>` emit
//! the sweep as integer-cost latency rollups (DESIGN.md §15) —
//! queryable offline with `obsctl latency` or live at `/latency`.

use salamander::report::{fmt, Table};
use salamander_bench::{emit, finish_sweep_obs, l1_sweep_latency_rollups, ObsArgs};
use salamander_flash::timing::TimingModel;
use salamander_fleet::perf::{seq_throughput_rel, seq_throughput_rel_timed};

fn main() {
    let obs_args = ObsArgs::parse();
    let session = obs_args.serve_session("fig3c");
    let timing = TimingModel::default();
    let mut table = Table::new(
        "Fig. 3c — sequential throughput vs fraction of L1 fPages",
        &[
            "L1 fraction",
            "relative throughput (model)",
            "relative throughput (timed)",
        ],
    );
    for i in 0..=10 {
        let f = i as f64 / 10.0;
        table.row(vec![
            fmt(f, 1),
            fmt(seq_throughput_rel(f), 4),
            fmt(seq_throughput_rel_timed(f, &timing), 4),
        ]);
    }
    emit("fig3c", &table);
    println!(
        "Paper anchor: 4/(4-L) degradation — 25% sequential-throughput \
         reduction at L1 (f = 1.0 row reads 0.7500)."
    );
    let rollups = l1_sweep_latency_rollups(10);
    std::process::exit(finish_sweep_obs(&obs_args, "fig3c", &rollups, session));
}
