//! `obsctl` — query Salamander telemetry artifacts offline
//! (DESIGN.md §11, "Diagnosing a run with obsctl" in the README).
//!
//! ```text
//! obsctl lifecycle      <trace> [--mdisk N]  minidisk lifecycle timeline
//! obsctl why            <trace> [--mdisk N]  causal chain for a decommission
//! obsctl fleet          <trace> [--csv]      fleet deaths rollup
//! obsctl fleet-timeline <trace>              per-day fleet rollup series
//! obsctl percentiles    <trace> <metric>     rollup percentile table
//! obsctl drill          <trace> <day>        one day's rollup + anomalies
//! obsctl latency        <trace> [class]      per-op-class tail latency table
//! obsctl cluster        <trace>              per-tick cluster durability series
//! obsctl exposure       <trace>              replication-exposure window report
//! obsctl health         <trace>              health report from a trace (JSON)
//! obsctl diff           <a.prom> <b.prom>    diff two metric expositions
//! obsctl convert        <in> <out>           convert a trace JSONL <-> .strc
//! ```
//!
//! `<trace>` is a JSONL trace or an indexed `.strc` flight recording
//! (by extension). Over `.strc`, the lifecycle/why/fleet queries use
//! the footer index to decode only the chunks that can matter; bulk
//! wear/GC chunks fold into the totals straight from their summaries
//! (DESIGN.md §12).
//!
//! Every query is a pure function in `salamander_health::query` (or a
//! [`HealthMonitor`] fold); this binary only parses argv, reads files,
//! and prints. Parse failures surface the typed [`ParseError`] — line
//! number and offending snippet — and exit 2.

use salamander_bench::has_flag;
use salamander_health::{query, HealthMonitor, HealthUnit};
use salamander_obs::strc::{self, StrcReader};
use salamander_obs::{trace, TraceRecord};

const USAGE: &str = "\
obsctl — query Salamander telemetry artifacts

USAGE:
  obsctl lifecycle      <trace> [--mdisk N]  minidisk lifecycle timeline
  obsctl why            <trace> [--mdisk N]  causal chain for a decommission
  obsctl fleet          <trace> [--csv]      fleet deaths rollup
  obsctl fleet-timeline <trace>              per-day fleet rollup series
  obsctl percentiles    <trace> <metric>     rollup percentile table
                                             (metric: wear|pec|usable|health)
  obsctl drill          <trace> <day>        one day's rollup + fleet anomalies
  obsctl latency        <trace> [class]      per-op-class tail latency table
                                             (class: host_read|host_write|gc|scrub|regen)
  obsctl cluster        <trace>              per-tick cluster durability series
                                             (states, backlog, recovery traffic, anomalies)
  obsctl exposure       <trace>              replication-exposure window report
                                             (dwell percentiles, data at risk)
  obsctl health         <trace>              health report from a trace (JSON)
  obsctl diff           <a.prom> <b.prom>    diff two metric expositions
  obsctl convert        <in> <out>           convert a trace JSONL <-> .strc

<trace> may be JSONL or an indexed .strc recording (by extension).
";

/// Whether a path names an indexed binary trace.
fn is_strc(path: &str) -> bool {
    std::path::Path::new(path)
        .extension()
        .is_some_and(|e| e == "strc")
}

/// Open a `.strc` trace, exiting with the obsctl conventions on error
/// (1 = unreadable, 2 = corrupt).
fn open_strc(path: &str) -> StrcReader {
    match StrcReader::open(std::path::Path::new(path)) {
        Ok(r) => r,
        Err(strc::StrcError::Io(e)) => {
            eprintln!("obsctl: cannot read {path}: {e}");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("obsctl: {path} is not a valid trace: {e}");
            std::process::exit(2);
        }
    }
}

/// Run an indexed query, mapping a mid-read failure to exit 2.
fn indexed<T>(path: &str, result: Result<T, strc::StrcError>) -> T {
    match result {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obsctl: {path} is not a valid trace: {e}");
            std::process::exit(2);
        }
    }
}

/// Positional (non-flag) arguments after the program name, skipping
/// flag values (`--mdisk 3` consumes both tokens).
fn positionals() -> Vec<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a == "--mdisk" {
            skip = true;
            continue;
        }
        if a.starts_with("--") {
            continue;
        }
        out.push(a);
    }
    out
}

/// `--mdisk N`, if present and numeric.
fn mdisk_arg() -> Option<u32> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--mdisk")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn read_file(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obsctl: cannot read {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn read_trace(path: &str) -> Vec<TraceRecord> {
    if is_strc(path) {
        let mut reader = open_strc(path);
        return indexed(path, reader.read_all());
    }
    match trace::parse_jsonl(&read_file(path)) {
        Ok(records) => records,
        Err(e) => {
            // The typed error carries the 1-based line and a snippet of
            // the offending text — point straight at the corruption.
            eprintln!("obsctl: {path} is not a valid trace: {e}");
            std::process::exit(2);
        }
    }
}

/// Pick the analytics clock for a trace: day-clock if any record
/// carries a day stamp, op-clock otherwise (endurance runs never
/// advance the day counter).
fn unit_for(records: &[TraceRecord]) -> HealthUnit {
    if records.iter().any(|r| r.time.day > 0) {
        HealthUnit::Days
    } else {
        HealthUnit::Ops
    }
}

fn main() {
    let pos = positionals();
    let Some(cmd) = pos.first() else {
        eprint!("{USAGE}");
        std::process::exit(1);
    };
    match (cmd.as_str(), pos.get(1), pos.get(2)) {
        ("lifecycle", Some(path), None) => {
            if is_strc(path) {
                let mut r = open_strc(path);
                print!(
                    "{}",
                    indexed(path, query::lifecycle_strc(&mut r, mdisk_arg()))
                );
            } else {
                print!("{}", query::lifecycle(&read_trace(path), mdisk_arg()));
            }
        }
        ("why", Some(path), None) => {
            if is_strc(path) {
                let mut r = open_strc(path);
                print!("{}", indexed(path, query::why_strc(&mut r, mdisk_arg())));
            } else {
                print!("{}", query::why(&read_trace(path), mdisk_arg()));
            }
        }
        ("fleet", Some(path), None) => {
            if is_strc(path) {
                let mut r = open_strc(path);
                print!(
                    "{}",
                    indexed(path, query::fleet_rollup_strc(&mut r, has_flag("--csv")))
                );
            } else {
                print!(
                    "{}",
                    query::fleet_rollup(&read_trace(path), has_flag("--csv"))
                );
            }
        }
        ("fleet-timeline", Some(path), None) => {
            if is_strc(path) {
                let mut r = open_strc(path);
                print!("{}", indexed(path, query::fleet_timeline_strc(&mut r)));
            } else {
                print!("{}", query::fleet_timeline(&read_trace(path)));
            }
        }
        ("percentiles", Some(path), Some(metric)) => {
            if !salamander_obs::DIST_NAMES.contains(&metric.as_str()) {
                eprintln!(
                    "obsctl: unknown distribution '{metric}' (expected one of {:?})",
                    salamander_obs::DIST_NAMES
                );
                std::process::exit(2);
            }
            if is_strc(path) {
                let mut r = open_strc(path);
                print!("{}", indexed(path, query::percentiles_strc(&mut r, metric)));
            } else {
                print!("{}", query::percentiles(&read_trace(path), metric));
            }
        }
        ("drill", Some(path), Some(day)) => {
            let day: u32 = match day.parse() {
                Ok(d) => d,
                Err(_) => {
                    eprintln!("obsctl: '{day}' is not a day number");
                    std::process::exit(2);
                }
            };
            if is_strc(path) {
                let mut r = open_strc(path);
                print!("{}", indexed(path, query::drill_strc(&mut r, day)));
            } else {
                print!("{}", query::drill(&read_trace(path), day));
            }
        }
        ("latency", Some(path), class) => {
            let class = class.map(String::as_str);
            if let Some(c) = class {
                if !salamander_obs::LAT_CLASSES.contains(&c) {
                    eprintln!(
                        "obsctl: unknown op class '{c}' (expected one of {:?})",
                        salamander_obs::LAT_CLASSES
                    );
                    std::process::exit(2);
                }
            }
            if is_strc(path) {
                let mut r = open_strc(path);
                print!("{}", indexed(path, query::latency_strc(&mut r, class)));
            } else {
                print!("{}", query::latency(&read_trace(path), class));
            }
        }
        ("cluster", Some(path), None) => {
            if is_strc(path) {
                let mut r = open_strc(path);
                print!("{}", indexed(path, query::cluster_strc(&mut r)));
            } else {
                print!("{}", query::cluster(&read_trace(path)));
            }
        }
        ("exposure", Some(path), None) => {
            if is_strc(path) {
                let mut r = open_strc(path);
                print!("{}", indexed(path, query::exposure_strc(&mut r)));
            } else {
                print!("{}", query::exposure(&read_trace(path)));
            }
        }
        ("health", Some(path), None) => {
            let records = read_trace(path);
            let unit = unit_for(&records);
            let bucket = match unit {
                HealthUnit::Ops => 10_000,
                HealthUnit::Days => 7,
            };
            let mut monitor = HealthMonitor::new(unit, bucket);
            monitor.ingest_trace(&records);
            let report = monitor.report();
            match serde_json::to_string(&report) {
                Ok(json) => println!("{json}"),
                Err(e) => {
                    eprintln!("obsctl: cannot serialize report: {e}");
                    std::process::exit(1);
                }
            }
        }
        ("diff", Some(a), Some(b)) => {
            print!("{}", query::diff_prom(&read_file(a), &read_file(b)));
        }
        ("convert", Some(input), Some(output)) => {
            let (inp, outp) = (std::path::Path::new(input), std::path::Path::new(output));
            match strc::convert_file(inp, outp) {
                Ok(n) => eprintln!("converted {input} -> {output} ({n} events)"),
                Err(strc::ConvertError::Strc(strc::StrcError::Io(e))) => {
                    eprintln!("obsctl: cannot convert {input} -> {output}: {e}");
                    std::process::exit(1);
                }
                Err(e) => {
                    eprintln!("obsctl: {input} is not a valid trace: {e}");
                    std::process::exit(2);
                }
            }
        }
        _ => {
            eprint!("{USAGE}");
            std::process::exit(1);
        }
    }
}
