//! `obsctl` — query Salamander telemetry artifacts offline
//! (DESIGN.md §11, "Diagnosing a run with obsctl" in the README).
//!
//! ```text
//! obsctl lifecycle <trace.jsonl> [--mdisk N]   minidisk lifecycle timeline
//! obsctl why       <trace.jsonl> [--mdisk N]   causal chain for a decommission
//! obsctl fleet     <trace.jsonl> [--csv]       fleet deaths rollup
//! obsctl health    <trace.jsonl>               health report from a trace (JSON)
//! obsctl diff      <a.prom> <b.prom>           diff two metric expositions
//! ```
//!
//! Every query is a pure function in `salamander_health::query` (or a
//! [`HealthMonitor`] fold); this binary only parses argv, reads files,
//! and prints. Parse failures surface the typed [`ParseError`] — line
//! number and offending snippet — and exit 2.

use salamander_bench::has_flag;
use salamander_health::{query, HealthMonitor, HealthUnit};
use salamander_obs::{trace, TraceRecord};

const USAGE: &str = "\
obsctl — query Salamander telemetry artifacts

USAGE:
  obsctl lifecycle <trace.jsonl> [--mdisk N]   minidisk lifecycle timeline
  obsctl why       <trace.jsonl> [--mdisk N]   causal chain for a decommission
  obsctl fleet     <trace.jsonl> [--csv]       fleet deaths rollup
  obsctl health    <trace.jsonl>               health report from a trace (JSON)
  obsctl diff      <a.prom> <b.prom>           diff two metric expositions
";

/// Positional (non-flag) arguments after the program name, skipping
/// flag values (`--mdisk 3` consumes both tokens).
fn positionals() -> Vec<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a == "--mdisk" {
            skip = true;
            continue;
        }
        if a.starts_with("--") {
            continue;
        }
        out.push(a);
    }
    out
}

/// `--mdisk N`, if present and numeric.
fn mdisk_arg() -> Option<u32> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--mdisk")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn read_file(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obsctl: cannot read {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn read_trace(path: &str) -> Vec<TraceRecord> {
    match trace::parse_jsonl(&read_file(path)) {
        Ok(records) => records,
        Err(e) => {
            // The typed error carries the 1-based line and a snippet of
            // the offending text — point straight at the corruption.
            eprintln!("obsctl: {path} is not a valid trace: {e}");
            std::process::exit(2);
        }
    }
}

/// Pick the analytics clock for a trace: day-clock if any record
/// carries a day stamp, op-clock otherwise (endurance runs never
/// advance the day counter).
fn unit_for(records: &[TraceRecord]) -> HealthUnit {
    if records.iter().any(|r| r.time.day > 0) {
        HealthUnit::Days
    } else {
        HealthUnit::Ops
    }
}

fn main() {
    let pos = positionals();
    let Some(cmd) = pos.first() else {
        eprint!("{USAGE}");
        std::process::exit(1);
    };
    match (cmd.as_str(), pos.get(1), pos.get(2)) {
        ("lifecycle", Some(path), None) => {
            print!("{}", query::lifecycle(&read_trace(path), mdisk_arg()));
        }
        ("why", Some(path), None) => {
            print!("{}", query::why(&read_trace(path), mdisk_arg()));
        }
        ("fleet", Some(path), None) => {
            print!(
                "{}",
                query::fleet_rollup(&read_trace(path), has_flag("--csv"))
            );
        }
        ("health", Some(path), None) => {
            let records = read_trace(path);
            let unit = unit_for(&records);
            let bucket = match unit {
                HealthUnit::Ops => 10_000,
                HealthUnit::Days => 7,
            };
            let mut monitor = HealthMonitor::new(unit, bucket);
            monitor.ingest_trace(&records);
            let report = monitor.report();
            match serde_json::to_string(&report) {
                Ok(json) => println!("{json}"),
                Err(e) => {
                    eprintln!("obsctl: cannot serialize report: {e}");
                    std::process::exit(1);
                }
            }
        }
        ("diff", Some(a), Some(b)) => {
            print!("{}", query::diff_prom(&read_file(a), &read_file(b)));
        }
        _ => {
            eprint!("{USAGE}");
            std::process::exit(1);
        }
    }
}
