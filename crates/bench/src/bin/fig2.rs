//! E1 / Fig. 2 — "Switching oPages to additional ECC trades capacity for
//! increasingly diminishing lifetime benefits."
//!
//! For each tiredness level L of the paper's example layout (16 KiB fPage,
//! four 4 KiB oPages, 2 KiB spare), derive the code parameters, the
//! maximum tolerable RBER, and the PEC lifetime multiplier under the
//! calibrated wear model. The paper's anchor: ~50% benefit at L1, with
//! diminishing returns after (hence the RegenS L < 2 recommendation).
//!
//! Run: `cargo run --release -p salamander-bench --bin fig2`

use salamander::report::{fmt, Table};
use salamander_bench::emit;
use salamander_ecc::profile::EccConfig;
use salamander_flash::rber::RberModel;

fn main() {
    let cfg = EccConfig::default();
    let rber = RberModel::default();
    let profiles = cfg.profiles();
    let benefits = cfg.lifetime_benefit(rber.exponent);
    let mut table = Table::new(
        "Fig. 2 — PEC lifetime benefit vs tiredness level (code rate)",
        &[
            "level",
            "data oPages",
            "code rate",
            "t/chunk",
            "max RBER",
            "max PEC",
            "lifetime benefit",
            "marginal benefit",
        ],
    );
    let mut prev_benefit = 1.0;
    for (p, (_, benefit)) in profiles.iter().zip(&benefits) {
        table.row(vec![
            format!("L{}", p.level.index()),
            p.data_opages.to_string(),
            fmt(p.code_rate, 3),
            p.t.to_string(),
            format!("{:.2e}", p.max_rber),
            rber.pec_at_rber(p.max_rber).to_string(),
            format!("{:.2}x", benefit),
            format!("+{:.0}%", (benefit / prev_benefit - 1.0) * 100.0),
        ]);
        prev_benefit = *benefit;
    }
    emit("fig2", &table);
    let l1 = benefits[1].1;
    println!(
        "Paper anchor: ~1.5x at L1 (50% benefit). Measured: {l1:.2}x. \
         Diminishing marginals justify the RegenS cap at L < 2."
    );
}
