//! E6-companion — simulation-derived upgrade rates: instead of assuming
//! Eq. 3's `Ru` (the paper fixes 0.9 / 0.8 analytically), operate
//! replacement fleets against a fixed capacity target, measure how many
//! drives each mode actually buys, and feed the measured `Ru` back into
//! the carbon model.
//!
//! Run: `cargo run --release -p salamander-bench --bin carbon_sim`
//! Observability: `--trace <path>`, `--metrics`, `--profile`,
//! `--serve <addr>` (DESIGN.md §9/§12). The bin is analytic, so the
//! artifacts are gauges — measured Ru and savings per mode.

use salamander::report::{fmt, pct, Table};
use salamander_bench::{arg_or, emit, ObsArgs};
use salamander_ecc::profile::Tiredness;
use salamander_fleet::device::{StatDeviceConfig, StatMode};
use salamander_fleet::replace::{ReplacementConfig, ReplacementResult, ReplacementSim};
use salamander_obs::{SimTime, TraceEvent};
use salamander_sustain::carbon::CarbonParams;

fn run(mode: StatMode, dwpd: f64, seed: u64) -> ReplacementResult {
    ReplacementSim::new(ReplacementConfig {
        device: StatDeviceConfig::datacenter(mode),
        initial_devices: 60,
        dwpd,
        dwpd_sigma: 0.25,
        afr: 0.01,
        horizon_days: 3650,
        seed,
    })
    .run()
}

fn main() {
    let dwpd: f64 = arg_or("--dwpd", 5.0);
    let seed: u64 = arg_or("--seed", 11);
    let obs_args = ObsArgs::parse();
    let profiler = obs_args.profiler();
    let session = obs_args.serve_session("carbon_sim");
    let obs = obs_args.obs(session.as_ref());
    if obs.trace.is_enabled() {
        obs.trace.emit(
            SimTime::ZERO,
            TraceEvent::RunMarker {
                label: "carbon_sim=eq3".to_string(),
            },
        );
    }
    let base = run(StatMode::Baseline, dwpd, seed);
    let shrink = run(StatMode::Shrink, dwpd, seed);
    let regen = run(
        StatMode::Regen {
            max_level: Tiredness::L1,
        },
        dwpd,
        seed,
    );

    let mut table = Table::new(
        "Simulation-derived upgrade rates vs the paper's Eq. 3 presets",
        &[
            "mode",
            "purchases / slot / yr",
            "Ru (simulated)",
            "Ru (paper)",
            "CO2e savings (sim Ru)",
            "CO2e savings (paper)",
        ],
    );
    let rows = [
        ("Baseline", &base, 1.0, 1.0, None),
        (
            "ShrinkS",
            &shrink,
            shrink.upgrade_rate_vs(&base),
            0.9,
            Some(CarbonParams::shrink()),
        ),
        (
            "RegenS",
            &regen,
            regen.upgrade_rate_vs(&base),
            0.8,
            Some(CarbonParams::regen()),
        ),
    ];
    for (name, r, ru_sim, ru_paper, analytic) in rows {
        let sim_params = CarbonParams {
            f_op: 0.46,
            power_effectiveness: 1.06,
            upgrade_rate: ru_sim,
        };
        obs.metrics.set_gauge(
            &format!("salamander_carbon_upgrade_rate{{mode=\"{name}\"}}"),
            ru_sim,
        );
        obs.metrics.set_gauge(
            &format!("salamander_carbon_sim_savings{{mode=\"{name}\"}}"),
            sim_params.savings().max(0.0),
        );
        table.row(vec![
            name.to_string(),
            fmt(r.purchase_rate_per_year, 3),
            fmt(ru_sim, 3),
            fmt(ru_paper, 2),
            pct(sim_params.savings().max(0.0)),
            analytic
                .map(|p| pct(p.savings()))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    emit("carbon_sim", &table);
    let code = obs_args.finish(
        "carbon_sim",
        obs.trace.take(),
        obs.metrics.take(),
        &profiler,
        session,
    );
    println!(
        "The fleet simulation independently lands the paper's ordering \
         (RegenS buys the fewest drives) and the same savings magnitude; \
         the analytic Ru presets of §4.1 are a reasonable stand-in."
    );
    std::process::exit(code);
}
