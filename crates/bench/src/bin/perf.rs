//! Perf-regression harness: times the FTL hot path, the `lifetime
//! --modes-only` end-to-end run, and the warehouse-scale fleet engine,
//! writing `BENCH_ftl_micro.json`, `BENCH_lifetime.json`, and
//! `BENCH_fleet_scale.json` (medians, machine+thread metadata) for
//! `scripts/bench.sh` to gate against.
//!
//! Flags: `--runs N` (default 20), `--micro-only`, `--e2e-only`,
//! `--fleet-only`, `--fleet-runs N` (default 5), `--fleet-full`
//! (adds the 100k-device mode sweep, the 100k legacy reference, and
//! the 1M-device entry — minutes of wall clock),
//! `--out DIR` (default: current directory — run from the repo root).

use salamander::config::{Mode, SsdConfig};
use salamander::device::{BatchStop, SalamanderSsd};
use salamander_bench::perf::{bench, bench_cold, BenchReport};
use salamander_bench::{arg_or, has_flag};
use salamander_ecc::profile::Tiredness;
use salamander_exec::Threads;
use salamander_flash::geometry::FlashGeometry;
use salamander_fleet::device::{StatDeviceConfig, StatMode};
use salamander_fleet::sim::{FleetConfig, FleetEngine, FleetSim};
use salamander_ftl::types::{Lba, MdiskId};
use std::path::{Path, PathBuf};
use std::process::Command;

/// Issue `count` synthetic writes in batches of 64 over the device's
/// active minidisks (the endurance-driver pattern). Returns accepted
/// writes; stops early on device death.
fn churn(ssd: &mut SalamanderSsd, mut state: u64, count: u64) -> u64 {
    let mut mdisks = ssd.minidisks();
    let mut ops: Vec<(MdiskId, Lba)> = Vec::with_capacity(64);
    let mut written = 0u64;
    while written < count && !ssd.is_dead() {
        if ssd.has_pending_events() {
            ssd.poll_events();
            ssd.minidisks_into(&mut mdisks);
        }
        if mdisks.is_empty() {
            break;
        }
        ops.clear();
        for _ in 0..64u64.min(count - written) {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let id = mdisks[(state as usize / 7) % mdisks.len()];
            let lbas = ssd.minidisk_lbas(id).unwrap_or(1);
            ops.push((id, Lba((state % lbas as u64) as u32)));
        }
        let out = ssd.write_batch(&ops);
        written += out.written;
        match out.stop {
            Some(BatchStop::Events) => ssd.minidisks_into(&mut mdisks),
            Some(BatchStop::DeviceDead) => break,
            Some(BatchStop::Fatal(e)) => panic!("perf churn failed: {e}"),
            None => {}
        }
    }
    written
}

/// Micro suite: the per-op write path on a fresh device, and the
/// steady-state GC cost once the device is preconditioned.
fn micro(runs: u32) -> BenchReport {
    let mut report = BenchReport::new("ftl_micro");
    let cfg = SsdConfig::medium().mode(Mode::Shrink);

    // Write path: K fresh-device writes per run (buffer/flush/map cost,
    // little GC — the common case of every simulated op).
    const WRITE_OPS: u64 = 20_000;
    report.results.push(bench("ftl_write_path", runs, |run| {
        let mut ssd = SalamanderSsd::open(cfg);
        churn(&mut ssd, 0x5EED | u64::from(run) << 32, WRITE_OPS)
    }));

    // Same workload issued one op at a time through the per-op API, to
    // attribute how much of the hot path the batched issue (thrust 3)
    // buys over the flat-mapping/LUT work shared by both variants.
    report
        .results
        .push(bench("ftl_write_path_serial", runs, |run| {
            let mut ssd = SalamanderSsd::open(cfg);
            let mut state = 0x5EED | u64::from(run) << 32;
            let mut mdisks = ssd.minidisks();
            let mut written = 0u64;
            while written < WRITE_OPS && !ssd.is_dead() {
                if ssd.has_pending_events() {
                    ssd.poll_events();
                    ssd.minidisks_into(&mut mdisks);
                }
                if mdisks.is_empty() {
                    break;
                }
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let id = mdisks[(state as usize / 7) % mdisks.len()];
                let lbas = ssd.minidisk_lbas(id).unwrap_or(1);
                match ssd.write(id, Lba((state % lbas as u64) as u32).0, None) {
                    Ok(()) => written += 1,
                    Err(_) => break,
                }
            }
            written.max(1)
        }));

    // GC pass: precondition a shared device into steady-state GC
    // (outside the timer), then charge each timed overwrite churn to the
    // GC passes it forced — per-iter ns is the amortized pass cost. The
    // medium device endures ~480k churn writes, so long campaigns reopen
    // and re-precondition when it wears out (that run's time is
    // polluted; the per-run medians absorb it).
    fn precondition(ssd: &mut SalamanderSsd, seed: &mut u64) {
        for _ in 0..200 {
            if ssd.stats().gc_runs > 0 || ssd.is_dead() {
                break;
            }
            churn(ssd, *seed, 20_000);
            *seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        }
    }
    let mut ssd = SalamanderSsd::open(cfg);
    let mut seed = 0xACEu64;
    precondition(&mut ssd, &mut seed);
    const GC_OPS: u64 = 10_000;
    report.results.push(bench("ftl_gc_pass", runs, |_| {
        if ssd.is_dead() {
            ssd = SalamanderSsd::open(cfg);
            precondition(&mut ssd, &mut seed);
        }
        let before = ssd.stats().gc_runs;
        seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        churn(&mut ssd, seed, GC_OPS);
        (ssd.stats().gc_runs - before).max(1)
    }));
    report
}

/// End-to-end suite: wall-clock of the `lifetime --modes-only` harness
/// binary (sibling of this executable), run in a scratch directory so
/// its `results/` output does not touch the repo's goldens.
fn end_to_end(runs: u32) -> BenchReport {
    let mut report = BenchReport::new("lifetime");
    let exe = std::env::current_exe().expect("own path");
    let lifetime = exe.with_file_name("lifetime");
    assert!(
        lifetime.exists(),
        "{} not found — build the bench binaries first",
        lifetime.display()
    );
    let scratch = std::env::temp_dir().join(format!("salamander-perf-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("create scratch dir");
    report.results.push(bench("lifetime_modes_only", runs, |_| {
        let status = Command::new(&lifetime)
            .arg("--modes-only")
            .current_dir(&scratch)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .status()
            .expect("spawn lifetime");
        assert!(status.success(), "lifetime exited with {status}");
        1
    }));
    let _ = std::fs::remove_dir_all(&scratch);
    report
}

/// Fleet-scale suite (ISSUE 6): the cohort engine at 10k/100k/1M
/// devices × 5 simulated years, plus the legacy per-device path as
/// the speedup reference. Small-geometry devices (the fleet unit
/// tests' configuration) keep per-device state at 2 KiB so the 1M
/// entry fits comfortably in memory; `iters_per_run` is the device
/// count, so `median_ns_per_iter` reads as cost per device.
///
/// The headline cohort-vs-device pair is Regen L3 at 1 DWPD: a fig3b
/// paper configuration at the standard datacenter endurance rating,
/// where devices survive most of the horizon so the per-day aging
/// cost (not the bit-identity-pinned per-device setup) dominates
/// both engines. Write-hot short-lived configurations (shrink/
/// baseline at 5 DWPD) amortize less and sit at lower ratios — they
/// are kept as honest secondary entries.
fn fleet_scale(runs: u32, full: bool) -> BenchReport {
    let mut report = BenchReport::new("fleet_scale");
    let cfg = |devices: u32, mode: StatMode, dwpd: f64| FleetConfig {
        device: StatDeviceConfig {
            geometry: FlashGeometry::small_test(),
            ..StatDeviceConfig::datacenter(mode)
        },
        devices,
        dwpd,
        dwpd_sigma: 0.25,
        afr: 0.01,
        horizon_days: 1825, // 5 simulated years
        sample_every_days: 30,
        seed: 42,
    };
    let regen3 = StatMode::Regen {
        max_level: Tiredness::L3,
    };
    let mut run = |name: &str,
                   devices: u32,
                   mode: StatMode,
                   dwpd: f64,
                   engine: FleetEngine,
                   r: u32,
                   warm: bool| {
        let f = |_| {
            let t = FleetSim::new(cfg(devices, mode, dwpd))
                .with_engine(engine)
                .run_threads(Threads::Auto);
            std::hint::black_box(t.samples.len());
            devices as u64
        };
        let result = if warm {
            bench(name, r, f)
        } else {
            bench_cold(name, r, f)
        };
        report.results.push(result);
    };
    use FleetEngine::{Cohort, PerDevice};
    // First entry is the scripts/bench.sh --check gate: keep it cheap
    // and stable.
    run(
        "fleet_cohort_10k_shrink",
        10_000,
        StatMode::Shrink,
        5.0,
        Cohort,
        runs,
        true,
    );
    run(
        "fleet_cohort_10k_baseline",
        10_000,
        StatMode::Baseline,
        5.0,
        Cohort,
        runs,
        true,
    );
    // The headline pair at probe scale, then at the 100k acceptance
    // scale (the legacy 100k reference is behind --fleet-full: one
    // run is minutes of wall clock).
    run(
        "fleet_cohort_10k_regen3_dwpd1",
        10_000,
        regen3,
        1.0,
        Cohort,
        runs,
        true,
    );
    run(
        "fleet_device_10k_regen3_dwpd1",
        10_000,
        regen3,
        1.0,
        PerDevice,
        runs.min(2),
        false,
    );
    run(
        "fleet_cohort_100k_regen3_dwpd1",
        100_000,
        regen3,
        1.0,
        Cohort,
        runs.min(3),
        false,
    );
    if full {
        run(
            "fleet_cohort_100k_shrink",
            100_000,
            StatMode::Shrink,
            5.0,
            Cohort,
            runs.min(3),
            false,
        );
        run(
            "fleet_cohort_100k_baseline",
            100_000,
            StatMode::Baseline,
            5.0,
            Cohort,
            runs.min(2),
            false,
        );
        run(
            "fleet_device_100k_regen3_dwpd1",
            100_000,
            regen3,
            1.0,
            PerDevice,
            1,
            false,
        );
        run(
            "fleet_cohort_1m_shrink",
            1_000_000,
            StatMode::Shrink,
            5.0,
            Cohort,
            1,
            false,
        );
        run(
            "fleet_cohort_1m_regen3_dwpd1",
            1_000_000,
            regen3,
            1.0,
            Cohort,
            1,
            false,
        );
    }
    report
}

fn write_report(dir: &Path, name: &str, report: &BenchReport) {
    let path = dir.join(name);
    std::fs::write(&path, report.to_json()).expect("write bench report");
    for r in &report.results {
        println!(
            "{:24} median {:>12} ns  ({} runs, {} iters/run, {} ns/iter)",
            r.name, r.median_ns, r.runs, r.iters_per_run, r.median_ns_per_iter
        );
    }
    eprintln!("wrote {}", path.display());
}

fn main() {
    let runs: u32 = arg_or("--runs", 20).max(1);
    let out: PathBuf = PathBuf::from(arg_or("--out", ".".to_string()));
    let fleet_only = has_flag("--fleet-only");
    if !has_flag("--e2e-only") && !fleet_only {
        write_report(&out, "BENCH_ftl_micro.json", &micro(runs));
    }
    if !has_flag("--micro-only") && !fleet_only {
        write_report(&out, "BENCH_lifetime.json", &end_to_end(runs));
    }
    if !has_flag("--micro-only") && !has_flag("--e2e-only") || fleet_only {
        let fleet_runs: u32 = arg_or("--fleet-runs", 5).max(1);
        write_report(
            &out,
            "BENCH_fleet_scale.json",
            &fleet_scale(fleet_runs, has_flag("--fleet-full")),
        );
    }
}
