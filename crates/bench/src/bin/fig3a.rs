//! E2 / Fig. 3a — functioning SSDs over time: a baseline fleet dies off
//! abruptly as devices brick; ShrinkS/RegenS devices shrink instead,
//! flattening the failure slope.
//!
//! Run: `cargo run --release -p salamander-bench --bin fig3a -- --devices 100 --dwpd 5`
//! Engine: `--engine <cohort|device>` picks the fleet aging engine
//! (default: the cohort engine; both produce byte-identical output).
//! Observability: `--trace <path>`, `--metrics`, `--profile`,
//! `--serve <addr>` (DESIGN.md §9/§12).

use salamander::report::Table;
use salamander_bench::{arg_or, emit, fleet_engine_arg, ObsArgs};
use salamander_ecc::profile::Tiredness;
use salamander_exec::{par_map, Threads};
use salamander_fleet::device::{StatDeviceConfig, StatMode};
use salamander_fleet::sim::{FleetConfig, FleetEngine, FleetSim, FleetTimeline, ObservedFleetRun};
use salamander_obs::{LiveObs, MetricsRegistry, Profiler};

#[allow(clippy::too_many_arguments)]
fn run(
    mode: StatMode,
    engine: FleetEngine,
    devices: u32,
    dwpd: f64,
    horizon: u32,
    seed: u64,
    label: &str,
    profiler: &Profiler,
    live: Option<&LiveObs>,
) -> ObservedFleetRun {
    let device = StatDeviceConfig::datacenter(mode);
    FleetSim::new(FleetConfig {
        device,
        devices,
        dwpd,
        dwpd_sigma: 0.25,
        afr: 0.01,
        horizon_days: horizon,
        sample_every_days: 30,
        seed,
    })
    .with_engine(engine)
    .run_observed_live(Threads::Auto, label, profiler, live)
}

fn main() {
    let devices: u32 = arg_or("--devices", 100);
    let dwpd: f64 = arg_or("--dwpd", 5.0);
    let horizon: u32 = arg_or("--days", 3650);
    let seed: u64 = arg_or("--seed", 42);
    let engine = fleet_engine_arg();
    let obs_args = ObsArgs::parse();
    let profiler = obs_args.profiler();
    let session = obs_args.serve_session("fig3a");

    let modes = [
        ("Baseline", StatMode::Baseline),
        ("ShrinkS", StatMode::Shrink),
        (
            "RegenS",
            StatMode::Regen {
                max_level: Tiredness::L1,
            },
        ),
    ];
    // The three fleets are independent; fan out on the exec engine
    // (thread count from SALAMANDER_THREADS, deterministic output).
    // Each fleet's trace/metrics shard is derived post-merge, so the
    // concatenation below is thread-count invariant.
    let prof = profiler.clone();
    let live = session.as_ref().map(|s| s.live.clone());
    let observed: Vec<(&str, ObservedFleetRun)> =
        par_map(Threads::Auto, &modes, move |_, (name, m)| {
            let label = format!("fleet={name}");
            (
                *name,
                run(
                    *m,
                    engine,
                    devices,
                    dwpd,
                    horizon,
                    seed,
                    &label,
                    &prof,
                    live.as_ref(),
                ),
            )
        });
    let mut trace = Vec::new();
    let mut metrics = MetricsRegistry::default();
    let mut runs: Vec<(&str, FleetTimeline)> = Vec::with_capacity(observed.len());
    for (name, o) in observed {
        if let Some(s) = &session {
            s.publish_rollups(&format!("fleet={name}"), &o.rollups);
            s.publish_latency(&format!("fleet={name}"), &o.latency);
        }
        trace.extend(o.trace);
        metrics.merge(&o.metrics.relabelled(&format!("fleet=\"{name}\"")));
        runs.push((name, o.timeline));
    }

    let mut table = Table::new(
        "Fig. 3a — functioning SSDs over time",
        &["day", "Baseline", "ShrinkS", "RegenS"],
    );
    // Union of sample days (all runs share the sampling grid).
    let days: Vec<u32> = runs[0].1.samples.iter().map(|s| s.day).collect();
    for &day in &days {
        let alive = |t: &FleetTimeline| {
            t.samples
                .iter()
                .rev()
                .find(|s| s.day <= day)
                .map(|s| s.alive)
                .unwrap_or(0)
        };
        table.row(vec![
            day.to_string(),
            alive(&runs[0].1).to_string(),
            alive(&runs[1].1).to_string(),
            alive(&runs[2].1).to_string(),
        ]);
    }
    emit("fig3a", &table);
    let code = obs_args.finish("fig3a", trace, metrics, &profiler, session);

    for (name, t) in &runs {
        match t.half_fleet_dead_day() {
            Some(d) => println!("{name}: half the fleet dead by day {d}"),
            None => println!("{name}: more than half the fleet alive at the horizon"),
        }
    }
    println!(
        "Paper shape: Salamander modes flatten the device-failure slope \
         (wear deaths are deferred by shrinking/regenerating; the residual \
         slope is the 1% AFR both fleets share). Example endurance sim uses \
         a single device model: the wear model default endures ~3000 PEC."
    );
    // Sanity check of the expected ordering; devices running the
    // fleet-default parameters should show it clearly.
    let first_dead_day = |t: &FleetTimeline| {
        t.samples
            .iter()
            .find(|s| s.wear_deaths > 0)
            .map(|s| s.day)
            .unwrap_or(u32::MAX)
    };
    let base_first = first_dead_day(&runs[0].1);
    let regen_first = first_dead_day(&runs[2].1);
    if base_first != u32::MAX && regen_first != u32::MAX {
        println!(
            "first wear death: Baseline day {base_first}, RegenS day {regen_first} \
             ({:.2}x later)",
            regen_first as f64 / base_first as f64
        );
    }
    std::process::exit(code);
}
