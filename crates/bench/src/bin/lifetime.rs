//! E8 / §4 headline — device lifetime extension: ShrinkS ≥ ~1.2× (the
//! CVSS-derived floor the paper conservatively assumes) and RegenS up to
//! ~1.5× over a bricking baseline. Includes the two ablations DESIGN.md
//! calls out: retirement granularity (page vs block) and the RegenS
//! tiredness cap.
//!
//! Run: `cargo run --release -p salamander-bench --bin lifetime [-- --full]`
//! (`--full` uses the medium 256 MiB geometry with realistic endurance;
//! the default uses a fast-wear device so the run finishes in seconds.)
//! Observability: `--trace <path>`, `--metrics`, `--profile`,
//! `--serve <addr>` / `--serve-linger <secs>` (DESIGN.md §9/§12).

use salamander::config::{Mode, SsdConfig};
use salamander::report::{fmt, Table};
use salamander::sim::EnduranceSim;
use salamander_bench::{emit, ObsArgs};
use salamander_ecc::profile::Tiredness;
use salamander_exec::{par_map, Threads};
use salamander_ftl::types::RetireGranularity;
use salamander_obs::MetricsRegistry;

fn base_cfg() -> SsdConfig {
    let full = std::env::args().any(|a| a == "--full");
    if full {
        // Realistic endurance (~3000 PEC) on the medium geometry: minutes.
        SsdConfig::medium().rber(salamander_flash::rber::RberModel::default())
    } else {
        // Fast wear on the small geometry: seconds.
        SsdConfig::small_test()
    }
}

fn main() {
    let cfg = base_cfg();
    let obs_args = ObsArgs::parse();
    let profiler = obs_args.profiler();
    let session = obs_args.serve_session("lifetime");
    let mut table = Table::new(
        "§4 — device lifetime by mode (host oPages accepted before death)",
        &[
            "mode",
            "host writes",
            "lifetime vs baseline",
            "write amplification",
            "decommissions",
            "regenerations",
        ],
    );
    // Per-mode trace/metrics shards come back in mode order regardless
    // of the thread count, so the merged telemetry is deterministic.
    let observed = EnduranceSim::compare_modes_observed(
        cfg,
        Threads::Auto,
        obs_args.trace(),
        obs_args.metrics,
        &profiler,
        session.as_ref().map(|s| &s.live),
    );
    let mut trace = Vec::new();
    let mut metrics = MetricsRegistry::default();
    let mut results = Vec::with_capacity(observed.len());
    for o in observed {
        if let Some(s) = &session {
            s.publish_health(&format!("mode={}", o.result.mode.name()), &o.health);
        }
        trace.extend(o.trace);
        metrics.merge(&o.metrics);
        results.push(o.result);
    }
    let baseline_writes = results[0].host_opages_written;
    for r in &results {
        let last = r.timeline.last().unwrap();
        table.row(vec![
            r.mode.name().to_string(),
            r.host_opages_written.to_string(),
            format!(
                "{:.2}x",
                r.host_opages_written as f64 / baseline_writes as f64
            ),
            fmt(r.write_amplification, 2),
            last.decommissioned.to_string(),
            last.regenerated.to_string(),
        ]);
    }
    emit("lifetime", &table);
    if std::env::args().any(|a| a == "--modes-only") {
        std::process::exit(obs_args.finish("lifetime", trace, metrics, &profiler, session));
    }

    // Ablation 1: ShrinkS retirement granularity (page vs CVSS-style block).
    let mut ab1 = Table::new(
        "Ablation — ShrinkS retirement granularity",
        &["granularity", "host writes", "vs baseline"],
    );
    let granularities = [
        ("page (Salamander)", RetireGranularity::Page),
        ("block (CVSS-style)", RetireGranularity::Block),
    ];
    let gran_runs = par_map(Threads::Auto, &granularities, |_, &(_, g)| {
        EnduranceSim::new(cfg.mode(Mode::Shrink).retire_granularity(g)).run()
    });
    for ((name, _), r) in granularities.iter().zip(&gran_runs) {
        ab1.row(vec![
            name.to_string(),
            r.host_opages_written.to_string(),
            format!(
                "{:.2}x",
                r.host_opages_written as f64 / baseline_writes as f64
            ),
        ]);
    }
    emit("lifetime_granularity", &ab1);

    // Ablation 2: RegenS tiredness cap (the paper recommends L < 2).
    let mut ab2 = Table::new(
        "Ablation — RegenS tiredness cap",
        &["cap", "host writes", "vs baseline", "marginal gain"],
    );
    let caps = [Tiredness::L1, Tiredness::L2, Tiredness::L3];
    let cap_runs = par_map(Threads::Auto, &caps, |_, &cap| {
        EnduranceSim::new(cfg.mode(Mode::Regen).regen_max_level(cap)).run()
    });
    let mut prev: Option<u64> = None;
    for (cap, r) in caps.iter().zip(&cap_runs) {
        let marginal = prev
            .map(|p| {
                format!(
                    "+{:.1}%",
                    (r.host_opages_written as f64 / p as f64 - 1.0) * 100.0
                )
            })
            .unwrap_or_else(|| "-".into());
        ab2.row(vec![
            format!("L{}", cap.index()),
            r.host_opages_written.to_string(),
            format!(
                "{:.2}x",
                r.host_opages_written as f64 / baseline_writes as f64
            ),
            marginal,
        ]);
        prev = Some(r.host_opages_written);
    }
    emit("lifetime_cap", &ab2);
    let code = obs_args.finish("lifetime", trace, metrics, &profiler, session);
    println!(
        "Paper anchors: ShrinkS >= ~1.2x (CVSS floor), RegenS up to ~1.5x; \
         page-granular retirement beats block-granular; the cap shows \
         diminishing returns past L1."
    );
    std::process::exit(code);
}
