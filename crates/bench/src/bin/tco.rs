//! E7 / §4.4 — total cost of ownership (Eq. 4): 13% savings for ShrinkS
//! and 25% for RegenS at f_opex = 0.14; still 6–14% if half the budget is
//! operational.
//!
//! Run: `cargo run --release -p salamander-bench --bin tco`

use salamander::report::{pct, Table};
use salamander_bench::emit;
use salamander_sustain::tco::TcoParams;

fn main() {
    let mut table = Table::new(
        "§4.4 — TCO savings (Eq. 4)",
        &["mode", "f_opex", "Ru", "CRu", "relative TCO", "savings"],
    );
    for (name, p) in [
        ("ShrinkS", TcoParams::shrink()),
        ("RegenS", TcoParams::regen()),
    ] {
        for f_opex in [0.14, 0.5] {
            let p = p.with_opex(f_opex);
            table.row(vec![
                name.to_string(),
                format!("{f_opex:.2}"),
                format!("{:.3}", p.upgrade_rate),
                format!("{:.3}", p.cost_upgrade_rate()),
                format!("{:.3}", p.relative_tco()),
                pct(p.savings()),
            ]);
        }
    }
    emit("tco", &table);

    // Sensitivity sweep over the opex share.
    let mut sweep = Table::new(
        "TCO savings vs opex share",
        &["f_opex", "ShrinkS savings", "RegenS savings"],
    );
    for i in 0..=10 {
        let f = i as f64 / 10.0;
        sweep.row(vec![
            format!("{f:.1}"),
            pct(TcoParams::shrink().with_opex(f).savings()),
            pct(TcoParams::regen().with_opex(f).savings()),
        ]);
    }
    emit("tco_sensitivity", &sweep);
    println!(
        "Paper anchors: 13% (ShrinkS) / 25% (RegenS) at f_opex=0.14; \
         6-14% when half the budget is opex."
    );
}
