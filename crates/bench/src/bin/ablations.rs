//! Design-choice ablations beyond the paper's figures (DESIGN.md §5):
//! hot/cold stream separation, grace-period decommissioning, space
//! utilization (the CVSS comparison axis), and the read-retry profile
//! across tiredness levels.
//!
//! Run: `cargo run --release -p salamander-bench --bin ablations`
//! Observability: `--trace <path>`, `--metrics`, `--profile`,
//! `--serve <addr>` (DESIGN.md §9/§12).

use salamander::config::{Mode, SsdConfig};
use salamander::report::{fmt, Table};
use salamander_bench::{emit, task_obs, ObsArgs};
use salamander_exec::{par_map, Threads};
use salamander_ftl::ftl::Ftl;
use salamander_ftl::types::{FtlConfig, FtlError, FtlMode, Lba};
use salamander_obs::{MetricsRegistry, TraceRecord};

/// One fan-out task's telemetry shard alongside its table row.
type Shard = (Vec<String>, Vec<TraceRecord>, MetricsRegistry);

/// Churn with a hot/cold skew; returns (accepted writes, WA).
fn skewed_churn(ftl: &mut Ftl, n: u64, used_fraction: f64, seed: u64) -> (u64, f64) {
    let mut state = seed | 1;
    let mut written = 0;
    for _ in 0..n {
        if ftl.is_dead() {
            break;
        }
        let mdisks = ftl.active_mdisks();
        if mdisks.is_empty() {
            break;
        }
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let id = mdisks[(state as usize / 7) % mdisks.len()];
        let lbas = ftl.mdisk_lbas(id).unwrap();
        let used = ((lbas as f64 * used_fraction) as u32).max(1);
        let hot = (used / 10).max(1);
        // 90% of writes hit the hottest 10% of the *used* region.
        let lba = if state % 10 < 9 {
            Lba((state / 11 % hot as u64) as u32)
        } else {
            Lba((state % used as u64) as u32)
        };
        match ftl.write(id, lba, None) {
            Ok(()) => written += 1,
            Err(FtlError::DeviceDead) => break,
            Err(_) => {}
        }
    }
    (written, ftl.stats().write_amplification().unwrap_or(1.0))
}

fn main() {
    let obs_args = ObsArgs::parse();
    let profiler = obs_args.profiler();
    let session = obs_args.serve_session("ablations");
    let live = session.as_ref().map(|s| s.live.clone());
    let (do_trace, do_metrics) = (obs_args.trace(), obs_args.metrics);
    let mut trace = Vec::new();
    let mut metrics = MetricsRegistry::default();
    // Shards merge in task order (par_map returns item order), each
    // relabelled by its ablation id so metric keys cannot collide.
    let mut fold = |table: &mut Table, shards: Vec<Shard>, ablation: &str| {
        for (i, (row, t, m)) in shards.into_iter().enumerate() {
            trace.extend(t);
            metrics.merge(&m.relabelled(&format!("ablation=\"{ablation}/{i}\"")));
            table.row(row);
        }
    };

    // 1. Hot/cold separation: WA under a skewed workload, slow wear.
    let mut t1 = Table::new(
        "Ablation — hot/cold write-stream separation (skewed workload)",
        &["separation", "write amplification"],
    );
    let separations = [("on", true), ("off", false)];
    let prof = profiler.clone();
    let live_t1 = live.clone();
    let shards = par_map(Threads::Auto, &separations, move |_, &(label, sep)| {
        let obs = task_obs(
            do_trace,
            do_metrics,
            &prof,
            &format!("ablation=hotcold/{label}"),
            live_t1.as_ref(),
        );
        let mut cfg = FtlConfig::small_test(FtlMode::Shrink);
        cfg.rber = salamander_flash::rber::RberModel::default();
        cfg.hot_cold_separation = sep;
        let mut ftl = Ftl::new(cfg);
        ftl.set_obs(obs.clone());
        let (_, wa) = skewed_churn(&mut ftl, 150_000, 1.0, 7);
        ftl.export_metrics();
        let row = vec![label.to_string(), fmt(wa, 3)];
        (row, obs.trace.take(), obs.metrics.take())
    });
    fold(&mut t1, shards, "hotcold");
    emit("ablation_hotcold", &t1);

    // 2. Space utilization: lifetime vs fraction of the logical space in
    // use — the axis CVSS's gains depend on (the paper: "~20% improvement
    // in lifetime, given only 50% space utilization").
    let mut t2 = Table::new(
        "Ablation — lifetime vs space utilization (ShrinkS, uniform churn)",
        &["utilization", "host writes to death", "WA at death"],
    );
    let utils = [0.5, 0.7, 0.9, 1.0];
    let prof = profiler.clone();
    let live_t2 = live.clone();
    let shards = par_map(Threads::Auto, &utils, move |_, &util| {
        let obs = task_obs(
            do_trace,
            do_metrics,
            &prof,
            &format!("ablation=utilization/{util}"),
            live_t2.as_ref(),
        );
        let cfg = FtlConfig::small_test(FtlMode::Shrink);
        let mut ftl = Ftl::new(cfg);
        ftl.set_obs(obs.clone());
        let mut state = 11u64;
        let mut written = 0u64;
        while !ftl.is_dead() && written < 10_000_000 {
            let mdisks = ftl.active_mdisks();
            if mdisks.is_empty() {
                break;
            }
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let id = mdisks[(state as usize / 7) % mdisks.len()];
            let lbas = ftl.mdisk_lbas(id).unwrap();
            let used = ((lbas as f64 * util) as u32).max(1);
            match ftl.write(id, Lba((state % used as u64) as u32), None) {
                Ok(()) => written += 1,
                Err(FtlError::DeviceDead) => break,
                Err(_) => {}
            }
        }
        ftl.export_metrics();
        let row = vec![
            format!("{:.0}%", util * 100.0),
            written.to_string(),
            fmt(ftl.stats().write_amplification().unwrap_or(1.0), 2),
        ];
        (row, obs.trace.take(), obs.metrics.take())
    });
    fold(&mut t2, shards, "utilization");
    emit("ablation_utilization", &t2);

    // 3. Grace-period decommissioning: recovery semantics cost when the
    // host acks promptly vs never.
    let mut t3 = Table::new(
        "Ablation — grace-period decommissioning (ShrinkS)",
        &["policy", "host writes to death", "purged minidisks"],
    );
    let policies = [
        ("immediate drop", false, false),
        ("grace + prompt ack", true, true),
        ("grace, never acked", true, false),
    ];
    let prof = profiler.clone();
    let live_t3 = live.clone();
    let shards = par_map(Threads::Auto, &policies, move |_, &(label, grace, ack)| {
        let obs = task_obs(
            do_trace,
            do_metrics,
            &prof,
            &format!("ablation=grace/{label}"),
            live_t3.as_ref(),
        );
        let mut cfg = FtlConfig::small_test(FtlMode::Shrink);
        cfg.decommission_grace = grace;
        let mut ftl = Ftl::new(cfg);
        ftl.set_obs(obs.clone());
        let mut state = 13u64;
        let mut written = 0u64;
        while !ftl.is_dead() && written < 10_000_000 {
            if ack {
                for id in ftl.draining_mdisks() {
                    let _ = ftl.ack_decommission(id);
                }
            }
            let mdisks = ftl.active_mdisks();
            if mdisks.is_empty() {
                break;
            }
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let id = mdisks[(state as usize / 7) % mdisks.len()];
            let lbas = ftl.mdisk_lbas(id).unwrap();
            match ftl.write(id, Lba((state % lbas as u64) as u32), None) {
                Ok(()) => written += 1,
                Err(FtlError::DeviceDead) => break,
                Err(_) => {}
            }
        }
        let purged = ftl
            .drain_events()
            .filter(|e| matches!(e, salamander_ftl::types::FtlEvent::MdiskPurged { .. }))
            .count();
        ftl.export_metrics();
        let row = vec![label.to_string(), written.to_string(), purged.to_string()];
        (row, obs.trace.take(), obs.metrics.take())
    });
    fold(&mut t3, shards, "grace");
    emit("ablation_grace", &t3);

    // 4. Read-retry burden over a device lifetime, per mode. RegenS's
    // lower code rates reset the retry pressure at each transition (§4.2's
    // mitigation argument).
    let mut t4 = Table::new(
        "Ablation — read retries per 1k reads over a device lifetime",
        &["mode", "reads", "retries", "retries/1k reads"],
    );
    let modes = [Mode::Baseline, Mode::Shrink, Mode::Regen];
    let prof = profiler.clone();
    let live_t4 = live.clone();
    let shards = par_map(Threads::Auto, &modes, move |_, &mode| {
        let obs = task_obs(
            do_trace,
            do_metrics,
            &prof,
            &format!("ablation=retries/{}", mode.name()),
            live_t4.as_ref(),
        );
        let cfg = SsdConfig::small_test().mode(mode);
        let mut ftl = Ftl::new(*cfg.ftl_config());
        ftl.set_obs(obs.clone());
        let mut state = 17u64;
        while !ftl.is_dead() {
            let mdisks = ftl.active_mdisks();
            if mdisks.is_empty() {
                break;
            }
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let id = mdisks[(state as usize / 7) % mdisks.len()];
            let lbas = ftl.mdisk_lbas(id).unwrap();
            let lba = Lba((state % lbas as u64) as u32);
            if ftl.write(id, lba, None).is_err() {
                break;
            }
            let _ = ftl.read(id, lba);
        }
        ftl.export_metrics();
        let s = ftl.stats();
        let row = vec![
            mode.name().to_string(),
            s.host_reads.to_string(),
            s.read_retries.to_string(),
            fmt(
                s.read_retries as f64 * 1000.0 / s.host_reads.max(1) as f64,
                1,
            ),
        ];
        (row, obs.trace.take(), obs.metrics.take())
    });
    fold(&mut t4, shards, "retries");
    emit("ablation_retries", &t4);
    let code = obs_args.finish("ablations", trace, metrics, &profiler, session);
    println!(
        "Hot/cold separation cuts WA; lifetime grows as utilization drops \
         (the CVSS axis); grace costs little with a responsive host. Retry \
         pressure grows the longer a device is kept in service, but stays \
         bounded (well under 0.1 extra array reads per read): each level \
         transition resets the margin, the paper's §4.2 mitigation."
    );
    std::process::exit(code);
}
