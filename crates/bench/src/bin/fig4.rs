//! E6 / Fig. 4 — CO2e reduction in different system configurations:
//! {ShrinkS, RegenS} × {current grid, renewables}. Paper anchors: 3–8%
//! savings today, 11–20% under renewables (§4.1, Eq. 3).
//!
//! Run: `cargo run --release -p salamander-bench --bin fig4`

use salamander::report::{pct, Table};
use salamander_bench::emit;
use salamander_sustain::carbon::{fig4_scenarios, CarbonParams};

fn main() {
    let mut table = Table::new(
        "Fig. 4 — CO2e reduction by configuration (Eq. 3)",
        &["configuration", "CO2e savings vs baseline"],
    );
    for s in fig4_scenarios() {
        table.row(vec![s.label, pct(s.savings)]);
    }
    emit("fig4", &table);

    // Show the Eq. 3 decomposition for transparency.
    let mut detail = Table::new(
        "Eq. 3 inputs",
        &["mode", "f_op", "PE", "Ru (fixed up)", "relative footprint"],
    );
    for (name, p) in [
        ("ShrinkS", CarbonParams::shrink()),
        ("RegenS", CarbonParams::regen()),
    ] {
        detail.row(vec![
            name.to_string(),
            format!("{:.2}", p.f_op),
            format!("{:.2}", p.power_effectiveness),
            format!("{:.2}", p.upgrade_rate),
            format!("{:.4}", p.relative_footprint()),
        ]);
    }
    emit("fig4_inputs", &detail);
    println!("Paper anchors: 3-8% on the current grid, 11-20% with renewables.");
}
