//! E6 / Fig. 4 — CO2e reduction in different system configurations:
//! {ShrinkS, RegenS} × {current grid, renewables}. Paper anchors: 3–8%
//! savings today, 11–20% under renewables (§4.1, Eq. 3).
//!
//! Run: `cargo run --release -p salamander-bench --bin fig4`
//! Observability: `--trace <path>`, `--metrics`, `--profile`,
//! `--serve <addr>` (DESIGN.md §9/§12). The bin is analytic, so the
//! artifacts are gauges — one savings fraction per configuration.

use salamander::report::{pct, Table};
use salamander_bench::{emit, ObsArgs};
use salamander_obs::{SimTime, TraceEvent};
use salamander_sustain::carbon::{fig4_scenarios, CarbonParams};

fn main() {
    let obs_args = ObsArgs::parse();
    let profiler = obs_args.profiler();
    let session = obs_args.serve_session("fig4");
    let obs = obs_args.obs(session.as_ref());
    if obs.trace.is_enabled() {
        obs.trace.emit(
            SimTime::ZERO,
            TraceEvent::RunMarker {
                label: "fig4=eq3".to_string(),
            },
        );
    }
    let mut table = Table::new(
        "Fig. 4 — CO2e reduction by configuration (Eq. 3)",
        &["configuration", "CO2e savings vs baseline"],
    );
    for s in fig4_scenarios() {
        obs.metrics.set_gauge(
            &format!("salamander_carbon_savings{{config=\"{}\"}}", s.label),
            s.savings,
        );
        table.row(vec![s.label, pct(s.savings)]);
    }
    emit("fig4", &table);

    // Show the Eq. 3 decomposition for transparency.
    let mut detail = Table::new(
        "Eq. 3 inputs",
        &["mode", "f_op", "PE", "Ru (fixed up)", "relative footprint"],
    );
    for (name, p) in [
        ("ShrinkS", CarbonParams::shrink()),
        ("RegenS", CarbonParams::regen()),
    ] {
        obs.metrics.set_gauge(
            &format!("salamander_carbon_relative_footprint{{mode=\"{name}\"}}"),
            p.relative_footprint(),
        );
        detail.row(vec![
            name.to_string(),
            format!("{:.2}", p.f_op),
            format!("{:.2}", p.power_effectiveness),
            format!("{:.2}", p.upgrade_rate),
            format!("{:.4}", p.relative_footprint()),
        ]);
    }
    emit("fig4_inputs", &detail);
    let code = obs_args.finish(
        "fig4",
        obs.trace.take(),
        obs.metrics.take(),
        &profiler,
        session,
    );
    println!("Paper anchors: 3-8% on the current grid, 11-20% with renewables.");
    std::process::exit(code);
}
