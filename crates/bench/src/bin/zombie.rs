//! Extension experiment — cell-mode rebirth (the orthogonal lifetime
//! extension the paper's §2 cites: ZombieNAND MASCOTS '14, Phoenix
//! DATE '13): pages worn past RegenS's tiredness cap are reborn at a
//! lower bit density (MLC or SLC) instead of retiring. The voltage-level
//! cell model derives the endurance hierarchy from state-distribution
//! overlap; the fleet device turns it into capacity-over-lifetime curves.
//!
//! Run: `cargo run --release -p salamander-bench --bin zombie`
//! Engine: `--engine <cohort|device>` ages the device via the columnar
//! cohort engine or the reference `StatDevice` (identical output).
//! Observability: `--trace <path>`, `--metrics`, `--profile`,
//! `--serve <addr>` (DESIGN.md §9/§12).

use salamander::report::{fmt, Table};
use salamander_bench::{emit, fleet_engine_arg, task_obs, ObsArgs};
use salamander_ecc::profile::Tiredness;
use salamander_exec::{par_map, Threads};
use salamander_flash::geometry::FlashGeometry;
use salamander_flash::voltage::{CellMode, VoltageModel};
use salamander_fleet::cohort::Cohort;
use salamander_fleet::device::{StatDevice, StatDeviceConfig, StatMode};
use salamander_fleet::sim::FleetEngine;
use salamander_obs::{DeathCause, MetricsRegistry, SimTime, TraceEvent};

fn main() {
    let obs_args = ObsArgs::parse();
    let profiler = obs_args.profiler();
    let session = obs_args.serve_session("zombie");
    // 1. The cell model itself: endurance per mode at the native ECC
    // threshold.
    let v = VoltageModel::default();
    let th = 2.5e-3;
    let mut cells = Table::new(
        "Voltage-model endurance by cell mode (native ECC threshold)",
        &[
            "mode",
            "bits/cell",
            "endurance (PEC)",
            "vs TLC",
            "capacity vs TLC",
        ],
    );
    let tlc = v.endurance(CellMode::Tlc, th);
    for mode in [CellMode::Tlc, CellMode::Mlc, CellMode::Slc] {
        let e = v.endurance(mode, th);
        cells.row(vec![
            format!("{mode:?}"),
            mode.bits().to_string(),
            e.to_string(),
            format!("{:.1}x", e as f64 / tlc as f64),
            fmt(mode.capacity_vs_tlc(), 2),
        ]);
    }
    emit("zombie_cells", &cells);

    // 2. Device lifetime: RegenS alone vs RegenS + rebirth.
    let mut life = Table::new(
        "Device lifetime with cell-mode rebirth (RegenS cap L1)",
        &["configuration", "host writes to death", "vs RegenS alone"],
    );
    let engine = fleet_engine_arg();
    let prof = profiler.clone();
    let live = session.as_ref().map(|s| s.live.clone());
    let want_trace = obs_args.trace();
    let want_metrics = obs_args.metrics;
    let run = move |label: &str, rebirth: Option<CellMode>| {
        let cfg = StatDeviceConfig {
            geometry: FlashGeometry::small_test(),
            rebirth,
            mode: StatMode::Regen {
                max_level: Tiredness::L1,
            },
            ..StatDeviceConfig::datacenter(StatMode::Shrink)
        };
        const STEP: u64 = 10_000;
        const CAP: u64 = 100_000_000_000;
        let obs = task_obs(want_trace, want_metrics, &prof, label, live.as_ref());
        let progress = obs.progress.for_mode(label);
        progress.add_devices(1);
        let _phase = prof.phase("zombie/age_device");
        let mut total = 0u64;
        // Both engines step the identical statistical model; the table
        // is byte-identical either way (see crates/fleet/src/cohort.rs).
        let died = match engine {
            FleetEngine::PerDevice => {
                let mut d = StatDevice::new(cfg, 42);
                while !d.is_dead() && total < CAP {
                    d.apply_writes(STEP);
                    total += STEP;
                    progress.add_ops(STEP);
                }
                d.is_dead()
            }
            FleetEngine::Cohort => {
                let mut c = Cohort::new(cfg, &[42]);
                c.set_daily_writes(0, STEP);
                // Deposit the step-loop time under the same phase name
                // the fleet engine uses, so `--profile` shows where the
                // cohort's next_check floors spend their wall clock
                // even on this single-device endurance loop.
                let timing = prof.is_enabled();
                let mut t_step = (0u64, std::time::Duration::ZERO);
                while !c.is_dead(0) && total < CAP {
                    if timing {
                        let start = std::time::Instant::now();
                        c.step(0);
                        t_step.0 += 1;
                        t_step.1 += start.elapsed();
                    } else {
                        c.step(0);
                    }
                    total += STEP;
                    progress.add_ops(STEP);
                }
                prof.record("cohort/next_check_step", t_step.0, t_step.1);
                c.is_dead(0)
            }
        };
        progress.device_done();
        obs.metrics
            .inc("salamander_zombie_host_writes_total", total);
        if died {
            obs.trace.emit(
                SimTime::new(0, total),
                TraceEvent::DeviceDied {
                    cause: DeathCause::Wear,
                },
            );
        }
        (total, obs)
    };
    let configs = [
        ("RegenS", None),
        ("RegenS + MLC rebirth", Some(CellMode::Mlc)),
        ("RegenS + SLC rebirth", Some(CellMode::Slc)),
    ];
    // Independent device aging runs: fan out on the exec engine; the
    // telemetry shards merge in config order afterwards, so the
    // artifacts are thread-count invariant.
    let observed = par_map(Threads::Auto, &configs, move |_, &(label, mode)| {
        run(label, mode)
    });
    let mut trace = Vec::new();
    let mut metrics = MetricsRegistry::default();
    let mut writes = Vec::with_capacity(observed.len());
    for ((label, _), (w, obs)) in configs.iter().zip(observed) {
        trace.extend(obs.trace.take());
        metrics.merge(
            &obs.metrics
                .take()
                .relabelled(&format!("config=\"{label}\"")),
        );
        writes.push(w);
    }
    let plain = writes[0];
    for ((label, _), &w) in configs.iter().zip(&writes) {
        life.row(vec![
            label.to_string(),
            w.to_string(),
            format!("{:.2}x", w as f64 / plain as f64),
        ]);
    }
    emit("zombie_lifetime", &life);
    let code = obs_args.finish("zombie", trace, metrics, &profiler, session);
    println!(
        "Rebirth composes with RegenS: the ECC trade (Fig. 2) harvests the \
         wear margin within a bit density, and the density downgrade opens \
         a fresh margin after it — the two levers the paper's §2 lists are \
         complementary, not alternatives."
    );
    std::process::exit(code);
}
