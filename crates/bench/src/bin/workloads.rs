//! Extension experiment — lifetime and write amplification across
//! realistic workload profiles, per device mode. The paper's lifetime
//! claims implicitly assume datacenter-average write pressure; this sweep
//! shows how the Salamander advantage varies with the tenant's I/O shape
//! (skewed caches vs sequential logs vs read-mostly object stores).
//!
//! Run: `cargo run --release -p salamander-bench --bin workloads`
//! Observability: `--trace <path>`, `--metrics`, `--profile`,
//! `--serve <addr>` (DESIGN.md §9/§12).

use salamander::config::{Mode, SsdConfig};
use salamander::report::{fmt, Table};
use salamander_bench::{emit, task_obs, ObsArgs};
use salamander_ftl::ftl::Ftl;
use salamander_ftl::types::{FtlError, Lba};
use salamander_obs::{MetricsRegistry, Obs, TraceRecord};
use salamander_workload::gen::{OpKind, Workload};
use salamander_workload::profiles::Profile;

/// Drive a device with a profile until death (or the op cap). Returns
/// (host writes accepted, WA, reads served) plus the run's telemetry
/// shard.
fn run(
    profile: Profile,
    mode: Mode,
    seed: u64,
    obs: Obs,
) -> (u64, f64, u64, Vec<TraceRecord>, MetricsRegistry) {
    let cfg = SsdConfig::small_test().mode(mode).seed(seed);
    let mut ftl = Ftl::new(*cfg.ftl_config());
    ftl.set_obs(obs.clone());
    let opages = cfg.ftl_config().geometry.total_opages();
    let mut workload = Workload::new(profile.config(opages, seed));
    let mut writes = 0u64;
    let mut ops = 0u64;
    while !ftl.is_dead() && ops < 30_000_000 {
        ops += 1;
        let mdisks = ftl.active_mdisks();
        if mdisks.is_empty() {
            break;
        }
        let op = workload.next_op();
        let id = mdisks[(op.addr % mdisks.len() as u64) as usize];
        let lbas = ftl.mdisk_lbas(id).unwrap() as u64;
        let lba = Lba(((op.addr / mdisks.len() as u64) % lbas) as u32);
        match op.kind {
            OpKind::Write => match ftl.write(id, lba, None) {
                Ok(()) => writes += 1,
                Err(FtlError::DeviceDead) => break,
                Err(_) => {}
            },
            OpKind::Read => {
                let _ = ftl.read(id, lba);
            }
        }
    }
    ftl.export_metrics();
    let s = ftl.stats();
    (
        writes,
        s.write_amplification().unwrap_or(1.0),
        s.host_reads,
        obs.trace.take(),
        obs.metrics.take(),
    )
}

fn main() {
    let obs_args = ObsArgs::parse();
    let profiler = obs_args.profiler();
    let session = obs_args.serve_session("workloads");
    let live = session.as_ref().map(|s| s.live.clone());
    let mut trace = Vec::new();
    let mut metrics = MetricsRegistry::default();
    let mut table = Table::new(
        "Lifetime by workload profile and device mode (host writes to death)",
        &[
            "profile",
            "latency-critical",
            "Baseline",
            "ShrinkS",
            "RegenS",
            "RegenS vs Baseline",
            "WA (RegenS)",
        ],
    );
    for profile in Profile::ALL {
        let mut go = |mode: Mode| {
            let label = format!("workload={}/{}", profile.name(), mode.name());
            let obs = task_obs(
                obs_args.trace(),
                obs_args.metrics,
                &profiler,
                &label,
                live.as_ref(),
            );
            let (w, wa, reads, t, m) = run(profile, mode, 5, obs);
            trace.extend(t);
            metrics.merge(&m.relabelled(&format!(
                "workload=\"{}/{}\"",
                profile.name(),
                mode.name()
            )));
            (w, wa, reads)
        };
        let (b, _, _) = go(Mode::Baseline);
        let (s, _, _) = go(Mode::Shrink);
        let (r, wa, _) = go(Mode::Regen);
        table.row(vec![
            profile.name().to_string(),
            if profile.latency_critical() {
                "yes"
            } else {
                "no"
            }
            .to_string(),
            b.to_string(),
            s.to_string(),
            r.to_string(),
            format!("{:.2}x", r as f64 / b.max(1) as f64),
            fmt(wa, 2),
        ]);
    }
    emit("workloads", &table);
    let code = obs_args.finish("workloads", trace, metrics, &profiler, session);
    println!(
        "The Salamander advantage holds across every profile. Skewed \
         profiles (kv-cache) coalesce their hot set in the NV write buffer \
         (WA can drop below 1), stretching absolute lifetime; uniform \
         large-write profiles (object-store) churn the whole device and \
         benefit the most from shrinking (5x here). Latency-critical \
         tenants (kv-cache, oltp) are the ones the paper suggests may \
         prefer ShrinkS over RegenS's bandwidth trade."
    );
    std::process::exit(code);
}
