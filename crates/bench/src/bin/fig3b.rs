//! E3 / Fig. 3b — available fleet capacity over time: baseline capacity
//! falls in whole-device cliffs; Salamander capacity declines gradually in
//! minidisk steps and stretches further out in time.
//!
//! Run: `cargo run --release -p salamander-bench --bin fig3b`
//! Engine: `--engine <cohort|device>` picks the fleet aging engine
//! (default: the cohort engine; both produce byte-identical output).
//! Observability: `--trace <path>`, `--metrics`, `--profile`,
//! `--serve <addr>` (DESIGN.md §9/§12).

use salamander::report::{pct, Table};
use salamander_bench::{arg_or, emit, fleet_engine_arg, ObsArgs};
use salamander_ecc::profile::Tiredness;
use salamander_exec::{par_map, Threads};
use salamander_fleet::device::{StatDeviceConfig, StatMode};
use salamander_fleet::sim::{FleetConfig, FleetEngine, FleetSim, FleetTimeline, ObservedFleetRun};
use salamander_obs::{LiveObs, MetricsRegistry, Profiler};

#[allow(clippy::too_many_arguments)]
fn run(
    mode: StatMode,
    engine: FleetEngine,
    devices: u32,
    dwpd: f64,
    horizon: u32,
    seed: u64,
    label: &str,
    profiler: &Profiler,
    live: Option<&LiveObs>,
) -> ObservedFleetRun {
    FleetSim::new(FleetConfig {
        device: StatDeviceConfig::datacenter(mode),
        devices,
        dwpd,
        dwpd_sigma: 0.25,
        afr: 0.01,
        horizon_days: horizon,
        sample_every_days: 30,
        seed,
    })
    .with_engine(engine)
    .run_observed_live(Threads::Auto, label, profiler, live)
}

fn main() {
    let devices: u32 = arg_or("--devices", 100);
    let dwpd: f64 = arg_or("--dwpd", 5.0);
    let horizon: u32 = arg_or("--days", 3650);
    let seed: u64 = arg_or("--seed", 42);
    let engine = fleet_engine_arg();
    let obs_args = ObsArgs::parse();
    let profiler = obs_args.profiler();
    let session = obs_args.serve_session("fig3b");

    let modes = [
        ("Baseline", StatMode::Baseline),
        ("ShrinkS", StatMode::Shrink),
        (
            "RegenS",
            StatMode::Regen {
                max_level: Tiredness::L1,
            },
        ),
    ];
    // Three independent fleets: fan out on the exec engine. Telemetry
    // shards merge in mode order, so output is thread-count invariant.
    let prof = profiler.clone();
    let live = session.as_ref().map(|s| s.live.clone());
    let observed = par_map(Threads::Auto, &modes, move |_, (name, m)| {
        run(
            *m,
            engine,
            devices,
            dwpd,
            horizon,
            seed,
            &format!("fleet={name}"),
            &prof,
            live.as_ref(),
        )
    });
    let mut trace = Vec::new();
    let mut metrics = MetricsRegistry::default();
    let mut runs: Vec<FleetTimeline> = Vec::with_capacity(observed.len());
    for ((name, _), o) in modes.iter().zip(observed) {
        if let Some(s) = &session {
            s.publish_rollups(&format!("fleet={name}"), &o.rollups);
            s.publish_latency(&format!("fleet={name}"), &o.latency);
        }
        trace.extend(o.trace);
        metrics.merge(&o.metrics.relabelled(&format!("fleet=\"{name}\"")));
        runs.push(o.timeline);
    }
    let mut runs = runs.into_iter();
    let (base, shrink, regen) = (
        runs.next().unwrap(),
        runs.next().unwrap(),
        runs.next().unwrap(),
    );

    let mut table = Table::new(
        "Fig. 3b — available fleet capacity over time (fraction of initial)",
        &["day", "Baseline", "ShrinkS", "RegenS"],
    );
    for s in &base.samples {
        let f = |t: &FleetTimeline| pct(t.capacity_fraction_at(s.day).unwrap_or(0.0));
        table.row(vec![s.day.to_string(), f(&base), f(&shrink), f(&regen)]);
    }
    emit("fig3b", &table);
    let code = obs_args.finish("fig3b", trace, metrics, &profiler, session);

    // Capacity half-life: first day the fleet is below 50% capacity.
    for (name, t) in [
        ("Baseline", &base),
        ("ShrinkS", &shrink),
        ("RegenS", &regen),
    ] {
        let half = t
            .samples
            .iter()
            .find(|s| (s.capacity_opages as f64) < 0.5 * t.samples[0].capacity_opages as f64)
            .map(|s| s.day);
        match half {
            Some(d) => println!("{name}: fleet capacity below 50% by day {d}"),
            None => println!("{name}: fleet capacity above 50% at the horizon"),
        }
    }
    println!(
        "Paper shape: the Salamander curves decline later and more \
         gradually than the baseline cliff."
    );
    std::process::exit(code);
}
