//! E3 / Fig. 3b — available fleet capacity over time: baseline capacity
//! falls in whole-device cliffs; Salamander capacity declines gradually in
//! minidisk steps and stretches further out in time.
//!
//! Run: `cargo run --release -p salamander-bench --bin fig3b`

use salamander::report::{pct, Table};
use salamander_bench::{arg_or, emit};
use salamander_ecc::profile::Tiredness;
use salamander_exec::{par_map, Threads};
use salamander_fleet::device::{StatDeviceConfig, StatMode};
use salamander_fleet::sim::{FleetConfig, FleetSim, FleetTimeline};

fn run(mode: StatMode, devices: u32, dwpd: f64, horizon: u32, seed: u64) -> FleetTimeline {
    FleetSim::new(FleetConfig {
        device: StatDeviceConfig::datacenter(mode),
        devices,
        dwpd,
        dwpd_sigma: 0.25,
        afr: 0.01,
        horizon_days: horizon,
        sample_every_days: 30,
        seed,
    })
    .run()
}

fn main() {
    let devices: u32 = arg_or("--devices", 100);
    let dwpd: f64 = arg_or("--dwpd", 5.0);
    let horizon: u32 = arg_or("--days", 3650);
    let seed: u64 = arg_or("--seed", 42);

    let modes = [
        StatMode::Baseline,
        StatMode::Shrink,
        StatMode::Regen {
            max_level: Tiredness::L1,
        },
    ];
    // Three independent fleets: fan out on the exec engine.
    let mut runs = par_map(Threads::Auto, &modes, |_, &m| {
        run(m, devices, dwpd, horizon, seed)
    })
    .into_iter();
    let (base, shrink, regen) = (
        runs.next().unwrap(),
        runs.next().unwrap(),
        runs.next().unwrap(),
    );

    let mut table = Table::new(
        "Fig. 3b — available fleet capacity over time (fraction of initial)",
        &["day", "Baseline", "ShrinkS", "RegenS"],
    );
    for s in &base.samples {
        let f = |t: &FleetTimeline| pct(t.capacity_fraction_at(s.day).unwrap_or(0.0));
        table.row(vec![s.day.to_string(), f(&base), f(&shrink), f(&regen)]);
    }
    emit("fig3b", &table);

    // Capacity half-life: first day the fleet is below 50% capacity.
    for (name, t) in [
        ("Baseline", &base),
        ("ShrinkS", &shrink),
        ("RegenS", &regen),
    ] {
        let half = t
            .samples
            .iter()
            .find(|s| (s.capacity_opages as f64) < 0.5 * t.samples[0].capacity_opages as f64)
            .map(|s| s.day);
        match half {
            Some(d) => println!("{name}: fleet capacity below 50% by day {d}"),
            None => println!("{name}: fleet capacity above 50% at the horizon"),
        }
    }
    println!(
        "Paper shape: the Salamander curves decline later and more \
         gradually than the baseline cliff."
    );
}
