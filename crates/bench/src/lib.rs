//! Shared plumbing for the per-figure harness binaries.
//!
//! Every binary regenerates one table or figure from the paper's
//! evaluation (see DESIGN.md's experiment index), printing a markdown
//! table to stdout and writing a CSV under `results/` for plotting.

use salamander::report::Table;
use std::path::PathBuf;

/// Print a table to stdout as markdown and persist it as CSV under
/// `results/<name>.csv` (best-effort: printing always works, the file
/// write reports failures to stderr without aborting the experiment).
pub fn emit(name: &str, table: &Table) {
    println!("{}", table.to_markdown());
    let dir = PathBuf::from("results");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    if let Err(e) = std::fs::write(&path, table.to_csv()) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}

/// Parse a `--flag value` style argument, returning `default` when absent.
pub fn arg_or<T: std::str::FromStr>(flag: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
