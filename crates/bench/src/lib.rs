//! Shared plumbing for the per-figure harness binaries.
//!
//! Every binary regenerates one table or figure from the paper's
//! evaluation (see DESIGN.md's experiment index), printing a markdown
//! table to stdout and writing a CSV under `results/` for plotting.

use salamander::report::Table;
use salamander_obs::{trace, LiveObs, MetricsRegistry, Obs, Profiler, TraceRecord};
use salamander_telemetry::{TelemetryHub, TelemetryServer};
use std::path::PathBuf;
use std::sync::Arc;

pub mod perf;

/// Print a table to stdout as markdown and persist it as CSV under
/// `results/<name>.csv` (best-effort: printing always works, the file
/// write reports failures to stderr without aborting the experiment).
pub fn emit(name: &str, table: &Table) {
    println!("{}", table.to_markdown());
    let dir = PathBuf::from("results");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    if let Err(e) = std::fs::write(&path, table.to_csv()) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}

/// Parse the `--engine <cohort|device>` flag shared by the fleet bins
/// (fig3a, fig3b, zombie): explicit flag wins, otherwise the
/// `SALAMANDER_FLEET_ENGINE` selection (default: cohort). Unknown
/// spellings abort with a usage error rather than silently running the
/// wrong engine.
pub fn fleet_engine_arg() -> salamander_fleet::FleetEngine {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--engine") {
        None => salamander_fleet::FleetEngine::from_env(),
        Some(i) => {
            let raw = args.get(i + 1).map(String::as_str).unwrap_or("");
            salamander_fleet::FleetEngine::parse(raw).unwrap_or_else(|| {
                eprintln!("error: unknown --engine '{raw}' (expected 'cohort' or 'device')");
                std::process::exit(2);
            })
        }
    }
}

/// Parse a `--flag value` style argument, returning `default` when absent.
pub fn arg_or<T: std::str::FromStr>(flag: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Whether a bare `--flag` is present.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// The shared observability CLI surface of the harness binaries
/// (DESIGN.md §9/§12): `--trace <path>` writes a deterministic event
/// trace (JSONL, or the indexed `.strc` binary format when the path
/// ends in `.strc`), `--metrics` writes a Prometheus-style text file
/// under `results/`, `--profile` prints wall-clock phase timings to
/// stdout, and `--serve <addr>` attaches a live telemetry server for
/// the duration of the run (`--serve-linger <secs>` keeps it up after
/// the run so the final state can be scraped; `GET /quit` ends the
/// linger early).
#[derive(Debug, Clone, Default)]
pub struct ObsArgs {
    /// Trace destination (`--trace <path>`), if requested.
    pub trace_path: Option<String>,
    /// Whether `--metrics` was given.
    pub metrics: bool,
    /// Whether `--profile` was given.
    pub profile: bool,
    /// Telemetry server bind address (`--serve <addr>`), if requested.
    pub serve: Option<String>,
    /// Seconds to keep serving after the run (`--serve-linger <secs>`).
    pub serve_linger: u64,
}

impl ObsArgs {
    /// Parse the observability flags from `std::env::args`.
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().collect();
        ObsArgs {
            trace_path: args
                .iter()
                .position(|a| a == "--trace")
                .and_then(|i| args.get(i + 1))
                .cloned(),
            metrics: has_flag("--metrics"),
            profile: has_flag("--profile"),
            serve: args
                .iter()
                .position(|a| a == "--serve")
                .and_then(|i| args.get(i + 1))
                .cloned(),
            serve_linger: arg_or("--serve-linger", 0),
        }
    }

    /// Whether tracing was requested.
    pub fn trace(&self) -> bool {
        self.trace_path.is_some()
    }

    /// A profiler matching `--profile` (disabled otherwise). Wall-clock
    /// timings are non-deterministic by nature; they go to stdout only,
    /// never into traces, metrics, or `results/`.
    pub fn profiler(&self) -> Profiler {
        if self.profile {
            Profiler::enabled()
        } else {
            Profiler::disabled()
        }
    }

    /// An [`Obs`] bundle matching the flags, for single-run binaries.
    /// Fan-out binaries build per-task bundles instead (see
    /// `EnduranceSim::compare_modes_observed`). Pass the run's
    /// [`ServeSession`] (if any) so the bundle mirrors into the live
    /// server.
    pub fn obs(&self, session: Option<&ServeSession>) -> Obs {
        let obs = Obs {
            trace: if self.trace() {
                salamander_obs::TraceHandle::recording()
            } else {
                salamander_obs::TraceHandle::disabled()
            },
            metrics: if self.metrics {
                salamander_obs::MetricsHandle::enabled()
            } else {
                salamander_obs::MetricsHandle::disabled()
            },
            profiler: self.profiler(),
            progress: salamander_obs::ProgressHandle::disabled(),
        };
        match session {
            Some(s) => obs.with_live(&s.live),
            None => obs,
        }
    }

    /// Start the live telemetry server if `--serve` was given. Binds
    /// (and reports the resolved address on stderr) before returning,
    /// so the endpoints answer for the whole simulated run. A bind
    /// failure is fatal — the operator asked to watch this run.
    pub fn serve_session(&self, name: &str) -> Option<ServeSession> {
        let addr = self.serve.as_deref()?;
        let live = LiveObs::new();
        let hub = TelemetryHub::new(name, live.clone());
        match TelemetryServer::start(addr, hub.clone()) {
            Ok(server) => {
                // The URL line is a stable parsing contract (tests and
                // scripts anchor on it); the endpoint hint goes on its
                // own line.
                eprintln!("serving telemetry on http://{}/", server.addr());
                eprintln!("per-mode simulated-day progress: GET /progress");
                Some(ServeSession { live, hub, server })
            }
            Err(e) => {
                eprintln!("error: cannot serve telemetry on {addr}: {e}");
                std::process::exit(1);
            }
        }
    }

    /// Write the collected telemetry: the trace (resequenced; JSONL,
    /// or `.strc` when the path asks for it) to `--trace`'s path, the
    /// merged metrics to `results/<name>.prom`, and the profile table
    /// to stdout. Call once at the end of `main` with the shards
    /// already merged in deterministic order and the run's
    /// [`ServeSession`], if any — the final metrics text is published
    /// to the server (so a last scrape equals the file byte-for-byte)
    /// before it lingers and shuts down.
    ///
    /// Returns the process exit code: nonzero when any requested
    /// telemetry artifact failed to persist (a trace sink error, an
    /// unwritable path) — the run itself completed, but silently
    /// dropping requested telemetry would be worse than saying so.
    #[must_use]
    pub fn finish(
        &self,
        name: &str,
        mut trace: Vec<TraceRecord>,
        metrics: MetricsRegistry,
        profiler: &Profiler,
        session: Option<ServeSession>,
    ) -> i32 {
        let mut failed = false;
        if let Some(path) = &self.trace_path {
            trace::resequence(&mut trace);
            let write = if path.ends_with(".strc") {
                salamander_obs::strc::write_strc(
                    std::path::Path::new(path),
                    &trace,
                    salamander_obs::strc::DEFAULT_CHUNK_RECORDS,
                )
                .map_err(|e| e.to_string())
            } else {
                std::fs::write(path, trace::to_jsonl(&trace)).map_err(|e| e.to_string())
            };
            match write {
                Err(e) => {
                    eprintln!("error: cannot write {path}: {e}");
                    failed = true;
                }
                Ok(()) => eprintln!("wrote {path} ({} events)", trace.len()),
            }
        }
        let shed = metrics.counter("salamander_obs_dropped_records_total");
        if shed > 0 {
            eprintln!("warning: trace ring overflowed, {shed} records dropped (see salamander_obs_dropped_records_total)");
        }
        let mut final_metrics_text = None;
        if self.metrics {
            let rendered = metrics.render();
            let dir = PathBuf::from("results");
            if let Err(e) = std::fs::create_dir_all(&dir) {
                eprintln!("error: cannot create {}: {e}", dir.display());
                failed = true;
            } else {
                let path = dir.join(format!("{name}.prom"));
                if let Err(e) = std::fs::write(&path, &rendered) {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    failed = true;
                } else {
                    eprintln!("wrote {}", path.display());
                }
            }
            final_metrics_text = Some(rendered);
        }
        if self.profile {
            print_profile(profiler);
        }
        if let Some(session) = session {
            session.finish(final_metrics_text, self.serve_linger);
        }
        i32::from(failed)
    }
}

/// A live `--serve` session: the mirror the simulation writes into,
/// the hub the server reads from, and the server itself.
pub struct ServeSession {
    /// Mirror handed to the simulation layers.
    pub live: LiveObs,
    /// Shared state with the server threads.
    pub hub: Arc<TelemetryHub>,
    server: TelemetryServer,
}

impl ServeSession {
    /// Publish one run label's health report to `/health`.
    pub fn publish_health<T: serde::Serialize>(&self, label: &str, report: &T) {
        if let Ok(json) = serde_json::to_string(report) {
            self.hub.publish_health(label, json);
        }
    }

    /// Publish one run label's per-day fleet rollups to `/fleet` and
    /// `/fleet/series`.
    pub fn publish_rollups(&self, label: &str, rollups: &[salamander_obs::FleetRollup]) {
        self.hub.publish_rollups(label, rollups.to_vec());
    }

    /// Publish one run label's per-day latency rollups to `/latency`
    /// and `/latency/series`, scanning them for tail-latency
    /// regressions first so `/latency` can surface the anomalies
    /// alongside the distributions (DESIGN.md §15).
    pub fn publish_latency(&self, label: &str, rollups: &[salamander_obs::LatencyRollup]) {
        let regressions = salamander_health::latency_scan(rollups.iter());
        let json = serde_json::to_string(&regressions).unwrap_or_else(|_| "[]".to_string());
        self.hub.publish_latency(label, rollups.to_vec(), json);
    }

    /// Publish one run label's per-tick cluster rollups to `/cluster`
    /// and `/cluster/series`, scanning them for recovery storms and
    /// data loss first so `/cluster` can surface the anomalies
    /// alongside the durability counters (DESIGN.md §16).
    pub fn publish_cluster(&self, label: &str, rollups: &[salamander_obs::ClusterRollup]) {
        let anomalies = salamander_health::cluster_scan(rollups.iter());
        let json = serde_json::to_string(&anomalies).unwrap_or_else(|_| "[]".to_string());
        self.hub.publish_cluster(label, rollups.to_vec(), json);
    }

    /// Mark the run done (publishing the final metrics text, if any),
    /// linger up to `linger_secs` so clients can take a final scrape
    /// (`GET /quit` ends the wait early), then shut the server down.
    fn finish(self, final_metrics: Option<String>, linger_secs: u64) {
        let modes = self.live.progress.mode_snapshot();
        if !modes.is_empty() {
            let parts: Vec<String> = modes
                .iter()
                .map(|(label, day, total)| format!("{label} day {day}/{total}"))
                .collect();
            eprintln!("progress: {}", parts.join(", "));
        }
        self.hub.mark_done(final_metrics);
        if linger_secs > 0 {
            eprintln!(
                "telemetry server lingering {linger_secs}s on http://{}/ (GET /quit to release)",
                self.server.addr()
            );
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(linger_secs);
            while std::time::Instant::now() < deadline && !self.hub.quit_requested() {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        }
        self.server.shutdown();
    }
}

/// Synthesize per-step latency rollups for the §4.2 L0→L1 analytic
/// sweep bins (fig3c/fig3d): step `i` of `0..=steps` puts `i/steps` of
/// 1000 fPages at L1 and prices every level's oPages through the
/// integer cost model quantized from the flash timing model — the same
/// `CostModelNs` the FTL charges and the fleet engines fold
/// (DESIGN.md §15), so the sweep's p99 rise is the `4/(4−L)`
/// multi-read tax in the exact bucket edges `/latency` serves. The
/// rollup "day" is the sweep percent (these bins have no day clock).
pub fn l1_sweep_latency_rollups(steps: u32) -> Vec<salamander_obs::LatencyRollup> {
    use salamander_obs::{CostModelNs, LatClass, LatencyRollup};
    let t = salamander_flash::timing::TimingModel::default();
    let cost = CostModelNs::from_us(
        t.t_read_us,
        t.t_prog_us,
        t.t_erase_us,
        t.ecc_extra_us,
        t.xfer_bytes_per_us,
    );
    let steps = steps.max(1);
    const N: u64 = 1000;
    const OPAGE: u64 = 4096;
    (0..=steps)
        .map(|i| {
            let l1 = N * u64::from(i) / u64::from(steps);
            let mut r = LatencyRollup::empty(i * 100 / steps);
            let read = &mut r.classes[LatClass::HostRead as usize];
            let (w0, w1) = (4 * (N - l1), 3 * l1);
            if w0 > 0 {
                read.observe(cost.host_read_ns(4, 0, 0, OPAGE), w0);
            }
            if w1 > 0 {
                read.observe(cost.host_read_ns(4, 1, 0, OPAGE), w1);
            }
            r.classes[LatClass::HostWrite as usize].observe(cost.host_write_ns(OPAGE), w0 + w1);
            r
        })
        .collect()
}

/// The shared observability tail of the analytic sweep bins: emit the
/// synthesized rollups as a labelled trace segment (queryable with
/// `obsctl latency`), export their host-read tail as gauges, publish
/// them to `/latency`, and persist everything via [`ObsArgs::finish`].
/// Returns the process exit code.
#[must_use]
pub fn finish_sweep_obs(
    obs_args: &ObsArgs,
    name: &str,
    rollups: &[salamander_obs::LatencyRollup],
    session: Option<ServeSession>,
) -> i32 {
    let profiler = obs_args.profiler();
    let obs = obs_args.obs(session.as_ref());
    let label = format!("sweep={name}");
    if obs.trace.is_enabled() {
        obs.trace.emit(
            salamander_obs::SimTime::ZERO,
            salamander_obs::TraceEvent::RunMarker {
                label: label.clone(),
            },
        );
        for r in rollups {
            obs.trace.emit(
                salamander_obs::SimTime::new(r.day, 0),
                salamander_obs::TraceEvent::LatencyRollup(r.clone()),
            );
        }
    }
    if obs.metrics.is_enabled() {
        for r in rollups {
            if let Some(p99) = r.stat("host_read", "p99") {
                obs.metrics.set_gauge(
                    &format!("salamander_sweep_host_read_p99_ns{{l1_pct=\"{}\"}}", r.day),
                    p99 as f64,
                );
            }
        }
    }
    if let Some(s) = &session {
        s.publish_latency(&label, rollups);
    }
    obs_args.finish(
        name,
        obs.trace.take(),
        obs.metrics.take(),
        &profiler,
        session,
    )
}

/// A per-task [`Obs`] bundle for fan-out binaries: one shard per
/// parallel task, opened with a `RunMarker` carrying `label` so the
/// merged trace stays segmentable. Take the shards back with
/// `obs.trace.take()` / `obs.metrics.take()` and merge them in task
/// order (deterministic under `par_map`, which returns in item order).
/// When a live mirror is given, the shard taps into it (trace
/// broadcast + metrics tee) without affecting what `take()` returns.
pub fn task_obs(
    trace: bool,
    metrics: bool,
    profiler: &Profiler,
    label: &str,
    live: Option<&LiveObs>,
) -> Obs {
    let mut obs = Obs {
        trace: if trace {
            salamander_obs::TraceHandle::recording()
        } else {
            salamander_obs::TraceHandle::disabled()
        },
        metrics: if metrics {
            salamander_obs::MetricsHandle::enabled()
        } else {
            salamander_obs::MetricsHandle::disabled()
        },
        profiler: profiler.clone(),
        progress: salamander_obs::ProgressHandle::disabled(),
    };
    if let Some(live) = live {
        obs = obs.with_live(live);
    }
    if obs.trace.is_enabled() {
        obs.trace.emit(
            salamander_obs::SimTime::ZERO,
            salamander_obs::TraceEvent::RunMarker {
                label: label.to_string(),
            },
        );
    }
    obs
}

/// Print wall-clock phase timings as a markdown table (stdout only:
/// timings are machine-dependent and must not land in `results/`).
pub fn print_profile(profiler: &Profiler) {
    let stats = profiler.stats();
    let mut table = Table::new(
        "Wall-clock profile (non-deterministic; not written to results/)",
        &["phase", "calls", "total ms", "mean us"],
    );
    for (phase, s) in &stats {
        let total_ms = s.total.as_secs_f64() * 1e3;
        let mean_us = if s.calls > 0 {
            s.total.as_secs_f64() * 1e6 / s.calls as f64
        } else {
            0.0
        };
        table.row(vec![
            phase.clone(),
            s.calls.to_string(),
            format!("{total_ms:.1}"),
            format!("{mean_us:.1}"),
        ]);
    }
    println!("{}", table.to_markdown());
}
