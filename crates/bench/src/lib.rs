//! Shared plumbing for the per-figure harness binaries.
//!
//! Every binary regenerates one table or figure from the paper's
//! evaluation (see DESIGN.md's experiment index), printing a markdown
//! table to stdout and writing a CSV under `results/` for plotting.

use salamander::report::Table;
use salamander_obs::{trace, MetricsRegistry, Obs, Profiler, TraceRecord};
use std::path::PathBuf;

pub mod perf;

/// Print a table to stdout as markdown and persist it as CSV under
/// `results/<name>.csv` (best-effort: printing always works, the file
/// write reports failures to stderr without aborting the experiment).
pub fn emit(name: &str, table: &Table) {
    println!("{}", table.to_markdown());
    let dir = PathBuf::from("results");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    if let Err(e) = std::fs::write(&path, table.to_csv()) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}

/// Parse a `--flag value` style argument, returning `default` when absent.
pub fn arg_or<T: std::str::FromStr>(flag: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Whether a bare `--flag` is present.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// The shared observability CLI surface of the harness binaries
/// (DESIGN.md §9): `--trace <path>` writes a deterministic JSONL event
/// trace, `--metrics` writes a Prometheus-style text file under
/// `results/`, `--profile` prints wall-clock phase timings to stdout.
#[derive(Debug, Clone, Default)]
pub struct ObsArgs {
    /// JSONL trace destination (`--trace <path>`), if requested.
    pub trace_path: Option<String>,
    /// Whether `--metrics` was given.
    pub metrics: bool,
    /// Whether `--profile` was given.
    pub profile: bool,
}

impl ObsArgs {
    /// Parse the observability flags from `std::env::args`.
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().collect();
        ObsArgs {
            trace_path: args
                .iter()
                .position(|a| a == "--trace")
                .and_then(|i| args.get(i + 1))
                .cloned(),
            metrics: has_flag("--metrics"),
            profile: has_flag("--profile"),
        }
    }

    /// Whether tracing was requested.
    pub fn trace(&self) -> bool {
        self.trace_path.is_some()
    }

    /// A profiler matching `--profile` (disabled otherwise). Wall-clock
    /// timings are non-deterministic by nature; they go to stdout only,
    /// never into traces, metrics, or `results/`.
    pub fn profiler(&self) -> Profiler {
        if self.profile {
            Profiler::enabled()
        } else {
            Profiler::disabled()
        }
    }

    /// An [`Obs`] bundle matching the flags, for single-run binaries.
    /// Fan-out binaries build per-task bundles instead (see
    /// `EnduranceSim::compare_modes_observed`).
    pub fn obs(&self) -> Obs {
        Obs {
            trace: if self.trace() {
                salamander_obs::TraceHandle::recording()
            } else {
                salamander_obs::TraceHandle::disabled()
            },
            metrics: if self.metrics {
                salamander_obs::MetricsHandle::enabled()
            } else {
                salamander_obs::MetricsHandle::disabled()
            },
            profiler: self.profiler(),
        }
    }

    /// Write the collected telemetry: the trace (resequenced, JSONL) to
    /// `--trace`'s path, the merged metrics to `results/<name>.prom`,
    /// and the profile table to stdout. Call once at the end of `main`
    /// with the shards already merged in deterministic order.
    pub fn finish(
        &self,
        name: &str,
        mut trace: Vec<TraceRecord>,
        metrics: MetricsRegistry,
        profiler: &Profiler,
    ) {
        if let Some(path) = &self.trace_path {
            trace::resequence(&mut trace);
            if let Err(e) = std::fs::write(path, trace::to_jsonl(&trace)) {
                eprintln!("warning: cannot write {path}: {e}");
            } else {
                eprintln!("wrote {path} ({} events)", trace.len());
            }
        }
        if self.metrics {
            let dir = PathBuf::from("results");
            if let Err(e) = std::fs::create_dir_all(&dir) {
                eprintln!("warning: cannot create {}: {e}", dir.display());
            } else {
                let path = dir.join(format!("{name}.prom"));
                if let Err(e) = std::fs::write(&path, metrics.render()) {
                    eprintln!("warning: cannot write {}: {e}", path.display());
                } else {
                    eprintln!("wrote {}", path.display());
                }
            }
        }
        if self.profile {
            print_profile(profiler);
        }
    }
}

/// A per-task [`Obs`] bundle for fan-out binaries: one shard per
/// parallel task, opened with a `RunMarker` carrying `label` so the
/// merged trace stays segmentable. Take the shards back with
/// `obs.trace.take()` / `obs.metrics.take()` and merge them in task
/// order (deterministic under `par_map`, which returns in item order).
pub fn task_obs(trace: bool, metrics: bool, profiler: &Profiler, label: &str) -> Obs {
    let obs = Obs {
        trace: if trace {
            salamander_obs::TraceHandle::recording()
        } else {
            salamander_obs::TraceHandle::disabled()
        },
        metrics: if metrics {
            salamander_obs::MetricsHandle::enabled()
        } else {
            salamander_obs::MetricsHandle::disabled()
        },
        profiler: profiler.clone(),
    };
    if trace {
        obs.trace.emit(
            salamander_obs::SimTime::ZERO,
            salamander_obs::TraceEvent::RunMarker {
                label: label.to_string(),
            },
        );
    }
    obs
}

/// Print wall-clock phase timings as a markdown table (stdout only:
/// timings are machine-dependent and must not land in `results/`).
pub fn print_profile(profiler: &Profiler) {
    let stats = profiler.stats();
    let mut table = Table::new(
        "Wall-clock profile (non-deterministic; not written to results/)",
        &["phase", "calls", "total ms", "mean us"],
    );
    for (phase, s) in &stats {
        let total_ms = s.total.as_secs_f64() * 1e3;
        let mean_us = if s.calls > 0 {
            s.total.as_secs_f64() * 1e6 / s.calls as f64
        } else {
            0.0
        };
        table.row(vec![
            phase.clone(),
            s.calls.to_string(),
            format!("{total_ms:.1}"),
            format!("{mean_us:.1}"),
        ]);
    }
    println!("{}", table.to_markdown());
}
