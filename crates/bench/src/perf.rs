//! Std-only micro-bench runner emitting machine-readable `BENCH_*.json`.
//!
//! The perf-regression harness (ISSUE 3, thrust 4): no external bench
//! framework, just `Instant` timing with enough repetitions to make the
//! median stable on a noisy container. Each [`BenchResult`] records the
//! per-run medians plus machine and thread metadata so future PRs can
//! gate against a real trajectory (`scripts/bench.sh --check`).

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One timed benchmark: per-run wall-clock stats over `runs` repetitions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchResult {
    /// Benchmark name (stable key for regression checks).
    pub name: String,
    /// Number of timed runs the stats are over.
    pub runs: u32,
    /// Median work items per run (ops for micro benches, 1 for
    /// end-to-end). Runs may do different amounts of work (e.g. GC
    /// passes forced), so this is a median, not a constant.
    pub iters_per_run: u64,
    /// Median wall-clock per run, nanoseconds.
    pub median_ns: u64,
    /// Fastest run, nanoseconds.
    pub min_ns: u64,
    /// Slowest run, nanoseconds.
    pub max_ns: u64,
    /// Median of the per-run `ns / iters` ratios, nanoseconds.
    pub median_ns_per_iter: u64,
}

/// Machine/thread metadata attached to every `BENCH_*.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchMeta {
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Available hardware parallelism.
    pub cpus: u32,
    /// Effective `SALAMANDER_THREADS` setting (`"auto"` when unset).
    pub salamander_threads: String,
    /// Whether the binaries were built with optimizations.
    pub release: bool,
}

impl BenchMeta {
    /// Capture the current machine's metadata.
    pub fn capture() -> Self {
        BenchMeta {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpus: std::thread::available_parallelism()
                .map(|n| n.get() as u32)
                .unwrap_or(1),
            salamander_threads: std::env::var("SALAMANDER_THREADS")
                .unwrap_or_else(|_| "auto".to_string()),
            release: !cfg!(debug_assertions),
        }
    }
}

/// A full `BENCH_*.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Report family (`"lifetime"` / `"ftl_micro"`).
    pub suite: String,
    /// Machine/thread metadata.
    pub meta: BenchMeta,
    /// The measured benchmarks.
    pub results: Vec<BenchResult>,
}

impl BenchReport {
    /// A report for `suite` on this machine.
    pub fn new(suite: &str) -> Self {
        BenchReport {
            suite: suite.to_string(),
            meta: BenchMeta::capture(),
            results: Vec::new(),
        }
    }

    /// Look up a result by benchmark name.
    pub fn result(&self, name: &str) -> Option<&BenchResult> {
        self.results.iter().find(|r| r.name == name)
    }

    /// Serialize to pretty JSON (one stable document per file).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("bench report serializes")
    }

    /// Parse a `BENCH_*.json` document.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// Median of a sorted-or-not sample of run times (odd-or-even safe).
fn median_of(mut ns: Vec<u64>) -> u64 {
    ns.sort_unstable();
    let n = ns.len();
    if n == 0 {
        return 0;
    }
    if n % 2 == 1 {
        ns[n / 2]
    } else {
        (ns[n / 2 - 1] + ns[n / 2]) / 2
    }
}

/// Time `f` for `runs` repetitions (plus one untimed warm-up) and
/// aggregate. `f` receives the run index and returns the number of work
/// items it performed, so per-iteration cost is derived from real
/// counts, not assumptions.
pub fn bench<F: FnMut(u32) -> u64>(name: &str, runs: u32, mut f: F) -> BenchResult {
    f(0); // warm-up: page in code and allocator state
    bench_cold(name, runs, f)
}

/// [`bench`] without the untimed warm-up — for heavyweight end-to-end
/// entries (100k–1M-device fleets) where a run takes tens of seconds
/// and cold-start effects are negligible relative to run length.
pub fn bench_cold<F: FnMut(u32) -> u64>(name: &str, runs: u32, mut f: F) -> BenchResult {
    let mut samples = Vec::with_capacity(runs as usize);
    let mut iters = Vec::with_capacity(runs as usize);
    for run in 0..runs {
        let start = Instant::now();
        let n = f(run).max(1);
        samples.push(start.elapsed().as_nanos() as u64);
        iters.push(n);
    }
    let per_iter: Vec<u64> = samples.iter().zip(&iters).map(|(&ns, &n)| ns / n).collect();
    BenchResult {
        name: name.to_string(),
        runs,
        iters_per_run: median_of(iters),
        median_ns: median_of(samples.clone()),
        min_ns: samples.iter().copied().min().unwrap_or(0),
        max_ns: samples.iter().copied().max().unwrap_or(0),
        median_ns_per_iter: median_of(per_iter),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_handles_odd_and_even() {
        assert_eq!(median_of(vec![3, 1, 2]), 2);
        assert_eq!(median_of(vec![4, 1, 3, 2]), 2);
        assert_eq!(median_of(vec![]), 0);
    }

    #[test]
    fn bench_counts_runs_and_iters() {
        let r = bench("spin", 5, |_| {
            let mut x = 0u64;
            for i in 0..1000 {
                x = x.wrapping_add(i);
            }
            std::hint::black_box(x);
            1000
        });
        assert_eq!(r.runs, 5);
        assert_eq!(r.iters_per_run, 1000);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut rep = BenchReport::new("ftl_micro");
        rep.results.push(bench("noop", 3, |_| 1));
        let back = BenchReport::from_json(&rep.to_json()).unwrap();
        assert_eq!(back.suite, "ftl_micro");
        assert_eq!(back.results.len(), 1);
        assert_eq!(back.result("noop").unwrap().runs, 3);
        assert!(back.result("missing").is_none());
    }
}
