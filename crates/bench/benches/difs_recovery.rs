//! Criterion bench: diFS re-replication cost per failed unit — the
//! control-plane work Salamander multiplies (many small failures instead
//! of one big one).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use salamander_difs::cluster::Cluster;
use salamander_difs::store::ChunkStore;
use salamander_difs::types::DifsConfig;

/// Build a cluster of `nodes` nodes × `units` units, filled to ~60%.
fn build(nodes: u32, units_per_node: u32, cap: u32) -> (Cluster, ChunkStore) {
    let mut cluster = Cluster::new();
    for _ in 0..nodes {
        let n = cluster.add_node();
        let d = cluster.add_device(n);
        for _ in 0..units_per_node {
            cluster.add_unit(d, cap);
        }
    }
    let mut store = ChunkStore::new(DifsConfig::default());
    let target = cluster.alive_capacity() * 6 / 10 / 3;
    for _ in 0..target {
        if store.create_chunk(&mut cluster).is_err() {
            break;
        }
    }
    (cluster, store)
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("difs");
    group.sample_size(10);

    group.bench_function("fail_one_minidisk_unit", |b| {
        b.iter_batched(
            || build(8, 32, 4),
            |(mut cluster, mut store)| {
                let victim = cluster.alive_units().next().map(|(id, _)| id).unwrap();
                store.fail_unit(&mut cluster, victim);
                std::hint::black_box(store.metrics().recovery_bytes)
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("fail_whole_device", |b| {
        b.iter_batched(
            || build(8, 32, 4),
            |(mut cluster, mut store)| {
                store.fail_device(&mut cluster, salamander_difs::types::DeviceId(0));
                std::hint::black_box(store.metrics().recovery_bytes)
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("create_chunk", |b| {
        b.iter_batched(
            || build(8, 32, 64),
            |(mut cluster, mut store)| {
                for _ in 0..100 {
                    store.create_chunk(&mut cluster).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
