//! Criterion bench: host-facing FTL operation rates per personality —
//! steady-state write cost (including buffering, GC, and the capacity
//! protocol) and read cost.

use criterion::{criterion_group, criterion_main, Criterion};
use salamander_ftl::ftl::Ftl;
use salamander_ftl::types::{FtlConfig, FtlMode, Lba};

fn prepared_ftl(mode: FtlMode) -> Ftl {
    // Medium geometry with default (slow) wear so GC dominates, not death.
    let mut cfg = FtlConfig::medium(mode);
    cfg.rber = salamander_flash::rber::RberModel::default();
    let mut ftl = Ftl::new(cfg);
    // Warm up: fill most of the logical space once.
    let mdisks = ftl.active_mdisks();
    for &m in &mdisks {
        let lbas = ftl.mdisk_lbas(m).unwrap();
        for lba in 0..lbas {
            ftl.write(m, Lba(lba), None).unwrap();
        }
    }
    ftl
}

fn bench_ftl(c: &mut Criterion) {
    let mut group = c.benchmark_group("ftl");
    group.sample_size(10);

    for (label, mode) in [
        ("baseline", FtlMode::Baseline),
        ("shrink", FtlMode::Shrink),
        ("regen", FtlMode::Regen),
    ] {
        let mut ftl = prepared_ftl(mode);
        let mut x = 0x9E3779B97F4A7C15u64;
        group.bench_function(format!("steady_state_write_{label}"), |b| {
            b.iter(|| {
                let mdisks = ftl.active_mdisks();
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let m = mdisks[(x as usize / 7) % mdisks.len()];
                let lbas = ftl.mdisk_lbas(m).unwrap();
                ftl.write(m, Lba((x % lbas as u64) as u32), None).unwrap();
            })
        });
        group.bench_function(format!("read_{label}"), |b| {
            let mdisks = ftl.active_mdisks();
            let m = mdisks[0];
            b.iter(|| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let lbas = ftl.mdisk_lbas(m).unwrap();
                std::hint::black_box(ftl.read(m, Lba((x % lbas as u64) as u32)).ok());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ftl);
criterion_main!(benches);
