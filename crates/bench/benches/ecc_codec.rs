//! Criterion bench: the real BCH codec at flash-controller scale.
//!
//! Exercises the paper's L0 configuration (1 KiB chunk + 128 B parity,
//! GF(2^14), t = 73) and the L1 configuration (512 B parity per chunk,
//! t = 292) for encode, clean decode, and worst-case decode (t errors).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use salamander_ecc::bch::Bch;

fn codeword_with_errors(code: &Bch, errors: usize, rng: &mut ChaCha8Rng) -> Vec<bool> {
    let data: Vec<bool> = (0..code.data_bits()).map(|_| rng.gen()).collect();
    let mut cw = code.encode(&data);
    let mut flipped = std::collections::HashSet::new();
    while flipped.len() < errors {
        flipped.insert(rng.gen_range(0..code.codeword_bits()));
    }
    for &p in &flipped {
        cw[p] = !cw[p];
    }
    cw
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("bch");
    group.sample_size(10);
    let mut rng = ChaCha8Rng::seed_from_u64(1);

    for (label, m, t, k) in [
        ("L0_t73", 14u32, 73u32, 8192usize),
        ("L1_t292", 14, 292, 8192),
    ] {
        let code = Bch::new_shortened(m, t, k).expect("code constructs");
        let data: Vec<bool> = (0..code.data_bits()).map(|_| rng.gen()).collect();
        group.bench_function(format!("encode_{label}"), |b| {
            b.iter(|| std::hint::black_box(code.encode(&data)))
        });
        let clean = code.encode(&data);
        group.bench_function(format!("decode_clean_{label}"), |b| {
            b.iter_batched(
                || clean.clone(),
                |mut cw| std::hint::black_box(code.decode(&mut cw)),
                BatchSize::SmallInput,
            )
        });
        let dirty = codeword_with_errors(&code, t as usize, &mut rng);
        group.bench_function(format!("decode_t_errors_{label}"), |b| {
            b.iter_batched(
                || dirty.clone(),
                |mut cw| std::hint::black_box(code.decode(&mut cw).unwrap()),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
