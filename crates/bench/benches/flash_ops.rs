//! Criterion bench: raw flash-simulator operation rates (program, read
//! with error injection, erase) — the substrate cost that bounds every
//! higher-level simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use salamander_flash::array::FlashArray;
use salamander_flash::geometry::FlashGeometry;
use salamander_flash::rber::RberModel;

fn bench_flash(c: &mut Criterion) {
    let mut group = c.benchmark_group("flash");
    group.sample_size(20);
    let geom = FlashGeometry::medium();

    group.bench_function("program_erase_cycle", |b| {
        let mut a = FlashArray::new(geom, RberModel::default(), 1);
        let block = geom.block_of(geom.fpage_addr(0, 0, 0));
        b.iter(|| {
            for fp in geom.fpages_in(block) {
                a.program(fp, None).unwrap();
            }
            a.erase(block).unwrap();
        })
    });

    group.bench_function("read_worn_page", |b| {
        let mut a = FlashArray::new(geom, RberModel::fast_wear(), 2);
        let fp = geom.fpage_addr(0, 0, 0);
        let block = geom.block_of(fp);
        for _ in 0..40 {
            a.program(fp, None).unwrap();
            a.erase(block).unwrap();
        }
        a.program(fp, None).unwrap();
        b.iter(|| std::hint::black_box(a.read(fp).unwrap().raw_bit_errors))
    });

    group.bench_function("read_with_data_corruption", |b| {
        let mut a = FlashArray::new(geom, RberModel::fast_wear(), 3);
        let fp = geom.fpage_addr(0, 1, 0);
        let block = geom.block_of(fp);
        let buf = vec![0xA5u8; (geom.fpage_data_bytes + geom.fpage_spare_bytes) as usize];
        for _ in 0..40 {
            a.program(fp, None).unwrap();
            a.erase(block).unwrap();
        }
        a.program(fp, Some(&buf)).unwrap();
        b.iter(|| std::hint::black_box(a.read(fp).unwrap().data))
    });
    group.finish();
}

criterion_group!(benches, bench_flash);
criterion_main!(benches);
