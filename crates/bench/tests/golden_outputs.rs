//! Golden-output regression gate for the seeded `results/` artifacts.
//!
//! Runs the `lifetime`, `fig3a`, and `fig3b` harness binaries with
//! their seed defaults in a scratch directory and asserts every CSV
//! they produce is byte-identical to the copy checked into `results/`,
//! at `SALAMANDER_THREADS=1` and `=4` alike. This is the enforcement
//! arm of the determinism contract: no optimization may shift a
//! published number, and thread count may never leak into output.
//!
//! This lives in `crates/bench` (rather than the top-level `tests/`
//! directory next to `trace_determinism.rs`) because only the crate
//! that defines the binaries gets `CARGO_BIN_EXE_*` paths from cargo.

use std::path::{Path, PathBuf};
use std::process::Command;

/// Repo-root `results/` directory holding the checked-in goldens.
fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Run `bin` with `args` in a fresh scratch dir at a fixed thread
/// count and compare every CSV named in `outputs` byte-for-byte
/// against the checked-in golden of the same name.
fn assert_golden(bin: &str, args: &[&str], threads: &str, outputs: &[&str]) {
    let scratch = std::env::temp_dir().join(format!(
        "salamander-golden-{}-t{}-{}",
        Path::new(bin).file_name().unwrap().to_string_lossy(),
        threads,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("create scratch dir");

    let status = Command::new(bin)
        .args(args)
        .current_dir(&scratch)
        .env("SALAMANDER_THREADS", threads)
        .stdout(std::process::Stdio::null())
        .status()
        .expect("spawn harness binary");
    assert!(status.success(), "{bin} exited with {status}");

    for name in outputs {
        let produced = std::fs::read(scratch.join("results").join(name))
            .unwrap_or_else(|e| panic!("{bin} did not produce results/{name}: {e}"));
        let golden = std::fs::read(golden_dir().join(name))
            .unwrap_or_else(|e| panic!("missing checked-in golden results/{name}: {e}"));
        assert_eq!(
            produced, golden,
            "results/{name} from {bin} (SALAMANDER_THREADS={threads}) \
             differs from the checked-in golden"
        );
    }
    let _ = std::fs::remove_dir_all(&scratch);
}

/// One case per harness binary: the binary path from cargo, the seed
/// defaults (none — defaults are the seeds), and the CSVs it writes.
fn cases() -> Vec<(&'static str, Vec<&'static str>)> {
    vec![
        (
            env!("CARGO_BIN_EXE_lifetime"),
            vec![
                "lifetime.csv",
                "lifetime_granularity.csv",
                "lifetime_cap.csv",
            ],
        ),
        (env!("CARGO_BIN_EXE_fig3a"), vec!["fig3a.csv"]),
        (env!("CARGO_BIN_EXE_fig3b"), vec!["fig3b.csv"]),
    ]
}

#[test]
fn seeded_csvs_match_checked_in_goldens_serial() {
    for (bin, outputs) in cases() {
        assert_golden(bin, &[], "1", &outputs);
    }
}

#[test]
fn seeded_csvs_match_checked_in_goldens_four_threads() {
    for (bin, outputs) in cases() {
        assert_golden(bin, &[], "4", &outputs);
    }
}

/// ISSUE 6: the fleet engine switch must not shift a single byte.
/// Both engines, spelled out explicitly, reproduce the same checked-in
/// fig3a/fig3b goldens (the no-arg cases above already cover the
/// default). Thread counts are crossed with engines so each engine is
/// exercised serial and sharded without doubling the suite's runtime.
#[test]
fn fig3_goldens_are_engine_independent() {
    for (engine, threads) in [
        ("device", "1"),
        ("cohort", "4"),
        ("device", "4"),
        ("cohort", "1"),
    ] {
        assert_golden(
            env!("CARGO_BIN_EXE_fig3a"),
            &["--engine", engine],
            threads,
            &["fig3a.csv"],
        );
        assert_golden(
            env!("CARGO_BIN_EXE_fig3b"),
            &["--engine", engine],
            threads,
            &["fig3b.csv"],
        );
    }
}
