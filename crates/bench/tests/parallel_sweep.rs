//! Multi-thread smoke test for a bench-style seed sweep: the same
//! fan-out the bin targets use (independent simulations spread over
//! the exec engine) must produce bit-identical tables at any thread
//! count.

use salamander_exec::{par_map, Threads};
use salamander_flash::geometry::FlashGeometry;
use salamander_fleet::device::{StatDeviceConfig, StatMode};
use salamander_fleet::sim::{FleetConfig, FleetSim, FleetTimeline};

fn sweep(threads: Threads, seeds: &[u64]) -> Vec<FleetTimeline> {
    par_map(threads, seeds, |_, &seed| {
        let device = StatDeviceConfig {
            geometry: FlashGeometry::small_test(),
            ..StatDeviceConfig::datacenter(StatMode::Shrink)
        };
        FleetSim::new(FleetConfig {
            device,
            devices: 8,
            dwpd: 20.0,
            dwpd_sigma: 0.25,
            afr: 0.01,
            horizon_days: 500,
            sample_every_days: 25,
            seed,
        })
        // Nested parallelism on purpose: the sweep fans out over seeds
        // while each fleet fans out over devices.
        .run_threads(threads)
    })
}

#[test]
fn seed_sweep_is_thread_count_invariant() {
    let seeds: Vec<u64> = (100..106).collect();
    let serial = sweep(Threads::fixed(1), &seeds);
    assert_eq!(serial.len(), seeds.len());
    for n in [2, 4] {
        assert_eq!(sweep(Threads::fixed(n), &seeds), serial, "threads={n}");
    }
}
