//! Golden-output gate for the `obsctl` trace queries: the `lifecycle`
//! and `why` renderings of the checked-in mini trace must match the
//! checked-in goldens byte for byte. The mini trace tells a complete
//! minidisk story — wear transitions, retry pressure, a draining
//! decommission, purge, regeneration, and device death — so the
//! goldens pin the whole narrative surface of the CLI.
//!
//! Regenerate after an intentional format change with:
//! `UPDATE_GOLDENS=1 cargo test -p salamander-bench --test obsctl_golden`
//!
//! Lives in `crates/bench` because only the crate defining the binary
//! gets a `CARGO_BIN_EXE_obsctl` path from cargo.

use std::path::{Path, PathBuf};
use std::process::Command;

fn data_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data")
}

/// Run obsctl with `args` and return stdout; the command must succeed.
fn obsctl(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_obsctl"))
        .args(args)
        .output()
        .expect("spawn obsctl");
    assert!(
        out.status.success(),
        "obsctl {args:?} exited with {}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("obsctl output is UTF-8")
}

fn assert_golden(name: &str, produced: &str) {
    let path = data_dir().join(name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::write(&path, produced).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} (run with UPDATE_GOLDENS=1): {e}"));
    assert_eq!(
        produced, golden,
        "obsctl output drifted from {name}; if intentional, regenerate with UPDATE_GOLDENS=1"
    );
}

fn trace_path() -> String {
    data_dir().join("mini_trace.jsonl").display().to_string()
}

#[test]
fn lifecycle_matches_golden() {
    let out = obsctl(&["lifecycle", &trace_path()]);
    assert_golden("golden_lifecycle.txt", &out);
}

#[test]
fn why_matches_golden() {
    // No --mdisk: obsctl explains the first decommissioned minidisk.
    let out = obsctl(&["why", &trace_path()]);
    assert_golden("golden_why.txt", &out);
    // The default subject is minidisk 2 — the first decommission.
    assert!(out.contains("why: minidisk 2"), "{out}");
}

#[test]
fn why_explains_a_specific_mdisk() {
    let out = obsctl(&["why", &trace_path(), "--mdisk", "1"]);
    assert!(out.contains("why: minidisk 1"), "{out}");
    assert!(out.contains("GcHeadroom"), "{out}");
}

#[test]
fn corrupt_trace_reports_line_and_snippet() {
    let dir = std::env::temp_dir().join(format!("obsctl-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("bad.jsonl");
    let good = std::fs::read_to_string(trace_path()).expect("read mini trace");
    std::fs::write(&path, format!("{good}{{\"seq\":99,broken\n")).expect("write corrupt trace");
    let out = Command::new(env!("CARGO_BIN_EXE_obsctl"))
        .args(["lifecycle", &path.display().to_string()])
        .output()
        .expect("spawn obsctl");
    assert_eq!(out.status.code(), Some(2), "parse failures exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    // The typed ParseError surfaces the 1-based line number and the
    // offending snippet.
    assert!(stderr.contains("line 19"), "{stderr}");
    assert!(stderr.contains("broken"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}
