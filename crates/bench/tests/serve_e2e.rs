//! End-to-end tests for the live telemetry plane (DESIGN.md §12):
//!
//! 1. `--serve` must not perturb a single byte of the deterministic
//!    outputs — trace, metrics exposition, results CSV — at any thread
//!    count (the server is a read-only observer on its own thread).
//! 2. A scrape of `/metrics` after the run equals the `--metrics` file
//!    byte-for-byte, and the endpoints answer while the sim runs.
//!
//! Both tests drive the real `lifetime` binary as a subprocess, each
//! run in its own temp working directory so `results/` never collides.

use salamander_telemetry::http_get;
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn lifetime_bin() -> &'static str {
    env!("CARGO_BIN_EXE_lifetime")
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("salamander-serve-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Run `lifetime --modes-only --trace --metrics` in `dir`, optionally
/// with `--serve`, and return the bytes of (trace, prom, csv).
fn run_lifetime(dir: &Path, threads: &str, serve: bool) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
    let mut cmd = Command::new(lifetime_bin());
    cmd.current_dir(dir)
        .env("SALAMANDER_THREADS", threads)
        .args(["--modes-only", "--trace", "trace.jsonl", "--metrics"])
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if serve {
        cmd.args(["--serve", "127.0.0.1:0"]);
    }
    let status = cmd.status().expect("lifetime runs");
    assert!(status.success(), "lifetime failed: {status:?}");
    (
        std::fs::read(dir.join("trace.jsonl")).unwrap(),
        std::fs::read(dir.join("results/lifetime.prom")).unwrap(),
        std::fs::read(dir.join("results/lifetime.csv")).unwrap(),
    )
}

#[test]
fn serve_leaves_every_artifact_byte_identical() {
    for threads in ["1", "4"] {
        let plain_dir = fresh_dir(&format!("plain-{threads}"));
        let served_dir = fresh_dir(&format!("served-{threads}"));
        let plain = run_lifetime(&plain_dir, threads, false);
        let served = run_lifetime(&served_dir, threads, true);
        assert_eq!(
            plain.0, served.0,
            "trace differs with --serve at {threads} thread(s)"
        );
        assert_eq!(
            plain.1, served.1,
            "metrics differ with --serve at {threads} thread(s)"
        );
        assert_eq!(
            plain.2, served.2,
            "results CSV differs with --serve at {threads} thread(s)"
        );
        let _ = std::fs::remove_dir_all(&plain_dir);
        let _ = std::fs::remove_dir_all(&served_dir);
    }
}

/// Read the server's resolved address from the child's stderr (it is
/// announced before the simulation starts), then keep draining stderr
/// in the background so the child never blocks on a full pipe.
fn server_addr(child: &mut Child) -> String {
    let stderr = child.stderr.take().expect("stderr piped");
    let mut lines = std::io::BufReader::new(stderr).lines();
    let mut addr = None;
    for line in &mut lines {
        let line = line.expect("stderr line");
        if let Some(rest) = line.strip_prefix("serving telemetry on http://") {
            addr = Some(rest.trim_end_matches('/').to_string());
            break;
        }
    }
    std::thread::spawn(move || for _ in lines.map_while(Result::ok) {});
    addr.expect("server announced its address")
}

fn get_ok(addr: &str, path: &str) -> String {
    let (status, _, body) = http_get(addr, path).expect("endpoint answers");
    assert_eq!(status, 200, "GET {path} -> {status}");
    body
}

#[test]
fn final_metrics_scrape_equals_the_metrics_file() {
    let dir = fresh_dir("e2e");
    let mut child = Command::new(lifetime_bin())
        .current_dir(&dir)
        .env("SALAMANDER_THREADS", "2")
        .args(["--modes-only", "--metrics", "--serve", "127.0.0.1:0"])
        .args(["--serve-linger", "30"])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("lifetime spawns");
    let addr = server_addr(&mut child);

    // The endpoints answer from the moment the address is announced —
    // usually mid-simulation.
    let early = get_ok(&addr, "/metrics");
    assert!(early.starts_with('#') || early.is_empty() || early.contains("salamander"));
    let progress = get_ok(&addr, "/progress");
    assert!(progress.contains("\"run\":\"lifetime\""), "{progress}");
    get_ok(&addr, "/healthz");

    // Wait (within the linger window) for the run to finish.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let p = get_ok(&addr, "/progress");
        if p.contains("\"done\":true") {
            break;
        }
        assert!(Instant::now() < deadline, "run never finished: {p}");
        std::thread::sleep(Duration::from_millis(50));
    }

    // A final scrape is the published exposition — the same string the
    // harness wrote to results/lifetime.prom.
    let scraped = get_ok(&addr, "/metrics");
    let on_disk = std::fs::read_to_string(dir.join("results/lifetime.prom")).unwrap();
    assert_eq!(scraped, on_disk, "final /metrics != results/lifetime.prom");

    // /health carries one report per mode, serialized by the harness.
    let health = get_ok(&addr, "/health");
    assert!(health.contains("mode=Baseline"), "{health}");

    // Release the linger and reap the child.
    let _ = http_get(&addr, "/quit");
    let status = child.wait().expect("lifetime exits");
    assert!(status.success(), "lifetime failed: {status:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
