//! Property tests for the forecaster: projections are total (never
//! negative, never panic), monotone in the wear rate, and the fold is
//! deterministic.

use proptest::prelude::*;
use salamander_health::forecast::{project, WearForecaster};

/// Feed a forecaster a linear headroom decline of `rate` oPages per
/// sample, `samples` samples spaced `dt` ticks apart.
fn fold(start: u64, rate: u64, samples: u64, dt: u64) -> WearForecaster {
    let mut f = WearForecaster::new();
    for i in 0..samples {
        let headroom = start.saturating_sub(rate * i);
        let life = (1.0 - i as f64 / (samples as f64 * 4.0)).max(0.0);
        f.observe(i * dt, headroom, life, &[0; 5]);
    }
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `project` is total over arbitrary inputs: it either declines to
    /// answer or returns a finite non-negative tick count, and a
    /// non-positive/NaN rate always declines.
    #[test]
    fn projection_is_total_and_never_negative(
        remaining_bits in any::<u64>(),
        rate_bits in any::<u64>(),
    ) {
        // Raw bit patterns cover every float class: normals,
        // subnormals, ±0, ±inf, NaN.
        let remaining = f64::from_bits(remaining_bits);
        let rate = f64::from_bits(rate_bits);
        match project(remaining, rate) {
            None => prop_assert!(rate <= 0.0 || rate.is_nan()),
            Some(ticks) => {
                prop_assert!(rate > 0.0);
                // u64 is non-negative by construction; the interesting
                // claim is that zero/negative remaining clamps to 0.
                if remaining <= 0.0 {
                    prop_assert_eq!(ticks, 0);
                }
            }
        }
    }

    /// Wearing faster never projects a *later* shrink: for the same
    /// starting headroom and sample cadence, a strictly higher
    /// consumption rate gives a less-than-or-equal time to shrink.
    #[test]
    fn faster_wear_never_projects_later(
        start in 10_000u64..1_000_000,
        slow_rate in 1u64..500,
        extra in 1u64..500,
        samples in 3u64..20,
        dt in 1u64..1000,
    ) {
        let slow = fold(start, slow_rate, samples, dt);
        let fast = fold(start, slow_rate + extra, samples, dt);
        let t_slow = slow.ticks_to_next_shrink().expect("declining headroom");
        let t_fast = fast.ticks_to_next_shrink().expect("declining headroom");
        prop_assert!(
            t_fast <= t_slow,
            "rate {} projects {} but rate {} projects {}",
            slow_rate, t_slow, slow_rate + extra, t_fast
        );
    }

    /// Projections from real folds are never absurd: at a constant
    /// decline the projection equals remaining/rate exactly. `dt` is a
    /// power of two so the per-tick rate is exactly representable and
    /// the EWMA of that constant is bit-exact (for general `dt` the
    /// average can drift by an ulp, which is fine for forecasting but
    /// not for an equality assertion).
    #[test]
    fn constant_decline_projects_exactly(
        start in 10_000u64..1_000_000,
        rate in 1u64..500,
        samples in 3u64..20,
        dt_pow in 0u32..10,
    ) {
        let dt = 1u64 << dt_pow;
        let f = fold(start, rate, samples, dt);
        let remaining = start - rate * (samples - 1);
        let per_tick = rate as f64 / dt as f64;
        let expect = (remaining as f64 / per_tick).ceil() as u64;
        prop_assert_eq!(f.ticks_to_next_shrink(), Some(expect));
    }

    /// The fold is a pure function of the sample stream.
    #[test]
    fn fold_is_deterministic(
        start in 10_000u64..1_000_000,
        rate in 0u64..500,
        samples in 1u64..20,
        dt in 1u64..1000,
    ) {
        let a = fold(start, rate, samples, dt);
        let b = fold(start, rate, samples, dt);
        prop_assert_eq!(a, b);
    }

    /// Flat or rising headroom never fabricates a shrink projection.
    #[test]
    fn no_consumption_projects_never(
        start in 0u64..1_000_000,
        samples in 1u64..20,
        dt in 1u64..1000,
    ) {
        let mut f = WearForecaster::new();
        for i in 0..samples {
            // Rising headroom (regeneration-style bounce only).
            f.observe(i * dt, start + i * 3, 1.0, &[0; 5]);
        }
        prop_assert_eq!(f.ticks_to_next_shrink(), None);
        prop_assert_eq!(f.ticks_to_death(), None);
    }
}
