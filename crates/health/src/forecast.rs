//! Deterministic wear forecasting (DESIGN.md §11).
//!
//! The forecaster is a pure fold over SMART samples: exponentially
//! weighted moving averages of the consumption rates (headroom oPages
//! per tick, life fraction per tick, net page flow per tiredness level
//! per tick) and first-order projections of when the next shrink and
//! the device's death land. Everything is simulation-time arithmetic —
//! ticks are whatever clock the driver samples on (ops for
//! `EnduranceSim`, days for `DailySim`) — and every operation happens
//! in a fixed order, so two runs of the same sample stream produce
//! bit-identical forecasts on any machine or thread count.

use serde::{Deserialize, Serialize};

/// EWMA smoothing factor: each new sample contributes 1/4, so the
/// estimate spans roughly the last seven samples. Small enough to damp
/// single-sample noise (GC bursts), large enough to track the
/// super-linear wear curve near end of life.
pub const EWMA_ALPHA: f64 = 0.25;

/// One exponentially weighted moving average, unprimed until the first
/// update.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Ewma {
    value: f64,
    primed: bool,
}

impl Ewma {
    /// Fold in one observation and return the new average. The first
    /// observation seeds the average directly.
    pub fn update(&mut self, x: f64) -> f64 {
        self.value = if self.primed {
            EWMA_ALPHA * x + (1.0 - EWMA_ALPHA) * self.value
        } else {
            x
        };
        self.primed = true;
        self.value
    }

    /// The current average, `None` before any update.
    pub fn get(&self) -> Option<f64> {
        self.primed.then_some(self.value)
    }

    /// The current average, or 0 before any update (for reporting).
    pub fn get_or_zero(&self) -> f64 {
        self.value
    }
}

/// First-order projection: ticks until `remaining` is exhausted at
/// `rate_per_tick`. `None` when the rate is zero, negative, or NaN (no
/// consumption observed — "never", on current evidence). Never
/// negative: both inputs are clamped non-negative and the division of
/// non-negatives rounds up to a non-negative integer.
pub fn project(remaining: f64, rate_per_tick: f64) -> Option<u64> {
    // NaN rates fall into the `None` arm here (NaN compares false).
    if rate_per_tick <= 0.0 || rate_per_tick.is_nan() {
        return None;
    }
    let remaining = remaining.max(0.0);
    // `as u64` saturates on overflow/infinity, so absurd ratios clamp
    // to u64::MAX instead of wrapping.
    Some((remaining / rate_per_tick).ceil() as u64)
}

/// EWMA wear-rate tracker and shrink/death projector for one device.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WearForecaster {
    /// Tick of the last accepted sample.
    last_tick: Option<u64>,
    /// Headroom (oPages) at the last sample.
    headroom: f64,
    /// Life-remaining fraction at the last sample.
    life: f64,
    /// Per-level page counts at the last sample.
    levels: [f64; 5],
    /// EWMA of headroom consumed per tick (clamped non-negative:
    /// regeneration can bounce headroom up, which is not consumption).
    headroom_rate: Ewma,
    /// EWMA of life fraction consumed per tick.
    life_rate: Ewma,
    /// EWMA of *net* page flow per tick per tiredness level (signed:
    /// L0 drains, higher levels fill, the dead level only grows).
    level_rates: [Ewma; 5],
}

impl WearForecaster {
    /// A fresh forecaster.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one SMART sample. Samples at a tick at or before the
    /// previous one update the level state but not the rates (dt would
    /// be zero or negative); the sim drivers sample on a monotone
    /// clock, so this only guards the degenerate first/last sample
    /// collisions.
    pub fn observe(
        &mut self,
        tick: u64,
        headroom_opages: u64,
        life_remaining: f64,
        levels: &[u64; 5],
    ) {
        let headroom = headroom_opages as f64;
        let life = life_remaining.clamp(0.0, 1.0);
        if let Some(t0) = self.last_tick {
            if tick > t0 {
                let dt = (tick - t0) as f64;
                self.headroom_rate
                    .update((self.headroom - headroom).max(0.0) / dt);
                self.life_rate.update((self.life - life).max(0.0) / dt);
                for (rate, (prev, now)) in self
                    .level_rates
                    .iter_mut()
                    .zip(self.levels.iter().zip(levels))
                {
                    rate.update((*now as f64 - prev) / dt);
                }
            }
        }
        if self.last_tick.is_none_or(|t0| tick >= t0) {
            self.last_tick = Some(tick);
            self.headroom = headroom;
            self.life = life;
            for (slot, v) in self.levels.iter_mut().zip(levels) {
                *slot = *v as f64;
            }
        }
    }

    /// Whether rates exist yet (at least two monotone samples folded).
    pub fn is_primed(&self) -> bool {
        self.headroom_rate.get().is_some()
    }

    /// Ticks until the current headroom is consumed — the projected
    /// next forced minidisk decommission (shrink). `None` when no
    /// consumption has been observed.
    pub fn ticks_to_next_shrink(&self) -> Option<u64> {
        project(self.headroom, self.headroom_rate.get()?)
    }

    /// Ticks until the remaining life fraction is consumed — the
    /// projected device death. `None` when no life consumption has been
    /// observed.
    pub fn ticks_to_death(&self) -> Option<u64> {
        project(self.life, self.life_rate.get()?)
    }

    /// EWMA headroom consumption per tick (0 before priming).
    pub fn headroom_rate(&self) -> f64 {
        self.headroom_rate.get_or_zero()
    }

    /// EWMA life-fraction consumption per tick (0 before priming).
    pub fn life_rate(&self) -> f64 {
        self.life_rate.get_or_zero()
    }

    /// EWMA net page flow per tick for each tiredness level (0 before
    /// priming). Index 4 is the dead level; its rate is the retirement
    /// rate.
    pub fn level_rates(&self) -> [f64; 5] {
        let mut out = [0.0; 5];
        for (o, r) in out.iter_mut().zip(&self.level_rates) {
            *o = r.get_or_zero();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_seeds_then_smooths() {
        let mut e = Ewma::default();
        assert_eq!(e.get(), None);
        assert_eq!(e.update(8.0), 8.0);
        assert_eq!(e.update(0.0), 6.0); // 0.25·0 + 0.75·8
        assert_eq!(e.get(), Some(6.0));
    }

    #[test]
    fn project_is_never_negative_and_handles_zero_rate() {
        assert_eq!(project(100.0, 0.0), None);
        assert_eq!(project(100.0, -1.0), None);
        assert_eq!(project(100.0, f64::NAN), None);
        assert_eq!(project(0.0, 5.0), Some(0));
        assert_eq!(project(-10.0, 5.0), Some(0));
        assert_eq!(project(100.0, 3.0), Some(34)); // ceil
    }

    /// Feed a linear headroom decline of `rate` per tick.
    fn declining(rate: u64, samples: u64) -> WearForecaster {
        let mut f = WearForecaster::new();
        let start = 10_000u64;
        for i in 0..samples {
            let headroom = start.saturating_sub(rate * i);
            let life = 1.0 - i as f64 / 100.0;
            f.observe(i * 10, headroom, life, &[100 - i, i, 0, 0, 0]);
        }
        f
    }

    #[test]
    fn constant_decline_projects_exactly() {
        let f = declining(50, 5); // 50 oPages per 10 ticks = 5/tick
        assert_eq!(f.headroom_rate(), 5.0);
        // 9800 remaining at 5/tick.
        assert_eq!(f.ticks_to_next_shrink(), Some(1960));
        assert!(f.ticks_to_death().unwrap() > 0);
    }

    #[test]
    fn faster_wear_projects_sooner() {
        let slow = declining(20, 8);
        let fast = declining(80, 8);
        assert!(fast.ticks_to_next_shrink().unwrap() < slow.ticks_to_next_shrink().unwrap());
    }

    #[test]
    fn flat_headroom_projects_never() {
        let mut f = WearForecaster::new();
        for i in 0..5u64 {
            f.observe(i, 1000, 1.0, &[100, 0, 0, 0, 0]);
        }
        assert_eq!(f.ticks_to_next_shrink(), None);
        assert_eq!(f.ticks_to_death(), None);
    }

    #[test]
    fn level_rates_track_net_flow() {
        let mut f = WearForecaster::new();
        f.observe(0, 100, 1.0, &[100, 0, 0, 0, 0]);
        f.observe(10, 100, 1.0, &[80, 20, 0, 0, 0]);
        let rates = f.level_rates();
        assert_eq!(rates[0], -2.0);
        assert_eq!(rates[1], 2.0);
        assert_eq!(rates[4], 0.0);
    }

    #[test]
    fn regeneration_bounce_is_not_consumption() {
        let mut f = WearForecaster::new();
        f.observe(0, 100, 1.0, &[9, 0, 0, 0, 0]);
        f.observe(1, 50, 1.0, &[9, 0, 0, 0, 0]); // consumed 50
        f.observe(2, 90, 1.0, &[9, 0, 0, 0, 0]); // regen bounce: +40
                                                 // The bounce folds in as zero consumption, not negative.
        assert!(f.headroom_rate() > 0.0);
        assert!(f.ticks_to_next_shrink().is_some());
    }

    #[test]
    fn deterministic_fold() {
        let a = declining(37, 12);
        let b = declining(37, 12);
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a.level_rates().to_vec()).unwrap(),
            serde_json::to_string(&b.level_rates().to_vec()).unwrap()
        );
    }
}
